// cfds_cli — command-line driver for the cluster-based FDS simulator.
//
// Runs a full deployment (placement, clustering, FDS, inter-cluster
// forwarding) with a Poisson crash process and prints per-epoch health
// telemetry, optionally as CSV for plotting.
//
//   cfds_cli [--nodes N] [--width W] [--height H] [--range R]
//            [--loss P] [--epochs K] [--seed S] [--interval-ms MS]
//            [--crash-rate LAMBDA] [--distributed-formation]
//            [--mobility SPEED_MPS] [--csv] [--trace]
//
// Examples:
//   cfds_cli --nodes 500 --loss 0.2 --epochs 20 --crash-rate 1.5
//   cfds_cli --nodes 300 --mobility 2.0 --epochs 30 --csv > run.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/mobility.h"
#include "radio/tracer.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

struct CliOptions {
  ScenarioConfig scenario;
  std::uint64_t epochs = 20;
  double crash_rate = 1.0;  // expected crashes per epoch
  double mobility_mps = 0.0;
  bool csv = false;
  bool trace = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --nodes N                deployment size            (default 400)\n"
      "  --width W --height H     field size in metres       (700 x 450)\n"
      "  --range R                transmission range         (100)\n"
      "  --loss P                 frame-loss probability     (0.1)\n"
      "  --epochs K               FDS executions to run      (20)\n"
      "  --interval-ms MS         heartbeat interval phi     (2000)\n"
      "  --seed S                 RNG seed                   (1)\n"
      "  --crash-rate L           expected crashes/epoch     (1.0)\n"
      "  --distributed-formation  run the real formation protocol\n"
      "  --mobility V             random-waypoint speed, m/s (0 = static)\n"
      "  --csv                    machine-readable output\n"
      "  --trace                  print the frame-kind mix at the end\n",
      argv0);
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions options;
  options.scenario.node_count = 400;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nodes") {
      options.scenario.node_count = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--width") {
      options.scenario.width = std::strtod(need_value(i), nullptr);
    } else if (arg == "--height") {
      options.scenario.height = std::strtod(need_value(i), nullptr);
    } else if (arg == "--range") {
      options.scenario.range = std::strtod(need_value(i), nullptr);
    } else if (arg == "--loss") {
      options.scenario.loss_p = std::strtod(need_value(i), nullptr);
    } else if (arg == "--epochs") {
      options.epochs = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--interval-ms") {
      options.scenario.heartbeat_interval =
          SimTime::millis(std::strtoll(need_value(i), nullptr, 10));
    } else if (arg == "--seed") {
      options.scenario.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--crash-rate") {
      options.crash_rate = std::strtod(need_value(i), nullptr);
    } else if (arg == "--distributed-formation") {
      options.scenario.distributed_formation = true;
    } else if (arg == "--mobility") {
      options.mobility_mps = std::strtod(need_value(i), nullptr);
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else {
      usage(argv[0]);
    }
  }
  return options;
}

/// Poisson sample by inversion (rates here are small).
std::uint64_t poisson(double lambda, Rng& rng) {
  const double u = rng.uniform();
  double acc = std::exp(-lambda);
  double cdf = acc;
  std::uint64_t k = 0;
  while (u > cdf && k < 1000) {
    ++k;
    acc *= lambda / double(k);
    cdf += acc;
  }
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options = parse(argc, argv);

  Scenario scenario(options.scenario);
  FrameTracer tracer;
  scenario.setup();
  if (options.trace) tracer.attach(scenario.network().channel());

  RandomWaypointMobility* mobility = nullptr;
  WaypointConfig wp;
  wp.width = options.scenario.width;
  wp.height = options.scenario.height;
  if (options.mobility_mps > 0.0) {
    wp.min_speed_mps = options.mobility_mps / 2.0;
    wp.max_speed_mps = options.mobility_mps;
    static RandomWaypointMobility instance(scenario.network(), wp,
                                           Rng(options.scenario.seed ^ 0x40B1));
    const SimTime horizon =
        scenario.network().simulator().now() +
        std::int64_t(options.epochs + 2) * options.scenario.heartbeat_interval;
    instance.run(scenario.network().simulator().now(), horizon);
    mobility = &instance;
  }

  if (!options.csv) {
    std::printf("deployed %zu nodes (%zu clusters, %.0f%% affiliated),"
                " p=%.2f, phi=%.1fs\n",
                options.scenario.node_count, scenario.cluster_count(),
                100.0 * scenario.affiliation_rate(), options.scenario.loss_p,
                options.scenario.heartbeat_interval.as_seconds());
    std::printf("%-7s %7s %8s %8s %8s %10s %10s\n", "epoch", "alive",
                "crashes", "detect", "false", "coverage", "frames");
  } else {
    std::printf("epoch,alive,crashes,detections,false_detections,"
                "coverage,frames\n");
  }

  Rng chaos(options.scenario.seed ^ 0xC4A5);
  std::vector<NodeId> casualties;
  std::uint64_t frames_before = 0;

  for (std::uint64_t epoch = 0; epoch < options.epochs; ++epoch) {
    const std::uint64_t crashes = poisson(options.crash_rate, chaos);
    for (std::uint64_t c = 0; c < crashes; ++c) {
      std::vector<NodeId> candidates;
      for (MembershipView* view : scenario.views()) {
        if (view->role() == Role::kOrdinaryMember &&
            scenario.network().node(view->self()).alive()) {
          candidates.push_back(view->self());
        }
      }
      if (candidates.empty()) break;
      const NodeId victim = candidates[chaos.below(candidates.size())];
      scenario.network().crash(victim);
      casualties.push_back(victim);
    }

    scenario.run_epochs(1);

    const double coverage =
        casualties.empty()
            ? 1.0
            : knowledge_coverage(scenario.fds(), scenario.network(),
                                 casualties.back());
    const auto totals = traffic_totals(scenario.network());
    const std::uint64_t epoch_frames = totals.frames - frames_before;
    frames_before = totals.frames;

    if (!options.csv) {
      std::printf("%-7llu %7zu %8llu %8zu %8zu %10.3f %10llu\n",
                  (unsigned long long)epoch, scenario.network().alive_count(),
                  (unsigned long long)crashes,
                  scenario.metrics().true_detections(),
                  scenario.metrics().false_detections(), coverage,
                  (unsigned long long)epoch_frames);
    } else {
      std::printf("%llu,%zu,%llu,%zu,%zu,%.4f,%llu\n",
                  (unsigned long long)epoch, scenario.network().alive_count(),
                  (unsigned long long)crashes,
                  scenario.metrics().true_detections(),
                  scenario.metrics().false_detections(), coverage,
                  (unsigned long long)epoch_frames);
    }
  }

  if (!options.csv) {
    std::size_t undetected = 0;
    for (NodeId c : casualties) {
      if (!scenario.metrics().first_detection(c)) ++undetected;
    }
    std::printf("\nsummary: %zu crashes, %zu detections (%zu false),"
                " %zu undetected\n",
                casualties.size(), scenario.metrics().detections().size(),
                scenario.metrics().false_detections(), undetected);
    if (mobility != nullptr) {
      std::printf("mobility: %.0f m travelled in total\n",
                  mobility->total_distance());
    }
  }
  if (options.trace) {
    std::printf("\nframe mix:\n");
    for (const auto& [kind, stats] : tracer.by_kind()) {
      std::printf("  %-12s %10llu frames %12llu bytes\n", kind.c_str(),
                  (unsigned long long)stats.frames,
                  (unsigned long long)stats.bytes);
    }
  }
  return 0;
}
