// cfds_cli — command-line driver for the cluster-based FDS simulator.
//
// Two modes:
//
// Scenario mode (default) runs a full deployment (placement, clustering,
// FDS, inter-cluster forwarding) with a Poisson crash process and prints
// per-epoch health telemetry, optionally as CSV for plotting.
//
//   cfds_cli [--nodes N] [--width W] [--height H] [--range R]
//            [--loss P] [--epochs K] [--seed S] [--interval-ms MS]
//            [--crash-rate LAMBDA] [--distributed-formation]
//            [--mobility SPEED_MPS] [--csv] [--trace]
//
// Monte-Carlo mode (--mc) sweeps one of the paper's per-cluster measures
// over the (N, p) grid on the parallel experiment runner and emits JSONL:
//
//   cfds_cli --mc fig5|fig6|fig7[-stack] [--cluster-n 50,75,100]
//            [--trials T] [--threads W] [--seed S] [--out F] [--no-wall-time]
//
// Examples:
//   cfds_cli --nodes 500 --loss 0.2 --epochs 20 --crash-rate 1.5
//   cfds_cli --nodes 300 --mobility 2.0 --epochs 30 --csv > run.csv
//   cfds_cli --mc fig5 --trials 400000 --threads 8 --out fig5.jsonl

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/figures.h"
#include "event/simulator.h"
#include "net/mobility.h"
#include "radio/tracer.h"
#include "runner/cli_args.h"
#include "runner/executor.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

struct CliOptions {
  ScenarioConfig scenario;
  std::uint64_t epochs = 20;
  double crash_rate = 1.0;  // expected crashes per epoch
  double mobility_mps = 0.0;
  bool csv = false;
  bool trace = false;

  // Monte-Carlo mode.
  std::string mc_figure;             // empty = scenario mode
  std::string cluster_ns = "50,75,100";
  runner::RunnerOptions runner;
};

void register_flags(runner::FlagSet& flags, CliOptions& options,
                    std::int64_t& interval_ms, std::int64_t& nodes) {
  flags.add_value("--nodes", &nodes, "deployment size (default 400)");
  flags.add_value("--width", &options.scenario.width, "field width, metres");
  flags.add_value("--height", &options.scenario.height, "field height, metres");
  flags.add_value("--range", &options.scenario.range, "transmission range");
  flags.add_value("--loss", &options.scenario.loss_p,
                  "frame-loss probability");
  flags.add_value("--epochs", &options.epochs, "FDS executions to run");
  flags.add_value("--interval-ms", &interval_ms, "heartbeat interval phi, ms");
  flags.add_value("--crash-rate", &options.crash_rate,
                  "expected crashes/epoch");
  flags.add_flag("--distributed-formation",
                 &options.scenario.distributed_formation,
                 "run the real formation protocol");
  flags.add_value("--mobility", &options.mobility_mps,
                  "random-waypoint speed, m/s (0 = static)");
  flags.add_flag("--csv", &options.csv, "machine-readable output");
  flags.add_flag("--trace", &options.trace, "print the frame-kind mix");
  flags.add_value("--mc", &options.mc_figure,
                  "Monte-Carlo sweep: fig5|fig6|fig7[-stack]");
  flags.add_value("--cluster-n", &options.cluster_ns,
                  "cluster populations for --mc (comma list)");
  runner::add_runner_flags(flags, options.runner);
}

CliOptions parse(int argc, char** argv) {
  CliOptions options;
  options.scenario.node_count = 400;
  std::int64_t interval_ms = -1;
  std::int64_t nodes = -1;
  runner::FlagSet flags;
  register_flags(flags, options, interval_ms, nodes);

  std::string error;
  const bool ok = flags.parse(argc, argv, &error);
  if (!ok || argc > 1) {
    if (!ok) std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    else std::fprintf(stderr, "%s: unknown argument %s\n", argv[0], argv[1]);
    std::fprintf(stderr, "usage: %s [options]\n%s", argv[0],
                 flags.usage().c_str());
    std::exit(2);
  }
  if (nodes >= 0) options.scenario.node_count = std::size_t(nodes);
  if (interval_ms >= 0) {
    options.scenario.heartbeat_interval = SimTime::millis(interval_ms);
  }
  options.scenario.seed = options.runner.seed_or(options.scenario.seed);
  // Before any trial thread constructs a Simulator (the pool spins up in
  // run_monte_carlo, after parsing).
  if (options.runner.no_calendar) {
    Simulator::set_default_queue_mode(QueueMode::kHeap);
  }
  return options;
}

/// --mc: sweep the requested measure over (cluster-n × the paper's p sweep)
/// on the thread pool and emit one JSONL record per grid point.
int run_monte_carlo(const CliOptions& options) {
  runner::EstimatorKind kind;
  if (!runner::parse_estimator_kind(options.mc_figure, &kind)) {
    std::fprintf(stderr, "unknown --mc figure %s (want fig5|fig6|fig7, "
                 "optionally with -stack)\n", options.mc_figure.c_str());
    return 2;
  }
  std::vector<int> populations;
  if (!runner::parse_int_list(options.cluster_ns, &populations)) {
    std::fprintf(stderr, "bad --cluster-n list %s\n",
                 options.cluster_ns.c_str());
    return 2;
  }

  auto spec = runner::ExperimentSpec::for_kind(kind);
  std::vector<double> ps;
  for (int i = 0; i < analysis::sweep_points(); ++i) {
    ps.push_back(analysis::sweep_p(i));
  }
  spec.grid = runner::make_grid(populations, ps, options.scenario.range);
  spec.trials = options.runner.trials_or(
      runner::is_full_stack(kind) ? 2000 : 100000);
  spec.seed = options.runner.seed_or(1);

  const std::string out =
      options.runner.out.empty() ? std::string("-") : options.runner.out;
  runner::JsonlResultSink sink(out, !options.runner.no_wall_time);
  if (!sink.ok()) {
    std::fprintf(stderr, "cannot open --out %s\n", out.c_str());
    return 2;
  }
  runner::ThreadPool pool(unsigned(options.runner.threads));
  runner::run_experiment(spec, pool, &sink);
  return 0;
}

/// Poisson sample by inversion (rates here are small).
std::uint64_t poisson(double lambda, Rng& rng) {
  const double u = rng.uniform();
  double acc = std::exp(-lambda);
  double cdf = acc;
  std::uint64_t k = 0;
  while (u > cdf && k < 1000) {
    ++k;
    acc *= lambda / double(k);
    cdf += acc;
  }
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options = parse(argc, argv);
  if (!options.mc_figure.empty()) return run_monte_carlo(options);

  Scenario scenario(options.scenario);
  FrameTracer tracer;
  scenario.setup();
  if (options.trace) tracer.attach(scenario.network().channel());

  RandomWaypointMobility* mobility = nullptr;
  WaypointConfig wp;
  wp.width = options.scenario.width;
  wp.height = options.scenario.height;
  if (options.mobility_mps > 0.0) {
    wp.min_speed_mps = options.mobility_mps / 2.0;
    wp.max_speed_mps = options.mobility_mps;
    static RandomWaypointMobility instance(scenario.network(), wp,
                                           Rng(options.scenario.seed ^ 0x40B1));
    const SimTime horizon =
        scenario.network().simulator().now() +
        std::int64_t(options.epochs + 2) * options.scenario.heartbeat_interval;
    instance.run(scenario.network().simulator().now(), horizon);
    mobility = &instance;
  }

  if (!options.csv) {
    std::printf("deployed %zu nodes (%zu clusters, %.0f%% affiliated),"
                " p=%.2f, phi=%.1fs\n",
                options.scenario.node_count, scenario.cluster_count(),
                100.0 * scenario.affiliation_rate(), options.scenario.loss_p,
                options.scenario.heartbeat_interval.as_seconds());
    std::printf("%-7s %7s %8s %8s %8s %10s %10s\n", "epoch", "alive",
                "crashes", "detect", "false", "coverage", "frames");
  } else {
    std::printf("epoch,alive,crashes,detections,false_detections,"
                "coverage,frames\n");
  }

  Rng chaos(options.scenario.seed ^ 0xC4A5);
  std::vector<NodeId> casualties;
  std::uint64_t frames_before = 0;

  for (std::uint64_t epoch = 0; epoch < options.epochs; ++epoch) {
    const std::uint64_t crashes = poisson(options.crash_rate, chaos);
    for (std::uint64_t c = 0; c < crashes; ++c) {
      std::vector<NodeId> candidates;
      for (MembershipView* view : scenario.views()) {
        if (view->role() == Role::kOrdinaryMember &&
            scenario.network().node(view->self()).alive()) {
          candidates.push_back(view->self());
        }
      }
      if (candidates.empty()) break;
      const NodeId victim = candidates[chaos.below(candidates.size())];
      scenario.network().crash(victim);
      casualties.push_back(victim);
    }

    scenario.run_epochs(1);

    const double coverage =
        casualties.empty()
            ? 1.0
            : knowledge_coverage(scenario.fds(), scenario.network(),
                                 casualties.back());
    const auto totals = traffic_totals(scenario.network());
    const std::uint64_t epoch_frames = totals.frames - frames_before;
    frames_before = totals.frames;

    if (!options.csv) {
      std::printf("%-7llu %7zu %8llu %8zu %8zu %10.3f %10llu\n",
                  static_cast<unsigned long long>(epoch), scenario.network().alive_count(),
                  static_cast<unsigned long long>(crashes),
                  scenario.metrics().true_detections(),
                  scenario.metrics().false_detections(), coverage,
                  static_cast<unsigned long long>(epoch_frames));
    } else {
      std::printf("%llu,%zu,%llu,%zu,%zu,%.4f,%llu\n",
                  static_cast<unsigned long long>(epoch), scenario.network().alive_count(),
                  static_cast<unsigned long long>(crashes),
                  scenario.metrics().true_detections(),
                  scenario.metrics().false_detections(), coverage,
                  static_cast<unsigned long long>(epoch_frames));
    }
  }

  if (!options.csv) {
    std::size_t undetected = 0;
    for (NodeId c : casualties) {
      if (!scenario.metrics().first_detection(c)) ++undetected;
    }
    std::printf("\nsummary: %zu crashes, %zu detections (%zu false),"
                " %zu undetected\n",
                casualties.size(), scenario.metrics().detections().size(),
                scenario.metrics().false_detections(), undetected);
    if (mobility != nullptr) {
      std::printf("mobility: %.0f m travelled in total\n",
                  mobility->total_distance());
    }
  }
  if (options.trace) {
    std::printf("\nframe mix:\n");
    for (const auto& [kind, stats] : tracer.by_kind()) {
      std::printf("  %-12s %10llu frames %12llu bytes\n", kind.c_str(),
                  static_cast<unsigned long long>(stats.frames),
                  static_cast<unsigned long long>(stats.bytes));
    }
  }
  return 0;
}
