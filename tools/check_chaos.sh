#!/bin/sh
# Chaos + determinism gate for the fault-injection engine (docs/FAULTS.md).
#
# Runs a campaign of seeded fault-injection trials — any invariant violation
# fails — then checks the two reproducibility contracts:
#
#   1. the campaign JSONL is byte-identical across thread counts
#   2. a trial replayed from its dumped FaultPlan file produces the same
#      summary as the trial that generated the plan
#
# Usage: tools/check_chaos.sh [build-dir] [trials]
#   defaults: build 100

set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"
trials="${2:-100}"

if [ ! -x "$build/bench/bench_chaos" ]; then
  echo "== configure + build $build"
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" --target bench_chaos >/dev/null
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== campaign: $trials trials, oracle must stay silent"
"$build/bench/bench_chaos" --trials "$trials" --seed 1 --threads 1 \
    --out "$tmp/campaign.t1.jsonl" --benchmark_filter=SKIPALL >/dev/null

echo "== determinism: campaign JSONL at --threads 1 vs --threads 8"
"$build/bench/bench_chaos" --trials "$trials" --seed 1 --threads 8 \
    --out "$tmp/campaign.t8.jsonl" --benchmark_filter=SKIPALL >/dev/null
if ! cmp -s "$tmp/campaign.t1.jsonl" "$tmp/campaign.t8.jsonl"; then
  echo "FAIL: campaign JSONL differs between thread counts" >&2
  diff "$tmp/campaign.t1.jsonl" "$tmp/campaign.t8.jsonl" >&2 || true
  exit 1
fi

echo "== determinism: replay a dumped plan byte for byte"
"$build/bench/bench_chaos" --trials 1 --seed 63 --dump-plans "$tmp" \
    --out "$tmp/direct.jsonl" --benchmark_filter=SKIPALL >/dev/null
"$build/bench/bench_chaos" --fault-plan "$tmp/plan_63.jsonl" --seed 63 \
    > "$tmp/replayed.jsonl"
if ! cmp -s "$tmp/direct.jsonl" "$tmp/replayed.jsonl"; then
  echo "FAIL: replayed plan produced a different summary" >&2
  diff "$tmp/direct.jsonl" "$tmp/replayed.jsonl" >&2 || true
  exit 1
fi

echo "OK: $trials trials clean, JSONL thread-independent, replay identical"
