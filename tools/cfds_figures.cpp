// cfds_figures — dumps the analytic series behind the paper's Figures 5, 6,
// and 7 (plus the reconstructed DCH-reachability study) as CSV, for
// plotting against the original figures.
//
//   cfds_figures            # all series to stdout
//   cfds_figures fig5       # one figure: fig5 | fig6 | fig7 | dch

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/dch_reachability.h"
#include "analysis/figures.h"

namespace {

using namespace cfds;

void dump_figure(const char* name, double (*measure)(double, int)) {
  std::printf("figure,p,n,value\n");
  for (int n : {50, 75, 100}) {
    for (int i = 0; i < analysis::sweep_points(); ++i) {
      const double p = analysis::sweep_p(i);
      std::printf("%s,%.2f,%d,%.10e\n", name, p, n, measure(p, n));
    }
  }
}

void dump_dch() {
  std::printf("study,p,d_over_r,n,p_out,p_reach_given_out,p_reach\n");
  for (double p : {0.1, 0.3}) {
    for (double frac : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
      for (int n : {20, 50, 75, 100}) {
        Rng rng(std::uint64_t(frac * 1000) ^ std::uint64_t(n) ^
                std::uint64_t(p * 100));
        const auto result =
            analysis::dch_reachability(100.0, 100.0 * frac, n, p, 400, rng);
        std::printf("dch,%.2f,%.2f,%d,%.6f,%.6f,%.6f\n", p, frac, n,
                    result.p_out_of_range, result.p_reachable_given_out,
                    result.p_reachable());
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  if (which == "fig5" || which == "all") {
    dump_figure("fig5", &analysis::false_detection_upper_bound);
  }
  if (which == "fig6" || which == "all") {
    dump_figure("fig6", &analysis::false_detection_on_ch);
  }
  if (which == "fig7" || which == "all") {
    dump_figure("fig7", &analysis::incompleteness_upper_bound);
  }
  if (which == "dch" || which == "all") {
    dump_dch();
  }
  if (which != "all" && which != "fig5" && which != "fig6" &&
      which != "fig7" && which != "dch") {
    std::fprintf(stderr, "usage: %s [all|fig5|fig6|fig7|dch]\n", argv[0]);
    return 2;
  }
  return 0;
}
