#!/usr/bin/env bash
# Self-validation harness for the model checker (docs/MODEL_CHECKING.md).
#
# Phase 1 drives the CLEAN tree through a battery of exploration configs and
# requires every one to finish inside its budget with zero violations.
#
# Phase 2 rebuilds the tree once per seeded protocol mutation
# (-DCFDS_MUTATION=<name>, see the guard sites in src/fds/agent.cpp,
# src/fds/detector.cpp, src/net/node.cpp) and requires cfds_check to KILL
# each mutant: exit 2, a counterexample trace, and a --replay of that trace
# that reproduces the violation and re-serializes byte-for-byte.
#
# A checker that misses a known-seeded bug is worse than no checker — it
# would bless broken protocol changes — so this script is the gate CI runs,
# not the exploration itself.
#
# Usage: tools/check_model.sh [clean-build-dir]
#   BUILD      clean build dir (default: ./build, created if missing)
#   MUT_BUILD  scratch dir for mutant builds (default: ./build-mutant)
#   JOBS       parallel build jobs (default: nproc)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${BUILD:-$ROOT/build}}"
MUT_BUILD="${MUT_BUILD:-$ROOT/build-mutant}"
JOBS="${JOBS:-$(nproc)}"
SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/check_model.XXXXXX")"
trap 'rm -rf "$SCRATCH"' EXIT

log() { printf '== %s\n' "$*"; }
die() { printf 'check_model: FAIL: %s\n' "$*" >&2; exit 1; }

log "clean build ($BUILD)"
cmake -B "$BUILD" -S "$ROOT" > "$SCRATCH/cmake.log" 2>&1 \
  || die "clean configure failed (see $SCRATCH/cmake.log)"
cmake --build "$BUILD" -j "$JOBS" --target cfds_check_tool \
  > "$SCRATCH/build.log" 2>&1 || { tail -30 "$SCRATCH/build.log" >&2;
  die "clean build failed"; }
CHECK="$BUILD/tools/cfds_check"

# ---------------------------------------------------------------------------
# Phase 1: the clean tree must explore every config to budget, violation-free.
# Configs mirror the mutant kill configs below plus the flag-gated extensions,
# so a clean-tree false positive in any of those state spaces fails here
# before the mutation phase can claim a vacuous kill.
CLEAN_CONFIGS=(
  "--nodes 3 --epochs 2"
  "--nodes 3 --epochs 2 --crashes 1 --recoveries 1"
  "--nodes 3 --epochs 2 --drops 2"
  "--nodes 3 --epochs 2 --crashes 1 --recoveries 1 --drops 2"
  "--nodes 3 --epochs 2 --crashes 1 --recoveries 1 --drops 2 --adaptive"
  "--nodes 3 --epochs 2 --crashes 1 --recoveries 1 --drops 2 --checkpoint"
  "--nodes 3 --epochs 3 --crashes 1 --recoveries 1 --checkpoint --checkpoint-interval 1"
  "--nodes 3 --epochs 2 --drops 3"
  "--nodes 3 --epochs 3 --drops 3"
  "--nodes 3 --epochs 2 --crashes 1 --drops 1 --no-reduction"
)
for config in "${CLEAN_CONFIGS[@]}"; do
  log "clean: cfds_check $config"
  # shellcheck disable=SC2086
  "$CHECK" $config --max-states 2000000 --max-runs 20000000 \
    || die "clean tree not clean under: $config"
done

# ---------------------------------------------------------------------------
# Phase 2: every seeded mutant must be killed, and its counterexample must
# replay. Entries are "mutation|kill config"; configs are the smallest state
# spaces known to reach each bug (see docs/MODEL_CHECKING.md for the
# scenarios).
MUTANTS=(
  "skip_incarnation_bump|--nodes 3 --epochs 2 --crashes 1 --recoveries 1"
  "drop_self_reconciliation|--nodes 3 --epochs 2 --crashes 1 --recoveries 1 --drops 2"
  "no_checkpoint_seq_guard|--nodes 3 --epochs 3 --crashes 1 --recoveries 1 --checkpoint --checkpoint-interval 1"
  "skip_rival_arbitration|--nodes 3 --epochs 3 --crashes 1 --recoveries 1 --checkpoint --checkpoint-interval 1"
  "detect_ignores_mentions|--nodes 3 --epochs 2 --drops 2"
  "deputy_ignores_ch_update|--nodes 3 --epochs 2 --drops 3"
  "admit_without_refute|--nodes 3 --epochs 3 --drops 3"
)

killed=0
for entry in "${MUTANTS[@]}"; do
  mutation="${entry%%|*}"
  config="${entry#*|}"
  log "mutant $mutation: build"
  cmake -B "$MUT_BUILD" -S "$ROOT" -DCFDS_MUTATION="$mutation" \
    > "$SCRATCH/$mutation.cmake.log" 2>&1 \
    || die "$mutation: configure failed"
  cmake --build "$MUT_BUILD" -j "$JOBS" --target cfds_check_tool \
    > "$SCRATCH/$mutation.build.log" 2>&1 \
    || { tail -30 "$SCRATCH/$mutation.build.log" >&2;
    die "$mutation: build failed"; }
  mcheck="$MUT_BUILD/tools/cfds_check"
  trace="$SCRATCH/$mutation.trace.jsonl"

  log "mutant $mutation: cfds_check $config"
  status=0
  # shellcheck disable=SC2086
  "$mcheck" $config --max-states 2000000 --max-runs 20000000 \
    --out "$trace" || status=$?
  [ "$status" -eq 2 ] || die "$mutation: NOT killed (exit $status)"
  [ -s "$trace" ] || die "$mutation: killed but no counterexample trace"

  replayed="$SCRATCH/$mutation.replay.jsonl"
  status=0
  "$mcheck" --replay "$trace" --out "$replayed" --quiet || status=$?
  [ "$status" -eq 2 ] || die "$mutation: counterexample did not replay (exit $status)"
  cmp -s "$trace" "$replayed" \
    || die "$mutation: replayed trace differs from the original"
  killed=$((killed + 1))
done

log "PASS: clean tree violation-free on ${#CLEAN_CONFIGS[@]} configs;" \
    "$killed/${#MUTANTS[@]} seeded mutants killed with replayable counterexamples"
