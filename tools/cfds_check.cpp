// cfds_check: exhaustive protocol state-space checker.
//
// Explore mode (default) enumerates every schedule of a bounded world —
// delivery order, per-frame drops, crashes and recoveries — within the
// given budgets, checking the safety invariants I-V1..I-V7 plus the
// quiescence probe at every crossing (src/check/world.h). On a violation
// it writes a JSONL counterexample trace (--out) and, optionally, the
// FaultPlan-schema tail alone (--plan) for bench_chaos --replay-plan.
//
// Replay mode (--replay FILE) re-executes a recorded trace: the world is
// rebuilt from the trace header's options and every choice point is pinned
// to the recording, so the violation reproduces deterministically. With
// --out the reproduced trace is re-serialized, which must match the
// original byte for byte (tools/check_model.sh relies on this).
//
// Exit codes: 0 = explored clean within budgets, 2 = violation found (or
// reproduced), 1 = usage or I/O error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "check/explorer.h"
#include "check/trace.h"
#include "check/world.h"

// Stamped by the build: the seeded-mutation name compiled into the
// protocol libraries, or "" for the clean tree (tools/check_model.sh).
#ifndef CFDS_MUTATION_NAME
#define CFDS_MUTATION_NAME ""
#endif

namespace {

using cfds::check::CheckOptions;
using cfds::check::CheckTrace;
using cfds::check::ExploreLimits;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  world:   --nodes N --deputies D --epochs E --perm-max P\n"
      "           --adaptive --checkpoint --checkpoint-interval I\n"
      "           --no-reduction --quiesce-max Q --t-hop-ms MS\n"
      "  faults:  --crashes C --recoveries R --drops K\n"
      "  budgets: --max-states S --max-runs R\n"
      "  output:  --out TRACE.jsonl --plan PLAN.jsonl --quiet\n"
      "  replay:  --replay TRACE.jsonl [--out COPY.jsonl]\n"
      "exit: 0 clean, 2 violation, 1 error\n",
      argv0);
  return 1;
}

bool parse_u32(const char* s, std::uint32_t* out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || v > 0xFFFFFFFFul) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return bool(out);
}

void describe(const cfds::check::Violation& v) {
  std::printf("VIOLATION %s at epoch %llu barrier %u: %s\n",
              v.invariant.c_str(), static_cast<unsigned long long>(v.epoch),
              v.barrier, v.detail.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CheckOptions opts;
  ExploreLimits limits;
  std::string out_path;
  std::string plan_path;
  std::string replay_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    bool ok = true;
    std::uint32_t ms = 0;
    if (std::strcmp(arg, "--nodes") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &opts.nodes);
    } else if (std::strcmp(arg, "--deputies") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &opts.deputies);
    } else if (std::strcmp(arg, "--epochs") == 0) {
      const char* v = value();
      ok = v && parse_u64(v, &opts.epochs);
    } else if (std::strcmp(arg, "--crashes") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &opts.max_crashes);
    } else if (std::strcmp(arg, "--recoveries") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &opts.max_recoveries);
    } else if (std::strcmp(arg, "--drops") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &opts.max_drops);
    } else if (std::strcmp(arg, "--perm-max") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &opts.perm_max);
    } else if (std::strcmp(arg, "--adaptive") == 0) {
      opts.adaptive = true;
    } else if (std::strcmp(arg, "--checkpoint") == 0) {
      opts.checkpoint = true;
    } else if (std::strcmp(arg, "--checkpoint-interval") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &opts.checkpoint_interval);
    } else if (std::strcmp(arg, "--no-reduction") == 0) {
      opts.reduction = false;
    } else if (std::strcmp(arg, "--quiesce-max") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &opts.quiesce_max);
    } else if (std::strcmp(arg, "--t-hop-ms") == 0) {
      const char* v = value();
      ok = v && parse_u32(v, &ms) && ms > 0;
      if (ok) opts.t_hop = cfds::SimTime::millis(ms);
    } else if (std::strcmp(arg, "--max-states") == 0) {
      const char* v = value();
      ok = v && parse_u64(v, &limits.max_states);
    } else if (std::strcmp(arg, "--max-runs") == 0) {
      const char* v = value();
      ok = v && parse_u64(v, &limits.max_runs);
    } else if (std::strcmp(arg, "--out") == 0) {
      const char* v = value();
      ok = v != nullptr;
      if (ok) out_path = v;
    } else if (std::strcmp(arg, "--plan") == 0) {
      const char* v = value();
      ok = v != nullptr;
      if (ok) plan_path = v;
    } else if (std::strcmp(arg, "--replay") == 0) {
      const char* v = value();
      ok = v != nullptr;
      if (ok) replay_path = v;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      return usage(argv[0]);
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s\n", arg);
      return usage(argv[0]);
    }
  }

  if (!replay_path.empty()) {
    std::string error;
    std::optional<CheckTrace> trace =
        cfds::check::load_trace(replay_path, &error);
    if (!trace) {
      std::fprintf(stderr, "cfds_check: %s\n", error.c_str());
      return 1;
    }
    if (trace->mutation != CFDS_MUTATION_NAME) {
      std::fprintf(stderr,
                   "cfds_check: warning: trace was recorded under mutation "
                   "'%s' but this build is '%s'\n",
                   trace->mutation.c_str(), CFDS_MUTATION_NAME);
    }
    const cfds::check::ReplayOutcome outcome =
        cfds::check::replay(trace->options, trace->choices);
    if (!outcome.error.empty()) {
      std::fprintf(stderr, "cfds_check: replay failed: %s\n",
                   outcome.error.c_str());
      return 1;
    }
    if (!outcome.violation) {
      std::fprintf(stderr,
                   "cfds_check: replay completed without a violation\n");
      return 1;
    }
    if (!quiet) describe(*outcome.violation);
    CheckTrace reproduced;
    reproduced.options = trace->options;
    reproduced.mutation = trace->mutation;
    reproduced.choices = trace->choices;
    reproduced.violation = outcome.violation;
    reproduced.fault_events = outcome.fault_events;
    if (!out_path.empty() &&
        !write_file(out_path, cfds::check::to_jsonl(reproduced))) {
      std::fprintf(stderr, "cfds_check: cannot write %s\n", out_path.c_str());
      return 1;
    }
    if (!plan_path.empty() &&
        !write_file(plan_path, cfds::check::fault_plan_jsonl(reproduced))) {
      std::fprintf(stderr, "cfds_check: cannot write %s\n", plan_path.c_str());
      return 1;
    }
    return 2;
  }

  const cfds::check::ExploreResult result = cfds::check::explore(opts, limits);
  if (!quiet) {
    std::printf("runs=%llu pruned=%llu unique_states=%llu%s\n",
                static_cast<unsigned long long>(result.runs),
                static_cast<unsigned long long>(result.pruned_runs),
                static_cast<unsigned long long>(result.unique_states),
                result.budget_exhausted ? " (budget exhausted)" : "");
  }
  if (!result.counterexample) {
    if (!quiet) std::printf("no violations\n");
    return 0;
  }

  const cfds::check::Counterexample& ce = *result.counterexample;
  if (!quiet) describe(ce.violation);
  CheckTrace trace;
  trace.options = opts;
  trace.mutation = CFDS_MUTATION_NAME;
  trace.choices = ce.choices;
  trace.violation = ce.violation;
  trace.fault_events = ce.fault_events;
  if (!out_path.empty() && !write_file(out_path, cfds::check::to_jsonl(trace))) {
    std::fprintf(stderr, "cfds_check: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!plan_path.empty() &&
      !write_file(plan_path, cfds::check::fault_plan_jsonl(trace))) {
    std::fprintf(stderr, "cfds_check: cannot write %s\n", plan_path.c_str());
    return 1;
  }
  return 2;
}
