#!/bin/sh
# ThreadSanitizer race gate (see docs/STATIC_ANALYSIS.md).
#
# Builds a -DCFDS_SANITIZE=thread tree and runs the code that actually
# crosses threads — the runner/executor/thread-pool tests, the event-kernel
# and fault/chaos suites they drive, the transport-seam tests plus a
# 16-thread loopback soak (concurrent senders vs. draining owners, the
# threading contract in src/transport/loopback.h), and a multi-threaded
# bench_fig5 smoke — then checks that the fig5 JSONL stays byte-identical
# across thread counts. Any reported race fails the script (halt_on_error).
#
# Usage: tools/check_tsan.sh [build-dir] [trials]
#   (defaults: build-tsan, 4000)

set -eu

cd "$(dirname "$0")/.."
dir="${1:-build-tsan}"
trials="${2:-4000}"

echo "== configure + build $dir (ThreadSanitizer)"
cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCFDS_SANITIZE=thread >/dev/null
cmake --build "$dir" -j "$(nproc)" \
    --target test_runner test_simulator test_fault test_transport cfds_cli \
             soak_harness bench_fig5_false_detection >/dev/null

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

echo "== runner / executor / thread-pool tests"
"$dir/tests/test_runner"
echo "== event-kernel tests"
"$dir/tests/test_simulator"
echo "== fault / chaos tests"
"$dir/tests/test_fault"
echo "== transport seam tests (loopback cross-thread exchange)"
"$dir/tests/test_transport"

echo "== loopback soak under TSan (16 threads, full chaos)"
"$dir/tools/soak_harness" --mode threads --n 16 --epochs 10 \
    --phi-ms 400 --warmup 2 --quiesce 5 --seed 7 --chaos full

echo "== loopback soak under TSan (adaptive + checkpointed recovery)"
"$dir/tools/soak_harness" --mode threads --n 16 --epochs 10 \
    --phi-ms 400 --warmup 2 --quiesce 5 --seed 11 --chaos full \
    --loss-p 0.05 --adaptive --checkpoint

echo "== multi-threaded bench_fig5 smoke (--threads 8)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
"$dir/bench/bench_fig5_false_detection" --trials "$trials" --threads 8 \
    --seed 7 --no-wall-time --out "$tmp/fig5.bench.jsonl" >/dev/null

echo "== determinism under TSan: fig5 JSONL at --threads 1 vs 8"
for threads in 1 8; do
  "$dir/tools/cfds_cli" --mc fig5 --cluster-n 20,30 \
      --trials "$trials" --threads "$threads" --seed 7 --no-wall-time \
      --out "$tmp/fig5.t$threads.jsonl" >/dev/null
done
if ! cmp -s "$tmp/fig5.t1.jsonl" "$tmp/fig5.t8.jsonl"; then
  echo "FAIL: fig5 JSONL differs between thread counts" >&2
  diff "$tmp/fig5.t1.jsonl" "$tmp/fig5.t8.jsonl" >&2 || true
  exit 1
fi

echo "OK: no races reported, fig5 JSONL byte-identical across threads"
