// cfds_serve: one FDS endpoint as a real process.
//
// Runs a single node of the cluster-based failure detection service over
// UDP loopback, against real time. A deployment is N of these processes
// (NIDs 0..N-1) sharing a --port-base and an --anchor-us instant so their
// epoch schedules align; tools/soak_harness --mode procs spawns and
// collects them. See docs/SERVICE.md.
//
// Exit status: 0 after the configured epochs complete and the status line
// is written; 64 on usage errors; 70 on runtime failures (bind, plan).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "fault/fault_plan.h"
#include "service/agent.h"
#include "service/config.h"
#include "transport/real_time.h"
#include "transport/udp.h"

namespace {

struct ServeOptions {
  std::uint32_t id = 0;
  bool id_set = false;
  cfds::service::ServiceConfig config;
  std::uint16_t port_base = 19000;
  std::int64_t anchor_us = 0;  ///< CLOCK_REALTIME µs of epoch 0; 0 = now+500ms
  std::string fault_plan_path;
  std::string status_out;  ///< empty = stdout
};

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --id N --n N [options]\n"
      << "  --id N             this endpoint's NID (0-based, required)\n"
      << "  --n N              deployment size (required)\n"
      << "  --cluster-size N   directory block size          [8]\n"
      << "  --port-base N      UDP port of NID 0             [19000]\n"
      << "  --thop-ms N        one-hop bound Thop            [50]\n"
      << "  --phi-ms N         heartbeat interval phi        [500]\n"
      << "  --epochs N         FDS executions to run         [10]\n"
      << "  --warmup N         epochs before the fault phase [2]\n"
      << "  --anchor-us N      CLOCK_REALTIME microseconds of epoch 0\n"
      << "                     (all endpoints must agree; default now+500ms)\n"
      << "  --fault-plan PATH  FaultPlan JSONL to inject     [none]\n"
      << "  --seed N           loss-stream seed              [1]\n"
      << "  --loss-p F         per-frame receive loss        [0]\n"
      << "  --adaptive         self-tuning accrual detection\n"
      << "  --checkpoint       checkpointed CH/DCH recovery\n"
      << "  --status-out PATH  status JSONL destination      [stdout]\n";
}

[[nodiscard]] std::int64_t realtime_now_us() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

bool parse_args(int argc, char** argv, ServeOptions* opt) {
  bool n_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--id" && (v = next())) {
      opt->id = std::uint32_t(std::stoul(v));
      opt->id_set = true;
    } else if (arg == "--n" && (v = next())) {
      opt->config.node_count = std::uint32_t(std::stoul(v));
      n_set = true;
    } else if (arg == "--cluster-size" && (v = next())) {
      opt->config.cluster_size = std::uint32_t(std::stoul(v));
    } else if (arg == "--port-base" && (v = next())) {
      opt->port_base = std::uint16_t(std::stoul(v));
    } else if (arg == "--thop-ms" && (v = next())) {
      opt->config.t_hop = cfds::SimTime::millis(std::stoll(v));
    } else if (arg == "--phi-ms" && (v = next())) {
      opt->config.phi = cfds::SimTime::millis(std::stoll(v));
    } else if (arg == "--epochs" && (v = next())) {
      opt->config.epochs = std::stoull(v);
    } else if (arg == "--warmup" && (v = next())) {
      opt->config.warmup_epochs = std::stoull(v);
    } else if (arg == "--anchor-us" && (v = next())) {
      opt->anchor_us = std::stoll(v);
    } else if (arg == "--fault-plan" && (v = next())) {
      opt->fault_plan_path = v;
    } else if (arg == "--seed" && (v = next())) {
      opt->config.seed = std::stoull(v);
    } else if (arg == "--loss-p" && (v = next())) {
      opt->config.loss_p = std::stod(v);
    } else if (arg == "--adaptive") {
      opt->config.adaptive = true;
    } else if (arg == "--checkpoint") {
      opt->config.checkpoint = true;
    } else if (arg == "--status-out" && (v = next())) {
      opt->status_out = v;
    } else {
      std::cerr << "unknown or incomplete option: " << arg << "\n";
      return false;
    }
  }
  if (!opt->id_set || !n_set) {
    std::cerr << "--id and --n are required\n";
    return false;
  }
  if (opt->id >= opt->config.node_count) {
    std::cerr << "--id must be < --n\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt;
  if (!parse_args(argc, argv, &opt)) {
    usage(argv[0]);
    return 64;
  }

  std::optional<cfds::fault::FaultPlan> plan;
  if (!opt.fault_plan_path.empty()) {
    std::string error;
    plan = cfds::fault::FaultPlan::load(opt.fault_plan_path, &error);
    if (!plan) {
      std::cerr << "cfds_serve: bad fault plan: " << error << "\n";
      return 70;
    }
  }

  try {
    // SimTime 0 on this endpoint's axis = "now" at scheduler construction;
    // the shared anchor instant maps to (anchor - now) on that axis, so all
    // endpoints start epoch 0 at the same real instant regardless of when
    // each process happened to launch.
    cfds::RealTimeScheduler scheduler;
    const std::int64_t anchor_us =
        opt.anchor_us != 0 ? opt.anchor_us : realtime_now_us() + 500'000;
    cfds::SimTime epoch0 =
        cfds::SimTime::micros(anchor_us - realtime_now_us());
    if (epoch0 < cfds::SimTime::millis(1)) {
      // Launched after the anchor (or with a stale one): a burst of
      // catch-up rounds would be meaningless, so shift to the next epoch
      // boundary this endpoint can still make.
      cfds::SimTime shifted = epoch0;
      while (shifted < cfds::SimTime::millis(1)) shifted += opt.config.phi;
      std::cerr << "cfds_serve[" << opt.id << "]: anchor in the past, "
                << "starting at the next epoch boundary\n";
      epoch0 = shifted;
    }

    cfds::UdpTransport transport(cfds::NodeId{opt.id}, opt.port_base,
                                 opt.config.node_count);
    cfds::service::ServiceAgent agent(opt.config, cfds::NodeId{opt.id},
                                      transport, scheduler);
    // Operational trace: every detection and takeover this endpoint decides,
    // one line each, so a soak post-mortem can attribute failure news to
    // its author. Assembled into one string so concurrent endpoints cannot
    // interleave mid-line on a shared stderr.
    agent.hooks().on_detection = [&opt](cfds::NodeId decider,
                                        std::uint64_t epoch,
                                        const std::vector<cfds::NodeId>& failed,
                                        bool by_deputy) {
      std::string line = "cfds_serve[" + std::to_string(opt.id) +
                         "]: epoch " + std::to_string(epoch) +
                         (by_deputy ? " deputy" : "") + " detected";
      for (cfds::NodeId f : failed) line += ' ' + std::to_string(f.value());
      line += '\n';
      std::cerr << line;
      (void)decider;
    };
    agent.hooks().on_takeover = [&opt](cfds::NodeId deputy, cfds::NodeId old_ch,
                                       std::uint64_t epoch) {
      std::string line = "cfds_serve[" + std::to_string(opt.id) +
                         "]: epoch " + std::to_string(epoch) + " takeover of " +
                         std::to_string(old_ch.value()) + "\n";
      std::cerr << line;
      (void)deputy;
    };
    agent.start(epoch0, plan ? &*plan : nullptr);

    const cfds::SimTime max_wait = cfds::SimTime::millis(100);
    while (!agent.done()) {
      cfds::SimTime deadline;
      cfds::SimTime wait = max_wait;
      if (scheduler.next_deadline(&deadline)) {
        wait = deadline - scheduler.now();
        if (wait > max_wait) wait = max_wait;
        if (wait < cfds::SimTime::zero()) wait = cfds::SimTime::zero();
      }
      if (transport.wait(wait)) transport.drain(scheduler.now());
      scheduler.run_due();
    }

    const std::string line = agent.status().to_json();
    if (opt.status_out.empty()) {
      std::cout << line << "\n";
    } else {
      std::ofstream out(opt.status_out, std::ios::trunc);
      if (!out) {
        std::cerr << "cfds_serve: cannot write " << opt.status_out << "\n";
        return 70;
      }
      out << line << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "cfds_serve[" << opt.id << "]: " << e.what() << "\n";
    return 70;
  }
}
