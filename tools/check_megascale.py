#!/usr/bin/env python3
"""Gate a fresh bench_megascale run against the committed baseline.

Usage:
  tools/check_megascale.py --fresh RUN.jsonl [--baseline BENCH_megascale.json]
                           [--n 100000] [--floor-ratio 0.25] [--ceil-ratio 2.0]

Reads BenchRecord JSONL rows ({"bench":"megascale","metric":...,"n":...,
"value":...,"label":...}) from both files and asserts, for the chosen decade:

  fresh events_per_sec >= floor-ratio * committed events_per_sec
  fresh bytes_per_node <= ceil-ratio  * committed bytes_per_node

The ratios are deliberately loose: CI machines differ from the machine that
captured the baseline, and the gate exists to catch order-of-magnitude
regressions (an accidental O(n) sweep, a reintroduced per-epoch allocation
storm), not 10% noise. Tighten them only with a baseline captured on the CI
machine class itself.
"""

import argparse
import json
import sys


def load_rows(path, n):
    rows = {}
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("bench") != "megascale" or rec.get("n") != n:
                    continue
                # Last row wins: reruns append, and the freshest capture is
                # the one the label refers to.
                rows[rec["metric"]] = float(rec["value"])
    except OSError as err:
        sys.exit(f"check_megascale: cannot read {path}: {err}")
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--fresh", required=True, help="JSONL from this run")
    ap.add_argument("--baseline", default="BENCH_megascale.json")
    ap.add_argument("--n", type=int, default=100_000)
    ap.add_argument("--floor-ratio", type=float, default=0.25)
    ap.add_argument("--ceil-ratio", type=float, default=2.0)
    args = ap.parse_args()

    committed = load_rows(args.baseline, args.n)
    fresh = load_rows(args.fresh, args.n)
    for metric in ("events_per_sec", "bytes_per_node"):
        if metric not in committed:
            sys.exit(f"check_megascale: no committed {metric} row for "
                     f"n={args.n} in {args.baseline}")
        if metric not in fresh:
            sys.exit(f"check_megascale: no fresh {metric} row for "
                     f"n={args.n} in {args.fresh}")

    failures = []
    floor = args.floor_ratio * committed["events_per_sec"]
    if fresh["events_per_sec"] < floor:
        failures.append(
            f"events_per_sec {fresh['events_per_sec']:.0f} < floor "
            f"{floor:.0f} ({args.floor_ratio} x committed "
            f"{committed['events_per_sec']:.0f})")
    ceil = args.ceil_ratio * committed["bytes_per_node"]
    if fresh["bytes_per_node"] > ceil:
        failures.append(
            f"bytes_per_node {fresh['bytes_per_node']:.0f} > ceiling "
            f"{ceil:.0f} ({args.ceil_ratio} x committed "
            f"{committed['bytes_per_node']:.0f})")

    print(f"check_megascale: n={args.n}")
    print(f"  events_per_sec: fresh {fresh['events_per_sec']:.0f}  "
          f"committed {committed['events_per_sec']:.0f}  floor {floor:.0f}")
    print(f"  bytes_per_node: fresh {fresh['bytes_per_node']:.0f}  "
          f"committed {committed['bytes_per_node']:.0f}  ceiling {ceil:.0f}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("check_megascale: OK")


if __name__ == "__main__":
    main()
