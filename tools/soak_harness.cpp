// soak_harness: drives a live service-mode deployment and checks the live
// invariants L-I1..L-I5 when it settles.
//
//   --mode threads   N in-process endpoints, one thread each, exchanging
//                    wire-encoded frames through LoopbackTransport queues.
//                    This is the TSan target (tools/check_tsan.sh) and the
//                    service_smoke ctest.
//   --mode procs     N cfds_serve processes exchanging UDP datagrams on
//                    127.0.0.1, epoch schedules aligned by a shared
//                    --anchor-us. This is the 200-process soak of the CI
//                    soak job.
//
// In both modes the harness generates a seeded FaultPlan (crashes,
// recoveries, freezes, link_down windows, jams, clock drift) whose windows
// all close before a quiescence tail of fault-free epochs, then collects
// every endpoint's status line and runs the live invariant checker. Exit
// status: 0 clean, 1 invariant violations or endpoint failures, 64 usage,
// 70 setup errors.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <chrono>
#include <map>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_plan.h"
#include "service/agent.h"
#include "service/config.h"
#include "service/directory.h"
#include "service/status.h"
#include "transport/loopback.h"
#include "transport/real_time.h"

namespace {

using cfds::NodeId;
using cfds::SimTime;
using cfds::service::AgentStatus;
using cfds::service::ServiceConfig;

struct SoakOptions {
  std::string mode = "threads";
  ServiceConfig config;
  std::uint64_t quiesce_epochs = 6;  ///< guaranteed fault-free tail
  bool faults = true;
  std::string chaos = "crash";  ///< "crash" or "full" event mix
  std::uint16_t port_base = 19000;
  std::string out_dir = "/tmp";
  std::string serve_bin;  ///< procs mode; default: <argv0 dir>/cfds_serve
};

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --mode threads|procs  deployment style            [threads]\n"
      << "  --n N                 endpoints                   [16]\n"
      << "  --cluster-size N      directory block size        [8]\n"
      << "  --thop-ms N           one-hop bound Thop          [50]\n"
      << "  --phi-ms N            heartbeat interval phi      [500]\n"
      << "  --epochs N            total FDS executions        [10]\n"
      << "  --warmup N            epochs before fault phase   [2]\n"
      << "  --quiesce N           fault-free tail epochs      [6]\n"
      << "  --seed N              plan + loss seed            [1]\n"
      << "  --loss-p F            per-frame receive loss      [0]\n"
      << "  --chaos crash|full    fault mix: crashes/recoveries plus\n"
      << "                        clock drift (crash), or additionally\n"
      << "                        freezes, link cuts, and jams (full)\n"
      << "                                                    [crash]\n"
      << "  --adaptive            self-tuning accrual detection\n"
      << "  --checkpoint          checkpointed CH/DCH recovery\n"
      << "  --no-faults           skip fault injection\n"
      << "  --port-base N         procs mode UDP ports        [19000]\n"
      << "  --out-dir PATH        procs mode scratch files    [/tmp]\n"
      << "  --serve-bin PATH      procs mode daemon binary\n";
}

bool parse_args(int argc, char** argv, SoakOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--mode" && (v = next())) {
      opt->mode = v;
    } else if (arg == "--n" && (v = next())) {
      opt->config.node_count = std::uint32_t(std::stoul(v));
    } else if (arg == "--cluster-size" && (v = next())) {
      opt->config.cluster_size = std::uint32_t(std::stoul(v));
    } else if (arg == "--thop-ms" && (v = next())) {
      opt->config.t_hop = SimTime::millis(std::stoll(v));
    } else if (arg == "--phi-ms" && (v = next())) {
      opt->config.phi = SimTime::millis(std::stoll(v));
    } else if (arg == "--epochs" && (v = next())) {
      opt->config.epochs = std::stoull(v);
    } else if (arg == "--warmup" && (v = next())) {
      opt->config.warmup_epochs = std::stoull(v);
    } else if (arg == "--quiesce" && (v = next())) {
      opt->quiesce_epochs = std::stoull(v);
    } else if (arg == "--seed" && (v = next())) {
      opt->config.seed = std::stoull(v);
    } else if (arg == "--loss-p" && (v = next())) {
      opt->config.loss_p = std::stod(v);
    } else if (arg == "--chaos" && (v = next())) {
      opt->chaos = v;
    } else if (arg == "--adaptive") {
      opt->config.adaptive = true;
    } else if (arg == "--checkpoint") {
      opt->config.checkpoint = true;
    } else if (arg == "--no-faults") {
      opt->faults = false;
    } else if (arg == "--port-base" && (v = next())) {
      opt->port_base = std::uint16_t(std::stoul(v));
    } else if (arg == "--out-dir" && (v = next())) {
      opt->out_dir = v;
    } else if (arg == "--serve-bin" && (v = next())) {
      opt->serve_bin = v;
    } else {
      std::cerr << "unknown or incomplete option: " << arg << "\n";
      return false;
    }
  }
  if (opt->mode != "threads" && opt->mode != "procs") {
    std::cerr << "--mode must be threads or procs\n";
    return false;
  }
  if (opt->chaos != "crash" && opt->chaos != "full") {
    std::cerr << "--chaos must be crash or full\n";
    return false;
  }
  return true;
}

/// A seeded plan whose windows all close before the quiescence tail.
std::optional<cfds::fault::FaultPlan> make_plan(const SoakOptions& opt) {
  if (!opt.faults) return std::nullopt;
  const std::uint64_t reserved = opt.config.warmup_epochs + opt.quiesce_epochs;
  if (opt.config.epochs <= reserved + 1) {
    std::cerr << "soak: too few epochs for a fault phase, running fault-free\n";
    return std::nullopt;
  }
  cfds::fault::ChaosProfile profile;
  profile.node_count = opt.config.node_count;
  // Jam placement over the directory grid's extent.
  const cfds::Vec2 far = cfds::service::directory_position(
      NodeId{opt.config.node_count - 1}, opt.config.node_count);
  profile.width = far.x + cfds::service::kGridPitch;
  profile.height = far.y + cfds::service::kGridPitch;
  profile.range = 4 * cfds::service::kGridPitch;
  profile.epoch_interval = opt.config.phi;
  profile.fault_epochs = opt.config.epochs - reserved;
  // Scale the event mix with deployment size. The default "crash" mix is
  // the deployment's real failure modes — process crashes/recoveries and
  // clock drift, on top of --loss-p receive loss. "full" adds the radio
  // conditions (freezes, link cuts, jam disks); those partition the single
  // broadcast domain the directory clustering assumes, so they are suited
  // to small deployments and robustness probing, not the invariant gate.
  const int scale = int(opt.config.node_count / 16) + 1;
  profile.crashes = 3 * scale;
  profile.freezes = opt.chaos == "full" ? 2 * scale : 0;
  profile.link_downs = opt.chaos == "full" ? 2 * scale : 0;
  profile.jams = opt.chaos == "full" ? 1 : 0;
  profile.clock_drifts = scale;
  return cfds::fault::FaultPlan::random(opt.config.seed, profile);
}

/// Deployment-wide detection latency: for each planned crash victim, the
/// minimum latency sample over every endpoint that rendered a verdict (the
/// first decider's sample is the deployment's detection time). Sorted
/// ascending for the quantile cuts.
std::vector<std::uint32_t> merge_detect_ms(
    const std::vector<AgentStatus>& statuses) {
  std::map<std::uint32_t, std::uint32_t> best;
  for (const AgentStatus& s : statuses) {
    const std::size_t n = std::min(s.detect_node.size(), s.detect_ms.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] =
          best.emplace(s.detect_node[i], s.detect_ms[i]);
      if (!inserted && s.detect_ms[i] < it->second) {
        it->second = s.detect_ms[i];
      }
    }
  }
  std::vector<std::uint32_t> samples;
  samples.reserve(best.size());
  for (const auto& [victim, ms] : best) samples.push_back(ms);
  std::sort(samples.begin(), samples.end());
  return samples;
}

int report(const std::vector<AgentStatus>& statuses, std::size_t expected) {
  std::size_t alive = 0, heads = 0;
  for (const AgentStatus& s : statuses) {
    if (s.alive) ++alive;
    if (s.alive && s.is_clusterhead) ++heads;
  }
  std::cout << "soak: " << statuses.size() << "/" << expected
            << " statuses, " << alive << " alive, " << heads
            << " acting clusterheads\n";
  const std::vector<std::uint32_t> detect = merge_detect_ms(statuses);
  if (!detect.empty()) {
    auto quantile = [&detect](double q) {
      const std::size_t at = std::size_t(q * double(detect.size() - 1) + 0.5);
      return detect[std::min(at, detect.size() - 1)];
    };
    std::cout << "soak: detection latency over " << detect.size()
              << " victim(s): p50 " << quantile(0.5) << " ms, p95 "
              << quantile(0.95) << " ms, max " << detect.back() << " ms\n";
  }
  int rc = 0;
  if (statuses.size() != expected) {
    std::cout << "soak: FAIL missing statuses\n";
    rc = 1;
  }
  const std::vector<std::string> violations =
      cfds::service::check_live_invariants(statuses);
  for (const std::string& v : violations) {
    std::cout << "soak: VIOLATION " << v << "\n";
  }
  if (!violations.empty()) {
    rc = 1;
    // Post-mortem context: every acting head's roster and every stray
    // (alive, unaffiliated, not departed) endpoint's state, so a violation
    // is debuggable from the log alone.
    for (const AgentStatus& s : statuses) {
      if (!s.alive || !s.is_clusterhead) continue;
      std::cout << "soak:   head " << s.node << " cluster " << s.cluster
                << " epoch " << s.epoch << " members";
      for (std::uint32_t m : s.members) std::cout << ' ' << m;
      std::cout << " | subscribers";
      for (std::uint32_t sub : s.subscribers) std::cout << ' ' << sub;
      std::cout << "\n";
    }
    for (const AgentStatus& s : statuses) {
      if (!s.alive || s.is_clusterhead || s.affiliated || s.left) continue;
      std::cout << "soak:   stray " << s.node << " epoch " << s.epoch
                << " marked " << (s.marked ? 1 : 0) << " overheard "
                << s.updates_overheard << " offers " << s.admit_offers
                << " last_offer " << s.last_offer_epoch << " hb_sent "
                << s.hb_sent << " unmarked_sent " << s.unmarked_sent
                << " last_unmarked " << s.last_unmarked_epoch << "\n";
    }
    // Every endpoint's own detection verdicts, so a latency outlier or a
    // missing detection is attributable to a specific decider.
    for (const AgentStatus& s : statuses) {
      if (s.detect_node.empty()) continue;
      std::cout << "soak:   detections by " << s.node;
      const std::size_t n = std::min(s.detect_node.size(), s.detect_ms.size());
      for (std::size_t i = 0; i < n; ++i) {
        std::cout << ' ' << s.detect_node[i] << ':' << s.detect_ms[i] << "ms";
      }
      std::cout << "\n";
    }
    // Everyone who churned near the end of the run, with the per-cause
    // revert counters (missed/fresh/stale/roster/rival — see
    // FdsAgent::RevertCause) and the newest revert's epoch and cause.
    for (const AgentStatus& s : statuses) {
      if (!s.alive || s.reverts.empty()) continue;
      if (s.last_revert_epoch + 15 < s.epoch) continue;
      std::cout << "soak:   churn " << s.node << " reverts";
      for (std::uint32_t count : s.reverts) std::cout << ' ' << count;
      std::cout << " last_revert " << s.last_revert_epoch << " cause "
                << s.last_revert_cause << "\n";
    }
  }
  if (rc == 0) std::cout << "soak: PASS invariants I1-I5 hold\n";
  return rc;
}

int run_threads(const SoakOptions& opt,
                const std::optional<cfds::fault::FaultPlan>& plan) {
  const std::uint32_t n = opt.config.node_count;
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.push_back(NodeId{i});
  cfds::LoopbackNet net(ids);

  // Construct every endpoint before any thread starts: schedulers anchor
  // their SimTime axes within microseconds of each other, far inside Thop.
  struct Endpoint {
    cfds::RealTimeScheduler scheduler;
    cfds::LoopbackTransport transport;
    cfds::service::ServiceAgent agent;
    Endpoint(cfds::LoopbackNet& net, NodeId id, const ServiceConfig& config)
        : transport(net, id), agent(config, id, transport, scheduler) {}
  };
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  endpoints.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    endpoints.push_back(
        std::make_unique<Endpoint>(net, NodeId{i}, opt.config));
    endpoints.back()->agent.start(SimTime::millis(300),
                                  plan ? &*plan : nullptr);
  }

  const SimTime max_wait = SimTime::millis(100);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (auto& ep_ptr : endpoints) {
    threads.emplace_back([&max_wait, ep = ep_ptr.get()] {
      while (!ep->agent.done()) {
        SimTime deadline;
        SimTime wait = max_wait;
        if (ep->scheduler.next_deadline(&deadline)) {
          wait = deadline - ep->scheduler.now();
          if (wait > max_wait) wait = max_wait;
        }
        if (wait > SimTime::zero()) ep->transport.wait(wait);
        ep->transport.drain(ep->scheduler.now());
        ep->scheduler.run_due();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<AgentStatus> statuses;
  statuses.reserve(n);
  for (auto& ep : endpoints) statuses.push_back(ep->agent.status());
  return report(statuses, n);
}

int run_procs(const SoakOptions& opt,
              const std::optional<cfds::fault::FaultPlan>& plan,
              const char* argv0) {
  const std::uint32_t n = opt.config.node_count;
  std::string serve = opt.serve_bin;
  if (serve.empty()) {
    const std::string self = argv0;
    const std::size_t slash = self.rfind('/');
    serve = (slash == std::string::npos ? std::string(".")
                                        : self.substr(0, slash)) +
            "/cfds_serve";
  }

  std::string plan_path;
  if (plan) {
    plan_path = opt.out_dir + "/soak_plan." + std::to_string(::getpid()) +
                ".jsonl";
    std::ofstream out(plan_path, std::ios::trunc);
    if (!out) {
      std::cerr << "soak: cannot write " << plan_path << "\n";
      return 70;
    }
    out << plan->to_jsonl();
  }

  // Shared anchor: enough lead for every fork+exec to finish first.
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const std::int64_t anchor_us =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count() +
      2'000'000 + std::int64_t(n) * 5'000;

  auto status_path = [&opt](std::uint32_t id) {
    return opt.out_dir + "/soak_status." + std::to_string(::getpid()) + "." +
           std::to_string(id) + ".jsonl";
  };

  std::vector<pid_t> pids;
  pids.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    std::vector<std::string> args = {
        serve,
        "--id", std::to_string(id),
        "--n", std::to_string(n),
        "--cluster-size", std::to_string(opt.config.cluster_size),
        "--port-base", std::to_string(opt.port_base),
        "--thop-ms", std::to_string(opt.config.t_hop.as_micros() / 1000),
        "--phi-ms", std::to_string(opt.config.phi.as_micros() / 1000),
        "--epochs", std::to_string(opt.config.epochs),
        "--warmup", std::to_string(opt.config.warmup_epochs),
        "--anchor-us", std::to_string(anchor_us),
        "--seed", std::to_string(opt.config.seed),
        "--loss-p", std::to_string(opt.config.loss_p),
        "--status-out", status_path(id),
    };
    if (opt.config.adaptive) args.push_back("--adaptive");
    if (opt.config.checkpoint) args.push_back("--checkpoint");
    if (!plan_path.empty()) {
      args.push_back("--fault-plan");
      args.push_back(plan_path);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "soak: fork failed\n";
      return 70;
    }
    if (pid == 0) {
      ::execv(serve.c_str(), argv.data());
      std::cerr << "soak: exec " << serve << " failed\n";
      std::_Exit(127);
    }
    pids.push_back(pid);
  }
  std::cout << "soak: " << n << " cfds_serve processes launched ("
            << opt.config.epochs << " epochs of "
            << opt.config.phi.as_micros() / 1000 << " ms)\n";

  int rc = 0;
  std::size_t clean_exits = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      rc = 1;
      continue;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      ++clean_exits;
    } else {
      rc = 1;
    }
  }
  if (clean_exits != pids.size()) {
    std::cout << "soak: FAIL " << (pids.size() - clean_exits)
              << " endpoints exited non-zero\n";
  }

  std::vector<AgentStatus> statuses;
  statuses.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    std::ifstream in(status_path(id));
    std::string line;
    if (in && std::getline(in, line)) {
      if (auto parsed = AgentStatus::parse(line)) {
        statuses.push_back(*parsed);
      } else {
        std::cout << "soak: unparseable status from endpoint " << id << "\n";
      }
    }
    (void)::unlink(status_path(id).c_str());
  }
  if (!plan_path.empty()) (void)::unlink(plan_path.c_str());

  const int inv_rc = report(statuses, n);
  return rc != 0 ? rc : inv_rc;
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions opt;
  if (!parse_args(argc, argv, &opt)) {
    usage(argv[0]);
    return 64;
  }
  const std::optional<cfds::fault::FaultPlan> plan = make_plan(opt);
  if (plan) {
    std::cout << "soak: fault plan (seed " << opt.config.seed << "): "
              << plan->events.size() << " events\n";
  }
  if (opt.mode == "threads") return run_threads(opt, plan);
  return run_procs(opt, plan, argv[0]);
}
