#!/bin/sh
# Full-size chaos campaign (see docs/FAULTS.md).
#
# Runs bench_chaos for TRIALS seeded fault-injection trials and writes one
# JSONL summary line per trial. Any invariant violation makes bench_chaos
# exit nonzero after writing the offending plan to plan_<seed>.fail.jsonl
# next to the output — replay it with
#
#   bench_chaos --fault-plan plan_<seed>.fail.jsonl --seed <seed>
#
# Usage: tools/chaos_campaign.sh [build-dir] [trials] [base-seed] [out.jsonl]
#   defaults: build 500 1 chaos_campaign.jsonl

set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"
trials="${2:-500}"
seed="${3:-1}"
out="${4:-chaos_campaign.jsonl}"

if [ ! -x "$build/bench/bench_chaos" ]; then
  echo "building bench_chaos in $build"
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" --target bench_chaos >/dev/null
fi

"./$build/bench/bench_chaos" --trials "$trials" --seed "$seed" \
    --out "$out" --benchmark_filter=SKIPALL
echo "campaign summaries in $out"
