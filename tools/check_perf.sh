#!/bin/sh
# Perf + determinism gate for the simulator hot paths (see docs/PERF.md).
#
# Builds a Release tree and a ThreadSanitizer tree, runs the smoke-sized
# bench_kernel study under both (catching crashes, CFDS_EXPECT aborts, and
# data races on the schedule/cancel/fire paths), then checks that the fig5
# Monte-Carlo JSONL is byte-identical across thread counts AND across event
# queue implementations (calendar queue vs the --no-calendar binary heap),
# and finally gates the megascale n=10^5 decade (events/s floor, bytes/node
# ceiling) against the committed BENCH_megascale.json baseline.
#
# Usage: tools/check_perf.sh [build-dir-prefix]
#   Build trees land in <prefix>-release/ and <prefix>-tsan/
#   (default prefix: build-perf).

set -eu

cd "$(dirname "$0")/.."
prefix="${1:-build-perf}"

build() {
  dir="$1"
  shift
  echo "== configure + build $dir"
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$(nproc)" --target bench_kernel cfds_cli >/dev/null
}

build "$prefix-release" -DCMAKE_BUILD_TYPE=Release
cmake --build "$prefix-release" -j "$(nproc)" --target bench_megascale \
    bench_scalability >/dev/null
build "$prefix-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCFDS_SANITIZE=thread

echo "== smoke bench (Release)"
"./$prefix-release/bench/bench_kernel" --trials 10 \
    --benchmark_filter=SKIPALL >/dev/null
echo "== smoke bench (ThreadSanitizer)"
"./$prefix-tsan/bench/bench_kernel" --trials 10 \
    --benchmark_filter=SKIPALL >/dev/null

echo "== determinism: fig5 JSONL at --threads 1 vs --threads 8"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for threads in 1 8; do
  "./$prefix-release/tools/cfds_cli" --mc fig5 --cluster-n 20,30 \
      --trials 4000 --threads "$threads" --seed 7 --no-wall-time \
      --out "$tmp/fig5.t$threads.jsonl"
done
if ! cmp -s "$tmp/fig5.t1.jsonl" "$tmp/fig5.t8.jsonl"; then
  echo "FAIL: fig5 JSONL differs between thread counts" >&2
  diff "$tmp/fig5.t1.jsonl" "$tmp/fig5.t8.jsonl" >&2 || true
  exit 1
fi

echo "== determinism: fig5 JSONL calendar queue vs --no-calendar heap"
"./$prefix-release/tools/cfds_cli" --mc fig5 --cluster-n 20,30 \
    --trials 4000 --threads 8 --seed 7 --no-wall-time --no-calendar \
    --out "$tmp/fig5.heap.jsonl"
if ! cmp -s "$tmp/fig5.t8.jsonl" "$tmp/fig5.heap.jsonl"; then
  echo "FAIL: fig5 JSONL differs between calendar and heap queues" >&2
  diff "$tmp/fig5.t8.jsonl" "$tmp/fig5.heap.jsonl" >&2 || true
  exit 1
fi

echo "== megascale: n=10^5 decade vs committed BENCH_megascale.json"
"./$prefix-release/bench/bench_megascale" --max-nodes 100000 \
    --threads 1 --out "$tmp/megascale.jsonl" --no-wall-time
python3 tools/check_megascale.py --fresh "$tmp/megascale.jsonl"

echo "OK: smoke benches passed, fig5 JSONL byte-identical across threads" \
     "and queue implementations, megascale within floor/ceiling"
