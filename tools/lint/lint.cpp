#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace cfds::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preparation

/// Replaces comments, string literals, and char literals with spaces while
/// preserving newlines, so pattern matching never fires inside prose or
/// payload text. Raw string literals are handled for the common R"( ... )"
/// and R"delim( ... )delim" forms.
std::string sanitize(const std::string& src) {
  std::string out = src;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto blank = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < n; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    const char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim"
      std::size_t open = src.find('(', i + 2);
      if (open == std::string::npos) {
        ++i;
        continue;
      }
      const std::string delim = src.substr(i + 2, open - (i + 2));
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, open + 1);
      end = (end == std::string::npos) ? n : end + closer.size();
      blank(i, end);
      i = end;
    } else if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"' && src[j] != '\n') {
        if (src[j] == '\\') ++j;
        ++j;
      }
      blank(i, j + 1);
      i = (j < n) ? j + 1 : n;
    } else if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'' && src[j] != '\n') {
        if (src[j] == '\\') ++j;
        ++j;
      }
      // Digit separators (1'000'000) parse as empty/odd char literals; the
      // blanked span is still literal text, so nothing of interest is lost.
      blank(i, j + 1);
      i = (j < n) ? j + 1 : n;
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Suppression

/// True when `LINT-ALLOW(<list>)` on this or the previous raw line names the
/// rule (or `*`). The marker lives in a comment, so raw (unsanitized) lines
/// are consulted.
bool allowed(const std::vector<std::string>& raw_lines, std::size_t idx,
             const std::string& rule) {
  static const std::regex kAllow(R"(LINT-ALLOW\(([^)]*)\))");
  for (std::size_t k = (idx == 0) ? 0 : idx - 1; k <= idx; ++k) {
    std::smatch m;
    if (!std::regex_search(raw_lines[k], m, kAllow)) continue;
    std::stringstream list(m[1].str());
    std::string item;
    while (std::getline(list, item, ',')) {
      item = trim(item);
      if (item == rule || item == "*") return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rules

bool in_hot_path(const std::string& path) {
  static const char* kHotDirs[] = {"src/event/", "src/net/", "src/radio/",
                                   "src/fds/", "src/cluster/"};
  for (const char* dir : kHotDirs) {
    if (path.find(dir) != std::string::npos) return true;
  }
  return false;
}

/// Identifiers declared with an unordered container type anywhere in the
/// file (members, locals, globals). Heuristic by design: declarations and
/// their uses are matched by name within a single file, which covers the
/// way the codebase actually writes them.
std::vector<std::string> unordered_names(const std::string& sanitized) {
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<[^;{}()]*>\s+([A-Za-z_]\w*)\s*[;={(])");
  std::vector<std::string> names;
  auto begin = std::sregex_iterator(sanitized.begin(), sanitized.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    names.push_back((*it)[1].str());
  }
  return names;
}

struct LineRule {
  const char* rule;
  std::regex pattern;
  // Empty means the rule applies everywhere under the scanned roots.
  bool (*applies)(const std::string& path);
};

const std::vector<LineRule>& line_rules() {
  static const std::vector<LineRule> kRules = [] {
    std::vector<LineRule> rules;
    rules.push_back(
        {"wall-clock",
         std::regex(R"(\btime\s*\(|system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime|\blocaltime\b|\bgmtime\b)"),
         [](const std::string& path) {
           // real_time.h is the one sanctioned bridge between SimTime and
           // the monotonic clock (service mode's scheduler).
           return !ends_with(path, "common/sim_time.h") &&
                  path.find("src/transport/real_time") == std::string::npos;
         }});
    rules.push_back(
        {"raw-socket",
         std::regex(
             R"(\bsocket\s*\(|\bsendto\s*\(|\brecvfrom\s*\(|\bsendmsg\s*\(|\brecvmsg\s*\(|\bsetsockopt\s*\(|\bgetsockname\s*\(|\bepoll_\w+\s*\(|\bppoll\s*\(|[<"]sys/socket\.h[">]|[<"]netinet/|[<"]sys/epoll\.h[">]|[<"]arpa/inet\.h[">]|[<"]poll\.h[">])"),
         [](const std::string& path) {
           return path.find("src/transport/") == std::string::npos;
         }});
    rules.push_back(
        {"raw-random",
         std::regex(R"(std::rand\b|\bsrand\s*\(|\brand\s*\(|random_device)"),
         [](const std::string& path) {
           return !ends_with(path, "common/rng.h");
         }});
    rules.push_back({"pointer-keyed-map",
                     std::regex(R"(std::(?:map|set)\s*<[^<>,]*\*)"),
                     [](const std::string&) { return true; }});
    rules.push_back({"dynamic-cast", std::regex(R"(\bdynamic_cast\b)"),
                     [](const std::string&) { return true; }});
    rules.push_back(
        {"naked-new",
         std::regex(
             R"(\bnew\s+[A-Za-z_:]|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bfree\s*\()"),
         in_hot_path});
    rules.push_back({"raw-assert",
                     std::regex(R"(\bassert\s*\(|[<"]c?assert(?:\.h)?[">])"),
                     [](const std::string&) { return true; }});
    rules.push_back(
        {"float-in-estimator",
         std::regex(R"(\b(?:float|double)\b)"),
         [](const std::string& path) {
           // The adaptive-detection arithmetic (loss EWMA, milli_log10
           // surprisal, accrual products) must stay integer/fixed-point:
           // floating point rounds differently across -ffast-math,
           // -mfma and architectures, and a one-milli disagreement
           // between a CH and a deputy splits their failure verdicts.
           return path.find("src/fds/link_quality") != std::string::npos ||
                  path.find("src/fds/detector") != std::string::npos;
         }});
    return rules;
  }();
  return kRules;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scanning

std::vector<Violation> scan_source(const std::string& path,
                                   const std::string& content,
                                   const std::string& companion_header,
                                   const std::string& fingerprint_tu) {
  std::vector<Violation> out;
  const std::string sanitized = sanitize(content);
  const std::vector<std::string> raw = split_lines(content);
  const std::vector<std::string> clean = split_lines(sanitized);

  auto emit = [&](const char* rule, std::size_t idx) {
    if (allowed(raw, idx, rule)) return;
    out.push_back({rule, path, static_cast<int>(idx + 1), trim(raw[idx])});
  };

  for (const LineRule& r : line_rules()) {
    if (!r.applies(path)) continue;
    for (std::size_t i = 0; i < clean.size(); ++i) {
      if (std::regex_search(clean[i], r.pattern)) emit(r.rule, i);
    }
  }

  // raw-socket also covers the short POSIX names (send, recv, poll, bind,
  // connect), which a plain word-boundary regex cannot police: the codebase
  // is full of Transport::send and timer poll loops. std::regex has no
  // lookbehind, so each match's left context is classified by hand — method
  // calls (./->), namespace- or class-qualified names, and declarations
  // (preceding identifier such as `void` or `ssize_t`) are fine; a bare or
  // ::-qualified call is the libc symbol and belongs in src/transport/.
  if (path.find("src/transport/") == std::string::npos) {
    static const std::regex kPosixName(
        R"(\b(?:send|recv|poll|bind|connect)\s*\()");
    for (std::size_t i = 0; i < clean.size(); ++i) {
      const std::string& line = clean[i];
      auto begin = std::sregex_iterator(line.begin(), line.end(), kPosixName);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::size_t at = static_cast<std::size_t>(it->position());
        while (at > 0 && std::isspace(static_cast<unsigned char>(
                             line[at - 1])) != 0) {
          --at;
        }
        if (at == 0) {
          emit("raw-socket", i);  // the call opens the line: bare
          break;
        }
        const char prev = line[at - 1];
        if (prev == '.') continue;                          // obj.send(
        if (prev == '>' && at >= 2 && line[at - 2] == '-') {
          continue;                                         // ptr->send(
        }
        if (prev == ':') {
          if (at < 2 || line[at - 2] != ':') continue;  // label/ternary junk
          std::size_t q = at - 2;
          while (q > 0 &&
                 std::isspace(static_cast<unsigned char>(line[q - 1])) != 0) {
            --q;
          }
          const bool qualified =
              q > 0 && (std::isalnum(static_cast<unsigned char>(
                            line[q - 1])) != 0 ||
                        line[q - 1] == '_');
          if (qualified) continue;  // Transport::send( — a project name
          emit("raw-socket", i);    // ::send( — explicitly the libc symbol
          break;
        }
        const bool after_word =
            std::isalnum(static_cast<unsigned char>(prev)) != 0 ||
            prev == '_';
        if (after_word) {
          // `return send(...)` is a call; any other preceding identifier
          // (`void send(`, `ssize_t recv(`) is a declaration.
          std::size_t w = at;
          while (w > 0 && (std::isalnum(static_cast<unsigned char>(
                               line[w - 1])) != 0 ||
                           line[w - 1] == '_')) {
            --w;
          }
          if (line.compare(w, at - w, "return") != 0) continue;
        }
        emit("raw-socket", i);
        break;
      }
    }
  }

  // schedule-in-fanout needs multi-line state: per-event scheduling inside
  // a for_each_in_range callback costs one timer slot and one closure per
  // receiver, O(k) allocations and heap sifts per broadcast. Batch the
  // fan-out instead: collect receivers in the callback, then schedule once
  // with begin_batch/add_batch_event after the loop (src/radio/channel.cpp
  // is the reference). The span is tracked lexically — from a line
  // containing for_each_in_range( until its call parentheses balance.
  {
    static const std::regex kSchedule(R"(\bschedule_(?:at|after)\s*\()");
    int depth = 0;
    bool inside = false;
    for (std::size_t i = 0; i < clean.size(); ++i) {
      std::size_t from = 0;
      if (!inside) {
        const std::size_t call = clean[i].find("for_each_in_range");
        if (call == std::string::npos) continue;
        inside = true;
        depth = 0;
        from = call;
      }
      for (std::size_t k = from; k < clean[i].size() && inside; ++k) {
        if (clean[i][k] == '(') ++depth;
        if (clean[i][k] == ')' && --depth == 0) inside = false;
      }
      if (std::regex_search(clean[i].substr(from), kSchedule)) {
        emit("schedule-in-fanout", i);
      }
    }
  }

  // alloc-in-round: a `LINT-ROUND-PATH` marker comment on (or right above)
  // a function definition declares its body a per-round path — code that
  // runs every epoch for every agent, which docs/PERF.md and
  // tests/test_steady_state_alloc.cpp require to be allocation-free in
  // steady state. Allocation expressions inside the marked body are
  // flagged. The span is lexical: from the marker, through the first `{`,
  // to the brace that balances it; callees are not followed (mark them
  // too if they are on the round path).
  {
    static const std::regex kAlloc(
        R"(\bnew\s+[A-Za-z_:(]|\bmake_shared\s*<|\bmake_unique\s*<|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\()");
    for (std::size_t i = 0; i < clean.size(); ++i) {
      if (raw[i].find("LINT-ROUND-PATH") == std::string::npos) continue;
      int depth = 0;
      bool entered = false;
      for (std::size_t j = i; j < clean.size(); ++j) {
        if (entered && std::regex_search(clean[j], kAlloc)) {
          emit("alloc-in-round", j);
        }
        bool closed = false;
        for (const char c : clean[j]) {
          if (c == '{') {
            ++depth;
            entered = true;
          }
          if (c == '}' && entered && --depth == 0) {
            closed = true;
            break;
          }
        }
        if (closed) break;
      }
    }
  }

  // state-outside-fingerprint: `friend class check::StateFingerprinter` in
  // a class — or a `LINT-FINGERPRINT:` marker comment where the
  // fingerprint reads state through public accessors and needs no
  // friendship — is a contract: the members that follow are protocol
  // state, and each must be referenced in src/check/fingerprint.cpp (mixed
  // into the canonical state hash, or named in an FP-EXEMPT(name_) comment
  // arguing why it cannot influence future behaviour). A member the
  // fingerprint never saw means the checker merges states that differ and
  // silently prunes reachable behaviour. Members are recognised by the
  // project's trailing-underscore convention at the marker's own brace
  // depth; nested structs (deeper depth) get their own marker if they hold
  // state.
  if (!fingerprint_tu.empty()) {
    static const std::regex kMember(
        R"(\b([A-Za-z_]\w*_)\s*(?:=[^;{}]*|\{[^{}]*\})?\s*;)");
    for (std::size_t i = 0; i < clean.size(); ++i) {
      std::size_t mark =
          clean[i].find("friend class check::StateFingerprinter");
      // The marker-comment form lives in raw text (comments are blanked in
      // the sanitized view).
      if (mark == std::string::npos &&
          raw[i].find("LINT-FINGERPRINT") != std::string::npos) {
        mark = 0;
      }
      if (mark == std::string::npos) continue;
      int depth = 0;      // brace depth relative to the marker line
      bool open = true;   // false once the enclosing class body closes
      for (std::size_t j = i + 1; j < clean.size() && open; ++j) {
        const std::string& line = clean[j];
        if (depth == 0) {
          auto begin = std::sregex_iterator(line.begin(), line.end(), kMember);
          for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::string name = (*it)[1].str();
            const std::regex used("\\b" + name + "\\b");
            if (!std::regex_search(fingerprint_tu, used)) {
              emit("state-outside-fingerprint", j);
              break;  // one finding per line is enough
            }
          }
        }
        for (const char c : line) {
          if (c == '{') ++depth;
          if (c == '}' && --depth < 0) {
            open = false;
            break;
          }
        }
      }
    }
  }

  // unordered-iteration needs file-level state: which identifiers in this
  // file — or in its companion header, for members iterated from the .cpp —
  // are unordered containers.
  std::vector<std::string> names = unordered_names(sanitized);
  if (!companion_header.empty()) {
    for (std::string& name : unordered_names(sanitize(companion_header))) {
      names.push_back(std::move(name));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  for (const std::string& name : names) {
    const std::regex use(R"((?:^|[^\w.])for\s*\([^;)]*:\s*)" + name +
                         R"(\s*\)|\b)" + name +
                         R"(\s*\.\s*(?:begin|cbegin|rbegin|crbegin)\s*\()");
    for (std::size_t i = 0; i < clean.size(); ++i) {
      if (std::regex_search(clean[i], use)) emit("unordered-iteration", i);
    }
  }

  return out;
}

std::vector<Violation> scan_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  // The fingerprint TU is shared context for every file that befriends the
  // canonical serializer: locate it once across all roots.
  std::string fingerprint_tu;
  for (const std::string& root : roots) {
    const fs::path candidate = fs::path(root) / "check" / "fingerprint.cpp";
    if (fs::exists(candidate)) {
      std::ifstream fin(candidate);
      std::stringstream fbuf;
      fbuf << fin.rdbuf();
      fingerprint_tu = fbuf.str();
      break;
    }
  }
  for (const std::string& root : roots) {
    const fs::path root_path(root);
    const std::string prefix = root_path.filename().string();
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root_path)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
    // Deterministic scan order regardless of directory enumeration order.
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file);
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::string companion;
      if (file.extension() == ".cpp" || file.extension() == ".cc") {
        fs::path header = file;
        header.replace_extension(".h");
        if (fs::exists(header)) {
          std::ifstream hin(header);
          std::stringstream hbuf;
          hbuf << hin.rdbuf();
          companion = hbuf.str();
        }
      }
      const std::string rel =
          prefix + "/" + fs::relative(file, root_path).generic_string();
      for (Violation& v :
           scan_source(rel, buffer.str(), companion, fingerprint_tu)) {
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Baseline

std::string baseline_key(const Violation& v) {
  return v.rule + "\t" + v.file + "\t" + v.text;
}

Baseline to_baseline(const std::vector<Violation>& violations) {
  Baseline b;
  for (const Violation& v : violations) ++b[baseline_key(v)];
  return b;
}

Baseline load_baseline(const std::string& path, bool* ok) {
  Baseline b;
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return b;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++b[line];
  }
  *ok = true;
  return b;
}

std::string serialize_baseline(const Baseline& baseline) {
  std::string out =
      "# cfds-lint baseline — known violations, burned down over time.\n"
      "# Format: rule<TAB>file<TAB>trimmed source line (line numbers are\n"
      "# deliberately absent so unrelated edits don't churn this file).\n"
      "# Regenerate with: cfds-lint --root src --baseline <this file>\n"
      "#   --update-baseline   (see docs/STATIC_ANALYSIS.md)\n";
  for (const auto& [key, count] : baseline) {
    for (int i = 0; i < count; ++i) {
      out += key;
      out += '\n';
    }
  }
  return out;
}

BaselineDiff diff_baseline(const Baseline& current, const Baseline& committed) {
  BaselineDiff diff;
  for (const auto& [key, count] : current) {
    const auto it = committed.find(key);
    const int have = (it == committed.end()) ? 0 : it->second;
    for (int i = have; i < count; ++i) diff.added.push_back(key);
  }
  for (const auto& [key, count] : committed) {
    const auto it = current.find(key);
    const int have = (it == current.end()) ? 0 : it->second;
    for (int i = have; i < count; ++i) diff.fixed.push_back(key);
  }
  return diff;
}

}  // namespace cfds::lint
