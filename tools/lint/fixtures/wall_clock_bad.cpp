// Fixture: wall-clock reads inside simulation code — real time leaks into
// simulated behaviour and replays diverge.
#include <chrono>
#include <ctime>

namespace fixture {

long stamp_epoch() {
  return static_cast<long>(time(nullptr));  // BAD: wall clock
}

double elapsed_ms() {
  const auto t0 = std::chrono::steady_clock::now();  // BAD: wall clock
  const auto t1 = std::chrono::system_clock::now();  // BAD: wall clock
  (void)t1;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace fixture
