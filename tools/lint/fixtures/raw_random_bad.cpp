// Fixture: unseeded / global entropy sources — not replayable, not
// shardable across runner threads.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() {
  return std::rand() % 6;  // BAD: global generator
}

unsigned reseed() {
  std::random_device rd;  // BAD: nondeterministic entropy
  srand(rd());            // BAD: global generator seeding
  return rd();
}

}  // namespace fixture
