// Fixture: unordered containers used for lookup only, iteration done over
// an ordered mirror — replay-safe.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Tracker {
  std::unordered_map<std::uint32_t, int> depth_;
  std::map<std::uint32_t, int> ordered_;
  std::vector<std::uint32_t> keys_;

  bool has(std::uint32_t node) const {
    return depth_.find(node) != depth_.end();  // lookup is fine
  }

  int total() const {
    int sum = 0;
    for (std::uint32_t node : keys_) {  // ordered companion vector
      sum += depth_.at(node);
    }
    for (const auto& [node, depth] : ordered_) {  // std::map is ordered
      sum += depth;
    }
    return sum;
  }
};

}  // namespace fixture
