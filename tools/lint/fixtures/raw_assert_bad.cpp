// Fixture: <cassert> contracts — compiled out under NDEBUG, so Release
// builds (the benchmarked configuration) silently skip the check.
#include <cassert>

namespace fixture {

int clamp_epoch(int epoch, int horizon) {
  assert(epoch >= 0);        // BAD: vanishes under NDEBUG
  assert(horizon > epoch);   // BAD: vanishes under NDEBUG
  return epoch % horizon;
}

}  // namespace fixture
