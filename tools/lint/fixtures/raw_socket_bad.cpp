// Fixture: direct socket API use outside src/transport/ — every byte on or
// off the wire must go through a Transport, or the simulator, loopback, and
// UDP backends stop being interchangeable.
#include <netinet/in.h>  // BAD: network header
#include <poll.h>        // BAD: poll header
#include <sys/socket.h>  // BAD: network header

namespace fixture {

int open_endpoint() {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);  // BAD: raw socket()
  sockaddr_in addr{};
  ::bind(fd, reinterpret_cast<const sockaddr*>(&addr),  // BAD: libc bind
         sizeof(addr));
  sendto(fd, nullptr, 0, 0, nullptr, 0);  // BAD: raw sendto
  char buf[16];
  recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);  // BAD: raw recvfrom
  pollfd waiter{fd, POLLIN, 0};
  poll(&waiter, 1, 0);  // BAD: bare poll is the libc symbol
  return send(fd, buf, sizeof(buf), 0);  // BAD: returned call is a call
}

}  // namespace fixture
