// Fixture: ordered containers keyed on raw pointers — comparison order is
// allocation order, which differs run to run.
#include <map>
#include <set>

namespace fixture {

struct Node {
  int id;
};

struct Registry {
  std::map<Node*, int> weights;      // BAD: pointer-keyed map
  std::set<const Node*> quarantine;  // BAD: pointer-keyed set
};

}  // namespace fixture
