// Fixture: ordered containers keyed on stable value identities.
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

namespace fixture {

struct Node {
  std::uint32_t id;
};

struct Registry {
  std::map<std::uint32_t, int> weights;          // value-keyed: replayable
  std::set<std::uint32_t> quarantine;            // value-keyed: replayable
  std::map<std::uint32_t, Node*> by_id;          // pointer *values* are fine
  std::vector<std::unique_ptr<Node>> ownership;  // pointers not used as keys
};

}  // namespace fixture
