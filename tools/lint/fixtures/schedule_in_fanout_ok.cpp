// Fixture: batched fan-out done right — the range-query callback only
// collects receivers; scheduling happens once, after the loop, through the
// kernel's batch API (one timer slot for the whole broadcast). Scheduling
// outside any for_each_in_range span is also fine.

#include <cstdint>
#include <vector>

namespace fixture {

struct Vec2 {
  double x, y;
};

struct BatchRef {
  std::uint32_t slot;
};

struct Simulator {
  using BatchFn = void (*)(void* ctx, std::uint32_t index);
  BatchRef begin_batch(BatchFn fn, void* ctx);
  void add_batch_event(BatchRef batch, long delay, std::uint32_t index);
  template <typename F>
  void schedule_after(long delay, F fn);
};

struct Radio {
  void deliver(int payload);
};

struct Channel {
  Simulator* sim;
  std::vector<Radio*> receivers;

  template <typename F>
  void for_each_in_range(Vec2 center, double range, F fn);

  static void deliver_one(void* ctx, std::uint32_t index) {
    auto* channel = static_cast<Channel*>(ctx);
    channel->receivers[index]->deliver(0);
  }

  void transmit(Vec2 origin, double range) {
    receivers.clear();
    for_each_in_range(origin, range, [&](Radio* receiver, Vec2) {
      receivers.push_back(receiver);  // collect only, schedule later
    });
    const BatchRef batch = sim->begin_batch(&deliver_one, this);
    for (std::uint32_t i = 0; i < receivers.size(); ++i) {
      sim->add_batch_event(batch, 100 + long(i), i);
    }
  }

  void heartbeat() {
    sim->schedule_after(1000, [this] { transmit({0, 0}, 100.0); });
  }
};

}  // namespace fixture
