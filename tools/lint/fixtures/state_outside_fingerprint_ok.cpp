// Fixture: the compliant shapes — every post-friend member is referenced in
// the (fake) fingerprint TU, a justified exception uses LINT-ALLOW, and a
// class that never befriends the serializer is out of scope entirely.
#include <cstdint>
#include <vector>

namespace fixture {

class Tracked {
 public:
  void tick();

 private:
  friend class check::StateFingerprinter;

  std::uint32_t epoch_ = 0;    // mixed in the fake TU
  std::vector<int> roster_{};  // mixed in the fake TU
  // LINT-ALLOW(state-outside-fingerprint): scratch buffer, rebuilt per round
  std::vector<int> scratch_;
};

class Accessed {
 private:
  // LINT-FINGERPRINT: members below must be covered (mixed or FP-EXEMPT'd)
  // in the fingerprint TU — the marker-comment form, for classes the
  // fingerprint reads through public accessors without friendship.
  std::uint32_t epoch_ = 0;  // mixed in the fake TU
};

class Untracked {
  // No friend declaration or marker: members here are not canonical state,
  // so the rule does not apply no matter what the fingerprint TU contains.
  std::uint64_t whatever_ = 0;
};

}  // namespace fixture
