// Fixture: heap allocation inside marked per-round paths.
#include <memory>

struct Payload {
  int sender = 0;
};

// LINT-ROUND-PATH: runs every epoch for every agent
void round3_update() {
  auto update = std::make_shared<Payload>();  // flagged
  update->sender = 1;
  int* scratch = new int[16];  // flagged
  delete[] scratch;
}

// LINT-ROUND-PATH
void on_frame() {
  void* raw = malloc(64);  // flagged
  (void)raw;
}

// Unmarked functions allocate freely — setup code, failure handling that
// has its own marker elsewhere, tests.
void setup() {
  auto p = std::make_unique<Payload>();
  (void)p;
}
