// Fixture: CFDS_EXPECT contracts fire in every build type; static_assert is
// compile-time and always welcome.
#include <cstdio>
#include <cstdlib>

#define CFDS_EXPECT(expr, msg)                                   \
  do {                                                           \
    if (!(expr)) {                                               \
      std::fprintf(stderr, "CFDS_EXPECT failed: %s\n", msg);     \
      std::abort();                                              \
    }                                                            \
  } while (false)

namespace fixture {

static_assert(sizeof(int) >= 4, "ILP32 or wider assumed");

int clamp_epoch(int epoch, int horizon) {
  CFDS_EXPECT(epoch >= 0, "epochs count from zero");
  CFDS_EXPECT(horizon > epoch, "horizon must bound the epoch");
  return epoch % horizon;
}

}  // namespace fixture
