// Fixture: tag-dispatched payload downcasts, mirroring src/radio/payload.h.
#include <cstdint>

namespace fixture {

enum class PayloadKind : std::uint8_t { kHeartbeat, kDigest };

struct Payload {
  explicit Payload(PayloadKind tag) : tag_(tag) {}
  PayloadKind tag() const { return tag_; }

 private:
  PayloadKind tag_;
};

struct Heartbeat : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kHeartbeat;
  static bool matches(PayloadKind k) { return k == kTag; }
  Heartbeat() : Payload(kTag) {}
  int nid = 0;
};

template <typename T>
const T* payload_cast(const Payload* p) {
  if (p != nullptr && T::matches(p->tag())) return static_cast<const T*>(p);
  return nullptr;
}

int dispatch(const Payload* p) {
  if (const auto* hb = payload_cast<Heartbeat>(p)) return hb->nid;
  return -1;
}

}  // namespace fixture
