// Fixture: floating point inside the adaptive-detection arithmetic — the
// suspicion a CH computes must match its deputies bit-for-bit, and FP
// rounding varies with flags and hardware.

namespace fixture {

double ewma(double prev, bool missed) {  // BAD: double in estimator path
  return 0.75 * prev + (missed ? 250.0 : 0.0);
}

float surprise(float loss) {  // BAD: float in estimator path
  return 3.0F - loss;
}

}  // namespace fixture
