// Fixture: the sanctioned integer fixed-point style — per-mille loss rates,
// milli-scaled surprisal, shift-and-square log — plus a comment mentioning
// double (comments are sanitized before matching).
#include <cstdint>

namespace fixture {

// A double-wide intermediate would overflow here, which is why the mantissa
// stays in Q16: float talk in prose must not trip the rule.
std::uint32_t ewma_pm(std::uint32_t prev_pm, bool missed) {
  return (3U * prev_pm + (missed ? 1000U : 0U)) / 4U;
}

std::uint32_t surprise_milli(std::uint32_t loss_pm) {
  return 3000U - (loss_pm * 3U);
}

}  // namespace fixture
