// Fixture: marked per-round paths that reuse warm buffers stay clean.
#include <memory>
#include <vector>

struct Payload {
  int sender = 0;
  std::vector<int> heard;
};

Payload g_pool;
std::vector<int> g_scratch;

// LINT-ROUND-PATH: pooled payload, warm scratch — no allocation expressions
void round2_digest() {
  Payload& digest = g_pool;
  digest.sender = 2;
  digest.heard.clear();  // clear() keeps capacity
  g_scratch.clear();
  g_scratch.push_back(7);
}

// LINT-ROUND-PATH
void deputy_check() {
  // LINT-ALLOW(alloc-in-round): cold failure path, never in a quiet epoch
  auto report = std::make_shared<Payload>();
  (void)report;
}

// The span ends at the function's closing brace: allocation right after a
// marked body is out of scope.
// LINT-ROUND-PATH
void round1_heartbeat() {
  g_pool.sender = 1;
}

void after() {
  auto p = std::make_shared<Payload>();
  (void)p;
}
