// Fixture: a class that befriends the canonical serializer but declares a
// member the fingerprint TU never references — the model checker would
// merge states that differ in `shadow_` and silently prune behaviour.
// (The test supplies a fake fingerprint TU covering every name but
// `shadow_` and `ghost_`.)
#include <cstdint>
#include <vector>

namespace fixture {

class Tracked {
 public:
  void tick();

 private:
  // Canonical-state contract: every member below must be mixed in
  // check/fingerprint.cpp or FP-EXEMPT'd there.
  friend class check::StateFingerprinter;

  std::uint32_t epoch_ = 0;        // covered by the fake TU
  std::vector<int> roster_{};      // covered by the fake TU
  std::uint64_t shadow_;           // BAD: absent from the fingerprint TU
  struct Nested {
    int depth;  // nested scope: not at the class's own depth, not checked
  };
  Nested nested_cfg_;              // covered (FP-EXEMPT in the fake TU)
  bool ghost_ = false;             // BAD: absent from the fingerprint TU
};

}  // namespace fixture
