// Fixture: RTTI dispatch on payloads — payload_cast (tag compare +
// static_cast) is the project idiom; dynamic_cast reintroduces the per-frame
// RTTI cost the PR 2 hot-path work removed.
namespace fixture {

struct Payload {
  virtual ~Payload() = default;
};

struct Heartbeat : Payload {
  int nid = 0;
};

int dispatch(const Payload* p) {
  if (const auto* hb = dynamic_cast<const Heartbeat*>(p)) {  // BAD: RTTI
    return hb->nid;
  }
  return -1;
}

}  // namespace fixture
