// Fixture: hot-path allocation done right — placement new into preallocated
// storage, smart-pointer factories at setup time.
#include <memory>
#include <new>
#include <utility>

namespace fixture {

struct Event {
  int id;
};

struct Slab {
  alignas(Event) unsigned char storage[64][sizeof(Event)];
  int used = 0;

  Event* emplace(int id) {
    return ::new (static_cast<void*>(storage[used++])) Event{id};
  }
};

std::unique_ptr<Slab> make_slab() { return std::make_unique<Slab>(); }
std::shared_ptr<Event> make_event(int id) {
  return std::make_shared<Event>(Event{id});
}

}  // namespace fixture
