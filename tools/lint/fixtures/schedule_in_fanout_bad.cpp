// Fixture: per-receiver scheduling inside a range-query callback — every
// broadcast pays one timer slot and one closure per receiver, O(k)
// allocations and heap sifts where a batch would cost O(1).

namespace fixture {

struct Vec2 {
  double x, y;
};

struct Simulator {
  template <typename F>
  void schedule_after(long delay, F fn);
  template <typename F>
  void schedule_at(long when, F fn);
};

struct Radio {
  void deliver(int payload);
};

struct Channel {
  Simulator* sim;

  template <typename F>
  void for_each_in_range(Vec2 center, double range, F fn);

  void transmit(Vec2 origin, double range, int payload) {
    for_each_in_range(origin, range, [&](Radio* receiver, Vec2) {
      const long delay = 100;
      sim->schedule_after(delay,  // BAD: one timer per receiver
                          [receiver, payload] { receiver->deliver(payload); });
    });
  }

  void transmit_at(Vec2 origin, double range, int payload, long when) {
    for_each_in_range(origin, range, [&](Radio* receiver, Vec2) {
      // BAD: absolute-time flavor of the same per-receiver scheduling
      sim->schedule_at(when, [receiver, payload] {
        receiver->deliver(payload);
      });
    });
  }
};

}  // namespace fixture
