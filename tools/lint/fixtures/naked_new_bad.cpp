// Fixture: naked allocation in a hot-path directory — the event kernel's
// schedule→fire path is allocation-free by contract (docs/PERF.md).
#include <cstdlib>

namespace fixture {

struct Event {
  int id;
};

Event* schedule(int id) {
  Event* e = new Event{id};  // BAD: naked new on a hot path
  return e;
}

void* scratch(std::size_t n) {
  void* p = malloc(n);  // BAD: malloc on a hot path
  free(p);              // BAD: paired with the malloc above
  return nullptr;
}

}  // namespace fixture
