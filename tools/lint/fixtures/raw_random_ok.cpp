// Fixture: all entropy from an explicitly seeded stream, as common/rng.h
// provides; "brand(" and "operand(" don't trip the word-boundary matcher.
#include <cstdint>

namespace fixture {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state ^= state << 13U;
    state ^= state >> 7U;
    state ^= state << 17U;
    return state;
  }
};

std::uint64_t brand(Rng& rng) { return rng.next(); }
std::uint64_t operand(Rng& rng) { return brand(rng); }

}  // namespace fixture
