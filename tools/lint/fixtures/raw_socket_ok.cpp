// Fixture: project identifiers that share the short POSIX names — method
// calls, namespace-qualified calls, and interface declarations are not the
// libc symbols and must not trip raw-socket.
#include <cstddef>

namespace fixture {

struct Transport {
  void send(const void* frame, std::size_t n);   // declaration: fine
  std::size_t recv(void* out, std::size_t cap);  // declaration: fine
  bool poll();                                   // declaration: fine
};

namespace net {
bool poll(Transport& t);
}  // namespace net

void pump(Transport& direct, Transport* routed) {
  direct.send(nullptr, 0);   // method call
  routed->recv(nullptr, 0);  // method call through a pointer
  if (net::poll(direct)) {   // namespace-qualified project function
    direct
        .send(nullptr, 0);   // wrapped method call
  }
}

}  // namespace fixture
