// Fixture: simulated time only — SimTime flows from the event kernel, and
// identifiers like wall_time_budget don't trip the word-boundary matcher.
#include <cstdint>

namespace fixture {

struct SimTime {
  std::int64_t us = 0;
};

struct Epoch {
  SimTime start;
  SimTime wall_time_budget;  // "time" inside an identifier is fine

  SimTime deadline(std::int64_t heartbeat_us) const {
    return SimTime{start.us + heartbeat_us};
  }
};

}  // namespace fixture
