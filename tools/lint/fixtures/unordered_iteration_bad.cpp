// Fixture: iterating an unordered container — order is
// implementation-defined, so any output derived from it is unreplayable.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Tracker {
  std::unordered_map<std::uint32_t, int> depth_;
  std::unordered_set<std::uint32_t> seen_;

  int total() const {
    int sum = 0;
    for (const auto& [node, depth] : depth_) {  // BAD: unordered range-for
      sum += depth;
    }
    return sum;
  }

  std::uint32_t first() const {
    return *seen_.begin();  // BAD: unordered .begin()
  }
};

}  // namespace fixture
