// cfds-lint — project-specific determinism and hygiene linter.
//
// The simulator's core guarantee is bit-identical output at any thread
// count (docs/RUNNER.md, docs/PERF.md). That guarantee dies quietly: one
// range-for over an unordered_map, one wall-clock read, one pointer-keyed
// std::map, and replays stop matching — usually long after the offending
// commit. cfds-lint encodes the project rules that protect replayability
// (plus a few hygiene rules the hot paths rely on) as a scanner that runs
// in ctest and CI, with a committed baseline so pre-existing debt is
// explicit instead of invisible.
//
// Rules (rule ids are what LINT-ALLOW and the baseline reference):
//   unordered-iteration  no range-for / .begin() iteration over a variable
//                        declared std::unordered_map/unordered_set in the
//                        same file — iteration order is
//                        implementation-defined and breaks replay.
//   wall-clock           no time()/system_clock/steady_clock/... outside
//                        src/common/sim_time.h and src/transport/real_time*
//                        (the sanctioned SimTime <-> monotonic-clock bridge)
//                        — simulation time is SimTime.
//   raw-socket           no direct socket/sendto/recvfrom/poll/... calls or
//                        network headers outside src/transport/ — every
//                        byte on or off the wire goes through a Transport,
//                        so the simulator, the loopback harness, and UDP
//                        stay interchangeable. Bare or ::-qualified
//                        send/recv/poll/bind/connect calls are flagged;
//                        obj.send(...), Ns::send(...), and declarations of
//                        project methods with those names are not.
//   raw-random           no std::rand/srand/random_device outside
//                        src/common/rng.h — all entropy flows from seeded
//                        SplitMix/engine streams.
//   pointer-keyed-map    no std::map/std::set keyed on raw pointers —
//                        pointer order is allocation order, not replayable.
//   dynamic-cast         payload dispatch must use payload_cast (tag
//                        compare), never RTTI.
//   naked-new            no naked new/malloc in hot-path dirs (src/event,
//                        src/net, src/radio, src/fds, src/cluster) — the
//                        kernel is allocation-free by contract (docs/PERF.md).
//   raw-assert           use CFDS_EXPECT(expr, msg), not <cassert> assert —
//                        contracts must fire in every build type.
//   alloc-in-round       no heap allocation inside a function whose
//                        definition is marked with a `LINT-ROUND-PATH`
//                        comment — the per-round protocol paths (epoch
//                        begin, the three rounds, the checks, frame
//                        dispatch) are allocation-free in steady state by
//                        contract (tests/test_steady_state_alloc.cpp
//                        proves it dynamically; this rule keeps new code
//                        honest statically). new, make_shared/make_unique,
//                        and the malloc family are flagged within the
//                        marked function's own body (lexical — callees get
//                        their own marker). Failure-path allocations that
//                        cannot fire in a quiet epoch live in the baseline
//                        as burndown debt.
//   schedule-in-fanout   no schedule_at/schedule_after inside a
//                        for_each_in_range callback — per-receiver timers
//                        cost O(k) slots and closures per broadcast; batch
//                        the fan-out with begin_batch/add_batch_event after
//                        the loop instead (docs/PERF.md).
//   float-in-estimator   no float/double in the adaptive-detection
//                        arithmetic (src/fds/link_quality.*,
//                        src/fds/detector.*) — the loss EWMA, milli_log10
//                        surprisal, and accrual products are specified in
//                        integer fixed-point so every node computes the
//                        same suspicion bit-for-bit (docs/ADAPTIVE.md).
//   state-outside-fingerprint
//                        a class granting `friend class
//                        check::StateFingerprinter` (or carrying a
//                        `LINT-FINGERPRINT:` marker comment, for classes
//                        the fingerprint reads via public accessors)
//                        declares its members to be protocol state: every
//                        `name_` member declared after the marker must be
//                        referenced in src/check/fingerprint.cpp — mixed
//                        into the state hash, or named in an
//                        `FP-EXEMPT(name_)` comment arguing why it cannot
//                        influence future behaviour.
//                        An unreferenced member means the model checker
//                        would treat two differing states as one and
//                        silently prune reachable behaviour
//                        (docs/MODEL_CHECKING.md).
//
// Suppression: a `LINT-ALLOW(rule): reason` comment on the same or the
// immediately preceding line exempts that line. Use it for permanent,
// justified exceptions; use the baseline for debt to be burned down.
// Policy and workflow: docs/STATIC_ANALYSIS.md.

#pragma once

#include <map>
#include <string>
#include <vector>

namespace cfds::lint {

struct Violation {
  std::string rule;  // rule id, e.g. "unordered-iteration"
  std::string file;  // reported path (repo-relative when scanning a tree)
  int line = 0;      // 1-based; informational only, not part of baseline keys
  std::string text;  // trimmed source line
};

/// Scans one file's contents. `path` is used verbatim for reporting and for
/// the path-sensitive rules (file exemptions, hot-path dirs).
/// `companion_header` (the matching .h of a .cpp, when it exists) is
/// consulted for declarations only — members declared unordered in the
/// header are tracked when the .cpp iterates them — and is never itself
/// reported against here (it gets its own scan).
/// `fingerprint_tu` is the content of src/check/fingerprint.cpp; when
/// non-empty, the state-outside-fingerprint rule checks classes that
/// befriend the canonical serializer against it (scan_tree locates and
/// passes it automatically).
std::vector<Violation> scan_source(const std::string& path,
                                   const std::string& content,
                                   const std::string& companion_header = "",
                                   const std::string& fingerprint_tu = "");

/// Recursively scans *.h / *.cpp under each root directory. Reported paths
/// are `<basename-of-root>/<relative-path>` so baselines are stable across
/// checkouts and build machines.
std::vector<Violation> scan_tree(const std::vector<std::string>& roots);

/// A baseline is a multiset of violation keys (line numbers excluded, so
/// unrelated edits that shift lines don't churn it).
using Baseline = std::map<std::string, int>;

/// Key used for baseline matching: "rule<TAB>file<TAB>text".
std::string baseline_key(const Violation& v);

Baseline to_baseline(const std::vector<Violation>& violations);

/// Loads a baseline file; '#'-prefixed lines and blank lines are ignored.
/// Returns false through `ok` when the file cannot be read.
Baseline load_baseline(const std::string& path, bool* ok);

/// Serializes a baseline deterministically (sorted, one key per line,
/// repeated keys repeated) with an explanatory header.
std::string serialize_baseline(const Baseline& baseline);

struct BaselineDiff {
  std::vector<std::string> added;  // violations in the tree, not the baseline
  std::vector<std::string> fixed;  // baseline entries no longer in the tree
  [[nodiscard]] bool clean() const { return added.empty() && fixed.empty(); }
};

BaselineDiff diff_baseline(const Baseline& current, const Baseline& committed);

}  // namespace cfds::lint
