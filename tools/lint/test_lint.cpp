// Tests for cfds-lint: one positive (violating) and one negative (clean)
// fixture per rule under fixtures/, engine unit tests (sanitizer,
// LINT-ALLOW, baseline round-trip/diff), and the gate that the committed
// baseline matches the real src/ tree exactly — adding a violation fails,
// and so does silently fixing a baselined one without updating the file.

#include "lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using cfds::lint::Baseline;
using cfds::lint::BaselineDiff;
using cfds::lint::Violation;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Scans a fixture under a pretend repo path (rules are path-sensitive:
/// hot-path dirs, per-file exemptions).
std::vector<Violation> scan_fixture(const std::string& fixture,
                                    const std::string& pretend_path) {
  const std::string content =
      read_file(std::string(CFDS_LINT_FIXTURE_DIR) + "/" + fixture);
  return cfds::lint::scan_source(pretend_path, content);
}

/// A stand-in for src/check/fingerprint.cpp: mixes epoch_ and roster_, and
/// exempts nested_cfg_ the way the real TU documents its exemptions.
constexpr char kFakeFingerprintTu[] =
    "void mix(Hasher& h, const Tracked& t) {\n"
    "  h.mix(t.epoch_);\n"
    "  for (int m : t.roster_) h.mix(m);\n"
    "  // FP-EXEMPT(nested_cfg_): construction-time constant, never written\n"
    "}\n";

std::vector<Violation> scan_fixture_fp(const std::string& fixture,
                                       const std::string& pretend_path) {
  const std::string content =
      read_file(std::string(CFDS_LINT_FIXTURE_DIR) + "/" + fixture);
  return cfds::lint::scan_source(pretend_path, content, "",
                                 kFakeFingerprintTu);
}

std::multiset<std::string> rules_of(const std::vector<Violation>& vs) {
  std::multiset<std::string> rules;
  for (const Violation& v : vs) rules.insert(v.rule);
  return rules;
}

TEST(LintFixtures, UnorderedIterationBad) {
  const auto vs = scan_fixture("unordered_iteration_bad.cpp", "src/sim/f.cpp");
  EXPECT_EQ(rules_of(vs).count("unordered-iteration"), 2u);
  EXPECT_EQ(vs.size(), 2u);
}

TEST(LintFixtures, UnorderedIterationOk) {
  EXPECT_TRUE(scan_fixture("unordered_iteration_ok.cpp", "src/sim/f.cpp")
                  .empty());
}

TEST(LintFixtures, WallClockBad) {
  const auto vs = scan_fixture("wall_clock_bad.cpp", "src/sim/f.cpp");
  EXPECT_GE(rules_of(vs).count("wall-clock"), 3u);
}

TEST(LintFixtures, WallClockOk) {
  EXPECT_TRUE(scan_fixture("wall_clock_ok.cpp", "src/sim/f.cpp").empty());
}

TEST(LintFixtures, WallClockExemptInSimTimeHeader) {
  // The one file allowed to touch clocks is the SimTime implementation.
  EXPECT_TRUE(
      scan_fixture("wall_clock_bad.cpp", "src/common/sim_time.h").empty());
}

TEST(LintFixtures, RawRandomBad) {
  const auto vs = scan_fixture("raw_random_bad.cpp", "src/sim/f.cpp");
  EXPECT_GE(rules_of(vs).count("raw-random"), 3u);
}

TEST(LintFixtures, RawRandomOk) {
  EXPECT_TRUE(scan_fixture("raw_random_ok.cpp", "src/sim/f.cpp").empty());
}

TEST(LintFixtures, RawRandomExemptInRngHeader) {
  EXPECT_TRUE(scan_fixture("raw_random_bad.cpp", "src/common/rng.h").empty());
}

TEST(LintFixtures, PointerKeyedMapBad) {
  const auto vs = scan_fixture("pointer_keyed_map_bad.cpp", "src/sim/f.cpp");
  EXPECT_EQ(rules_of(vs).count("pointer-keyed-map"), 2u);
}

TEST(LintFixtures, PointerKeyedMapOk) {
  EXPECT_TRUE(
      scan_fixture("pointer_keyed_map_ok.cpp", "src/sim/f.cpp").empty());
}

TEST(LintFixtures, DynamicCastBad) {
  const auto vs = scan_fixture("dynamic_cast_bad.cpp", "src/fds/f.cpp");
  EXPECT_EQ(rules_of(vs).count("dynamic-cast"), 1u);
}

TEST(LintFixtures, DynamicCastOk) {
  EXPECT_TRUE(scan_fixture("dynamic_cast_ok.cpp", "src/fds/f.cpp").empty());
}

TEST(LintFixtures, NakedNewBad) {
  const auto vs = scan_fixture("naked_new_bad.cpp", "src/event/f.cpp");
  EXPECT_EQ(rules_of(vs).count("naked-new"), 3u);
}

TEST(LintFixtures, NakedNewOk) {
  EXPECT_TRUE(scan_fixture("naked_new_ok.cpp", "src/event/f.cpp").empty());
}

TEST(LintFixtures, NakedNewOnlyAppliesToHotPaths) {
  // The same allocations outside the hot-path dirs are not flagged;
  // setup-time code (src/sim, src/analysis, ...) may allocate freely.
  EXPECT_TRUE(scan_fixture("naked_new_bad.cpp", "src/analysis/f.cpp").empty());
}

TEST(LintFixtures, RawAssertBad) {
  const auto vs = scan_fixture("raw_assert_bad.cpp", "src/sim/f.cpp");
  EXPECT_GE(rules_of(vs).count("raw-assert"), 3u);  // include + 2 asserts
}

TEST(LintFixtures, RawAssertOk) {
  EXPECT_TRUE(scan_fixture("raw_assert_ok.cpp", "src/sim/f.cpp").empty());
}

TEST(LintFixtures, FloatInEstimatorBad) {
  const auto vs =
      scan_fixture("float_in_estimator_bad.cpp", "src/fds/link_quality.cpp");
  EXPECT_GE(rules_of(vs).count("float-in-estimator"), 2u);
  // The same arithmetic in the detector is covered too.
  EXPECT_GE(rules_of(scan_fixture("float_in_estimator_bad.cpp",
                                  "src/fds/detector.cpp"))
                .count("float-in-estimator"),
            2u);
}

TEST(LintFixtures, FloatInEstimatorOk) {
  EXPECT_TRUE(
      scan_fixture("float_in_estimator_ok.cpp", "src/fds/link_quality.cpp")
          .empty());
}

TEST(LintFixtures, FloatInEstimatorScopedToEstimatorPaths) {
  // Floating point is fine elsewhere (positions, energy, bench statistics):
  // the rule only polices the fixed-point detection arithmetic.
  EXPECT_TRUE(rules_of(scan_fixture("float_in_estimator_bad.cpp",
                                    "src/sim/f.cpp"))
                  .count("float-in-estimator") == 0u);
}

TEST(LintFixtures, RawSocketBad) {
  const auto vs = scan_fixture("raw_socket_bad.cpp", "src/sim/f.cpp");
  // 3 headers + socket + ::bind + sendto + recvfrom + bare poll +
  // return send — one finding per offending line.
  EXPECT_EQ(rules_of(vs).count("raw-socket"), 9u);
}

TEST(LintFixtures, RawSocketOk) {
  EXPECT_TRUE(scan_fixture("raw_socket_ok.cpp", "src/sim/f.cpp").empty());
}

TEST(LintFixtures, RawSocketExemptInTransport) {
  // src/transport/ is where the socket calls belong.
  EXPECT_TRUE(
      scan_fixture("raw_socket_bad.cpp", "src/transport/udp.cpp").empty());
}

TEST(LintFixtures, WallClockExemptInRealTimeScheduler) {
  // The SimTime <-> monotonic-clock bridge is the other sanctioned reader.
  EXPECT_TRUE(
      scan_fixture("wall_clock_bad.cpp", "src/transport/real_time.h").empty());
}

TEST(LintEngine, PosixNamesClassifiedByLeftContext) {
  const std::string source =
      "int pump(Transport& t, Transport* p, int fd) {\n"
      "  t.send(nullptr, 0);\n"            // method: clean
      "  p->recv(nullptr, 0);\n"           // method: clean
      "  net::poll(*p);\n"                 // project-qualified: clean
      "  void bind(int, const char*);\n"   // declaration: clean
      "  ::connect(fd, nullptr, 0);\n"     // global-qualified: flagged
      "  return send(fd, nullptr, 0);\n"   // returned call: flagged
      "}\n";
  const auto vs = cfds::lint::scan_source("src/sim/f.cpp", source);
  EXPECT_EQ(rules_of(vs).count("raw-socket"), 2u);
  EXPECT_EQ(vs.size(), 2u);
}

TEST(LintFixtures, ScheduleInFanoutBad) {
  const auto vs = scan_fixture("schedule_in_fanout_bad.cpp", "src/radio/f.cpp");
  EXPECT_EQ(rules_of(vs).count("schedule-in-fanout"), 2u);
  EXPECT_EQ(vs.size(), 2u);
}

TEST(LintFixtures, ScheduleInFanoutOk) {
  EXPECT_TRUE(
      scan_fixture("schedule_in_fanout_ok.cpp", "src/radio/f.cpp").empty());
}

TEST(LintEngine, ScheduleOutsideFanoutSpanIsClean) {
  // The span ends where the for_each_in_range call's parentheses balance;
  // scheduling right after the loop (the batched pattern) must not trip.
  const std::string source =
      "void f() {\n"
      "  channel.for_each_in_range(center, range, [&](Radio* r, Vec2) {\n"
      "    receivers.push_back(r);\n"
      "  });\n"
      "  sim.schedule_after(delay, [] {});\n"
      "}\n";
  EXPECT_TRUE(cfds::lint::scan_source("src/radio/f.cpp", source).empty());
}

TEST(LintFixtures, AllocInRoundBad) {
  // Scanned under a non-hot path so naked-new stays quiet and the count
  // isolates the marker-gated rule.
  const auto vs = scan_fixture("alloc_in_round_bad.cpp", "src/sim/f.cpp");
  EXPECT_EQ(rules_of(vs).count("alloc-in-round"), 3u);
  EXPECT_EQ(vs.size(), 3u);
}

TEST(LintFixtures, AllocInRoundOk) {
  EXPECT_TRUE(scan_fixture("alloc_in_round_ok.cpp", "src/sim/f.cpp").empty());
}

TEST(LintEngine, AllocInRoundSpanEndsAtFunctionClose) {
  const std::string source =
      "// LINT-ROUND-PATH\n"
      "void round() {\n"
      "  pool.sender = 1;\n"
      "}\n"
      "void setup() { auto p = std::make_shared<int>(); }\n";
  EXPECT_TRUE(cfds::lint::scan_source("src/sim/f.cpp", source).empty());
}

TEST(LintEngine, CommentsAndStringsDoNotTrip) {
  const std::string source =
      "// system_clock mentioned in a comment is fine\n"
      "/* so is time(nullptr) in a block comment */\n"
      "const char* msg = \"calls std::rand() and dynamic_cast\";\n"
      "const char* raw = R\"(random_device in a raw string)\";\n";
  EXPECT_TRUE(cfds::lint::scan_source("src/sim/f.cpp", source).empty());
}

TEST(LintEngine, LintAllowSuppressesSameLine) {
  const std::string source =
      "auto t = std::chrono::steady_clock::now();  "
      "// LINT-ALLOW(wall-clock): reporting only\n";
  EXPECT_TRUE(cfds::lint::scan_source("src/sim/f.cpp", source).empty());
}

TEST(LintEngine, LintAllowSuppressesNextLine) {
  const std::string source =
      "// LINT-ALLOW(naked-new): SBO fallback for oversized captures\n"
      "fn_ = new Fn(std::forward<F>(fn));\n";
  EXPECT_TRUE(cfds::lint::scan_source("src/event/f.cpp", source).empty());
}

TEST(LintEngine, LintAllowIsRuleSpecific) {
  const std::string source =
      "auto t = std::chrono::steady_clock::now();  "
      "// LINT-ALLOW(naked-new): wrong rule named\n";
  const auto vs = cfds::lint::scan_source("src/sim/f.cpp", source);
  EXPECT_EQ(rules_of(vs).count("wall-clock"), 1u);
}

TEST(LintEngine, CompanionHeaderDeclarationsAreTracked) {
  // Members declared unordered in the .h are caught when the .cpp iterates
  // them (the injector.cpp pattern).
  const std::string header =
      "struct Injector {\n"
      "  std::unordered_map<std::uint32_t, int> freeze_depth_;\n"
      "};\n";
  const std::string impl =
      "void Injector::clear() {\n"
      "  for (const auto& [node, depth] : freeze_depth_) { (void)node; }\n"
      "}\n";
  const auto vs = cfds::lint::scan_source("src/fault/injector.cpp", impl,
                                          header);
  EXPECT_EQ(rules_of(vs).count("unordered-iteration"), 1u);
  // Without the header, the declaration is invisible and nothing fires.
  EXPECT_TRUE(
      cfds::lint::scan_source("src/fault/injector.cpp", impl).empty());
}

TEST(LintFixtures, StateOutsideFingerprintBad) {
  const auto vs =
      scan_fixture_fp("state_outside_fingerprint_bad.cpp", "src/fds/f.h");
  // shadow_ and ghost_ are absent from the fake fingerprint TU; epoch_ and
  // roster_ are mixed, nested_cfg_ is FP-EXEMPT'd, and the nested struct's
  // own field sits at a deeper brace depth.
  EXPECT_EQ(rules_of(vs).count("state-outside-fingerprint"), 2u);
  EXPECT_EQ(vs.size(), 2u);
}

TEST(LintFixtures, StateOutsideFingerprintOk) {
  EXPECT_TRUE(
      scan_fixture_fp("state_outside_fingerprint_ok.cpp", "src/fds/f.h")
          .empty());
}

TEST(LintFixtures, StateOutsideFingerprintNeedsTheFingerprintTu) {
  // Without the fingerprint TU (scan_source called standalone, or a tree
  // with no check/fingerprint.cpp) the rule cannot judge and stays silent.
  EXPECT_TRUE(
      scan_fixture("state_outside_fingerprint_bad.cpp", "src/fds/f.h")
          .empty());
}

TEST(LintEngine, FingerprintMarkerCommentIsEquivalentToFriendship) {
  // Classes the fingerprint reads through public accessors carry a
  // LINT-FINGERPRINT marker comment instead of a friend declaration; the
  // contract is the same.
  const std::string source =
      "class Log {\n"
      "  // LINT-FINGERPRINT: members below must be covered\n"
      "  int untracked_ = 0;\n"
      "};\n";
  const auto vs = cfds::lint::scan_source("src/fds/f.h", source, "",
                                          kFakeFingerprintTu);
  EXPECT_EQ(rules_of(vs).count("state-outside-fingerprint"), 1u);
}

TEST(LintEngine, FingerprintScopeEndsAtClassClose) {
  // The member walk stops where the befriending class's body closes: a
  // later class without the friend declaration is out of scope.
  const std::string source =
      "class Tracked {\n"
      "  friend class check::StateFingerprinter;\n"
      "  int epoch_ = 0;\n"
      "};\n"
      "class Other {\n"
      "  int untracked_ = 0;\n"
      "};\n";
  EXPECT_TRUE(cfds::lint::scan_source("src/fds/f.h", source, "",
                                      kFakeFingerprintTu)
                  .empty());
  // Flip the friend line into Other and its member is judged (and missing).
  const std::string flipped =
      "class Other {\n"
      "  friend class check::StateFingerprinter;\n"
      "  int untracked_ = 0;\n"
      "};\n";
  const auto vs = cfds::lint::scan_source("src/fds/f.h", flipped, "",
                                          kFakeFingerprintTu);
  EXPECT_EQ(rules_of(vs).count("state-outside-fingerprint"), 1u);
}

TEST(LintEngine, ViolationCarriesLineAndText) {
  const std::string source = "int x;\nint r = std::rand();\n";
  const auto vs = cfds::lint::scan_source("src/sim/f.cpp", source);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_EQ(vs[0].text, "int r = std::rand();");
  EXPECT_EQ(vs[0].file, "src/sim/f.cpp");
}

TEST(LintBaseline, SerializeLoadRoundTrip) {
  std::vector<Violation> vs = {
      {"wall-clock", "src/a.cpp", 10, "steady_clock::now();"},
      {"wall-clock", "src/a.cpp", 20, "steady_clock::now();"},
      {"naked-new", "src/event/b.cpp", 5, "new Fn(fn);"},
  };
  const Baseline original = cfds::lint::to_baseline(vs);
  const std::string serialized = cfds::lint::serialize_baseline(original);

  const std::string path = ::testing::TempDir() + "lint_baseline_rt.txt";
  std::ofstream(path) << serialized;
  bool ok = false;
  const Baseline loaded = cfds::lint::load_baseline(path, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(loaded, original);
}

TEST(LintBaseline, DiffDetectsAddedAndFixed) {
  Baseline current;
  current["wall-clock\ta.cpp\tfoo"] = 2;
  current["naked-new\tb.cpp\tbar"] = 1;
  Baseline committed;
  committed["wall-clock\ta.cpp\tfoo"] = 1;
  committed["raw-assert\tc.cpp\tbaz"] = 1;

  const BaselineDiff diff = cfds::lint::diff_baseline(current, committed);
  // One extra wall-clock occurrence + the new naked-new entry.
  ASSERT_EQ(diff.added.size(), 2u);
  // The raw-assert entry was fixed without a baseline update.
  ASSERT_EQ(diff.fixed.size(), 1u);
  EXPECT_FALSE(diff.clean());
  EXPECT_TRUE(cfds::lint::diff_baseline(current, current).clean());
}

// The enforcement test: the real src/ tree must match the committed
// baseline exactly, in both directions.
TEST(LintBaseline, SrcTreeMatchesCommittedBaseline) {
  const auto violations = cfds::lint::scan_tree({CFDS_LINT_SRC_DIR});
  bool ok = false;
  const Baseline committed = cfds::lint::load_baseline(CFDS_LINT_BASELINE, &ok);
  ASSERT_TRUE(ok) << "missing baseline " << CFDS_LINT_BASELINE;

  const BaselineDiff diff =
      cfds::lint::diff_baseline(cfds::lint::to_baseline(violations), committed);
  for (const std::string& key : diff.added) {
    ADD_FAILURE() << "new lint violation (fix it or LINT-ALLOW with a "
                     "reason; see docs/STATIC_ANALYSIS.md): "
                  << key;
  }
  for (const std::string& key : diff.fixed) {
    ADD_FAILURE() << "stale baseline entry (violation fixed — run "
                     "cfds-lint --update-baseline to record the burndown): "
                  << key;
  }
}

}  // namespace
