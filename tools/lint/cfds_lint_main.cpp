// cfds-lint CLI. See lint.h for the rule set and docs/STATIC_ANALYSIS.md
// for the workflow.
//
// Usage:
//   cfds-lint --root DIR [--root DIR ...]            list violations; exit 1
//                                                    if any are found
//   cfds-lint --root DIR --baseline FILE             diff against a baseline;
//                                                    exit 1 when violations
//                                                    were added OR fixed
//                                                    without updating it
//   cfds-lint --root DIR --baseline FILE --update-baseline
//                                                    rewrite the baseline to
//                                                    match the current tree

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --root DIR [--root DIR ...] [--baseline FILE] "
               "[--update-baseline]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string baseline_path;
  bool update_baseline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      roots.emplace_back(argv[++i]);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  const std::vector<cfds::lint::Violation> violations =
      cfds::lint::scan_tree(roots);
  const cfds::lint::Baseline current = cfds::lint::to_baseline(violations);

  if (baseline_path.empty()) {
    for (const auto& v : violations) {
      std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                   v.rule.c_str(), v.text.c_str());
    }
    std::fprintf(stderr, "cfds-lint: %zu violation(s)\n", violations.size());
    return violations.empty() ? 0 : 1;
  }

  if (update_baseline) {
    std::ofstream out(baseline_path);
    if (!out) {
      std::fprintf(stderr, "cfds-lint: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    out << cfds::lint::serialize_baseline(current);
    std::fprintf(stderr, "cfds-lint: baseline updated (%zu entries)\n",
                 violations.size());
    return 0;
  }

  bool loaded = false;
  const cfds::lint::Baseline committed =
      cfds::lint::load_baseline(baseline_path, &loaded);
  if (!loaded) {
    std::fprintf(stderr, "cfds-lint: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }

  const cfds::lint::BaselineDiff diff =
      cfds::lint::diff_baseline(current, committed);
  for (const std::string& key : diff.added) {
    std::fprintf(stderr, "NEW VIOLATION      %s\n", key.c_str());
  }
  for (const std::string& key : diff.fixed) {
    std::fprintf(stderr, "STALE BASELINE     %s\n", key.c_str());
  }
  if (!diff.clean()) {
    std::fprintf(stderr,
                 "cfds-lint: %zu new violation(s), %zu stale baseline "
                 "entr(y/ies).\nFix the new violations (or LINT-ALLOW with a "
                 "reason), and run with --update-baseline after burning down "
                 "baseline debt. See docs/STATIC_ANALYSIS.md.\n",
                 diff.added.size(), diff.fixed.size());
    return 1;
  }
  std::fprintf(stderr, "cfds-lint: clean (%zu baselined violation(s))\n",
               violations.size());
  return 0;
}
