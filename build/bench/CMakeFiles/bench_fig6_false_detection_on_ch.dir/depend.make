# Empty dependencies file for bench_fig6_false_detection_on_ch.
# This may be replaced when dependencies are built.
