file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_false_detection_on_ch.dir/bench_fig6_false_detection_on_ch.cpp.o"
  "CMakeFiles/bench_fig6_false_detection_on_ch.dir/bench_fig6_false_detection_on_ch.cpp.o.d"
  "bench_fig6_false_detection_on_ch"
  "bench_fig6_false_detection_on_ch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_false_detection_on_ch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
