file(REMOVE_RECURSE
  "CMakeFiles/bench_dch_reachability.dir/bench_dch_reachability.cpp.o"
  "CMakeFiles/bench_dch_reachability.dir/bench_dch_reachability.cpp.o.d"
  "bench_dch_reachability"
  "bench_dch_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dch_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
