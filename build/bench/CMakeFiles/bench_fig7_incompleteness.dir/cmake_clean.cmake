file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_incompleteness.dir/bench_fig7_incompleteness.cpp.o"
  "CMakeFiles/bench_fig7_incompleteness.dir/bench_fig7_incompleteness.cpp.o.d"
  "bench_fig7_incompleteness"
  "bench_fig7_incompleteness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_incompleteness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
