# Empty dependencies file for bench_aggregation_sharing.
# This may be replaced when dependencies are built.
