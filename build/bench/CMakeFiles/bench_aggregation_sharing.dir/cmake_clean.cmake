file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregation_sharing.dir/bench_aggregation_sharing.cpp.o"
  "CMakeFiles/bench_aggregation_sharing.dir/bench_aggregation_sharing.cpp.o.d"
  "bench_aggregation_sharing"
  "bench_aggregation_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregation_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
