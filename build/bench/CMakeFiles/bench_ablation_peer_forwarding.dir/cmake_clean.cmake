file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_peer_forwarding.dir/bench_ablation_peer_forwarding.cpp.o"
  "CMakeFiles/bench_ablation_peer_forwarding.dir/bench_ablation_peer_forwarding.cpp.o.d"
  "bench_ablation_peer_forwarding"
  "bench_ablation_peer_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_peer_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
