# Empty compiler generated dependencies file for bench_ablation_peer_forwarding.
# This may be replaced when dependencies are built.
