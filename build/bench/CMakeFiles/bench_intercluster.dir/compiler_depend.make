# Empty compiler generated dependencies file for bench_intercluster.
# This may be replaced when dependencies are built.
