file(REMOVE_RECURSE
  "CMakeFiles/bench_intercluster.dir/bench_intercluster.cpp.o"
  "CMakeFiles/bench_intercluster.dir/bench_intercluster.cpp.o.d"
  "bench_intercluster"
  "bench_intercluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intercluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
