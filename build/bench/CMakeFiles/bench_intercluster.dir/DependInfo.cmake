
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_intercluster.cpp" "bench/CMakeFiles/bench_intercluster.dir/bench_intercluster.cpp.o" "gcc" "bench/CMakeFiles/bench_intercluster.dir/bench_intercluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cfds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cfds_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/aggregation/CMakeFiles/cfds_aggregation.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cfds_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cfds_power.dir/DependInfo.cmake"
  "/root/repo/build/src/intercluster/CMakeFiles/cfds_intercluster.dir/DependInfo.cmake"
  "/root/repo/build/src/fds/CMakeFiles/cfds_fds.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cfds_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cfds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/cfds_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/cfds_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cfds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
