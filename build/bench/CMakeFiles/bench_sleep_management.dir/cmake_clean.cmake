file(REMOVE_RECURSE
  "CMakeFiles/bench_sleep_management.dir/bench_sleep_management.cpp.o"
  "CMakeFiles/bench_sleep_management.dir/bench_sleep_management.cpp.o.d"
  "bench_sleep_management"
  "bench_sleep_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sleep_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
