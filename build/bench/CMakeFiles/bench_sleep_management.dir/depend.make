# Empty dependencies file for bench_sleep_management.
# This may be replaced when dependencies are built.
