# Empty dependencies file for bench_system_completeness.
# This may be replaced when dependencies are built.
