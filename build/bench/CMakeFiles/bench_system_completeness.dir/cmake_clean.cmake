file(REMOVE_RECURSE
  "CMakeFiles/bench_system_completeness.dir/bench_system_completeness.cpp.o"
  "CMakeFiles/bench_system_completeness.dir/bench_system_completeness.cpp.o.d"
  "bench_system_completeness"
  "bench_system_completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_system_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
