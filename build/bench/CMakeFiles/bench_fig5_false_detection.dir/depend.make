# Empty dependencies file for bench_fig5_false_detection.
# This may be replaced when dependencies are built.
