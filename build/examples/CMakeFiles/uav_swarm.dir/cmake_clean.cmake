file(REMOVE_RECURSE
  "CMakeFiles/uav_swarm.dir/uav_swarm.cpp.o"
  "CMakeFiles/uav_swarm.dir/uav_swarm.cpp.o.d"
  "uav_swarm"
  "uav_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uav_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
