# Empty compiler generated dependencies file for uav_swarm.
# This may be replaced when dependencies are built.
