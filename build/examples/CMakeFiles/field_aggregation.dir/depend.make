# Empty dependencies file for field_aggregation.
# This may be replaced when dependencies are built.
