file(REMOVE_RECURSE
  "CMakeFiles/field_aggregation.dir/field_aggregation.cpp.o"
  "CMakeFiles/field_aggregation.dir/field_aggregation.cpp.o.d"
  "field_aggregation"
  "field_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
