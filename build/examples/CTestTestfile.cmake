# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_field_aggregation "/root/repo/build/examples/field_aggregation")
set_tests_properties(example_field_aggregation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_maintenance_planner "/root/repo/build/examples/maintenance_planner")
set_tests_properties(example_maintenance_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_field "/root/repo/build/examples/sensor_field")
set_tests_properties(example_sensor_field PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_uav_swarm "/root/repo/build/examples/uav_swarm")
set_tests_properties(example_uav_swarm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
