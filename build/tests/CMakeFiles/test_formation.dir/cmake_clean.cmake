file(REMOVE_RECURSE
  "CMakeFiles/test_formation.dir/test_formation.cpp.o"
  "CMakeFiles/test_formation.dir/test_formation.cpp.o.d"
  "test_formation"
  "test_formation.pdb"
  "test_formation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
