# Empty compiler generated dependencies file for test_formation.
# This may be replaced when dependencies are built.
