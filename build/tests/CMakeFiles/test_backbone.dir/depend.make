# Empty dependencies file for test_backbone.
# This may be replaced when dependencies are built.
