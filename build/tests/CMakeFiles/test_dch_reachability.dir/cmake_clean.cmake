file(REMOVE_RECURSE
  "CMakeFiles/test_dch_reachability.dir/test_dch_reachability.cpp.o"
  "CMakeFiles/test_dch_reachability.dir/test_dch_reachability.cpp.o.d"
  "test_dch_reachability"
  "test_dch_reachability.pdb"
  "test_dch_reachability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dch_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
