# Empty compiler generated dependencies file for test_dch_reachability.
# This may be replaced when dependencies are built.
