# Empty compiler generated dependencies file for test_swim.
# This may be replaced when dependencies are built.
