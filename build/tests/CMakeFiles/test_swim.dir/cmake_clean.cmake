file(REMOVE_RECURSE
  "CMakeFiles/test_swim.dir/test_swim.cpp.o"
  "CMakeFiles/test_swim.dir/test_swim.cpp.o.d"
  "test_swim"
  "test_swim.pdb"
  "test_swim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
