# Empty compiler generated dependencies file for test_logmath.
# This may be replaced when dependencies are built.
