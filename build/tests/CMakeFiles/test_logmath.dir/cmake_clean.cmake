file(REMOVE_RECURSE
  "CMakeFiles/test_logmath.dir/test_logmath.cpp.o"
  "CMakeFiles/test_logmath.dir/test_logmath.cpp.o.d"
  "test_logmath"
  "test_logmath.pdb"
  "test_logmath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
