file(REMOVE_RECURSE
  "CMakeFiles/test_expect.dir/test_expect.cpp.o"
  "CMakeFiles/test_expect.dir/test_expect.cpp.o.d"
  "test_expect"
  "test_expect.pdb"
  "test_expect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
