file(REMOVE_RECURSE
  "CMakeFiles/test_membership_service.dir/test_membership_service.cpp.o"
  "CMakeFiles/test_membership_service.dir/test_membership_service.cpp.o.d"
  "test_membership_service"
  "test_membership_service.pdb"
  "test_membership_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_membership_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
