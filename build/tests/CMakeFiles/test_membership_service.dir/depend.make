# Empty dependencies file for test_membership_service.
# This may be replaced when dependencies are built.
