# Empty dependencies file for test_single_cluster.
# This may be replaced when dependencies are built.
