file(REMOVE_RECURSE
  "CMakeFiles/test_single_cluster.dir/test_single_cluster.cpp.o"
  "CMakeFiles/test_single_cluster.dir/test_single_cluster.cpp.o.d"
  "test_single_cluster"
  "test_single_cluster.pdb"
  "test_single_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
