file(REMOVE_RECURSE
  "CMakeFiles/test_fds_agent.dir/test_fds_agent.cpp.o"
  "CMakeFiles/test_fds_agent.dir/test_fds_agent.cpp.o.d"
  "test_fds_agent"
  "test_fds_agent.pdb"
  "test_fds_agent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fds_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
