# Empty dependencies file for test_fds_agent.
# This may be replaced when dependencies are built.
