file(REMOVE_RECURSE
  "CMakeFiles/cfds_power.dir/duty_cycle.cpp.o"
  "CMakeFiles/cfds_power.dir/duty_cycle.cpp.o.d"
  "libcfds_power.a"
  "libcfds_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
