# Empty dependencies file for cfds_power.
# This may be replaced when dependencies are built.
