file(REMOVE_RECURSE
  "libcfds_power.a"
)
