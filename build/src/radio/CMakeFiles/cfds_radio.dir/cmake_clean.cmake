file(REMOVE_RECURSE
  "CMakeFiles/cfds_radio.dir/channel.cpp.o"
  "CMakeFiles/cfds_radio.dir/channel.cpp.o.d"
  "CMakeFiles/cfds_radio.dir/loss_model.cpp.o"
  "CMakeFiles/cfds_radio.dir/loss_model.cpp.o.d"
  "libcfds_radio.a"
  "libcfds_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
