file(REMOVE_RECURSE
  "libcfds_radio.a"
)
