# Empty compiler generated dependencies file for cfds_radio.
# This may be replaced when dependencies are built.
