file(REMOVE_RECURSE
  "CMakeFiles/cfds_net.dir/graph.cpp.o"
  "CMakeFiles/cfds_net.dir/graph.cpp.o.d"
  "CMakeFiles/cfds_net.dir/mobility.cpp.o"
  "CMakeFiles/cfds_net.dir/mobility.cpp.o.d"
  "CMakeFiles/cfds_net.dir/network.cpp.o"
  "CMakeFiles/cfds_net.dir/network.cpp.o.d"
  "CMakeFiles/cfds_net.dir/node.cpp.o"
  "CMakeFiles/cfds_net.dir/node.cpp.o.d"
  "CMakeFiles/cfds_net.dir/topology.cpp.o"
  "CMakeFiles/cfds_net.dir/topology.cpp.o.d"
  "libcfds_net.a"
  "libcfds_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
