# Empty dependencies file for cfds_net.
# This may be replaced when dependencies are built.
