file(REMOVE_RECURSE
  "libcfds_net.a"
)
