
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/cfds_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/cfds_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/mobility.cpp" "src/net/CMakeFiles/cfds_net.dir/mobility.cpp.o" "gcc" "src/net/CMakeFiles/cfds_net.dir/mobility.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/cfds_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/cfds_net.dir/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/cfds_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/cfds_net.dir/node.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/cfds_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/cfds_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/cfds_event.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/cfds_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
