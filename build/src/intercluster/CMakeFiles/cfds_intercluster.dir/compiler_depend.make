# Empty compiler generated dependencies file for cfds_intercluster.
# This may be replaced when dependencies are built.
