file(REMOVE_RECURSE
  "CMakeFiles/cfds_intercluster.dir/forwarder.cpp.o"
  "CMakeFiles/cfds_intercluster.dir/forwarder.cpp.o.d"
  "CMakeFiles/cfds_intercluster.dir/routing.cpp.o"
  "CMakeFiles/cfds_intercluster.dir/routing.cpp.o.d"
  "libcfds_intercluster.a"
  "libcfds_intercluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_intercluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
