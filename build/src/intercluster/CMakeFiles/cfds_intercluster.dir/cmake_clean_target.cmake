file(REMOVE_RECURSE
  "libcfds_intercluster.a"
)
