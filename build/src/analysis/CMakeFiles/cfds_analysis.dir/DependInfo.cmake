
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/backbone.cpp" "src/analysis/CMakeFiles/cfds_analysis.dir/backbone.cpp.o" "gcc" "src/analysis/CMakeFiles/cfds_analysis.dir/backbone.cpp.o.d"
  "/root/repo/src/analysis/dch_reachability.cpp" "src/analysis/CMakeFiles/cfds_analysis.dir/dch_reachability.cpp.o" "gcc" "src/analysis/CMakeFiles/cfds_analysis.dir/dch_reachability.cpp.o.d"
  "/root/repo/src/analysis/figures.cpp" "src/analysis/CMakeFiles/cfds_analysis.dir/figures.cpp.o" "gcc" "src/analysis/CMakeFiles/cfds_analysis.dir/figures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
