file(REMOVE_RECURSE
  "libcfds_analysis.a"
)
