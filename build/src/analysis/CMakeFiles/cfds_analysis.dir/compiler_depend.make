# Empty compiler generated dependencies file for cfds_analysis.
# This may be replaced when dependencies are built.
