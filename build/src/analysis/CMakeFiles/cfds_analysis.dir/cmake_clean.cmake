file(REMOVE_RECURSE
  "CMakeFiles/cfds_analysis.dir/backbone.cpp.o"
  "CMakeFiles/cfds_analysis.dir/backbone.cpp.o.d"
  "CMakeFiles/cfds_analysis.dir/dch_reachability.cpp.o"
  "CMakeFiles/cfds_analysis.dir/dch_reachability.cpp.o.d"
  "CMakeFiles/cfds_analysis.dir/figures.cpp.o"
  "CMakeFiles/cfds_analysis.dir/figures.cpp.o.d"
  "libcfds_analysis.a"
  "libcfds_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
