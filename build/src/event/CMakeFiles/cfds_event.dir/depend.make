# Empty dependencies file for cfds_event.
# This may be replaced when dependencies are built.
