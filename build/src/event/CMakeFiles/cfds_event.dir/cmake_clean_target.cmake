file(REMOVE_RECURSE
  "libcfds_event.a"
)
