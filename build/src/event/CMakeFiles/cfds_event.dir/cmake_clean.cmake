file(REMOVE_RECURSE
  "CMakeFiles/cfds_event.dir/simulator.cpp.o"
  "CMakeFiles/cfds_event.dir/simulator.cpp.o.d"
  "libcfds_event.a"
  "libcfds_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
