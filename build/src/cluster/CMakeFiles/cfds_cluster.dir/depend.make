# Empty dependencies file for cfds_cluster.
# This may be replaced when dependencies are built.
