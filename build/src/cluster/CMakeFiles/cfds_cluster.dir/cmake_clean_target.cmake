file(REMOVE_RECURSE
  "libcfds_cluster.a"
)
