file(REMOVE_RECURSE
  "CMakeFiles/cfds_cluster.dir/directory.cpp.o"
  "CMakeFiles/cfds_cluster.dir/directory.cpp.o.d"
  "CMakeFiles/cfds_cluster.dir/formation.cpp.o"
  "CMakeFiles/cfds_cluster.dir/formation.cpp.o.d"
  "CMakeFiles/cfds_cluster.dir/membership.cpp.o"
  "CMakeFiles/cfds_cluster.dir/membership.cpp.o.d"
  "libcfds_cluster.a"
  "libcfds_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
