
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/directory.cpp" "src/cluster/CMakeFiles/cfds_cluster.dir/directory.cpp.o" "gcc" "src/cluster/CMakeFiles/cfds_cluster.dir/directory.cpp.o.d"
  "/root/repo/src/cluster/formation.cpp" "src/cluster/CMakeFiles/cfds_cluster.dir/formation.cpp.o" "gcc" "src/cluster/CMakeFiles/cfds_cluster.dir/formation.cpp.o.d"
  "/root/repo/src/cluster/membership.cpp" "src/cluster/CMakeFiles/cfds_cluster.dir/membership.cpp.o" "gcc" "src/cluster/CMakeFiles/cfds_cluster.dir/membership.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cfds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/cfds_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/cfds_event.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
