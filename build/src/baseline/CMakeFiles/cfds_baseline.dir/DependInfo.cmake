
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/flooding.cpp" "src/baseline/CMakeFiles/cfds_baseline.dir/flooding.cpp.o" "gcc" "src/baseline/CMakeFiles/cfds_baseline.dir/flooding.cpp.o.d"
  "/root/repo/src/baseline/gossip_fd.cpp" "src/baseline/CMakeFiles/cfds_baseline.dir/gossip_fd.cpp.o" "gcc" "src/baseline/CMakeFiles/cfds_baseline.dir/gossip_fd.cpp.o.d"
  "/root/repo/src/baseline/swim.cpp" "src/baseline/CMakeFiles/cfds_baseline.dir/swim.cpp.o" "gcc" "src/baseline/CMakeFiles/cfds_baseline.dir/swim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fds/CMakeFiles/cfds_fds.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cfds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/cfds_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cfds_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/cfds_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cfds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
