file(REMOVE_RECURSE
  "libcfds_baseline.a"
)
