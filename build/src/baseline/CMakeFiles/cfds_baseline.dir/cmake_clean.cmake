file(REMOVE_RECURSE
  "CMakeFiles/cfds_baseline.dir/flooding.cpp.o"
  "CMakeFiles/cfds_baseline.dir/flooding.cpp.o.d"
  "CMakeFiles/cfds_baseline.dir/gossip_fd.cpp.o"
  "CMakeFiles/cfds_baseline.dir/gossip_fd.cpp.o.d"
  "CMakeFiles/cfds_baseline.dir/swim.cpp.o"
  "CMakeFiles/cfds_baseline.dir/swim.cpp.o.d"
  "libcfds_baseline.a"
  "libcfds_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
