# Empty dependencies file for cfds_baseline.
# This may be replaced when dependencies are built.
