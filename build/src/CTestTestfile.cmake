# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("event")
subdirs("power")
subdirs("radio")
subdirs("net")
subdirs("cluster")
subdirs("fds")
subdirs("intercluster")
subdirs("aggregation")
subdirs("analysis")
subdirs("baseline")
subdirs("sim")
