# Empty dependencies file for cfds_common.
# This may be replaced when dependencies are built.
