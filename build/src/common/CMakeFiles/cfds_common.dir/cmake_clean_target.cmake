file(REMOVE_RECURSE
  "libcfds_common.a"
)
