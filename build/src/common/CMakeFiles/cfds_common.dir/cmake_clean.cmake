file(REMOVE_RECURSE
  "CMakeFiles/cfds_common.dir/geometry.cpp.o"
  "CMakeFiles/cfds_common.dir/geometry.cpp.o.d"
  "CMakeFiles/cfds_common.dir/logmath.cpp.o"
  "CMakeFiles/cfds_common.dir/logmath.cpp.o.d"
  "CMakeFiles/cfds_common.dir/statistics.cpp.o"
  "CMakeFiles/cfds_common.dir/statistics.cpp.o.d"
  "libcfds_common.a"
  "libcfds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
