file(REMOVE_RECURSE
  "libcfds_aggregation.a"
)
