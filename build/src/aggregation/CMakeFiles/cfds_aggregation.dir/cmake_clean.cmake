file(REMOVE_RECURSE
  "CMakeFiles/cfds_aggregation.dir/service.cpp.o"
  "CMakeFiles/cfds_aggregation.dir/service.cpp.o.d"
  "libcfds_aggregation.a"
  "libcfds_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
