# Empty dependencies file for cfds_aggregation.
# This may be replaced when dependencies are built.
