# Empty dependencies file for cfds_sim.
# This may be replaced when dependencies are built.
