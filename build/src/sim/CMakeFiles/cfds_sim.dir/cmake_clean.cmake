file(REMOVE_RECURSE
  "CMakeFiles/cfds_sim.dir/fast_mc.cpp.o"
  "CMakeFiles/cfds_sim.dir/fast_mc.cpp.o.d"
  "CMakeFiles/cfds_sim.dir/metrics.cpp.o"
  "CMakeFiles/cfds_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/cfds_sim.dir/scenario.cpp.o"
  "CMakeFiles/cfds_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/cfds_sim.dir/single_cluster.cpp.o"
  "CMakeFiles/cfds_sim.dir/single_cluster.cpp.o.d"
  "libcfds_sim.a"
  "libcfds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
