file(REMOVE_RECURSE
  "libcfds_sim.a"
)
