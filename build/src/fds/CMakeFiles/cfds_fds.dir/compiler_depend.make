# Empty compiler generated dependencies file for cfds_fds.
# This may be replaced when dependencies are built.
