file(REMOVE_RECURSE
  "CMakeFiles/cfds_fds.dir/agent.cpp.o"
  "CMakeFiles/cfds_fds.dir/agent.cpp.o.d"
  "CMakeFiles/cfds_fds.dir/detector.cpp.o"
  "CMakeFiles/cfds_fds.dir/detector.cpp.o.d"
  "libcfds_fds.a"
  "libcfds_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
