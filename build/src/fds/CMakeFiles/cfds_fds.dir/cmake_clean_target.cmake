file(REMOVE_RECURSE
  "libcfds_fds.a"
)
