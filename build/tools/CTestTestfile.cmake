# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_cfds_cli "/root/repo/build/tools/cfds_cli" "--nodes" "150" "--epochs" "3" "--crash-rate" "1" "--trace")
set_tests_properties(tool_cfds_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_cfds_figures "/root/repo/build/tools/cfds_figures" "fig5")
set_tests_properties(tool_cfds_figures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
