file(REMOVE_RECURSE
  "CMakeFiles/cfds_figures.dir/cfds_figures.cpp.o"
  "CMakeFiles/cfds_figures.dir/cfds_figures.cpp.o.d"
  "cfds_figures"
  "cfds_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
