# Empty dependencies file for cfds_figures.
# This may be replaced when dependencies are built.
