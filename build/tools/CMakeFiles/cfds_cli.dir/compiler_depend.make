# Empty compiler generated dependencies file for cfds_cli.
# This may be replaced when dependencies are built.
