file(REMOVE_RECURSE
  "CMakeFiles/cfds_cli.dir/cfds_cli.cpp.o"
  "CMakeFiles/cfds_cli.dir/cfds_cli.cpp.o.d"
  "cfds_cli"
  "cfds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
