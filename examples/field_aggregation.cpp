// In-network aggregation with FDS piggybacking (Section 6).
//
// A 350-sensor field measures temperature. Every FDS execution, each sensor
// emits one MeasurementPayload that simultaneously
//   * carries its reading to the clusterhead (aggregation), and
//   * serves as its heartbeat (failure detection) — no separate frame.
// Clusterheads fold readings into per-cluster aggregates, flood them over
// the gateway backbone, and any clusterhead can answer global queries.
// Midway, a heat event raises readings in one corner and a sensor dies;
// the same frames carry both stories.

#include <cmath>
#include <cstdio>
#include <memory>

#include "aggregation/service.h"
#include "cluster/directory.h"
#include "net/topology.h"
#include "sim/metrics.h"

int main() {
  using namespace cfds;

  constexpr std::size_t kNodes = 350;
  constexpr double kWidth = 600.0;
  constexpr double kHeight = 400.0;

  NetworkConfig net_config;
  net_config.seed = 808;
  Network network(net_config, std::make_unique<BernoulliLoss>(0.1));
  Rng placement(808);
  const auto positions = uniform_rect(kNodes, kWidth, kHeight, placement);
  network.add_nodes(positions);
  const auto directory = ClusterDirectory::build(positions, 100.0);

  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    views.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs.push_back(views.back().get());
  }
  directory.install(network, ptrs);

  FdsConfig fds_config;
  fds_config.heartbeat_interval = SimTime::seconds(2);
  fds_config.external_heartbeats = true;  // measurements ARE heartbeats
  FdsService fds(network, ptrs, fds_config);
  MetricsCollector metrics;
  metrics.attach(fds, network);

  // Temperature field: ambient 18C; from epoch 4, a hot spot grows around
  // the north-east corner.
  bool heat_event = false;
  AggregationService aggregation(
      network, fds, ptrs, [&](NodeId node, std::uint64_t) {
        const Vec2 pos = network.node(node).position();
        double temperature = 18.0 + 0.01 * pos.y;
        if (heat_event) {
          const double d = distance(pos, {kWidth, kHeight});
          temperature += 25.0 * std::exp(-d / 120.0);
        }
        return temperature;
      });

  std::printf("field up: %zu sensors, %zu clusters; measurements double as"
              " heartbeats\n\n",
              kNodes, directory.clusters().size());
  std::printf("%-6s %8s %8s %8s %8s %8s\n", "epoch", "sensors", "avg C",
              "max C", "alarms", "false+");

  NodeId victim = NodeId::invalid();
  for (const ClusterView& cluster : directory.clusters()) {
    if (!cluster.members.empty()) victim = cluster.members.back();
  }

  for (std::uint64_t epoch = 0; epoch < 10; ++epoch) {
    if (epoch == 4) {
      heat_event = true;
      std::printf("       *** heat event begins in the NE corner ***\n");
    }
    if (epoch == 6) {
      network.crash(victim);
      std::printf("       *** sensor %u burns out ***\n", victim.value());
    }
    aggregation.schedule_epoch(epoch,
                               SimTime::seconds(2 * std::int64_t(epoch)));
    network.simulator().run_until(SimTime::seconds(2 * std::int64_t(epoch + 1)));

    // Read the global view at the best-informed clusterhead (any base
    // station would do the same).
    Aggregate best;
    for (AggregationAgent* agent : aggregation.agents()) {
      if (!ptrs[agent->id().value()]->is_clusterhead()) continue;
      if (!network.node(agent->id()).alive()) continue;
      const Aggregate view = agent->global_view(epoch);
      if (view.count > best.count) best = view;
    }
    const bool alarm = best.max > 30.0;
    std::printf("%-6llu %8llu %8.2f %8.2f %8s %8zu\n",
                static_cast<unsigned long long>(epoch), static_cast<unsigned long long>(best.count),
                best.average(), best.max, alarm ? "HEAT" : "-",
                metrics.false_detections());
  }

  const auto detection = metrics.first_detection(victim);
  std::printf("\nburned-out sensor %u %s (no dedicated heartbeat frames were"
              " ever sent)\n",
              victim.value(),
              detection ? "was detected by the shared frames" : "NOT detected");
  const auto totals = traffic_totals(network);
  std::printf("total traffic: %llu frames, %llu bytes over 10 epochs\n",
              static_cast<unsigned long long>(totals.frames),
              static_cast<unsigned long long>(totals.bytes));
  return 0;
}
