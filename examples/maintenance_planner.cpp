// Maintenance planning from FDS telemetry.
//
// Section 1: health information "would aid in maintenance scheduling for the
// deployment of additional resources to the field", while "excessive false
// detections will increase maintenance cost significantly and unnecessarily"
// (Section 2.1). This example turns the FDS's failure stream into the two
// numbers a maintenance planner needs —
//   * estimated attrition rate (failures per hour, from detection
//     timestamps), and
//   * projected time until the population crosses the capacity floor —
// and compares the cost of acting on FDS reports against acting on ground
// truth: every false detection is a wasted replacement unit.

#include <cstdio>
#include <vector>

#include "sim/scenario.h"

int main() {
  using namespace cfds;

  ScenarioConfig config;
  config.width = 650.0;
  config.height = 420.0;
  config.node_count = 450;
  config.loss_p = 0.25;  // rough conditions: loss high enough to test accuracy
  config.heartbeat_interval = SimTime::seconds(2);
  config.seed = 555;

  Scenario scenario(config);
  scenario.setup();
  std::printf("deployment: %zu nodes, %zu clusters, p=%.2f\n\n",
              config.node_count, scenario.cluster_count(), config.loss_p);

  // A steady attrition process: one failure roughly every 1.7 epochs.
  Rng attrition(31337);
  std::vector<std::pair<NodeId, SimTime>> casualties;

  const int kEpochs = 24;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    if (attrition.below(5) < 3) {
      std::vector<NodeId> candidates;
      for (MembershipView* view : scenario.views()) {
        if (view->role() == Role::kOrdinaryMember &&
            scenario.network().node(view->self()).alive()) {
          candidates.push_back(view->self());
        }
      }
      if (!candidates.empty()) {
        const NodeId victim = candidates[attrition.below(candidates.size())];
        scenario.network().crash(victim);
        casualties.emplace_back(victim,
                                scenario.network().simulator().now());
      }
    }
    scenario.run_epochs(1);
  }

  // --- Planner inputs derived purely from FDS telemetry ---------------
  const auto& detections = scenario.metrics().detections();
  std::size_t reported_failures = 0;
  double latency_sum = 0.0;
  std::size_t latency_samples = 0;
  for (const auto& [victim, when] : casualties) {
    if (const auto d = scenario.metrics().first_detection(victim)) {
      ++reported_failures;
      latency_sum += (d->when - when).as_seconds();
      ++latency_samples;
    }
  }
  const double horizon_hours =
      scenario.network().simulator().now().as_seconds() / 3600.0;
  const double rate_per_hour = double(reported_failures) / horizon_hours;
  const std::size_t alive_reported =
      config.node_count - reported_failures;
  const std::size_t capacity_floor = 400;
  const double hours_to_floor =
      rate_per_hour > 0.0
          ? double(alive_reported - capacity_floor) / rate_per_hour
          : -1.0;

  std::printf("planner inputs (from FDS reports only):\n");
  std::printf("  reported failures:        %zu\n", reported_failures);
  std::printf("  mean detection latency:   %.1f s\n",
              latency_samples ? latency_sum / double(latency_samples) : 0.0);
  std::printf("  estimated attrition rate: %.1f nodes/hour\n", rate_per_hour);
  std::printf("  reported population:      %zu (floor %zu)\n", alive_reported,
              capacity_floor);
  if (hours_to_floor >= 0.0) {
    std::printf("  projected floor breach:   in %.2f hours -> schedule a"
                " resupply mission\n",
                hours_to_floor);
  }

  // --- Cost of errors ---------------------------------------------------
  const std::size_t false_detections = scenario.metrics().false_detections();
  std::printf("\nerror costs:\n");
  std::printf("  actual casualties:   %zu\n", casualties.size());
  std::printf("  missed (backlog):    %zu\n",
              casualties.size() - reported_failures);
  std::printf("  false detections:    %zu  (each one = a replacement unit"
              " shipped for a healthy node)\n",
              false_detections);
  std::printf("  detection decisions: %zu\n", detections.size());

  const double waste_ratio =
      detections.empty()
          ? 0.0
          : double(false_detections) / double(detections.size());
  std::printf("\nwith the paper's redundancy-exploiting rule, %.1f%% of"
              " maintenance actions would be wasted at p=%.2f.\n",
              100.0 * waste_ratio, config.loss_p);
  std::printf("(for contrast, a heartbeat-only detector false-suspects each"
              " member with probability p=%.2f every epoch — thousands of"
              " phantom casualties over this window.)\n",
              config.loss_p);
  return 0;
}
