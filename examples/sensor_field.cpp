// Sensor field monitoring — the paper's motivating application (Sections
// 1-2): an air-dropped sensor network whose operations team must be "kept
// updated on the network's health" so that capacity exhaustion is caught
// early and replenishment can be scheduled.
//
// Simulates 20 FDS executions over a 500-node field with random sensor
// attrition. Each epoch prints the operations view: true population vs what
// the FDS reports and the completeness of the latest casualty. When the
// reported population crosses the capacity threshold, a replenishment drop
// is released; the newcomers join the running system through
// unmarked-heartbeat subscription (feature F5) — no redeployment of the
// cluster structure.

#include <cstdio>
#include <vector>

#include "sim/scenario.h"

int main() {
  using namespace cfds;

  ScenarioConfig config;
  config.width = 700.0;
  config.height = 450.0;
  config.node_count = 500;
  config.loss_p = 0.15;  // harsh RF environment
  config.heartbeat_interval = SimTime::seconds(2);
  config.seed = 404;

  Scenario scenario(config);
  scenario.setup();
  std::printf("sensor field deployed: %zu sensors, %zu clusters\n",
              config.node_count, scenario.cluster_count());

  Rng chaos(777);
  const std::size_t capacity_threshold = 480;
  std::size_t deployed_total = config.node_count;
  std::vector<NodeId> casualties;

  auto detected_count = [&] {
    std::size_t n = 0;
    for (NodeId c : casualties) {
      if (scenario.metrics().first_detection(c)) ++n;
    }
    return n;
  };

  std::printf("\n%-6s %8s %10s %10s %12s %10s\n", "epoch", "alive",
              "reported", "backlog", "coverage", "false+");

  for (int epoch = 0; epoch < 20; ++epoch) {
    // Attrition: each epoch 0-3 sensors die (battery, weather, wildlife).
    const auto deaths = chaos.below(4);
    for (std::uint64_t d = 0; d < deaths; ++d) {
      std::vector<NodeId> alive_members;
      for (MembershipView* view : scenario.views()) {
        if (view->role() == Role::kOrdinaryMember &&
            scenario.network().node(view->self()).alive()) {
          alive_members.push_back(view->self());
        }
      }
      if (alive_members.empty()) break;
      const NodeId victim = alive_members[chaos.below(alive_members.size())];
      scenario.network().crash(victim);
      casualties.push_back(victim);
    }

    scenario.run_epochs(1);

    // Operations view: the report a base-station clusterhead would transmit
    // upstream. We read the best-informed alive clusterhead.
    std::size_t known_failed = 0;
    for (FdsAgent* agent : scenario.fds().agents()) {
      if (!agent->view().is_clusterhead()) continue;
      if (!scenario.network().node(agent->id()).alive()) continue;
      known_failed = std::max(known_failed, agent->log().size());
    }

    const std::size_t truly_alive = scenario.network().alive_count();
    const std::size_t reported_alive = deployed_total - known_failed;
    const double coverage =
        casualties.empty()
            ? 1.0
            : knowledge_coverage(scenario.fds(), scenario.network(),
                                 casualties.back());

    std::printf("%-6d %8zu %10zu %10zu %12.2f %10zu\n", epoch, truly_alive,
                reported_alive, casualties.size() - detected_count(),
                coverage, scenario.metrics().false_detections());

    // Early-warning logic (Section 1): reported capacity below the
    // threshold schedules a replenishment drop.
    if (reported_alive < capacity_threshold) {
      const std::size_t drop = capacity_threshold + 10 - reported_alive;
      const auto added = scenario.replenish(drop);
      deployed_total += added.size();
      std::printf("       >>> capacity %zu < %zu: dropping %zu replacement"
                  " sensors (they self-subscribe) <<<\n",
                  reported_alive, capacity_threshold, added.size());
    }
  }

  // Two extra executions give the last drop time to self-subscribe.
  scenario.run_epochs(2);

  // Replenished sensors near a clusterhead have been admitted by now;
  // stragglers outside every CH's range wait for a formation iteration.
  std::size_t affiliated_newcomers = 0, newcomers = 0;
  for (MembershipView* view : scenario.views()) {
    if (view->self().value() >= config.node_count) {
      ++newcomers;
      if (view->affiliated()) ++affiliated_newcomers;
    }
  }

  std::printf("\nfinal: %zu casualties injected, %zu detected, %zu false"
              " detections\n",
              casualties.size(), detected_count(),
              scenario.metrics().false_detections());
  std::printf("replenishment: %zu dropped, %zu admitted to clusters via"
              " F5 subscription\n",
              newcomers, affiliated_newcomers);
  return 0;
}
