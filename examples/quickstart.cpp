// Quickstart: stand up a small ad hoc deployment, crash a node, and watch
// the cluster-based failure detection service find it and tell everyone.
//
//   $ ./quickstart
//
// Walks through the minimal public API: ScenarioConfig -> Scenario ->
// setup() -> crash -> run_epochs() -> metrics.

#include <cstdio>

#include "sim/scenario.h"

int main() {
  using namespace cfds;

  // 1. Describe the deployment: 300 hosts on a 600 x 400 m field, 100 m
  //    radios, 10% frame loss, one FDS execution every 2 s.
  ScenarioConfig config;
  config.width = 600.0;
  config.height = 400.0;
  config.node_count = 300;
  config.range = 100.0;
  config.loss_p = 0.10;
  config.heartbeat_interval = SimTime::seconds(2);
  config.seed = 2026;

  // 2. Deploy: places the nodes and forms the cluster hierarchy
  //    (clusterheads, deputies, gateways, backup gateways).
  Scenario scenario(config);
  scenario.setup();
  std::printf("deployed %zu nodes into %zu clusters (%.0f%% affiliated)\n",
              config.node_count, scenario.cluster_count(),
              100.0 * scenario.affiliation_rate());

  // 3. Let the service run one quiet execution.
  scenario.run_epochs(1);
  std::printf("epoch 0: %zu detections (expected: 0)\n",
              scenario.metrics().detections().size());

  // 4. Kill a node between executions (fail-stop).
  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  const SimTime crash_time = scenario.network().simulator().now();
  scenario.network().crash(victim);
  std::printf("\n*** node %u crashes at t=%.1fs ***\n\n", victim.value(),
              crash_time.as_seconds());

  // 5. The next execution detects it; the following ones spread the news
  //    across the backbone.
  scenario.run_epochs(3);

  const auto detection = scenario.metrics().first_detection(victim);
  if (detection) {
    std::printf("detected by node %u in epoch %llu, %.1fs after the crash\n",
                detection->decider.value(),
                static_cast<unsigned long long>(detection->epoch),
                (detection->when - crash_time).as_seconds());
  } else {
    std::printf("NOT detected (unexpected)\n");
  }
  std::printf("completeness: %.1f%% of operational nodes know\n",
              100.0 * knowledge_coverage(scenario.fds(), scenario.network(),
                                         victim));
  std::printf("accuracy:     %zu false detections so far\n",
              scenario.metrics().false_detections());

  const auto traffic = traffic_totals(scenario.network());
  std::printf("\ntotal radio traffic: %llu frames, %llu bytes (%.1f B/node/epoch)\n",
              static_cast<unsigned long long>(traffic.frames),
              static_cast<unsigned long long>(traffic.bytes),
              double(traffic.bytes) / double(config.node_count) / 4.0);
  return 0;
}
