// Micro-UAV swarm — leadership loss under fire.
//
// The paper names "micro-UAV or nano-satellite swarms" among its target
// applications. This example stages the FDS's hardest scenario: the
// clusterhead of a formation is destroyed mid-mission over a *lossy* channel
// (p = 0.2). It traces, event by event, how
//   1. the highest-ranked deputy applies the CH-failure detection rule
//      (heartbeat + digest + missing R-3 update) and takes over,
//   2. members outside the new leader's radio range recover the takeover
//      update through peer forwarding,
//   3. gateways carry the report to the neighbouring formations, which
//      acknowledge implicitly by relaying.

#include <cstdio>
#include <vector>

#include "sim/scenario.h"

int main() {
  using namespace cfds;

  ScenarioConfig config;
  config.width = 650.0;
  config.height = 420.0;
  config.node_count = 420;
  config.loss_p = 0.20;
  config.heartbeat_interval = SimTime::seconds(1);
  config.seed = 1942;

  Scenario scenario(config);
  scenario.setup();

  // Pick a well-populated formation and identify its command structure.
  const ClusterView* formation = nullptr;
  for (MembershipView* view : scenario.views()) {
    if (view->is_clusterhead() &&
        (formation == nullptr ||
         view->cluster()->population() > formation->population())) {
      formation = &*view->cluster();
    }
  }
  const NodeId leader = formation->clusterhead;
  const NodeId deputy = formation->deputies.front();
  std::printf("swarm up: %zu UAVs in %zu formations\n", config.node_count,
              scenario.cluster_count());
  std::printf("watching formation %u: leader=UAV-%u deputy=UAV-%u wingmen=%zu"
              " links=%zu\n\n",
              formation->id.value(), leader.value(), deputy.value(),
              formation->members.size(), formation->links.size());

  // Trace the protocol's decisions (chained so the metrics collector that
  // Scenario installed keeps seeing them too).
  chain_hook(scenario.fds().hooks().on_takeover,
             std::function([&](NodeId who, NodeId old_ch,
                               std::uint64_t epoch) {
    std::printf("  [epoch %llu] UAV-%u: leader UAV-%u silent on all three"
                " evidence channels -> assuming command\n",
                static_cast<unsigned long long>(epoch), who.value(), old_ch.value());
  }));
  chain_hook(scenario.fds().hooks().on_detection,
             std::function([&](NodeId decider, std::uint64_t epoch,
                               const std::vector<NodeId>& failed,
                               bool by_deputy) {
        for (NodeId f : failed) {
          std::printf("  [epoch %llu] %s UAV-%u reports UAV-%u down\n",
                      static_cast<unsigned long long>(epoch),
                      by_deputy ? "deputy" : "leader", decider.value(),
                      f.value());
        }
      }));

  scenario.run_epochs(2);
  std::printf("two quiet epochs: %zu detections, all formations nominal\n\n",
              scenario.metrics().detections().size());

  std::printf("*** UAV-%u (formation leader) is destroyed ***\n\n",
              leader.value());
  scenario.network().crash(leader);
  scenario.run_epochs(3);

  // Aftermath: command structure and swarm-wide knowledge.
  const MembershipView* deputy_view = scenario.views()[deputy.value()];
  std::printf("\naftermath:\n");
  std::printf("  formation %u now led by UAV-%u (%s)\n",
              deputy_view->cluster()->id.value(),
              deputy_view->cluster()->clusterhead.value(),
              deputy_view->is_clusterhead() ? "the former deputy"
                                            : "unexpected");
  std::printf("  swarm-wide awareness of the loss: %.1f%%\n",
              100.0 * knowledge_coverage(scenario.fds(), scenario.network(),
                                         leader));
  std::printf("  false detections under 20%% frame loss: %zu"
              " (a member outside the new leader's radio range can be"
              " falsely reported\n   — the Figure 2(a) accuracy hazard the"
              " digest round makes rare)\n",
              scenario.metrics().false_detections());

  // The new leader keeps the formation running: lose a wingman.
  const NodeId wingman = deputy_view->cluster()->members.front();
  std::printf("\n*** wingman UAV-%u is lost next ***\n\n", wingman.value());
  scenario.network().crash(wingman);
  scenario.run_epochs(2);
  const auto detection = scenario.metrics().first_detection(wingman);
  if (detection && detection->decider == deputy) {
    std::printf("\nthe new leader detected and reported the loss — command"
                " transfer is complete.\n");
  } else if (detection) {
    std::printf("\nloss detected by UAV-%u.\n", detection->decider.value());
  }
  return 0;
}
