// Inter-cluster forwarding study (Section 4.3): delivery probability and
// frame cost of a failure report crossing a cluster boundary, comparing
//   implicit acks + ranked BGW assistance   (the paper's scheme)
//   implicit acks, no BGW assistance        (ablation)
//   explicit two-acknowledgement handshake  (the strawman the paper rejects
//                                            as "not acceptable due to
//                                            energy limitations")
// under increasing message loss.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "fds/agent.h"
#include "intercluster/forwarder.h"
#include "net/network.h"
#include "sim/metrics.h"

namespace {

using namespace cfds;

struct TrialResult {
  bool delivered = false;
  std::uint64_t forwarding_frames = 0;  // frames attributable to Section 4.3
};

/// One trial: a fresh two-cluster bridge, one member crash, one FDS
/// execution plus drain time; did the report reach the far CH and at what
/// forwarding cost?
TrialResult run_trial(double p, std::size_t num_backups,
                      ForwarderConfig fwd_config, std::uint64_t seed) {
  NetworkConfig net_config;
  net_config.seed = seed;
  Network network(net_config, std::make_unique<BernoulliLoss>(p));
  network.add_node({0.0, 0.0});     // 0: CH A
  network.add_node({160.0, 0.0});   // 1: CH B
  network.add_node({-20.0, 10.0});  // 2: A deputy
  network.add_node({20.0, -25.0});  // 3: A member
  network.add_node({10.0, 30.0});   // 4: victim
  network.add_node({175.0, 15.0});  // 5: B deputy
  network.add_node({140.0, -15.0}); // 6: B member
  network.add_node({80.0, 0.0});    // 7: GW
  network.add_node({80.0, 15.0});   // 8: BGW rank 1
  network.add_node({80.0, -15.0});  // 9: BGW rank 2

  ClusterView a;
  a.id = ClusterId{0};
  a.clusterhead = NodeId{0};
  a.members = {NodeId{2}, NodeId{3}, NodeId{4},
               NodeId{7}, NodeId{8}, NodeId{9}};
  a.deputies = {NodeId{2}};
  ClusterView b;
  b.id = ClusterId{1};
  b.clusterhead = NodeId{1};
  b.members = {NodeId{5}, NodeId{6}};
  b.deputies = {NodeId{5}};
  GatewayLink ab;
  ab.neighbor_cluster = b.id;
  ab.neighbor_clusterhead = b.clusterhead;
  ab.gateway = NodeId{7};
  if (num_backups >= 1) ab.backups.push_back(NodeId{8});
  if (num_backups >= 2) ab.backups.push_back(NodeId{9});
  a.links.push_back(ab);
  GatewayLink ba = ab;
  ba.neighbor_cluster = a.id;
  ba.neighbor_clusterhead = a.clusterhead;
  b.links.push_back(ba);

  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  for (std::uint32_t i = 0; i < 10; ++i) {
    views.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs.push_back(views.back().get());
  }
  for (const ClusterView* cv : {&a, &b}) {
    ptrs[cv->clusterhead.value()]->set_cluster(*cv);
    network.node(cv->clusterhead).set_marked(true);
    for (NodeId m : cv->members) {
      ptrs[m.value()]->set_cluster(*cv);
      network.node(m).set_marked(true);
    }
  }

  FdsConfig fds_config;
  fds_config.heartbeat_interval = SimTime::seconds(5);
  FdsService fds(network, ptrs, fds_config);
  ForwarderService forwarder(network, fds, ptrs, fwd_config);

  network.crash(NodeId{4});
  fds.schedule_epoch(0, SimTime::zero());
  network.simulator().run_until(SimTime::seconds(5));

  TrialResult result;
  result.delivered = fds.agent_for(NodeId{1}).log().knows(NodeId{4});
  const ForwarderStats& stats = forwarder.stats();
  result.forwarding_frames = stats.reports_forwarded + stats.gw_retries +
                             stats.bgw_assists + stats.ch_retransmissions +
                             stats.explicit_acks + stats.reports_received;
  // reports_received counts the relay/ack emissions by the receiving CH.
  return result;
}

void print_study() {
  bench::banner("Section 4.3", "across-cluster report delivery vs loss");
  constexpr int kTrials = 500;

  struct Scheme {
    const char* name;
    std::size_t backups;
    ForwarderConfig config;
  };
  std::vector<Scheme> schemes;
  schemes.push_back({"implicit+2BGW", 2, ForwarderConfig{}});
  ForwarderConfig no_bgw;
  no_bgw.bgw_assist = false;
  schemes.push_back({"implicit,noBGW", 0, no_bgw});
  ForwarderConfig explicit_acks;
  explicit_acks.ack_mode = AckMode::kExplicit;
  schemes.push_back({"explicit+2BGW", 2, explicit_acks});

  std::printf("\n(%d trials per point; 'frames' = forwarding-layer frames per"
              " trial)\n", kTrials);
  std::printf("%-6s", "p");
  for (const Scheme& s : schemes) {
    std::printf("  %14s  %10s", s.name, "frames");
  }
  std::printf("\n");

  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::printf("%-6.2f", p);
    for (const Scheme& scheme : schemes) {
      int delivered = 0;
      std::uint64_t frames = 0;
      for (int t = 0; t < kTrials; ++t) {
        const TrialResult r =
            run_trial(p, scheme.backups, scheme.config,
                      std::uint64_t(t) * 977 + std::uint64_t(p * 1000));
        if (r.delivered) ++delivered;
        frames += r.forwarding_frames;
      }
      std::printf("  %14s  %10.2f",
                  bench::fixed_cell(double(delivered) / kTrials, 3).c_str(),
                  double(frames) / kTrials);
    }
    std::printf("\n");
  }
  std::printf("\nReading: BGW assistance holds delivery near 1 deep into the"
              " loss range at sub-explicit frame cost; the explicit scheme"
              " pays two acknowledgements per hop even at p = 0.\n");
}

void BM_BridgeTrial(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_trial(0.2, 2, ForwarderConfig{}, seed++).delivered);
  }
}
BENCHMARK(BM_BridgeTrial);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_study();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
