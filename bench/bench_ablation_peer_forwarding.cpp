// Ablation: intra-cluster peer forwarding (Section 4.2's completeness
// enhancement). Without it a member misses the health-status update with the
// raw loss probability p; with it the miss probability collapses to
// p * (1 - q(1-p)^3)^(N-2).

#include <benchmark/benchmark.h>

#include "analysis/figures.h"
#include "bench/bench_util.h"
#include "sim/fast_mc.h"
#include "sim/single_cluster.h"

namespace {

using namespace cfds;

constexpr long kTrials = 300000;

void print_ablation() {
  bench::banner("Ablation", "incompleteness with/without peer forwarding");
  for (int n : {50, 100}) {
    std::printf("\n-- N = %d  (semantic MC, %ld trials/point) --\n", n,
                kTrials);
    bench::table_header(
        {"without MC", "ref p", "with MC", "ref closed", "gain"});
    Rng rng(0xAB2 + std::uint64_t(n));
    for (int i = 0; i < analysis::sweep_points(); ++i) {
      const double p = analysis::sweep_p(i);
      FastMcConfig with;
      with.n = n;
      with.p = p;
      FastMcConfig without = with;
      without.peer_forwarding = false;
      const double mc_without =
          mc_incompleteness(without, kTrials, rng).estimate();
      const auto mc_with = mc_incompleteness(with, kTrials, rng);
      const double closed = analysis::incompleteness_upper_bound(p, n);
      bench::table_row(
          p, std::vector<std::string>{
                 bench::sci_cell(mc_without), bench::sci_cell(p),
                 closed * kTrials >= 10.0 ? bench::sci_cell(mc_with.estimate())
                                          : std::string("<floor"),
                 bench::sci_cell(closed),
                 bench::fixed_cell(p / closed, 1) + "x"});
    }
  }

  std::printf("\n-- full protocol stack confirmation (N = 20, p = 0.5) --\n");
  for (bool enabled : {true, false}) {
    SingleClusterConfig config;
    config.n = 20;
    config.p = 0.5;
    config.seed = 0xAB3;
    config.num_deputies = 0;
    config.peer_forwarding = enabled;
    SingleClusterExperiment experiment(config);
    const auto estimate = experiment.run_incompleteness(8000);
    std::printf("  peer forwarding %-3s  ->  %s\n", enabled ? "ON" : "OFF",
                bench::mc_cell(estimate.estimate(), estimate.ci99()).c_str());
  }
}

void BM_PeerForwardingTrialCost(benchmark::State& state) {
  Rng rng(13);
  FastMcConfig config;
  config.n = 75;
  config.p = 0.3;
  config.peer_forwarding = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc_incompleteness(config, 1000, rng).trials());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PeerForwardingTrialCost)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_ablation();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
