// Aggregation piggybacking (Section 6's concluding proposal): embedding the
// FDS in data-aggregation traffic so one frame serves both services.
//
// Quantifies the two claimed benefits on a live multi-cluster deployment:
//   1. energy — frames and bytes per epoch with separate heartbeats vs
//      measurement frames that ARE heartbeats;
//   2. fidelity — the global aggregate every CH reconstructs from backbone
//      flooding, vs ground truth, as loss increases (failure detection
//      keeps running off the same frames throughout).

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "aggregation/service.h"
#include "bench/bench_util.h"
#include "cluster/directory.h"
#include "net/topology.h"
#include "sim/metrics.h"

namespace {

using namespace cfds;

constexpr std::size_t kNodes = 300;

struct Deployment {
  Deployment(bool share, double loss_p, std::uint64_t seed = 47) {
    NetworkConfig net_config;
    net_config.seed = seed;
    network = std::make_unique<Network>(
        net_config, std::make_unique<BernoulliLoss>(loss_p));
    Rng placement(seed);
    const auto positions = uniform_rect(kNodes, 550.0, 400.0, placement);
    network->add_nodes(positions);
    const auto directory = ClusterDirectory::build(positions, 100.0);
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      views.push_back(std::make_unique<MembershipView>(NodeId{i}));
      ptrs.push_back(views.back().get());
    }
    directory.install(*network, ptrs);

    FdsConfig fds_config;
    fds_config.heartbeat_interval = SimTime::seconds(2);
    fds_config.external_heartbeats = share;
    fds = std::make_unique<FdsService>(*network, ptrs, fds_config);
    aggregation = std::make_unique<AggregationService>(
        *network, *fds, ptrs, [](NodeId node, std::uint64_t) {
          // Synthetic temperature field: position-stable pseudo-readings.
          std::uint64_t sm = node.value() * 2654435761u;
          return 15.0 + 20.0 * double(splitmix64(sm) >> 11) * 0x1.0p-53;
        });
  }

  std::unique_ptr<Network> network;
  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  std::unique_ptr<FdsService> fds;
  std::unique_ptr<AggregationService> aggregation;
};

void print_energy_table() {
  bench::banner("Section 6 extension",
                "message sharing between FDS and aggregation");
  std::printf("\n-- frame/byte cost per epoch (%zu nodes, p = 0.1) --\n",
              kNodes);
  std::printf("%-22s %12s %12s %14s\n", "mode", "frames", "bytes",
              "frames/node");
  for (bool share : {false, true}) {
    Deployment d(share, 0.1);
    d.aggregation->run_epochs(4, SimTime::zero());
    const auto totals = traffic_totals(*d.network);
    std::printf("%-22s %12.0f %12.0f %14.2f\n",
                share ? "shared (piggyback)" : "separate frames",
                double(totals.frames) / 4.0, double(totals.bytes) / 4.0,
                double(totals.frames) / 4.0 / double(kNodes));
  }
  std::printf("(sharing saves exactly one heartbeat frame per node per"
              " epoch; bytes grow slightly per frame but fall in total)\n");
}

void print_fidelity_table() {
  std::printf("\n-- global-aggregate fidelity vs loss (shared mode) --\n");
  std::printf("%-6s %12s %12s %12s %12s\n", "p", "count/truth", "avg err",
              "min err", "detections-ok");
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    Deployment d(true, p);
    MetricsCollector metrics;
    metrics.attach(*d.fds, *d.network);

    // Ground truth over affiliated nodes.
    Aggregate truth;
    for (auto& view : d.views) {
      if (view->affiliated()) {
        truth.add(d.aggregation->sensor()(view->self(), 0));
      }
    }

    d.aggregation->run_epochs(2, SimTime::zero());

    // Read the global view at the best-informed CH of the last epoch.
    Aggregate best;
    for (AggregationAgent* agent : d.aggregation->agents()) {
      if (!d.ptrs[agent->id().value()]->is_clusterhead()) continue;
      const Aggregate view = agent->global_view(1);
      if (view.count > best.count) best = view;
    }

    std::printf("%-6.2f %12.3f %12.3f %12.3f %12s\n", p,
                double(best.count) / double(truth.count),
                std::abs(best.average() - truth.average()),
                std::abs(best.min - truth.min),
                metrics.false_detections() == 0 ? "yes" : "with-fp");
  }
  std::printf("(count/truth < 1 under loss: readings or cluster summaries"
              " dropped this epoch; averages stay close because losses are"
              " unbiased)\n");
}

void BM_AggregationEpoch(benchmark::State& state) {
  Deployment d(state.range(0) != 0, 0.1);
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    d.aggregation->schedule_epoch(
        epoch, d.network->simulator().now() + SimTime::millis(1));
    d.network->simulator().run_until(d.network->simulator().now() +
                                     SimTime::seconds(2));
    ++epoch;
  }
}
BENCHMARK(BM_AggregationEpoch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_energy_table();
  print_fidelity_table();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
