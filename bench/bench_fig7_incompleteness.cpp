// Figure 7: P^(Incompleteness) vs message-loss probability p, for cluster
// populations N = 50, 75, 100.
//
// The full protocol stack sits slightly BELOW the closed form at high p:
// the implementation's peer forwarding is progressive (a requester that is
// rescued early can itself answer later requests), an extra channel the
// paper's worst-case expression does not credit — consistent with the
// measure being an upper bound.

#include <benchmark/benchmark.h>

#include "analysis/figures.h"
#include "bench/bench_util.h"
#include "runner/executor.h"
#include "sim/fast_mc.h"
#include "sim/single_cluster.h"

namespace {

using namespace cfds;

constexpr long kSemanticTrials = 400000;
const std::vector<int> kPopulations = {50, 75, 100};

std::vector<double> sweep_ps() {
  std::vector<double> ps;
  for (int i = 0; i < analysis::sweep_points(); ++i) {
    ps.push_back(analysis::sweep_p(i));
  }
  return ps;
}

void print_figure(runner::ResultSink* sink) {
  const long trials = bench::options().trials_or(kSemanticTrials);
  bench::banner("Figure 7", "P^(Incompleteness) vs p  (N = 50, 75, 100)");

  auto spec = runner::ExperimentSpec::for_kind(
      runner::EstimatorKind::kMcIncompleteness);
  spec.name = "fig7_incompleteness";
  spec.grid = runner::make_grid(kPopulations, sweep_ps());
  spec.trials = trials;
  spec.seed = bench::options().seed_or(0xF17);
  const auto results = runner::run_experiment(spec, bench::pool(), sink);

  for (std::size_t ni = 0; ni < kPopulations.size(); ++ni) {
    const int n = kPopulations[ni];
    std::printf("\n-- N = %d  (semantic MC: %ld trials/point) --\n", n, trials);
    bench::table_header({"analytic", "paper-sum", "semantic MC"});
    for (int i = 0; i < analysis::sweep_points(); ++i) {
      const double p = analysis::sweep_p(i);
      const double closed = analysis::incompleteness_upper_bound(p, n);
      const double sum = analysis::incompleteness_upper_bound_sum(p, n);
      const auto& mc =
          results[ni * std::size_t(analysis::sweep_points()) + std::size_t(i)]
              .estimator;
      const bool sampleable = closed * double(trials) >= 10.0;
      bench::table_row(
          p, std::vector<std::string>{
                 bench::sci_cell(closed), bench::sci_cell(sum),
                 sampleable ? bench::mc_cell(mc.estimate(), mc.ci99())
                            : std::string("<sampling floor")});
    }
  }

  std::printf("\n-- sensitivity observation (Section 5.2) --\n");
  for (int n : {50, 100}) {
    std::printf("  N=%-3d  P(0.50)/P(0.05) = %.3e\n", n,
                analysis::incompleteness_upper_bound(0.5, n) /
                    analysis::incompleteness_upper_bound(0.05, n));
  }
  std::printf("  (the ratio grows with N: larger clusters are more sensitive"
              " to p)\n");

  std::printf(
      "\n-- full protocol stack spot checks (event-driven, real frames) --\n");
  std::printf("%-18s  %14s  %20s\n", "point", "analytic bound", "protocol MC");
  for (const auto& [n, p, trials_at_point] :
       {std::tuple<int, double, int>{20, 0.5, 12000},
        std::tuple<int, double, int>{20, 0.4, 12000},
        std::tuple<int, double, int>{50, 0.5, 6000}}) {
    auto stack = runner::ExperimentSpec::for_kind(
        runner::EstimatorKind::kStackIncompleteness);
    stack.name = "fig7_stack_spot_check";
    stack.grid = {runner::GridPoint{n, p}};
    stack.trials = trials_at_point;
    stack.seed = bench::options().seed_or(0xF7);
    const auto estimate =
        runner::run_experiment(stack, bench::pool(), sink).front().estimator;
    std::printf("N=%-3d p=%.2f       %14.4e  %20s\n", n, p,
                analysis::incompleteness_upper_bound(p, n),
                bench::mc_cell(estimate.estimate(), estimate.ci99()).c_str());
  }
}

void BM_Fig7Analytic(benchmark::State& state) {
  double sink = 0.0;
  for (auto _ : state) {
    sink += analysis::incompleteness_upper_bound(0.3, int(state.range(0)));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Fig7Analytic)->Arg(50)->Arg(100);

void BM_Fig7SemanticMcTrial(benchmark::State& state) {
  Rng rng(3);
  FastMcConfig config;
  config.n = int(state.range(0));
  config.p = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc_incompleteness(config, 100, rng).trials());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_Fig7SemanticMcTrial)->Arg(50)->Arg(100);

void BM_Fig7FullStackExecution(benchmark::State& state) {
  SingleClusterConfig config;
  config.n = int(state.range(0));
  config.p = 0.3;
  config.num_deputies = 0;
  SingleClusterExperiment experiment(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_incompleteness(1).trials());
  }
}
BENCHMARK(BM_Fig7FullStackExecution)->Arg(50)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  const auto sink = cfds::bench::make_sink();
  print_figure(sink.get());
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
