// Figure 7: P^(Incompleteness) vs message-loss probability p, for cluster
// populations N = 50, 75, 100.
//
// The full protocol stack sits slightly BELOW the closed form at high p:
// the implementation's peer forwarding is progressive (a requester that is
// rescued early can itself answer later requests), an extra channel the
// paper's worst-case expression does not credit — consistent with the
// measure being an upper bound.

#include <benchmark/benchmark.h>

#include "analysis/figures.h"
#include "bench/bench_util.h"
#include "sim/fast_mc.h"
#include "sim/single_cluster.h"

namespace {

using namespace cfds;

constexpr long kSemanticTrials = 400000;

void print_figure() {
  bench::banner("Figure 7", "P^(Incompleteness) vs p  (N = 50, 75, 100)");
  for (int n : {50, 75, 100}) {
    std::printf("\n-- N = %d  (semantic MC: %ld trials/point) --\n", n,
                kSemanticTrials);
    bench::table_header({"analytic", "paper-sum", "semantic MC"});
    Rng rng(0xF17 + std::uint64_t(n));
    for (int i = 0; i < analysis::sweep_points(); ++i) {
      const double p = analysis::sweep_p(i);
      const double closed = analysis::incompleteness_upper_bound(p, n);
      const double sum = analysis::incompleteness_upper_bound_sum(p, n);
      FastMcConfig config;
      config.n = n;
      config.p = p;
      const auto mc = mc_incompleteness(config, kSemanticTrials, rng);
      const bool sampleable = closed * double(kSemanticTrials) >= 10.0;
      bench::table_row(
          p, std::vector<std::string>{
                 bench::sci_cell(closed), bench::sci_cell(sum),
                 sampleable ? bench::mc_cell(mc.estimate(), mc.ci99())
                            : std::string("<sampling floor")});
    }
  }

  std::printf("\n-- sensitivity observation (Section 5.2) --\n");
  for (int n : {50, 100}) {
    std::printf("  N=%-3d  P(0.50)/P(0.05) = %.3e\n", n,
                analysis::incompleteness_upper_bound(0.5, n) /
                    analysis::incompleteness_upper_bound(0.05, n));
  }
  std::printf("  (the ratio grows with N: larger clusters are more sensitive"
              " to p)\n");

  std::printf(
      "\n-- full protocol stack spot checks (event-driven, real frames) --\n");
  std::printf("%-18s  %14s  %20s\n", "point", "analytic bound", "protocol MC");
  for (const auto& [n, p, trials] :
       {std::tuple<int, double, int>{20, 0.5, 12000},
        std::tuple<int, double, int>{20, 0.4, 12000},
        std::tuple<int, double, int>{50, 0.5, 6000}}) {
    SingleClusterConfig config;
    config.n = n;
    config.p = p;
    config.seed = 0xF7;
    config.num_deputies = 0;
    SingleClusterExperiment experiment(config);
    const auto estimate = experiment.run_incompleteness(trials);
    std::printf("N=%-3d p=%.2f       %14.4e  %20s\n", n, p,
                analysis::incompleteness_upper_bound(p, n),
                bench::mc_cell(estimate.estimate(), estimate.ci99()).c_str());
  }
}

void BM_Fig7Analytic(benchmark::State& state) {
  double sink = 0.0;
  for (auto _ : state) {
    sink += analysis::incompleteness_upper_bound(0.3, int(state.range(0)));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Fig7Analytic)->Arg(50)->Arg(100);

void BM_Fig7SemanticMcTrial(benchmark::State& state) {
  Rng rng(3);
  FastMcConfig config;
  config.n = int(state.range(0));
  config.p = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc_incompleteness(config, 100, rng).trials());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_Fig7SemanticMcTrial)->Arg(50)->Arg(100);

void BM_Fig7FullStackExecution(benchmark::State& state) {
  SingleClusterConfig config;
  config.n = int(state.range(0));
  config.p = 0.3;
  config.num_deputies = 0;
  SingleClusterExperiment experiment(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_incompleteness(1).trials());
  }
}
BENCHMARK(BM_Fig7FullStackExecution)->Arg(50)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
