// Sleep-mode false detections and the announcement mitigation — the
// investigation Section 6 proposes as future work ("sleep mode may cause
// false detections ... deriving algorithms to reduce the likelihood of
// sleep-mode-caused false detection").
//
// Sweeps the fraction of ordinary members duty-cycling per window and
// counts accuracy violations with announcements off (the hazard) and on
// (the mitigation: a SleepNotice during fds.R-1 exempts the sleeper from
// the detection rule for the announced window).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "power/duty_cycle.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

struct Outcome {
  std::size_t sleepers = 0;
  std::size_t false_detections = 0;
  std::size_t true_detections = 0;
};

Outcome run(double sleep_fraction, bool announce, bool digest_relay,
            double loss_p, std::uint64_t seed) {
  ScenarioConfig config;
  config.width = 550.0;
  config.height = 400.0;
  config.node_count = 300;
  config.loss_p = loss_p;
  config.seed = seed;
  config.fds.relay_sleep_notices = digest_relay;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);

  DutyCycleConfig dc;
  dc.sleep_fraction = sleep_fraction;
  dc.sleep_epochs = 2;
  dc.announce = announce;
  DutyCycleScheduler scheduler(scenario.network(), scenario.fds(), dc,
                               Rng(seed ^ 0x51EE9));

  Outcome outcome;
  // Three consecutive sleep windows.
  for (int window = 0; window < 3; ++window) {
    outcome.sleepers +=
        scheduler
            .begin_window(scenario.network().simulator().now(),
                          scenario.config().heartbeat_interval)
            .size();
    scenario.run_epochs(3);
  }
  outcome.false_detections = scenario.metrics().false_detections();
  outcome.true_detections = scenario.metrics().true_detections();
  return outcome;
}

void print_study() {
  bench::banner("Section 6 extension",
                "sleep-mode false detections and the announcement fix");
  for (double p : {0.0, 0.2}) {
    std::printf("\n-- message loss p = %.2f (300 nodes, 3 windows of 2"
                " epochs) --\n", p);
    std::printf("%-10s %10s %16s %16s %16s\n", "sleep frac", "sleepers",
                "false+ silent", "false+ notice", "false+ relayed");
    for (double fraction : {0.1, 0.2, 0.3, 0.5}) {
      const Outcome silent = run(fraction, false, false, p, 71);
      const Outcome notice_only = run(fraction, true, false, p, 71);
      const Outcome relayed = run(fraction, true, true, p, 71);
      std::printf("%-10.2f %10zu %16zu %16zu %16zu\n", fraction,
                  silent.sleepers, silent.false_detections,
                  notice_only.false_detections, relayed.false_detections);
    }
  }
  std::printf("\nReading: silent duty-cycling converts sleepers into false"
              " casualty reports (wasted maintenance, Section 2.1). The"
              " one-frame announcement removes them at p = 0 but leaks when"
              " the notice itself is lost; relaying overheard notices inside"
              " digests — the paper's spatial redundancy applied to the"
              " extension — suppresses the leak by orders of magnitude.\n");
}

void BM_SleepWindow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run(0.3, state.range(0) != 0, true, 0.1, 3).false_detections);
  }
}
BENCHMARK(BM_SleepWindow)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_study();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
