// Figure 5: P^(False detection) vs message-loss probability p, for cluster
// populations N = 50, 75, 100.
//
// Regenerates the paper's series three ways:
//   analytic   — the closed form  p^2 * (1 - q(1-p)^2)^(N-2)
//   paper-sum  — the paper's literal double-sum expression (log space)
//   semantic MC— protocol-rule Monte-Carlo over sampled geometry/losses
// plus a full protocol-stack spot check (event queue, real frames) at the
// points where the probability is large enough to sample in reasonable time.

#include <benchmark/benchmark.h>

#include "analysis/figures.h"
#include "bench/bench_util.h"
#include "sim/fast_mc.h"
#include "sim/single_cluster.h"

namespace {

using namespace cfds;

constexpr long kSemanticTrials = 400000;

void print_figure() {
  bench::banner("Figure 5", "P^(False detection) vs p  (N = 50, 75, 100)");
  for (int n : {50, 75, 100}) {
    std::printf("\n-- N = %d  (semantic MC: %ld trials/point) --\n", n,
                kSemanticTrials);
    bench::table_header({"analytic", "paper-sum", "semantic MC"});
    Rng rng(0xF15 + std::uint64_t(n));
    for (int i = 0; i < analysis::sweep_points(); ++i) {
      const double p = analysis::sweep_p(i);
      const double closed = analysis::false_detection_upper_bound(p, n);
      const double sum = analysis::false_detection_upper_bound_sum(p, n);
      FastMcConfig config;
      config.n = n;
      config.p = p;
      const auto mc = mc_false_detection(config, kSemanticTrials, rng);
      // Only print the MC estimate when the expected event count is >= ~10.
      const bool sampleable = closed * double(kSemanticTrials) >= 10.0;
      bench::table_row(
          p, std::vector<std::string>{
                 bench::sci_cell(closed), bench::sci_cell(sum),
                 sampleable ? bench::mc_cell(mc.estimate(), mc.ci99())
                            : std::string("<sampling floor")});
    }
  }

  std::printf(
      "\n-- full protocol stack spot checks (event-driven, real frames) --\n");
  std::printf("%-18s  %14s  %20s\n", "point", "analytic", "protocol MC");
  for (const auto& [n, p, trials] :
       {std::tuple<int, double, int>{20, 0.5, 12000},
        std::tuple<int, double, int>{20, 0.4, 12000},
        std::tuple<int, double, int>{50, 0.5, 6000}}) {
    SingleClusterConfig config;
    config.n = n;
    config.p = p;
    config.seed = 0xF5;
    config.num_deputies = 0;
    SingleClusterExperiment experiment(config);
    const auto estimate = experiment.run_false_detection(trials);
    std::printf("N=%-3d p=%.2f       %14.4e  %20s\n", n, p,
                analysis::false_detection_upper_bound(p, n),
                bench::mc_cell(estimate.estimate(), estimate.ci99()).c_str());
  }
}

void BM_Fig5Analytic(benchmark::State& state) {
  const int n = int(state.range(0));
  double sink = 0.0;
  for (auto _ : state) {
    sink += analysis::false_detection_upper_bound(0.3, n);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Fig5Analytic)->Arg(50)->Arg(100);

void BM_Fig5PaperSum(benchmark::State& state) {
  const int n = int(state.range(0));
  double sink = 0.0;
  for (auto _ : state) {
    sink += analysis::false_detection_upper_bound_sum(0.3, n);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Fig5PaperSum)->Arg(50)->Arg(100);

void BM_Fig5SemanticMcTrial(benchmark::State& state) {
  Rng rng(1);
  FastMcConfig config;
  config.n = int(state.range(0));
  config.p = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc_false_detection(config, 100, rng).trials());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_Fig5SemanticMcTrial)->Arg(50)->Arg(100);

void BM_Fig5FullStackExecution(benchmark::State& state) {
  SingleClusterConfig config;
  config.n = int(state.range(0));
  config.p = 0.3;
  config.num_deputies = 0;
  SingleClusterExperiment experiment(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_false_detection(1).trials());
  }
}
BENCHMARK(BM_Fig5FullStackExecution)->Arg(50)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
