// Scalability (Section 3's claim): the two-tier architecture keeps per-node
// cost flat as the population grows, and backbone dissemination beats flat
// flooding by roughly the average cluster population.
//
// Fields grow with the node count at constant density (~50 nodes per
// transmission disk, the paper's regime), so cluster sizes stay constant
// while the cluster count scales.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <chrono>
#include <cmath>

#include "baseline/flooding.h"
#include "bench/bench_util.h"
#include "net/topology.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

/// Field dimensions for n nodes at ~constant density.
void field_for(std::size_t n, double& width, double& height) {
  // 500 nodes <-> 700 x 450; scale the area linearly.
  const double scale = std::sqrt(double(n) / 500.0);
  width = 700.0 * scale;
  height = 450.0 * scale;
}

/// Peak resident set size of this process in bytes (ru_maxrss is KiB on
/// Linux). Process-wide and monotone: with --threads > 1 the trials share
/// one peak, so the per-trial attribution below is an upper bound. Run with
/// --threads 1 for clean per-size numbers (check_perf.sh does).
[[nodiscard]] std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return std::uint64_t(usage.ru_maxrss) * 1024;
}

void print_study(runner::JsonlResultSink* sink) {
  bench::banner("Scalability", "per-node cost and dissemination vs size");
  std::printf("\n%-8s %10s %12s %16s %14s %16s %14s %12s\n", "nodes",
              "clusters", "FDS frames", "frames/node", "flood frames",
              "backbone fwd", "events/sec", "bytes/node");

  // Each population size is an independent simulation, so the study fans
  // out across the runner's thread pool; rows are collected per index and
  // printed in size order afterwards.
  const std::vector<std::size_t> sizes = {125, 250, 500, 1000, 2000};
  const auto seed = bench::options().seed_or(19);
  struct Row {
    std::size_t clusters = 0;
    double fds_frames = 0.0;
    std::uint64_t flood_frames = 0;
    std::uint64_t backbone_forwards = 0;
    double events_per_sec = 0.0;
    std::uint64_t peak_rss = 0;
  };
  std::vector<Row> rows(sizes.size());
  bench::pool().parallel_for(sizes.size(), [&](std::size_t index) {
    const std::size_t n = sizes[index];
    double width = 0.0, height = 0.0;
    field_for(n, width, height);

    ScenarioConfig config;
    config.width = width;
    config.height = height;
    config.node_count = n;
    config.loss_p = 0.1;
    config.seed = seed;
    Scenario scenario(config);
    scenario.setup();

    const auto before = traffic_totals(scenario.network());
    const std::uint64_t events_before =
        scenario.network().simulator().events_executed();
    const auto t0 = std::chrono::steady_clock::now();
    scenario.run_epochs(1);
    const double epoch_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    const std::uint64_t epoch_events =
        scenario.network().simulator().events_executed() - events_before;
    const auto after_epoch = traffic_totals(scenario.network());
    const double fds_frames = double(after_epoch.frames - before.frames);

    // Dissemination cost of one failure report: crash a member, count the
    // backbone forwards, and compare with flooding the same news flat.
    NodeId victim = NodeId::invalid();
    for (MembershipView* view : scenario.views()) {
      if (view->role() == Role::kOrdinaryMember) {
        victim = view->self();
        break;
      }
    }
    scenario.network().crash(victim);
    scenario.run_epochs(1);
    const std::uint64_t backbone_forwards =
        scenario.forwarder()->stats().reports_forwarded +
        scenario.forwarder()->stats().gw_retries +
        scenario.forwarder()->stats().bgw_assists;

    // Flat flooding of one report on an identical field.
    NetworkConfig flood_config;
    flood_config.seed = seed;
    Network flood_net(flood_config, std::make_unique<BernoulliLoss>(0.1));
    Rng placement(seed);
    flood_net.add_nodes(uniform_rect(n, width, height, placement));
    FloodService flood(flood_net);
    flood.agent_for(NodeId{0}).originate({NodeId{1}});
    flood_net.simulator().run_to_completion();

    rows[index] = Row{scenario.cluster_count(), fds_frames,
                      flood.total_rebroadcasts() + 1, backbone_forwards,
                      double(epoch_events) / epoch_ms * 1000.0,
                      peak_rss_bytes()};
  });

  for (std::size_t index = 0; index < sizes.size(); ++index) {
    const Row& row = rows[index];
    const double bytes_per_node = double(row.peak_rss) / double(sizes[index]);
    std::printf("%-8zu %10zu %12.0f %16.1f %14llu %16llu %14.0f %12.0f\n",
                sizes[index], row.clusters, row.fds_frames,
                row.fds_frames / double(sizes[index]),
                static_cast<unsigned long long>(row.flood_frames),
                static_cast<unsigned long long>(row.backbone_forwards),
                row.events_per_sec, bytes_per_node);
    if (sink != nullptr) {
      runner::BenchRecord record;
      record.bench = "scalability_epoch";
      record.label = bench::options().label;
      record.n = int(sizes[index]);
      record.metric = "events_per_sec";
      record.value = row.events_per_sec;
      sink->write(record);
      record.metric = "peak_rss_bytes";
      record.value = double(row.peak_rss);
      sink->write(record);
      record.metric = "bytes_per_node";
      record.value = bytes_per_node;
      sink->write(record);
    }
  }
  std::printf(
      "\nReading: frames/node/epoch stays ~flat with population (two-tier"
      "\nscalability), and the backbone carries a report in ~one frame per"
      "\ncluster versus one frame per NODE for flat flooding.\n");
}

void BM_FdsEpochAtScale(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  double width = 0.0, height = 0.0;
  field_for(n, width, height);
  ScenarioConfig config;
  config.width = width;
  config.height = height;
  config.node_count = n;
  config.loss_p = 0.1;
  config.seed = 19;
  Scenario scenario(config);
  scenario.setup();
  for (auto _ : state) {
    scenario.run_epochs(1);
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_FdsEpochAtScale)
    ->Arg(125)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_CentralizedFormationAtScale(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  double width = 0.0, height = 0.0;
  field_for(n, width, height);
  Rng rng(19);
  const auto positions = uniform_rect(n, width, height, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ClusterDirectory::build(positions, 100.0).clusters().size());
  }
}
BENCHMARK(BM_CentralizedFormationAtScale)
    ->Arg(250)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  const auto sink = cfds::bench::make_sink();
  print_study(sink.get());
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
