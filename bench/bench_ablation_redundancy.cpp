// Ablation: what each layer of the detection rule's redundancy buys
// (Section 4.2 claims the rule "simultaneously exploits time, spatial, and
// message redundancies, which significantly reduces the likelihood of false
// detection").
//
//   heartbeat-only  suspect on one missed heartbeat         ->  P = p
//   + time red.     heartbeat AND the suspect's own digest  ->  P = p^2
//   + spatial red.  ... AND no witness digest (full rule)   ->  P = p^2(1-q(1-p)^2)^(N-2)

#include <benchmark/benchmark.h>

#include "analysis/figures.h"
#include "bench/bench_util.h"
#include "sim/fast_mc.h"

namespace {

using namespace cfds;

constexpr long kTrials = 300000;

void print_ablation() {
  bench::banner("Ablation", "false detection vs evidence policy (N = 75)");
  const int n = 75;
  std::printf("\n(semantic MC, %ld trials/point; references: p, p^2,"
              " closed form)\n", kTrials);
  bench::table_header({"hb-only MC", "ref p", "no-spatial MC", "ref p^2",
                       "full MC", "ref full"});
  Rng rng(0xAB1);
  for (int i = 0; i < analysis::sweep_points(); ++i) {
    const double p = analysis::sweep_p(i);
    FastMcConfig hb;
    hb.n = n;
    hb.p = p;
    hb.rule_mode = RuleMode::kHeartbeatOnly;
    FastMcConfig ns = hb;
    ns.rule_mode = RuleMode::kNoSpatial;
    FastMcConfig full = hb;
    full.rule_mode = RuleMode::kFull;

    const double full_ref = analysis::false_detection_upper_bound(p, n);
    const double mc_hb = mc_false_detection(hb, kTrials, rng).estimate();
    const double mc_ns = mc_false_detection(ns, kTrials, rng).estimate();
    const auto mc_full = mc_false_detection(full, kTrials, rng);
    bench::table_row(
        p, std::vector<std::string>{
               bench::sci_cell(mc_hb), bench::sci_cell(p),
               bench::sci_cell(mc_ns), bench::sci_cell(p * p),
               full_ref * kTrials >= 10.0
                   ? bench::sci_cell(mc_full.estimate())
                   : std::string("<floor"),
               bench::sci_cell(full_ref)});
  }
  std::printf("\nReading: each redundancy layer buys orders of magnitude —"
              " p -> p^2 -> p^2*(1-q(1-p)^2)^(N-2).\n");
  std::printf("Improvement factors at p = 0.30, N = 75:\n");
  const double p = 0.3;
  std::printf("  time redundancy:     %8.1fx\n", p / (p * p));
  std::printf("  spatial redundancy:  %8.1e x\n",
              (p * p) / analysis::false_detection_upper_bound(p, n));
}

void BM_RuleModeTrialCost(benchmark::State& state) {
  Rng rng(11);
  FastMcConfig config;
  config.n = 75;
  config.p = 0.3;
  config.rule_mode = static_cast<RuleMode>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc_false_detection(config, 1000, rng).trials());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RuleModeTrialCost)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_ablation();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
