// Chaos campaign: seeded fault-injection trials with an invariant oracle.
//
// Each trial generates a random FaultPlan from its seed, drives a ~10-cluster
// deployment through warmup / fault / quiescence phases (fault/chaos.h), and
// checks the eventual-consistency invariants I1-I5 (fault/oracle.h). The
// campaign fans trials across the thread pool but emits results in trial
// order, so the JSONL stream is byte-identical for any --threads value.
//
// Modes (on top of the uniform runner flags):
//
//   default            campaign of --trials trials from --seed upward; exits
//                      nonzero if any trial violates an invariant
//   --replay-seed S    one trial; prints its generated plan then the verdict
//   --fault-plan F     one trial replaying the plan file F against the
//                      deployment derived from --seed (docs/FAULTS.md)
//   --replay-plan F    alias for --fault-plan; the name cfds_check's --plan
//                      output documents (docs/MODEL_CHECKING.md)
//   --dump-plans DIR   campaign also writes every trial's plan to DIR
//   --rejoin-compare   paired campaign: every seed runs once with cold
//                      rejoin and once with checkpointed recovery, and the
//                      rejoin-to-consistent times are compared (the
//                      checkpoint arm must win; docs/ADAPTIVE.md)
//
// Feature toggles (default off, matching the simulation defaults):
//
//   --adaptive         self-tuning accrual detection on every node
//   --checkpoint       checkpointed CH/DCH recovery
//   --loss-bursts N    add N channel-wide loss bursts to every random plan
//
// Failing trials always get their plan written to plan_<seed>.fail.jsonl
// (under --dump-plans DIR if given, else the working directory) so a
// violation found in CI replays locally byte for byte.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"

namespace {

using namespace cfds;

FILE* open_lines_out(const std::string& path) {
  if (path.empty() || path == "-") return stdout;
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open --out %s\n", path.c_str());
    std::exit(2);
  }
  return file;
}

void write_plan_file(const std::string& dir, const fault::FaultPlan& plan,
                     std::uint64_t seed, bool failing) {
  char name[128];
  std::snprintf(name, sizeof name, "plan_%llu%s.jsonl",
                static_cast<unsigned long long>(seed), failing ? ".fail" : "");
  const std::string path = (dir.empty() ? std::string(".") : dir) + "/" + name;
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write plan to %s\n", path.c_str());
    return;
  }
  const std::string text = plan.to_jsonl();
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
}

int report_single(const fault::ChaosResult& result) {
  std::printf("%s\n", result.summary_json().c_str());
  for (const std::string& v : result.violations) {
    std::fprintf(stderr, "VIOLATION %s\n", v.c_str());
  }
  return result.passed() ? 0 : 1;
}

/// One trial, generated plan printed first so the run is reproducible.
int run_replay_seed(const fault::ChaosConfig& config, std::uint64_t seed) {
  const fault::ChaosResult result = fault::run_chaos_trial(config, seed);
  std::printf("%s\n", result.plan.to_jsonl().c_str());
  return report_single(result);
}

/// One trial replaying an explicit plan file.
int run_plan_file(const fault::ChaosConfig& config, const std::string& path,
                  std::uint64_t seed) {
  std::string error;
  const auto plan = fault::FaultPlan::load(path, &error);
  if (!plan) {
    std::fprintf(stderr, "bad --fault-plan %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  return report_single(fault::replay_chaos_trial(config, seed, *plan));
}

/// Paired campaign: every seed's plan runs against the same deployment with
/// checkpointed recovery off and on, and the per-arm rejoin-to-consistent
/// aggregates are compared. The plans are identical across arms (plan
/// generation does not depend on the feature flags), so any difference in
/// rejoin time is attributable to the checkpoint path.
int run_rejoin_compare(fault::ChaosConfig config, long trials,
                       std::uint64_t base_seed) {
  bench::banner("Chaos rejoin comparison",
                "cold rejoin vs checkpointed CH/DCH recovery");
  const std::size_t count = std::size_t(trials);
  std::vector<fault::ChaosResult> cold(count);
  std::vector<fault::ChaosResult> warm(count);
  fault::ChaosConfig cold_config = config;
  cold_config.checkpoint = false;
  fault::ChaosConfig warm_config = config;
  warm_config.checkpoint = true;
  bench::pool().parallel_for(2 * count, [&](std::size_t i) {
    const std::uint64_t seed = base_seed + (i % count);
    if (i < count) {
      cold[i] = fault::run_chaos_trial(cold_config, seed);
    } else {
      warm[i - count] = fault::run_chaos_trial(warm_config, seed);
    }
  });

  long violated = 0;
  auto summarize = [&](const char* arm,
                       const std::vector<fault::ChaosResult>& results,
                       std::int64_t* mean_out) {
    std::size_t rejoins = 0, pending = 0;
    std::int64_t total_us = 0, max_us = 0;
    for (const fault::ChaosResult& r : results) {
      if (!r.passed()) {
        ++violated;
        for (const std::string& v : r.violations) {
          std::fprintf(stderr, "%s seed %llu VIOLATION %s\n", arm,
                       static_cast<unsigned long long>(r.seed), v.c_str());
        }
      }
      rejoins += r.rejoins;
      pending += r.rejoin_pending;
      total_us += r.rejoin_mean_us * std::int64_t(r.rejoins);
      max_us = std::max(max_us, r.rejoin_max_us);
    }
    const std::int64_t mean = rejoins > 0 ? total_us / std::int64_t(rejoins) : 0;
    *mean_out = mean;
    std::printf("  %-10s rejoins=%zu pending=%zu mean=%.3fs max=%.3fs\n", arm,
                rejoins, pending, double(mean) / 1e6, double(max_us) / 1e6);
  };
  std::int64_t cold_mean = 0, warm_mean = 0;
  summarize("cold", cold, &cold_mean);
  summarize("checkpoint", warm, &warm_mean);
  if (violated > 0) {
    std::printf("\nFAIL: %ld trial(s) violated invariants\n", violated);
    return 1;
  }
  if (warm_mean >= cold_mean) {
    std::printf("\nFAIL: checkpointed rejoin (%.3fs) not faster than cold "
                "(%.3fs)\n",
                double(warm_mean) / 1e6, double(cold_mean) / 1e6);
    return 1;
  }
  std::printf("\nPASS: checkpointed rejoin %.3fs < cold %.3fs (-%lld%%)\n",
              double(warm_mean) / 1e6, double(cold_mean) / 1e6,
              static_cast<long long>(100 - 100 * warm_mean / cold_mean));
  return 0;
}

int run_campaign(const fault::ChaosConfig& config, long trials,
                 std::uint64_t base_seed, const std::string& dump_dir,
                 bool dump_all) {
  bench::banner("Chaos campaign",
                "seeded fault injection + invariant oracle");
  const std::size_t count = std::size_t(trials);
  std::vector<fault::ChaosResult> results(count);
  bench::pool().parallel_for(count, [&](std::size_t i) {
    results[i] = fault::run_chaos_trial(config, base_seed + i);
  });

  FILE* out = open_lines_out(bench::options().out);
  long failed = 0;
  for (const fault::ChaosResult& result : results) {
    std::fprintf(out, "%s\n", result.summary_json().c_str());
    if (!result.passed()) {
      ++failed;
      for (const std::string& v : result.violations) {
        std::fprintf(stderr, "seed %llu VIOLATION %s\n",
                     static_cast<unsigned long long>(result.seed), v.c_str());
      }
    }
    if (dump_all || !result.passed()) {
      write_plan_file(dump_dir, result.plan, result.seed, !result.passed());
    }
  }
  if (out != stdout) std::fclose(out);

  std::printf("\n%ld trials from seed %llu: %ld passed, %ld violated\n",
              trials, static_cast<unsigned long long>(base_seed), trials - failed, failed);
  return failed == 0 ? 0 : 1;
}

void BM_ChaosTrial(benchmark::State& state) {
  const fault::ChaosConfig config;
  std::uint64_t seed = 0xC4A05;
  for (auto _ : state) {
    const fault::ChaosResult result =
        fault::run_chaos_trial(config, seed++);
    benchmark::DoNotOptimize(result.alive);
  }
}
BENCHMARK(BM_ChaosTrial)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string dump_plans;
  std::string replay_plan;
  long long replay_seed = -1;
  bool adaptive = false;
  bool checkpoint = false;
  bool rejoin_compare = false;
  long loss_bursts = 0;
  runner::FlagSet extra;
  extra.add_value("--dump-plans", &dump_plans,
                  "directory for per-trial FaultPlan JSONL files");
  extra.add_value("--replay-seed", &replay_seed,
                  "run exactly one trial with this seed and print its plan");
  extra.add_value("--replay-plan", &replay_plan,
                  "replay a FaultPlan JSONL file (e.g. cfds_check --plan)");
  extra.add_flag("--adaptive", &adaptive,
                 "enable self-tuning accrual detection");
  extra.add_flag("--checkpoint", &checkpoint,
                 "enable checkpointed CH/DCH recovery");
  extra.add_flag("--rejoin-compare", &rejoin_compare,
                 "paired campaign: cold vs checkpointed rejoin time");
  extra.add_value("--loss-bursts", &loss_bursts,
                  "channel-wide loss bursts per random plan");
  extra.parse_or_exit(argc, argv);
  cfds::bench::parse_common_args(argc, argv);
  const auto& opts = cfds::bench::options();

  fault::ChaosConfig config;
  config.adaptive = adaptive;
  config.checkpoint = checkpoint;
  config.mix.loss_bursts = int(loss_bursts);

  if (!replay_plan.empty()) {
    return run_plan_file(config, replay_plan, opts.seed_or(1));
  }
  if (!opts.fault_plan.empty()) {
    return run_plan_file(config, opts.fault_plan, opts.seed_or(1));
  }
  if (replay_seed >= 0) {
    return run_replay_seed(config, std::uint64_t(replay_seed));
  }
  if (rejoin_compare) {
    return run_rejoin_compare(config, opts.trials_or(40), opts.seed_or(1));
  }

  const int status = run_campaign(config, opts.trials_or(500), opts.seed_or(1),
                                  dump_plans, !dump_plans.empty());
  if (status != 0) return status;

  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
