// Chaos campaign: seeded fault-injection trials with an invariant oracle.
//
// Each trial generates a random FaultPlan from its seed, drives a ~10-cluster
// deployment through warmup / fault / quiescence phases (fault/chaos.h), and
// checks the eventual-consistency invariants I1-I5 (fault/oracle.h). The
// campaign fans trials across the thread pool but emits results in trial
// order, so the JSONL stream is byte-identical for any --threads value.
//
// Modes (on top of the uniform runner flags):
//
//   default            campaign of --trials trials from --seed upward; exits
//                      nonzero if any trial violates an invariant
//   --replay-seed S    one trial; prints its generated plan then the verdict
//   --fault-plan F     one trial replaying the plan file F against the
//                      deployment derived from --seed (docs/FAULTS.md)
//   --dump-plans DIR   campaign also writes every trial's plan to DIR
//
// Failing trials always get their plan written to plan_<seed>.fail.jsonl
// (under --dump-plans DIR if given, else the working directory) so a
// violation found in CI replays locally byte for byte.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"

namespace {

using namespace cfds;

FILE* open_lines_out(const std::string& path) {
  if (path.empty() || path == "-") return stdout;
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open --out %s\n", path.c_str());
    std::exit(2);
  }
  return file;
}

void write_plan_file(const std::string& dir, const fault::FaultPlan& plan,
                     std::uint64_t seed, bool failing) {
  char name[128];
  std::snprintf(name, sizeof name, "plan_%llu%s.jsonl",
                static_cast<unsigned long long>(seed), failing ? ".fail" : "");
  const std::string path = (dir.empty() ? std::string(".") : dir) + "/" + name;
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write plan to %s\n", path.c_str());
    return;
  }
  const std::string text = plan.to_jsonl();
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
}

int report_single(const fault::ChaosResult& result) {
  std::printf("%s\n", result.summary_json().c_str());
  for (const std::string& v : result.violations) {
    std::fprintf(stderr, "VIOLATION %s\n", v.c_str());
  }
  return result.passed() ? 0 : 1;
}

/// One trial, generated plan printed first so the run is reproducible.
int run_replay_seed(std::uint64_t seed) {
  const fault::ChaosConfig config;
  const fault::ChaosResult result = fault::run_chaos_trial(config, seed);
  std::printf("%s\n", result.plan.to_jsonl().c_str());
  return report_single(result);
}

/// One trial replaying an explicit plan file.
int run_plan_file(const std::string& path, std::uint64_t seed) {
  std::string error;
  const auto plan = fault::FaultPlan::load(path, &error);
  if (!plan) {
    std::fprintf(stderr, "bad --fault-plan %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  const fault::ChaosConfig config;
  return report_single(fault::replay_chaos_trial(config, seed, *plan));
}

int run_campaign(long trials, std::uint64_t base_seed,
                 const std::string& dump_dir, bool dump_all) {
  bench::banner("Chaos campaign",
                "seeded fault injection + invariant oracle");
  const fault::ChaosConfig config;
  const std::size_t count = std::size_t(trials);
  std::vector<fault::ChaosResult> results(count);
  bench::pool().parallel_for(count, [&](std::size_t i) {
    results[i] = fault::run_chaos_trial(config, base_seed + i);
  });

  FILE* out = open_lines_out(bench::options().out);
  long failed = 0;
  for (const fault::ChaosResult& result : results) {
    std::fprintf(out, "%s\n", result.summary_json().c_str());
    if (!result.passed()) {
      ++failed;
      for (const std::string& v : result.violations) {
        std::fprintf(stderr, "seed %llu VIOLATION %s\n",
                     static_cast<unsigned long long>(result.seed), v.c_str());
      }
    }
    if (dump_all || !result.passed()) {
      write_plan_file(dump_dir, result.plan, result.seed, !result.passed());
    }
  }
  if (out != stdout) std::fclose(out);

  std::printf("\n%ld trials from seed %llu: %ld passed, %ld violated\n",
              trials, static_cast<unsigned long long>(base_seed), trials - failed, failed);
  return failed == 0 ? 0 : 1;
}

void BM_ChaosTrial(benchmark::State& state) {
  const fault::ChaosConfig config;
  std::uint64_t seed = 0xC4A05;
  for (auto _ : state) {
    const fault::ChaosResult result =
        fault::run_chaos_trial(config, seed++);
    benchmark::DoNotOptimize(result.alive);
  }
}
BENCHMARK(BM_ChaosTrial)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string dump_plans;
  long long replay_seed = -1;
  runner::FlagSet extra;
  extra.add_value("--dump-plans", &dump_plans,
                  "directory for per-trial FaultPlan JSONL files");
  extra.add_value("--replay-seed", &replay_seed,
                  "run exactly one trial with this seed and print its plan");
  extra.parse_or_exit(argc, argv);
  cfds::bench::parse_common_args(argc, argv);
  const auto& opts = cfds::bench::options();

  if (!opts.fault_plan.empty()) {
    return run_plan_file(opts.fault_plan, opts.seed_or(1));
  }
  if (replay_seed >= 0) {
    return run_replay_seed(std::uint64_t(replay_seed));
  }

  const int status = run_campaign(opts.trials_or(500), opts.seed_or(1),
                                  dump_plans, !dump_plans.empty());
  if (status != 0) return status;

  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
