// System-level completeness — the measure the paper leaves open
// ("global-level measures will require the assumptions of an inter-cluster
// routing algorithm and a network topology", Section 5). With both pieces
// built, this bench closes the loop:
//
//   model     per-link delivery from the Section 4.3 machinery's closed
//             form, composed over the real cluster graph by Monte-Carlo
//             network reliability;
//   measured  the full protocol stack on the same 500-node field — the
//             fraction of clusterheads whose failure log contains the
//             casualty after one execution plus propagation time.
//
// Also quantifies, at the system level, what each layer of Section 4.3's
// redundancy (CH retransmissions, GW retries, BGW assistance) buys.

#include <benchmark/benchmark.h>

#include "analysis/backbone.h"
#include "bench/bench_util.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

/// Builds the cluster-level backbone of a scenario's directory clustering.
analysis::BackboneGraph backbone_of(Scenario& scenario,
                                    std::vector<ClusterId>& index) {
  analysis::BackboneGraph graph;
  index.clear();
  for (MembershipView* view : scenario.views()) {
    if (view->is_clusterhead()) index.push_back(view->cluster()->id);
  }
  graph.cluster_count = index.size();
  auto position_of = [&](ClusterId id) {
    for (std::size_t i = 0; i < index.size(); ++i) {
      if (index[i] == id) return i;
    }
    return std::size_t(index.size());
  };
  for (MembershipView* view : scenario.views()) {
    if (!view->is_clusterhead()) continue;
    const std::size_t a = position_of(view->cluster()->id);
    for (const GatewayLink& link : view->cluster()->links) {
      const std::size_t b = position_of(link.neighbor_cluster);
      if (b < graph.cluster_count && a < b) graph.links.emplace_back(a, b);
    }
  }
  return graph;
}

double measured_ch_coverage(double p, std::uint64_t seed) {
  ScenarioConfig config;
  config.width = 700.0;
  config.height = 450.0;
  config.node_count = 500;
  config.loss_p = p;
  config.seed = seed;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);
  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  scenario.network().crash(victim);
  scenario.run_epochs(2);
  std::size_t chs = 0, knowing = 0;
  for (FdsAgent* agent : scenario.fds().agents()) {
    if (!agent->view().is_clusterhead()) continue;
    if (!scenario.network().node(agent->id()).alive()) continue;
    ++chs;
    if (agent->log().knows(victim)) ++knowing;
  }
  return chs ? double(knowing) / double(chs) : 0.0;
}

void print_study() {
  bench::banner("System-level completeness",
                "model vs full stack over the real backbone (500 nodes)");

  // One representative topology for the model side.
  ScenarioConfig config;
  config.width = 700.0;
  config.height = 450.0;
  config.node_count = 500;
  config.loss_p = 0.0;
  config.seed = 13;
  Scenario scenario(config);
  scenario.setup();
  std::vector<ClusterId> index;
  const auto graph = backbone_of(scenario, index);
  std::printf("\nbackbone: %zu clusters, %zu links\n", graph.cluster_count,
              graph.links.size());

  Rng rng(0x5E5);
  std::printf("\n%-6s %12s %14s %14s %14s\n", "p", "link model",
              "P(all) model", "E[cov] model", "measured cov");
  for (double p : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const double link = analysis::link_delivery_probability(
        p, 2, ForwarderConfig{}.max_ch_retransmits,
        ForwarderConfig{}.max_gw_retries);
    const auto model =
        analysis::backbone_completeness(graph, 0, link, 4000, rng);
    std::printf("%-6.2f %12.4f %14.4f %14.4f %14.4f\n", p, link,
                model.p_all_reached, model.expected_coverage,
                measured_ch_coverage(p, 13));
  }
  std::printf("(model assumes 2 BGWs per link; the real field varies —"
              " shapes should agree, exact values need not)\n");

  std::printf("\n-- what Section 4.3's redundancy buys at the system level"
              " (p = 0.4) --\n");
  std::printf("%-34s %12s %14s\n", "machinery", "link model", "P(all) model");
  struct Row {
    const char* name;
    std::size_t backups;
    int ch_retx;
    int gw_retries;
  };
  for (const Row& row :
       {Row{"bare forward (no redundancy)", 0, 0, 0},
        Row{"+ CH retransmissions", 0, 2, 0},
        Row{"+ GW retries", 0, 2, 2},
        Row{"+ 2 ranked BGWs (full 4.3)", 2, 2, 2}}) {
    const double link = analysis::link_delivery_probability(
        0.4, row.backups, row.ch_retx, row.gw_retries);
    const auto model =
        analysis::backbone_completeness(graph, 0, link, 4000, rng);
    std::printf("%-34s %12.4f %14.4f\n", row.name, link,
                model.p_all_reached);
  }
}

void BM_BackboneReliability(benchmark::State& state) {
  analysis::BackboneGraph graph;
  graph.cluster_count = 40;
  for (std::size_t i = 0; i + 1 < 40; ++i) {
    graph.links.emplace_back(i, i + 1);
    if (i + 5 < 40) graph.links.emplace_back(i, i + 5);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::backbone_completeness(graph, 0, 0.95, 100, rng)
            .p_all_reached);
  }
}
BENCHMARK(BM_BackboneReliability);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_study();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
