// Detection latency distribution, plus the static-vs-adaptive Pareto study.
//
// The paper argues that for large redundant populations "completeness and
// accuracy of failure detection are more important than time to failure
// detection" (Section 2.1) — latency is bounded by construction: a crash is
// flagged at the next execution's fds.R-3, i.e. within phi + 2*Thop of the
// crash. This bench verifies that bound empirically and reports the
// distribution (crashes land uniformly inside the interval), plus the
// propagation delay until system-wide knowledge exceeds 95%.
//
// The second study sweeps the self-tuning accrual detector
// (FdsConfig::adaptive_enabled, docs/ADAPTIVE.md) against the static
// one-miss rule across three loss regimes — steady-low, steady-high, and
// bursty interference — and prints each variant's (false-positive rate,
// detection latency) point. The claim under test: on the bursty regime at
// least one accrual threshold Pareto-dominates the static rule (no worse
// latency, strictly fewer false positives), because the estimator absorbs
// the burst instead of flagging every silent member.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

void print_study() {
  bench::banner("Detection latency",
                "crash -> local detection -> 95% system-wide knowledge");
  std::printf("\n(300 nodes, phi = 2 s, Thop = 100 ms; 60 crashes per row at"
              " uniform offsets)\n");
  std::printf("%-6s %10s %10s %10s %12s %14s\n", "p", "p50 (s)", "p90 (s)",
              "max (s)", "bound (s)", "95pct-know(s)");
  for (double p : {0.0, 0.1, 0.3}) {
    Histogram latencies(0.0, 4.0, 80);
    RunningStats knowledge_delay;
    Rng offsets(0xDE1 + std::uint64_t(p * 100));

    ScenarioConfig config;
    config.width = 550.0;
    config.height = 400.0;
    config.node_count = 300;
    config.loss_p = p;
    config.seed = 7;
    Scenario scenario(config);
    scenario.setup();
    scenario.run_epochs(1);

    int crashes = 0;
    while (crashes < 60) {
      std::vector<NodeId> candidates;
      for (MembershipView* view : scenario.views()) {
        if (view->role() == Role::kOrdinaryMember &&
            scenario.network().node(view->self()).alive()) {
          candidates.push_back(view->self());
        }
      }
      if (candidates.empty()) break;
      const NodeId victim = candidates[offsets.below(candidates.size())];
      // Crash at a uniform offset inside the current interval, after its
      // rounds have completed (the paper assumes nodes do not fail during
      // an FDS execution); detection then lands in the next execution.
      const SimTime now = scenario.network().simulator().now();
      const SimTime crash_at =
          now + SimTime::micros(std::int64_t(
                    offsets.uniform(0.3, 0.95) *
                    double(config.heartbeat_interval.as_micros())));
      scenario.schedule_crash(victim, crash_at);
      scenario.run_epochs(2);
      ++crashes;

      if (const auto first = scenario.metrics().first_detection(victim)) {
        latencies.add((first->when - crash_at).as_seconds());
      }
      // Propagation: additional epochs until >= 95% of nodes know.
      int extra = 0;
      while (knowledge_coverage(scenario.fds(), scenario.network(), victim) <
                 0.95 &&
             extra < 4) {
        scenario.run_epochs(1);
        ++extra;
      }
      const auto first = scenario.metrics().first_detection(victim);
      if (first) {
        knowledge_delay.add(
            (scenario.network().simulator().now() - crash_at).as_seconds());
      }
    }

    const double bound =
        config.heartbeat_interval.as_seconds() + 2 * 0.1;  // phi + 2*Thop
    std::printf("%-6.2f %10.2f %10.2f %10.2f %12.2f %14.2f\n", p,
                latencies.quantile(0.5), latencies.quantile(0.9),
                latencies.quantile(1.0), bound, knowledge_delay.mean());
  }
  std::printf("\nReading: local detection is bounded by phi + 2*Thop and the"
              " distribution is uniform-ish over the interval (crash offsets"
              " are uniform); system-wide knowledge follows within the"
              " propagation epochs.\n");
}

// --- Static-vs-adaptive Pareto study ---------------------------------------

struct LossRegime {
  const char* name;
  double base_loss;  ///< background per-frame loss
  bool bursty;       ///< channel-wide 70%-loss bursts between crashes
};

struct VariantPoint {
  const char* label;
  /// False detections per 1000 member-epochs.
  double fp_rate = 0.0;
  /// Mean crash -> first-detection latency (seconds); only detected crashes.
  double latency_s = 0.0;
  std::size_t detected = 0;
  std::size_t crashes = 0;
};

/// Runs one detector variant through one regime. Crashes always land in a
/// clean window (>= 10 epochs after a burst ends, enough for the loss
/// estimate to decay back to quiescent), per the paper's assumption that
/// nodes do not fail during an FDS execution — the regimes differ in what
/// the detector must NOT flag, not in what it must catch.
VariantPoint run_variant(const char* label, const LossRegime& regime,
                         bool adaptive, std::uint32_t threshold_milli) {
  ScenarioConfig config;
  config.width = 550.0;
  config.height = 400.0;
  config.node_count = 120;
  config.loss_p = regime.base_loss;
  config.seed = 7;
  // Falsely-dropped members must be able to resubscribe, or the first burst
  // would permanently shrink the rosters and deflate later FP counts.
  config.fds.recovery_enabled = true;
  config.fds.adaptive_enabled = adaptive;
  config.fds.accrual_threshold_milli = threshold_milli;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(2);
  std::uint64_t epochs = 2;

  Rng offsets(0xDE1);
  RunningStats latency;
  VariantPoint point;
  point.label = label;
  for (int cycle = 0; cycle < 6; ++cycle) {
    if (regime.bursty) {
      scenario.network().channel().set_loss_override(0.7);
      scenario.run_epochs(2);
      scenario.network().channel().clear_loss_override();
      scenario.run_epochs(10);  // decay window: loss estimates settle
      epochs += 12;
    } else {
      scenario.run_epochs(2);
      epochs += 2;
    }
    std::vector<NodeId> candidates;
    for (MembershipView* view : scenario.views()) {
      if (view->role() == Role::kOrdinaryMember &&
          scenario.network().node(view->self()).alive()) {
        candidates.push_back(view->self());
      }
    }
    if (candidates.empty()) break;
    const NodeId victim = candidates[offsets.below(candidates.size())];
    const SimTime now = scenario.network().simulator().now();
    const SimTime crash_at =
        now + SimTime::micros(std::int64_t(
                  offsets.uniform(0.3, 0.95) *
                  double(config.heartbeat_interval.as_micros())));
    scenario.schedule_crash(victim, crash_at);
    scenario.run_epochs(3);
    epochs += 3;
    ++point.crashes;
    if (const auto first = scenario.metrics().first_detection(victim)) {
      ++point.detected;
      latency.add((first->when - crash_at).as_seconds());
    }
  }

  point.fp_rate = double(scenario.metrics().false_detections()) * 1000.0 /
                  (double(config.node_count) * double(epochs));
  point.latency_s = point.detected > 0 ? latency.mean() : 0.0;
  return point;
}

void print_pareto_study() {
  bench::banner("Static vs adaptive Pareto",
                "false-positive rate vs detection latency per loss regime");
  const LossRegime regimes[] = {
      {"steady-low", 0.05, false},
      {"steady-high", 0.30, false},
      {"bursty", 0.05, true},
  };
  const std::uint32_t thresholds[] = {500, 1000, 1500, 2000, 3000};
  // Latency slack for the dominance test: detections are quantized to R-3
  // instants, but victim draws diverge across variants (different rosters),
  // so "no worse latency" tolerates one round of measurement noise.
  const double kLatencySlackS = 0.15;

  bool dominated_somewhere = false;
  for (const LossRegime& regime : regimes) {
    std::printf("\n[%s] base loss %.2f%s\n", regime.name, regime.base_loss,
                regime.bursty ? " + 70% bursts" : "");
    std::printf("  %-16s %14s %12s %10s\n", "variant", "fp/1k-mem-ep",
                "latency(s)", "detected");
    const VariantPoint st = run_variant("static", regime, false, 0);
    std::printf("  %-16s %14.3f %12.2f %7zu/%zu\n", st.label, st.fp_rate,
                st.latency_s, st.detected, st.crashes);
    for (std::uint32_t threshold : thresholds) {
      char label[32];
      std::snprintf(label, sizeof label, "adaptive@%u", threshold);
      const VariantPoint ad = run_variant(label, regime, true, threshold);
      const bool dominates = ad.fp_rate < st.fp_rate &&
                             ad.latency_s <= st.latency_s + kLatencySlackS &&
                             ad.detected >= st.detected;
      std::printf("  %-16s %14.3f %12.2f %7zu/%zu%s\n", ad.label, ad.fp_rate,
                  ad.latency_s, ad.detected, ad.crashes,
                  dominates ? "  << dominates static" : "");
      dominated_somewhere = dominated_somewhere || dominates;
    }
  }
  std::printf("\n%s: adaptive %s static on at least one regime\n",
              dominated_somewhere ? "PASS" : "FAIL",
              dominated_somewhere ? "dominates" : "does not dominate");
  if (!dominated_somewhere) std::exit(1);
}

void BM_DetectionRound(benchmark::State& state) {
  ScenarioConfig config;
  config.width = 550.0;
  config.height = 400.0;
  config.node_count = 300;
  config.loss_p = 0.1;
  config.seed = 7;
  Scenario scenario(config);
  scenario.setup();
  for (auto _ : state) {
    scenario.run_epochs(1);
  }
}
BENCHMARK(BM_DetectionRound)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_study();
  print_pareto_study();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
