// Detection latency distribution.
//
// The paper argues that for large redundant populations "completeness and
// accuracy of failure detection are more important than time to failure
// detection" (Section 2.1) — latency is bounded by construction: a crash is
// flagged at the next execution's fds.R-3, i.e. within phi + 2*Thop of the
// crash. This bench verifies that bound empirically and reports the
// distribution (crashes land uniformly inside the interval), plus the
// propagation delay until system-wide knowledge exceeds 95%.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

void print_study() {
  bench::banner("Detection latency",
                "crash -> local detection -> 95% system-wide knowledge");
  std::printf("\n(300 nodes, phi = 2 s, Thop = 100 ms; 60 crashes per row at"
              " uniform offsets)\n");
  std::printf("%-6s %10s %10s %10s %12s %14s\n", "p", "p50 (s)", "p90 (s)",
              "max (s)", "bound (s)", "95pct-know(s)");
  for (double p : {0.0, 0.1, 0.3}) {
    Histogram latencies(0.0, 4.0, 80);
    RunningStats knowledge_delay;
    Rng offsets(0xDE1 + std::uint64_t(p * 100));

    ScenarioConfig config;
    config.width = 550.0;
    config.height = 400.0;
    config.node_count = 300;
    config.loss_p = p;
    config.seed = 7;
    Scenario scenario(config);
    scenario.setup();
    scenario.run_epochs(1);

    int crashes = 0;
    while (crashes < 60) {
      std::vector<NodeId> candidates;
      for (MembershipView* view : scenario.views()) {
        if (view->role() == Role::kOrdinaryMember &&
            scenario.network().node(view->self()).alive()) {
          candidates.push_back(view->self());
        }
      }
      if (candidates.empty()) break;
      const NodeId victim = candidates[offsets.below(candidates.size())];
      // Crash at a uniform offset inside the current interval, after its
      // rounds have completed (the paper assumes nodes do not fail during
      // an FDS execution); detection then lands in the next execution.
      const SimTime now = scenario.network().simulator().now();
      const SimTime crash_at =
          now + SimTime::micros(std::int64_t(
                    offsets.uniform(0.3, 0.95) *
                    double(config.heartbeat_interval.as_micros())));
      scenario.schedule_crash(victim, crash_at);
      scenario.run_epochs(2);
      ++crashes;

      if (const auto first = scenario.metrics().first_detection(victim)) {
        latencies.add((first->when - crash_at).as_seconds());
      }
      // Propagation: additional epochs until >= 95% of nodes know.
      int extra = 0;
      while (knowledge_coverage(scenario.fds(), scenario.network(), victim) <
                 0.95 &&
             extra < 4) {
        scenario.run_epochs(1);
        ++extra;
      }
      const auto first = scenario.metrics().first_detection(victim);
      if (first) {
        knowledge_delay.add(
            (scenario.network().simulator().now() - crash_at).as_seconds());
      }
    }

    const double bound =
        config.heartbeat_interval.as_seconds() + 2 * 0.1;  // phi + 2*Thop
    std::printf("%-6.2f %10.2f %10.2f %10.2f %12.2f %14.2f\n", p,
                latencies.quantile(0.5), latencies.quantile(0.9),
                latencies.quantile(1.0), bound, knowledge_delay.mean());
  }
  std::printf("\nReading: local detection is bounded by phi + 2*Thop and the"
              " distribution is uniform-ish over the interval (crash offsets"
              " are uniform); system-wide knowledge follows within the"
              " propagation epochs.\n");
}

void BM_DetectionRound(benchmark::State& state) {
  ScenarioConfig config;
  config.width = 550.0;
  config.height = 400.0;
  config.node_count = 300;
  config.loss_p = 0.1;
  config.seed = 7;
  Scenario scenario(config);
  scenario.setup();
  for (auto _ : state) {
    scenario.run_epochs(1);
  }
}
BENCHMARK(BM_DetectionRound)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_study();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
