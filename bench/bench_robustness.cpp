// Robustness of the FDS beyond the paper's model assumptions.
//
// Section 5 assumes iid per-receiver Bernoulli loss and Section 2.2 assumes
// near-accurate clocks. This bench stress-tests both:
//
//   1. Loss-model study — the same full-stack false-detection and
//      incompleteness experiments under (a) iid Bernoulli, (b) bursty
//      Gilbert-Elliott links with a matched stationary loss rate, and
//      (c) distance-dependent loss with a matched disk-average rate.
//      Burstiness *correlates* the evidence channels that share a link
//      (v's heartbeat and digest both traverse v->CH), which weakens the
//      time redundancy the rule relies on.
//
//   2. Clock-skew study — false detections per execution as per-node round
//      offsets approach the round length Thop.

#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/figures.h"
#include "bench/bench_util.h"
#include "sim/scenario.h"
#include "sim/single_cluster.h"

namespace {

using namespace cfds;

/// Gilbert-Elliott parameters with the given stationary loss.
GilbertElliottLoss::Params ge_matched(double target_loss) {
  GilbertElliottLoss::Params params;
  params.p_good = target_loss / 3.0;
  params.p_bad = 0.9;
  params.p_bg = 0.25;
  // stationary = f*p_bad + (1-f)*p_good with f = p_gb/(p_gb+p_bg)
  const double f =
      (target_loss - params.p_good) / (params.p_bad - params.p_good);
  params.p_gb = f * params.p_bg / (1.0 - f);
  return params;
}

/// Distance-loss parameters whose disk-average rate approximates the
/// target (taking d/R ~ sqrt(U): E[floor + (c-floor)(d/R)^2] =
/// floor + (c-floor)/2; pairwise node distances are close enough for a
/// sensitivity study).
void distance_matched(double target_loss, double& floor, double& ceiling) {
  floor = target_loss / 2.0;
  ceiling = 1.5 * target_loss;
}

void print_loss_model_study() {
  bench::banner("Robustness", "loss-model sensitivity (full stack, N = 20)");
  constexpr int kTrials = 8000;
  std::printf("\n%-6s %14s %14s %14s %14s\n", "p", "analytic(iid)",
              "Bernoulli MC", "GilbertE MC", "Distance MC");
  for (double p : {0.3, 0.4, 0.5}) {
    std::printf("%-6.2f %14s", p,
                bench::sci_cell(analysis::false_detection_upper_bound(p, 20))
                    .c_str());
    for (int model = 0; model < 3; ++model) {
      SingleClusterConfig config;
      config.n = 20;
      config.p = p;
      config.seed = 0xA10B + std::uint64_t(model);
      config.num_deputies = 0;
      if (model == 1) {
        config.loss_factory = [p] {
          return std::make_unique<GilbertElliottLoss>(ge_matched(p));
        };
      } else if (model == 2) {
        config.loss_factory = [p] {
          double floor = 0.0, ceiling = 0.0;
          distance_matched(p, floor, ceiling);
          return std::make_unique<DistanceLoss>(floor, ceiling, 100.0);
        };
      }
      SingleClusterExperiment experiment(config);
      const auto estimate = experiment.run_false_detection(kTrials);
      std::printf(" %14s",
                  bench::mc_cell(estimate.estimate(), estimate.ci99()).c_str());
    }
    std::printf("\n");
  }
  std::printf("(bursty links raise false detections above the iid analysis:"
              " the heartbeat and digest of one node share a link, so their"
              " losses correlate)\n");

  std::printf("\n%-6s %14s %14s %14s %14s   (incompleteness)\n", "p",
              "analytic(iid)", "Bernoulli MC", "GilbertE MC", "Distance MC");
  for (double p : {0.3, 0.4, 0.5}) {
    std::printf("%-6.2f %14s", p,
                bench::sci_cell(analysis::incompleteness_upper_bound(p, 20))
                    .c_str());
    for (int model = 0; model < 3; ++model) {
      SingleClusterConfig config;
      config.n = 20;
      config.p = p;
      config.seed = 0xB0B + std::uint64_t(model);
      config.num_deputies = 0;
      if (model == 1) {
        config.loss_factory = [p] {
          return std::make_unique<GilbertElliottLoss>(ge_matched(p));
        };
      } else if (model == 2) {
        config.loss_factory = [p] {
          double floor = 0.0, ceiling = 0.0;
          distance_matched(p, floor, ceiling);
          return std::make_unique<DistanceLoss>(floor, ceiling, 100.0);
        };
      }
      SingleClusterExperiment experiment(config);
      const auto estimate = experiment.run_incompleteness(kTrials);
      std::printf(" %14s",
                  bench::mc_cell(estimate.estimate(), estimate.ci99()).c_str());
    }
    std::printf("\n");
  }
}

void print_skew_study() {
  std::printf("\n-- clock-skew sensitivity (300 nodes, p = 0.1, 6 epochs,"
              " Thop = 100 ms) --\n");
  std::printf("%-14s %16s %14s\n", "max skew (ms)", "false detections",
              "crash caught");
  for (std::int64_t skew_ms : {0, 10, 25, 50, 100, 200, 400}) {
    ScenarioConfig config;
    config.width = 550.0;
    config.height = 400.0;
    config.node_count = 300;
    config.loss_p = 0.1;
    config.seed = 83;
    config.fds.max_clock_skew = SimTime::millis(skew_ms);
    Scenario scenario(config);
    scenario.setup();
    scenario.run_epochs(3);
    NodeId victim = NodeId::invalid();
    for (MembershipView* view : scenario.views()) {
      if (view->role() == Role::kOrdinaryMember) {
        victim = view->self();
        break;
      }
    }
    scenario.network().crash(victim);
    scenario.run_epochs(3);
    std::printf("%-14lld %16zu %14s\n", static_cast<long long>(skew_ms),
                scenario.metrics().false_detections(),
                scenario.metrics().first_detection(victim) ? "yes" : "NO");
  }
  std::printf("(the protocol shrugs off skew well below Thop; once offsets"
              " approach the round length, heartbeats land in the wrong"
              " round and accuracy collapses — quantifying Section 2.2's"
              " clock assumption)\n");
}

void BM_SkewedEpoch(benchmark::State& state) {
  ScenarioConfig config;
  config.width = 550.0;
  config.height = 400.0;
  config.node_count = 300;
  config.loss_p = 0.1;
  config.seed = 83;
  config.fds.max_clock_skew = SimTime::millis(state.range(0));
  Scenario scenario(config);
  scenario.setup();
  for (auto _ : state) {
    scenario.run_epochs(1);
  }
}
BENCHMARK(BM_SkewedEpoch)->Arg(0)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_loss_model_study();
  print_skew_study();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
