// Shared helpers for the benchmark binaries.
//
// Every bench binary regenerates one of the paper's evaluation artifacts: it
// first prints the figure's data series (analytic sweep plus Monte-Carlo
// cross-checks where the probabilities are sampleable), then runs its
// google-benchmark timings. Output is aligned plain text so the series can
// be diffed against EXPERIMENTS.md or piped into a plotting script.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cfds::bench {

/// Prints a banner for one reproduced artifact.
inline void banner(const char* figure, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("================================================================\n");
}

/// Prints a table header: first column "p", then the given column names.
inline void table_header(const std::vector<std::string>& columns) {
  std::printf("%-6s", "p");
  for (const std::string& c : columns) std::printf("  %14s", c.c_str());
  std::printf("\n");
}

/// Prints one table row: p followed by values in scientific notation.
inline void table_row(double p, const std::vector<double>& values) {
  std::printf("%-6.2f", p);
  for (double v : values) std::printf("  %14.4e", v);
  std::printf("\n");
}

/// Prints one table row with string cells (for "n/a" style entries).
inline void table_row(double p, const std::vector<std::string>& cells) {
  std::printf("%-6.2f", p);
  for (const std::string& c : cells) std::printf("  %14s", c.c_str());
  std::printf("\n");
}

/// Formats a Monte-Carlo estimate with its 99% half-width.
inline std::string mc_cell(double estimate, double ci) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2e±%.0e", estimate, ci);
  return buffer;
}

/// Formats a plain value in scientific notation.
inline std::string sci_cell(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.4e", value);
  return buffer;
}

inline std::string fixed_cell(double value, int precision = 4) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

}  // namespace cfds::bench
