// Shared helpers for the benchmark binaries.
//
// Every bench binary regenerates one of the paper's evaluation artifacts: it
// first prints the figure's data series (analytic sweep plus Monte-Carlo
// cross-checks where the probabilities are sampleable), then runs its
// google-benchmark timings. Output is aligned plain text so the series can
// be diffed against EXPERIMENTS.md or piped into a plotting script.
//
// All benches accept the uniform runner flags — --trials, --threads, --seed,
// --out, --no-wall-time — parsed by runner/cli_args before google-benchmark
// sees argv. The sweeps ported onto the parallel runner honor all of them;
// the remaining benches accept them so the invocation syntax is uniform
// across binaries (docs/RUNNER.md documents which benches use which).

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "event/simulator.h"
#include "runner/cli_args.h"
#include "runner/result_sink.h"
#include "runner/thread_pool.h"

namespace cfds::bench {

/// Options parsed from the uniform flags (zero/empty = bench defaults).
[[nodiscard]] inline runner::RunnerOptions& options() {
  static runner::RunnerOptions instance;
  return instance;
}

/// Parses and strips the uniform flags from argv. Call first in main, before
/// benchmark::Initialize, which consumes (and validates) the rest.
inline void parse_common_args(int& argc, char** argv) {
  runner::FlagSet flags;
  runner::add_runner_flags(flags, options());
  flags.parse_or_exit(argc, argv);
  // Applied before any trial thread constructs a Simulator (the pool below
  // is built lazily, after parsing).
  if (options().no_calendar) {
    Simulator::set_default_queue_mode(QueueMode::kHeap);
  }
}

/// The bench's shared thread pool, sized by --threads (0 = hardware).
/// Constructed on first use so parse_common_args has already run.
[[nodiscard]] inline runner::ThreadPool& pool() {
  static runner::ThreadPool instance(unsigned(options().threads));
  return instance;
}

/// JSONL sink for --out, or null when no --out was given.
[[nodiscard]] inline std::unique_ptr<runner::JsonlResultSink> make_sink() {
  if (options().out.empty()) return nullptr;
  auto sink = std::make_unique<runner::JsonlResultSink>(
      options().out, !options().no_wall_time);
  if (!sink->ok()) {
    std::fprintf(stderr, "cannot open --out %s\n", options().out.c_str());
    std::exit(2);
  }
  return sink;
}

/// Prints a banner for one reproduced artifact.
inline void banner(const char* figure, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("================================================================\n");
}

/// Prints a table header: first column "p", then the given column names.
inline void table_header(const std::vector<std::string>& columns) {
  std::printf("%-6s", "p");
  for (const std::string& c : columns) std::printf("  %14s", c.c_str());
  std::printf("\n");
}

/// Prints one table row: p followed by values in scientific notation.
inline void table_row(double p, const std::vector<double>& values) {
  std::printf("%-6.2f", p);
  for (double v : values) std::printf("  %14.4e", v);
  std::printf("\n");
}

/// Prints one table row with string cells (for "n/a" style entries).
inline void table_row(double p, const std::vector<std::string>& cells) {
  std::printf("%-6.2f", p);
  for (const std::string& c : cells) std::printf("  %14s", c.c_str());
  std::printf("\n");
}

/// Formats a Monte-Carlo estimate with its 99% half-width.
[[nodiscard]] inline std::string mc_cell(double estimate, double ci) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2e±%.0e", estimate, ci);
  return buffer;
}

/// Formats a plain value in scientific notation.
[[nodiscard]] inline std::string sci_cell(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.4e", value);
  return buffer;
}

[[nodiscard]] inline std::string fixed_cell(double value, int precision = 4) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

}  // namespace cfds::bench
