// Figure 6: P(False detection on CH) vs message-loss probability p, for
// cluster populations N = 50, 75, 100.
//
// The measure plunges to ~1e-120 over the paper's sweep, far beyond any
// sampling reach — exactly why the analytic evaluation runs in log space.
// The semantic Monte-Carlo column is printed where the expected event count
// permits (small N / large p), and a full protocol-stack spot check pins the
// event-driven implementation at a sampleable point.

#include <benchmark/benchmark.h>

#include <map>

#include "analysis/figures.h"
#include "bench/bench_util.h"
#include "runner/executor.h"
#include "sim/fast_mc.h"
#include "sim/single_cluster.h"

namespace {

using namespace cfds;

constexpr long kSemanticTrials = 40000000;  // trials are ~2 draws on average

void print_figure(runner::ResultSink* sink) {
  const long trials = bench::options().trials_or(kSemanticTrials);
  bench::banner("Figure 6",
                "P(False detection on CH) vs p  (N = 50, 75, 100)");

  // The measure plunges below any sampling reach over most of the sweep, so
  // the runner's grid holds only the points where the expected event count
  // clears ~10; everything else prints as "<sampling floor".
  auto spec = runner::ExperimentSpec::for_kind(
      runner::EstimatorKind::kMcFalseDetectionOnCh);
  spec.name = "fig6_false_detection_on_ch";
  spec.trials = trials;
  spec.seed = bench::options().seed_or(0xF16);
  for (int n : {50, 75, 100}) {
    for (int i = 0; i < analysis::sweep_points(); ++i) {
      const double p = analysis::sweep_p(i);
      if (analysis::false_detection_on_ch(p, n) * double(trials) >= 10.0) {
        spec.grid.push_back(runner::GridPoint{n, p});
      }
    }
  }
  const auto results = runner::run_experiment(spec, bench::pool(), sink);
  std::map<std::pair<int, double>, const ProportionEstimator*> sampled;
  for (const auto& result : results) {
    sampled[{result.point.n, result.point.p}] = &result.estimator;
  }

  for (int n : {50, 75, 100}) {
    std::printf("\n-- N = %d --\n", n);
    bench::table_header({"analytic", "paper-sum", "semantic MC"});
    for (int i = 0; i < analysis::sweep_points(); ++i) {
      const double p = analysis::sweep_p(i);
      const double closed = analysis::false_detection_on_ch(p, n);
      const double sum = analysis::false_detection_on_ch_sum(p, n);
      std::string mc_text = "<sampling floor";
      if (const auto it = sampled.find({n, p}); it != sampled.end()) {
        mc_text = bench::mc_cell(it->second->estimate(), it->second->ci99());
      }
      bench::table_row(p, std::vector<std::string>{bench::sci_cell(closed),
                                                   bench::sci_cell(sum),
                                                   mc_text});
    }
  }

  std::printf("\n-- paper's quantitative reading of the figure --\n");
  std::printf("  P(p=0.50, N=50)  = %.3e   (paper: 'still below 1e-6')\n",
              analysis::false_detection_on_ch(0.5, 50));
  std::printf("  P(p=0.25, N=50)  = %.3e   (paper: 'extremely low below p=0.25')\n",
              analysis::false_detection_on_ch(0.25, 50));
  std::printf(
      "  DCH vs CH: P(FD on CH) < P^(FD) at every sweep point: %s\n",
      [] {
        for (int n : {50, 75, 100}) {
          for (int i = 0; i < analysis::sweep_points(); ++i) {
            const double p = analysis::sweep_p(i);
            if (analysis::false_detection_on_ch(p, n) >=
                analysis::false_detection_upper_bound(p, n)) {
              return "VIOLATED";
            }
          }
        }
        return "holds";
      }());

  std::printf(
      "\n-- full protocol stack spot check (event-driven, real frames) --\n");
  auto stack = runner::ExperimentSpec::for_kind(
      runner::EstimatorKind::kStackFalseDetectionOnCh);
  stack.name = "fig6_stack_spot_check";
  stack.grid = {runner::GridPoint{12, 0.5}};
  stack.trials = 40000;
  stack.seed = bench::options().seed_or(0xF6);
  const auto estimate =
      runner::run_experiment(stack, bench::pool(), sink).front().estimator;
  std::printf("N=12 p=0.50        %14.4e  %20s\n",
              analysis::false_detection_on_ch(0.5, 12),
              bench::mc_cell(estimate.estimate(), estimate.ci99()).c_str());
}

void BM_Fig6Analytic(benchmark::State& state) {
  double sink = 0.0;
  for (auto _ : state) {
    sink += analysis::false_detection_on_ch(0.3, int(state.range(0)));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Fig6Analytic)->Arg(50)->Arg(100);

void BM_Fig6SemanticMcTrial(benchmark::State& state) {
  Rng rng(2);
  FastMcConfig config;
  config.n = int(state.range(0));
  config.p = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mc_false_detection_on_ch(config, 1000, rng).trials());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_Fig6SemanticMcTrial)->Arg(50)->Arg(100);

void BM_Fig6DeputyCheckExecution(benchmark::State& state) {
  SingleClusterConfig config;
  config.n = int(state.range(0));
  config.p = 0.3;
  config.pin_edge_node = false;
  config.pin_deputy_center = true;
  SingleClusterExperiment experiment(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_false_detection_on_ch(1).trials());
  }
}
BENCHMARK(BM_Fig6DeputyCheckExecution)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  const auto sink = cfds::bench::make_sink();
  print_figure(sink.get());
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
