// Host migration study (the extension Section 2.1 defers): how the service
// degrades and self-heals as random-waypoint speed grows.
//
// With motion, members drift out of their CH's range; the re-affiliation
// rule (miss k consecutive updates -> unmark -> re-subscribe via F5) moves
// them to reachable clusters. The cost is migration-induced false reports:
// a CH that can no longer hear a departed member correctly concludes it is
// gone from the *cluster*, but the system-level interpretation "crashed"
// is wrong. The paper's stance — pair the FDS with a stability-oriented
// clustering algorithm for mobile settings — is visible in the numbers.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "net/mobility.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

struct Outcome {
  double affiliation = 0.0;
  std::size_t migration_false_reports = 0;
  bool crash_detected = false;
  double crash_coverage = 0.0;
};

Outcome run(double speed_mps, std::uint64_t seed) {
  ScenarioConfig config;
  config.width = 550.0;
  config.height = 400.0;
  config.node_count = 300;
  config.loss_p = 0.05;
  config.seed = seed;
  Scenario scenario(config);
  scenario.setup();

  // Pending tick events die with the scenario's simulator, so a scoped
  // mobility process is safe here.
  std::unique_ptr<RandomWaypointMobility> mobility;
  if (speed_mps > 0.0) {
    WaypointConfig wp;
    wp.width = 550.0;
    wp.height = 400.0;
    wp.min_speed_mps = speed_mps / 2.0;
    wp.max_speed_mps = speed_mps;
    mobility = std::make_unique<RandomWaypointMobility>(scenario.network(),
                                                        wp, Rng(seed ^ 0xAAA));
    mobility->run(SimTime::zero(), SimTime::seconds(2 * 16));
  }

  scenario.run_epochs(8);
  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember &&
        scenario.network().node(view->self()).alive()) {
      victim = view->self();
      break;
    }
  }
  scenario.network().crash(victim);
  scenario.run_epochs(6);

  Outcome outcome;
  outcome.affiliation = scenario.affiliation_rate();
  outcome.migration_false_reports = scenario.metrics().false_detections();
  outcome.crash_detected =
      scenario.metrics().first_detection(victim).has_value();
  outcome.crash_coverage =
      knowledge_coverage(scenario.fds(), scenario.network(), victim);
  return outcome;
}

void print_study() {
  bench::banner("Mobility",
                "service health vs random-waypoint speed (300 nodes)");
  std::printf("\n%-12s %12s %16s %12s %12s\n", "speed (m/s)", "affiliation",
              "false reports", "crash found", "coverage");
  for (double speed : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const Outcome outcome = run(speed, 97);
    std::printf("%-12.1f %12.3f %16zu %12s %12.3f\n", speed,
                outcome.affiliation, outcome.migration_false_reports,
                outcome.crash_detected ? "yes" : "NO",
                outcome.crash_coverage);
  }
  std::printf(
      "\nReading: re-affiliation keeps nearly everyone clustered and real"
      "\ncrashes detectable across pedestrian and vehicle speeds; the cost"
      "\nis migration-induced false reports growing with speed — exactly why"
      "\nthe paper pairs mobile deployments with stability-oriented"
      "\nclustering [8, 9].\n");
}

void BM_MobileEpoch(benchmark::State& state) {
  ScenarioConfig config;
  config.width = 550.0;
  config.height = 400.0;
  config.node_count = 300;
  config.loss_p = 0.05;
  config.seed = 97;
  Scenario scenario(config);
  scenario.setup();
  WaypointConfig wp;
  wp.width = 550.0;
  wp.height = 400.0;
  RandomWaypointMobility mobility(scenario.network(), wp, Rng(1));
  mobility.run(SimTime::zero(), SimTime::seconds(3600));
  for (auto _ : state) {
    scenario.run_epochs(1);
  }
}
BENCHMARK(BM_MobileEpoch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_study();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
