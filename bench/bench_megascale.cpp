// Megascale worlds (ROADMAP "Million-node worlds"): one process drives
// n ∈ {10^4, 10^5, 10^6} through centralized formation plus a ten-epoch
// FDS trial at the paper's density (~50 nodes per transmission disk) and
// reports, per decade:
//
//   formation_ms     wall time of ClusterDirectory::build + install
//   events_per_sec   simulator throughput over the timed epochs
//   bytes_per_node   peak RSS (getrusage ru_maxrss) divided by n
//
// Decades run in ascending order inside one process, so each decade's peak
// RSS is dominated by its own working set (the previous decade's world is
// destroyed first, and the next is 10x larger than anything freed). The
// numbers are honest totals: they include the delivery backlog the sweep
// scheduling creates (every node's round-1 broadcast is in flight at once
// — ~n x fanout calendar entries at the burst peak), not just per-node
// protocol state. docs/PERF.md discusses the budget.
//
// Steady-state epochs are allocation-free (tests/test_steady_state_alloc
// proves it at n=10^4), so throughput here measures the protocol and event
// kernel, not the allocator.
//
// Flags: the uniform runner flags plus
//   --max-nodes N   largest decade to run (default 1000000; CI smoke uses
//                   100000 to bound the job)
//   --epochs E      timed epochs per decade (default 10)
//
// BENCH_megascale.json holds the committed baseline rows; check_megascale.py
// gates fresh runs against them (floor on events/s, ceiling on bytes/node).

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/directory.h"
#include "cluster/membership.h"
#include "fds/agent.h"
#include "net/network.h"
#include "net/topology.h"
#include "runner/result_sink.h"

namespace {

using namespace cfds;

/// Field dimensions for n nodes at the paper's density (500 <-> 700x450).
void field_for(std::size_t n, double& width, double& height) {
  const double scale = std::sqrt(double(n) / 500.0);
  width = 700.0 * scale;
  height = 450.0 * scale;
}

[[nodiscard]] double wall_ms_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Peak resident set size of this process, in bytes (ru_maxrss is KiB on
/// Linux).
[[nodiscard]] std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return std::uint64_t(usage.ru_maxrss) * 1024;
}

struct Row {
  std::size_t n = 0;
  std::size_t clusters = 0;
  double formation_ms = 0.0;
  double events_per_sec = 0.0;
  double bytes_per_node = 0.0;
};

Row run_decade(std::size_t n, std::uint64_t epochs, std::uint64_t seed) {
  Row row;
  row.n = n;

  double width = 0.0, height = 0.0;
  field_for(n, width, height);

  NetworkConfig net_config;
  net_config.seed = seed;
  Network network(net_config, std::make_unique<BernoulliLoss>(0.0));
  Rng placement = network.fork_rng();
  const auto positions = uniform_rect(n, width, height, placement);
  network.add_nodes(positions);

  const auto t_formation = std::chrono::steady_clock::now();
  const auto directory =
      ClusterDirectory::build(positions, net_config.channel.range);
  std::vector<std::unique_ptr<MembershipView>> owned_views;
  std::vector<MembershipView*> views;
  owned_views.reserve(n);
  views.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    owned_views.push_back(
        std::make_unique<MembershipView>(NodeId{std::uint32_t(i)}));
    views.push_back(owned_views.back().get());
  }
  directory.install(network, views);
  row.formation_ms = wall_ms_since(t_formation);
  row.clusters = directory.clusters().size();

  FdsConfig config;  // defaults: the simulator hard-boundary path
  config.heartbeat_interval = SimTime::seconds(2);
  FdsService fds(network, views, config);
  // Modest even-spread pre-size; the calendar queue's spare-vector pool
  // grows and recycles the burst-band buckets from the first epochs on.
  network.simulator().reserve(std::size_t{1} << 19);

  const SimTime phi = config.heartbeat_interval;
  std::uint64_t epoch = 0;
  SimTime next = phi;
  auto run_epochs = [&](std::uint64_t count) {
    for (std::uint64_t k = 0; k < count; ++k) {
      fds.schedule_epoch(epoch++, next);
      next += phi;
    }
    network.simulator().run_until(next);
  };

  const std::uint64_t events_before = network.simulator().events_executed();
  const auto t_epochs = std::chrono::steady_clock::now();
  run_epochs(epochs);
  const double epochs_ms = wall_ms_since(t_epochs);
  const std::uint64_t events =
      network.simulator().events_executed() - events_before;
  row.events_per_sec = double(events) / epochs_ms * 1000.0;
  row.bytes_per_node = double(peak_rss_bytes()) / double(n);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  long long max_nodes = 1'000'000;
  long long epochs = 10;
  cfds::runner::FlagSet extra;
  extra.add_value("--max-nodes", &max_nodes, "largest decade to run");
  extra.add_value("--epochs", &epochs, "timed epochs per decade");
  extra.parse_or_exit(argc, argv);

  const auto sink = cfds::bench::make_sink();
  const auto seed = cfds::bench::options().seed_or(7);

  cfds::bench::banner("Megascale", "formation + FDS epochs per decade");
  std::printf("\n%-10s %10s %14s %16s %16s\n", "nodes", "clusters",
              "formation ms", "events/sec", "bytes/node");

  for (std::size_t n : {std::size_t{10'000}, std::size_t{100'000},
                        std::size_t{1'000'000}}) {
    if (static_cast<long long>(n) > max_nodes) break;
    const Row row = run_decade(n, std::uint64_t(epochs), seed);
    std::printf("%-10zu %10zu %14.1f %16.0f %16.0f\n", row.n, row.clusters,
                row.formation_ms, row.events_per_sec, row.bytes_per_node);
    std::fflush(stdout);
    if (sink != nullptr) {
      for (const auto& [metric, value] :
           {std::pair<const char*, double>{"formation_ms", row.formation_ms},
            {"events_per_sec", row.events_per_sec},
            {"bytes_per_node", row.bytes_per_node}}) {
        cfds::runner::BenchRecord record;
        record.bench = "megascale";
        record.metric = metric;
        record.n = int(row.n);
        record.value = value;
        record.label = cfds::bench::options().label;
        sink->write(record);
      }
    }
  }

  std::printf(
      "\nReading: bytes/node includes the whole process — protocol state,\n"
      "the delivery backlog of the round sweep (~fanout calendar entries\n"
      "per node at the burst peak), and warm pools — measured at peak RSS.\n"
      "Decades ascend in one process so each peak reflects its own world.\n");
  return 0;
}
