// Cluster-based FDS vs the flat gossip-style failure detector (van Renesse
// et al., the paper's [11]) on the same radio substrate: detection latency,
// per-node radio traffic, and false-suspicion behaviour under loss.
//
// This quantifies the paper's Section 1/3 argument: flat detectors ship
// O(network)-sized state everywhere, while the cluster-based service pays
// constant-size heartbeats plus per-cluster digests, and its redundancy
// absorbs loss that drives timeout-based detectors to false suspicions.

#include <benchmark/benchmark.h>

#include "baseline/gossip_fd.h"
#include "baseline/swim.h"
#include "bench/bench_util.h"
#include "net/topology.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;

constexpr std::size_t kNodes = 400;
constexpr double kWidth = 650.0;
constexpr double kHeight = 400.0;

struct CfdsOutcome {
  double detection_latency_s = -1.0;
  double coverage = 0.0;
  double bytes_per_node_per_interval = 0.0;
  std::size_t false_detections = 0;
};

CfdsOutcome run_cfds(double p, std::uint64_t seed) {
  ScenarioConfig config;
  config.width = kWidth;
  config.height = kHeight;
  config.node_count = kNodes;
  config.loss_p = p;
  config.seed = seed;
  config.heartbeat_interval = SimTime::seconds(2);
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(2);

  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  const auto before = traffic_totals(scenario.network());
  const SimTime crash_time = scenario.network().simulator().now();
  scenario.network().crash(victim);
  scenario.run_epochs(4);
  const auto after = traffic_totals(scenario.network());

  CfdsOutcome outcome;
  if (const auto first = scenario.metrics().first_detection(victim)) {
    outcome.detection_latency_s = (first->when - crash_time).as_seconds();
  }
  outcome.coverage =
      knowledge_coverage(scenario.fds(), scenario.network(), victim);
  outcome.bytes_per_node_per_interval =
      double(after.bytes - before.bytes) / double(kNodes) / 4.0;
  outcome.false_detections = scenario.metrics().false_detections();
  return outcome;
}

struct GossipOutcome {
  double detection_latency_s = -1.0;
  double coverage = 0.0;
  double bytes_per_node_per_interval = 0.0;
  std::size_t false_suspicions = 0;
};

GossipOutcome run_gossip(double p, std::uint64_t seed) {
  NetworkConfig net_config;
  net_config.seed = seed;
  Network network(net_config, std::make_unique<BernoulliLoss>(p));
  Rng placement(seed);
  network.add_nodes(uniform_rect(kNodes, kWidth, kHeight, placement));

  GossipConfig config;
  config.gossip_interval = SimTime::seconds(2);  // same cadence as the FDS
  config.fail_timeout = SimTime::seconds(10);    // 5 missed intervals
  GossipService gossip(network, config);
  gossip.run_rounds(6, SimTime::zero());

  const NodeId victim{std::uint32_t(kNodes / 2)};
  const auto before = traffic_totals(network);
  const SimTime crash_time = network.simulator().now();
  network.crash(victim);
  gossip.run_rounds(8, crash_time);
  const auto after = traffic_totals(network);

  GossipOutcome outcome;
  const SimTime now = network.simulator().now();
  std::size_t observers = 0, suspecting = 0;
  for (GossipAgent* agent : gossip.agents()) {
    if (agent->id() == victim || !network.node(agent->id()).alive()) continue;
    ++observers;
    bool suspects_victim = false;
    for (NodeId s : agent->suspected(now)) {
      if (s == victim) {
        suspects_victim = true;
      } else if (network.node(s).alive()) {
        ++outcome.false_suspicions;
      }
    }
    if (suspects_victim) ++suspecting;
  }
  outcome.coverage = observers ? double(suspecting) / double(observers) : 0.0;
  // Latency model: counter freshness expires fail_timeout after the crash.
  outcome.detection_latency_s = config.fail_timeout.as_seconds();
  outcome.bytes_per_node_per_interval =
      double(after.bytes - before.bytes) / double(kNodes) / 8.0;
  return outcome;
}

struct SwimOutcome {
  double detection_latency_s = -1.0;
  double coverage = 0.0;
  double bytes_per_node_per_interval = 0.0;
  std::uint64_t false_declarations = 0;
};

SwimOutcome run_swim(double p, std::uint64_t seed) {
  NetworkConfig net_config;
  net_config.seed = seed;
  Network network(net_config, std::make_unique<BernoulliLoss>(p));
  Rng placement(seed);
  network.add_nodes(uniform_rect(kNodes, kWidth, kHeight, placement));

  SwimConfig config;
  config.period = SimTime::seconds(2);  // same cadence as the FDS epochs
  SwimService swim(network, config);
  swim.run_periods(6, SimTime::zero());

  const NodeId victim{std::uint32_t(kNodes / 2)};
  const auto before = traffic_totals(network);
  const SimTime crash_time = network.simulator().now();
  network.crash(victim);

  SwimOutcome outcome;
  for (int period = 0; period < 15; ++period) {
    swim.run_periods(1, network.simulator().now());
    if (outcome.detection_latency_s < 0.0 &&
        swim.declaration_coverage(victim) > 0.0) {
      outcome.detection_latency_s =
          (network.simulator().now() - crash_time).as_seconds();
    }
  }
  const auto after = traffic_totals(network);
  outcome.coverage = swim.declaration_coverage(victim);
  outcome.bytes_per_node_per_interval =
      double(after.bytes - before.bytes) / double(kNodes) / 15.0;
  for (SwimAgent* agent : swim.agents()) {
    outcome.false_declarations += agent->false_declarations();
  }
  return outcome;
}

void print_comparison() {
  bench::banner("Baseline comparison",
                "cluster FDS vs gossip FD vs SWIM (400 nodes, same field)");
  std::printf("\n%-8s %-10s %12s %10s %14s %10s\n", "p", "detector",
              "latency(s)", "coverage", "B/node/intvl", "false+");
  for (double p : {0.0, 0.1, 0.3}) {
    const CfdsOutcome cfds = run_cfds(p, 91);
    std::printf("%-8.2f %-10s %12.2f %10.3f %14.1f %10zu\n", p, "CFDS",
                cfds.detection_latency_s, cfds.coverage,
                cfds.bytes_per_node_per_interval, cfds.false_detections);
    const GossipOutcome gossip = run_gossip(p, 91);
    std::printf("%-8.2f %-10s %12.2f %10.3f %14.1f %10zu\n", p, "gossip",
                gossip.detection_latency_s, gossip.coverage,
                gossip.bytes_per_node_per_interval, gossip.false_suspicions);
    const SwimOutcome swim = run_swim(p, 91);
    std::printf("%-8.2f %-10s %12.2f %10.3f %14.1f %10llu\n", p, "SWIM",
                swim.detection_latency_s, swim.coverage,
                swim.bytes_per_node_per_interval,
                static_cast<unsigned long long>(swim.false_declarations));
  }
  std::printf(
      "\nReading: the cluster FDS detects in ~one heartbeat interval with"
      "\norders-of-magnitude less traffic (constant-size frames vs O(n)"
      "\ngossip tables) and near-zero false detections, at the price of the"
      "\ncluster structure it maintains. The gossip detector's latency is"
      "\nits timeout by construction, and its coverage lags because stale"
      "\ncounter values keep circulating after the crash. SWIM probes are"
      "\ncheap per frame but randomized: only the victim's neighbours can"
      "\ndetect it, first detection waits for a probe to land on it plus"
      "\nthe suspicion hysteresis, and dissemination rides later probes —"
      "\nthe overhearing-based digest evidence is what the cluster design"
      "\nbuys over point-to-point probing in a broadcast medium.\n");
}

void BM_CfdsEpoch400(benchmark::State& state) {
  ScenarioConfig config;
  config.width = kWidth;
  config.height = kHeight;
  config.node_count = kNodes;
  config.loss_p = 0.1;
  config.seed = 7;
  Scenario scenario(config);
  scenario.setup();
  for (auto _ : state) {
    scenario.run_epochs(1);
  }
}
BENCHMARK(BM_CfdsEpoch400)->Unit(benchmark::kMillisecond);

void BM_GossipRound400(benchmark::State& state) {
  NetworkConfig net_config;
  net_config.seed = 7;
  Network network(net_config, std::make_unique<BernoulliLoss>(0.1));
  Rng placement(7);
  network.add_nodes(uniform_rect(kNodes, kWidth, kHeight, placement));
  GossipService gossip(network, GossipConfig{});
  std::uint64_t round = 0;
  for (auto _ : state) {
    gossip.run_rounds(1, network.simulator().now() + SimTime::millis(1));
    ++round;
  }
}
BENCHMARK(BM_GossipRound400)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_comparison();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
