// Microbenchmarks for the simulator's three hot layers (see docs/PERF.md):
//
//   * event kernel   — schedule→fire throughput of the SBO-callable +
//                      slab/freelist kernel, with and without cancellation;
//   * spatial layer  — grid-built UnitDiskGraph construction vs the O(n^2)
//                      all-pairs reference build;
//   * channel layer  — broadcast fan-out batching (one transmit, k batched
//                      deliveries) and calendar-queue vs binary-heap
//                      schedule→fire throughput;
//   * message layer  — payload_cast tag-dispatch throughput;
//   * end to end     — FDS epoch events/sec at 500 and 2000 nodes.
//
// The deterministic study section measures each metric directly and, with
// --out, appends BenchRecord JSONL lines so runs can be compared against the
// committed trajectory in BENCH_kernel.json. `--trials K` with K < 100
// selects a smoke-sized run (the perf_smoke ctest target) that exercises all
// paths in seconds without producing comparable numbers.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "aggregation/messages.h"
#include "bench/bench_util.h"
#include "event/simulator.h"
#include "fds/messages.h"
#include "net/graph.h"
#include "net/topology.h"
#include "radio/channel.h"
#include "sim/scenario.h"

namespace {

using namespace cfds;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Field dimensions for n nodes at ~constant density (bench_scalability's
/// 500 <-> 700 x 450 regime), so end-to-end numbers are comparable.
void field_for(std::size_t n, double& width, double& height) {
  const double scale = std::sqrt(double(n) / 500.0);
  width = 700.0 * scale;
  height = 450.0 * scale;
}

std::vector<PayloadPtr> dispatch_frames() {
  std::vector<PayloadPtr> frames;
  for (int i = 0; i < 64; ++i) {
    if (i % 3 == 0) {
      auto hb = std::make_shared<HeartbeatPayload>();
      hb->sender = NodeId{std::uint32_t(i)};
      frames.push_back(hb);
    } else if (i % 3 == 1) {
      auto digest = std::make_shared<DigestPayload>();
      digest->sender = NodeId{std::uint32_t(i)};
      frames.push_back(digest);
    } else {
      auto update = std::make_shared<HealthUpdatePayload>();
      update->sender = NodeId{std::uint32_t(i)};
      frames.push_back(update);
    }
  }
  return frames;
}

void emit(runner::JsonlResultSink* sink, const char* bench, const char* metric,
          int n, double value) {
  if (sink != nullptr) {
    // Aggregate-init (not member-wise assignment): GCC 12's inliner flags the
    // SSO buffer of a default-constructed string as maybe-uninitialized when
    // `operator=(const char*)` is inlined here under -O2.
    sink->write(
        runner::BenchRecord{bench, metric, n, value, bench::options().label});
  }
}

void print_study(runner::JsonlResultSink* sink, bool smoke) {
  bench::banner("Kernel", "hot-path throughput (see BENCH_kernel.json)");
  std::printf("\n%-24s %8s %16s\n", "metric", "n", "value");

  // Graph construction: grid build vs the all-pairs reference.
  const std::vector<std::size_t> graph_sizes =
      smoke ? std::vector<std::size_t>{200}
            : std::vector<std::size_t>{500, 2000};
  const auto seed = bench::options().seed_or(19);
  for (std::size_t n : graph_sizes) {
    double width = 0.0, height = 0.0;
    field_for(n, width, height);
    Rng rng(seed);
    const auto points = uniform_rect(n, width, height, rng);
    {  // warm-up
      UnitDiskGraph warm(points, 100.0);
      benchmark::DoNotOptimize(warm.size());
    }
    const int reps = smoke ? 1 : (n <= 500 ? 40 : 8);
    auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      UnitDiskGraph graph(points, 100.0);
      benchmark::DoNotOptimize(graph.degree(0));
    }
    const double grid_ms = ms_since(t0) / reps;
    t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      auto graph = UnitDiskGraph::brute_force(points, 100.0);
      benchmark::DoNotOptimize(graph.degree(0));
    }
    const double brute_ms = ms_since(t0) / reps;
    std::printf("%-24s %8zu %16.4f\n", "graph_build_ms", n, grid_ms);
    std::printf("%-24s %8zu %16.4f\n", "graph_build_brute_ms", n, brute_ms);
    emit(sink, "graph_build", "ms", int(n), grid_ms);
    emit(sink, "graph_build_brute", "ms", int(n), brute_ms);
  }

  // Schedule→fire throughput (steady-state: one pending event at a time).
  {
    Simulator sim;
    const int warm = smoke ? 1000 : 100000;
    for (int i = 0; i < warm; ++i) sim.schedule_at(SimTime::micros(i), [] {});
    sim.run_to_completion();
    const int ops = smoke ? 10000 : 2000000;
    const auto t0 = Clock::now();
    for (int i = 0; i < ops; ++i) {
      sim.schedule_at(sim.now() + SimTime::micros(1), [] {});
      (void)sim.step();  // exactly one event is queued
    }
    const double rate = ops / ms_since(t0) * 1000.0;
    std::printf("%-24s %8s %16.0f\n", "sched_fire_ops_per_sec", "-", rate);
    emit(sink, "sched_fire", "ops_per_sec", 0, rate);
  }

  // Schedule→cancel→fire (the forwarder's arm-then-stand-down pattern).
  {
    Simulator sim;
    const int ops = smoke ? 10000 : 1000000;
    const auto t0 = Clock::now();
    for (int i = 0; i < ops; ++i) {
      auto cancelled = sim.schedule_at(sim.now() + SimTime::micros(2), [] {});
      sim.schedule_at(sim.now() + SimTime::micros(1), [] {});
      cancelled.cancel();
      sim.run_until(sim.now() + SimTime::micros(2));
    }
    const double rate = ops / ms_since(t0) * 1000.0;
    std::printf("%-24s %8s %16.0f\n", "sched_cancel_ops_per_sec", "-", rate);
    emit(sink, "sched_cancel", "ops_per_sec", 0, rate);
  }

  // Broadcast fan-out: one transmit() batched into k deliveries. Exercises
  // the Transmission slab + batch-scheduling path end to end (loss p = 0 so
  // every candidate becomes a delivery).
  {
    Simulator sim;
    BernoulliLoss loss(0.0);
    Rng placement(seed);
    Channel channel(sim, loss, ChannelConfig{}, Rng(seed + 1));
    const std::size_t fanout = smoke ? 16 : 256;
    NodeStore store;
    std::vector<std::unique_ptr<Radio>> radios;
    for (std::size_t i = 0; i <= fanout; ++i) {
      // Everyone within a 50 m box: the whole population is in range of the
      // sender (range 100 m), so every broadcast fans out to `fanout`.
      const Vec2 pos{placement.uniform(0.0, 50.0),
                     placement.uniform(0.0, 50.0)};
      const std::uint32_t slot = store.add(pos, 1e9);
      radios.push_back(
          std::make_unique<Radio>(store, slot, NodeId{std::uint32_t(i)}));
      channel.attach(*radios.back());
    }
    auto hb = std::make_shared<HeartbeatPayload>();
    hb->sender = radios[0]->id();
    const int warm = smoke ? 10 : 200;
    for (int i = 0; i < warm; ++i) {
      radios[0]->send(hb);
      sim.run_until(sim.now() + ChannelConfig{}.t_hop);
    }
    const int sends = smoke ? 100 : 10000;
    const auto t0 = Clock::now();
    for (int i = 0; i < sends; ++i) {
      radios[0]->send(hb);
      sim.run_until(sim.now() + ChannelConfig{}.t_hop);
    }
    const double rate =
        double(sends) * double(fanout) / ms_since(t0) * 1000.0;
    std::printf("%-24s %8zu %16.0f\n", "broadcast_fanout_deliveries_per_sec",
                fanout, rate);
    emit(sink, "broadcast_fanout", "deliveries_per_sec", int(fanout), rate);
  }

  // Calendar queue vs binary heap on an identical bounded-delay workload
  // (standing population of pending timers, schedule→fire steady state).
  {
    const auto run_queue = [&](QueueMode mode) {
      Simulator sim(mode);
      Rng delays(seed);
      const int population = 4096;
      const int ops = smoke ? 10000 : 1000000;
      for (int i = 0; i < population; ++i) {
        sim.schedule_after(
            SimTime::micros(std::int64_t(delays.uniform(0.0, 100000.0))),
            [] {});
      }
      const auto t0 = Clock::now();
      for (int i = 0; i < ops; ++i) {
        sim.schedule_after(
            SimTime::micros(std::int64_t(delays.uniform(0.0, 100000.0))),
            [] {});
        (void)sim.step();
      }
      return double(ops) / ms_since(t0) * 1000.0;
    };
    const double calendar_rate = run_queue(QueueMode::kCalendar);
    const double heap_rate = run_queue(QueueMode::kHeap);
    std::printf("%-24s %8s %16.0f\n", "calendar_queue_ops_per_sec", "-",
                calendar_rate);
    std::printf("%-24s %8s %16.0f\n", "heap_queue_ops_per_sec", "-",
                heap_rate);
    emit(sink, "calendar_vs_heap", "calendar_ops_per_sec", 0, calendar_rate);
    emit(sink, "calendar_vs_heap", "heap_ops_per_sec", 0, heap_rate);
  }

  // Payload tag dispatch over a heartbeat/digest/update mix.
  {
    const auto frames = dispatch_frames();
    const long iters = smoke ? 10000 : 2000000;
    long hits = 0;
    const auto t0 = Clock::now();
    for (long i = 0; i < iters; ++i) {
      const auto& p = frames[std::size_t(i) & 63];
      if (payload_cast<HeartbeatPayload>(p) != nullptr) ++hits;
      else if (payload_cast<DigestPayload>(p) != nullptr) ++hits;
      else if (payload_cast_shared<HealthUpdatePayload>(p)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
    const double rate = double(iters) / ms_since(t0) * 1000.0;
    std::printf("%-24s %8s %16.0f\n", "payload_dispatch_ops_per_sec", "-",
                rate);
    emit(sink, "payload_dispatch", "ops_per_sec", 0, rate);
  }

  // End-to-end FDS epochs: every layer at once.
  const std::vector<std::size_t> e2e_sizes =
      smoke ? std::vector<std::size_t>{200}
            : std::vector<std::size_t>{500, 2000};
  for (std::size_t n : e2e_sizes) {
    double width = 0.0, height = 0.0;
    field_for(n, width, height);
    ScenarioConfig config;
    config.width = width;
    config.height = height;
    config.node_count = n;
    config.loss_p = 0.1;
    config.seed = seed;
    Scenario scenario(config);
    scenario.setup();
    scenario.run_epochs(1);  // warm-up
    const std::uint64_t before =
        scenario.network().simulator().events_executed();
    const std::uint64_t epochs = smoke ? 1 : (n <= 500 ? 6 : 3);
    const auto t0 = Clock::now();
    scenario.run_epochs(epochs);
    const double ms = ms_since(t0);
    const std::uint64_t events =
        scenario.network().simulator().events_executed() - before;
    const double rate = double(events) / ms * 1000.0;
    std::printf("%-24s %8zu %16.0f\n", "events_per_sec", n, rate);
    emit(sink, "events_per_sec", "events_per_sec", int(n), rate);
  }
}

// --- google-benchmark timings -------------------------------------------

void BM_ScheduleFire(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.schedule_at(sim.now() + SimTime::micros(1), [] {});
    (void)sim.step();  // exactly one event is queued
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleFire);

void BM_ScheduleCancelFire(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    auto cancelled = sim.schedule_at(sim.now() + SimTime::micros(2), [] {});
    sim.schedule_at(sim.now() + SimTime::micros(1), [] {});
    cancelled.cancel();
    sim.run_until(sim.now() + SimTime::micros(2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleCancelFire);

void BM_GraphBuildGrid(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  double width = 0.0, height = 0.0;
  field_for(n, width, height);
  Rng rng(19);
  const auto points = uniform_rect(n, width, height, rng);
  for (auto _ : state) {
    UnitDiskGraph graph(points, 100.0);
    benchmark::DoNotOptimize(graph.degree(0));
  }
}
BENCHMARK(BM_GraphBuildGrid)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_GraphBuildBrute(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  double width = 0.0, height = 0.0;
  field_for(n, width, height);
  Rng rng(19);
  const auto points = uniform_rect(n, width, height, rng);
  for (auto _ : state) {
    auto graph = UnitDiskGraph::brute_force(points, 100.0);
    benchmark::DoNotOptimize(graph.degree(0));
  }
}
BENCHMARK(BM_GraphBuildBrute)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_BroadcastFanout(benchmark::State& state) {
  const auto fanout = std::size_t(state.range(0));
  Simulator sim;
  BernoulliLoss loss(0.0);
  Rng placement(19);
  Channel channel(sim, loss, ChannelConfig{}, Rng(20));
  NodeStore store;
  std::vector<std::unique_ptr<Radio>> radios;
  for (std::size_t i = 0; i <= fanout; ++i) {
    const Vec2 pos{placement.uniform(0.0, 50.0),
                   placement.uniform(0.0, 50.0)};
    const std::uint32_t slot = store.add(pos, 1e9);
    radios.push_back(
        std::make_unique<Radio>(store, slot, NodeId{std::uint32_t(i)}));
    channel.attach(*radios.back());
  }
  auto hb = std::make_shared<HeartbeatPayload>();
  hb->sender = radios[0]->id();
  for (auto _ : state) {
    radios[0]->send(hb);
    sim.run_until(sim.now() + ChannelConfig{}.t_hop);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(fanout));
}
BENCHMARK(BM_BroadcastFanout)->Arg(16)->Arg(256);

void BM_QueueScheduleFire(benchmark::State& state) {
  // Arg 0 = calendar queue, 1 = binary heap; identical bounded-delay
  // workload against a standing population of pending timers.
  Simulator sim(state.range(0) == 0 ? QueueMode::kCalendar : QueueMode::kHeap);
  Rng delays(19);
  for (int i = 0; i < 4096; ++i) {
    sim.schedule_after(
        SimTime::micros(std::int64_t(delays.uniform(0.0, 100000.0))), [] {});
  }
  for (auto _ : state) {
    sim.schedule_after(
        SimTime::micros(std::int64_t(delays.uniform(0.0, 100000.0))), [] {});
    (void)sim.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueScheduleFire)->Arg(0)->Arg(1);

void BM_PayloadDispatch(benchmark::State& state) {
  const auto frames = dispatch_frames();
  std::size_t i = 0;
  long hits = 0;
  for (auto _ : state) {
    const auto& p = frames[i++ & 63];
    if (payload_cast<HeartbeatPayload>(p) != nullptr) ++hits;
    else if (payload_cast<DigestPayload>(p) != nullptr) ++hits;
    else if (payload_cast_shared<HealthUpdatePayload>(p)) ++hits;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PayloadDispatch);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  const auto& opts = cfds::bench::options();
  const bool smoke = opts.trials > 0 && opts.trials < 100;
  const auto sink = cfds::bench::make_sink();
  print_study(sink.get(), smoke);
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
