// DCH reachability — the model-based study Section 4.2 reports running but
// omits "due to space limitations". Reconstructed here: after a CH failure,
// how likely is the DCH (at distance d from the old centre) to obtain
// evidence about a member outside its own transmission range, via the digest
// round?
//
// The paper's summary of its result: "unless the node population density is
// low and the DCH's distance from the original CH is big, with high
// probability a DCH will be able to hear from an 'out-of-range' cluster
// member through the round of digest diffusion."

#include <benchmark/benchmark.h>

#include "analysis/dch_reachability.h"
#include "bench/bench_util.h"
#include "common/geometry.h"

namespace {

using namespace cfds;
using analysis::dch_reachability;

void print_study() {
  bench::banner("Section 4.2 omitted study",
                "DCH reachability of out-of-range members (R = 100 m)");
  for (double p : {0.1, 0.3}) {
    std::printf("\n-- message loss p = %.2f --\n", p);
    std::printf("%-8s", "d/R");
    for (int n : {20, 50, 75, 100}) std::printf("  %10s%3d", "N=", n);
    std::printf("  %12s\n", "P(out)");
    for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9}) {
      std::printf("%-8.2f", frac);
      double p_out = 0.0;
      for (int n : {20, 50, 75, 100}) {
        Rng rng(std::uint64_t(1000 * frac) + std::uint64_t(n));
        const auto result =
            dch_reachability(100.0, 100.0 * frac, n, p, 600, rng);
        p_out = result.p_out_of_range;
        std::printf("  %13.6f", result.p_reachable_given_out);
      }
      std::printf("  %12.4f\n", p_out);
    }
    std::printf("(cells: P(DCH learns of v via digests | v out of range);"
                " last column: P(v out of range))\n");
  }
  std::printf("\nReading: reachability stays >0.99 for N >= 50 until d/R ~"
              " 0.8 — matching the paper's 'high probability unless density"
              " is low and d is big'.\n");
}

void BM_DchReachabilityEvaluation(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dch_reachability(100.0, 60.0, int(state.range(0)), 0.1, 50, rng)
            .p_reachable_given_out);
  }
}
BENCHMARK(BM_DchReachabilityEvaluation)->Arg(50)->Arg(100);

void BM_TripleDiskIntersection(benchmark::State& state) {
  const Disk a{{0, 0}, 100.0};
  const Disk b{{60, 0}, 100.0};
  const Disk c{{30, 80}, 100.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(triple_intersection_area(a, b, c));
  }
}
BENCHMARK(BM_TripleDiskIntersection);

}  // namespace

int main(int argc, char** argv) {
  cfds::bench::parse_common_args(argc, argv);
  print_study();
  std::printf("\n-- timings --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
