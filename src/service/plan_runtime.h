// FaultPlan execution against a live endpoint.
//
// The simulated FaultInjector has the channel's global vantage point; in
// service mode there is no such place, so EVERY endpoint loads the same
// plan and applies it locally:
//
//   crash/recover  acted on only by the target endpoint: power the
//                  transport down/up around Node::crash()/recover(), so a
//                  crashed process stays silent (and deaf) without exiting
//   freeze         every endpoint mutes the target in its own DropFilter —
//                  receivers drop the target's frames, the target drops
//                  everything inbound; the net effect equals the simulated
//                  channel-level mute
//   link_down      every endpoint blocks the pair; only the two endpoints
//                  of the link ever match the (sender, receiver) check
//   jam            every endpoint installs the same disk over the same
//                  directory positions
//   clock_drift    the target endpoint offsets its own epoch schedule
//                  (ServiceAgent consults skew() when scheduling rounds)
//   loss           no-op: channel-wide loss bursts are a simulated-channel
//                  property; over a live network the medium supplies its
//                  own loss, and DropFilter verdicts stay deterministic
//
// All events are scheduled on the endpoint's TimerService, anchored at the
// fault phase's start — the same plan JSONL that drives a simulated chaos
// trial drives a live soak.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/sim_time.h"
#include "fault/fault_plan.h"
#include "net/node.h"
#include "transport/drop_filter.h"
#include "transport/transport.h"

namespace cfds::service {

class PlanRuntime {
 public:
  /// `node` is this endpoint's node, `transport` the REAL transport (not
  /// the filtered wrapper: powering the filter wrapper would also power the
  /// inner one, but crash semantics belong to the raw endpoint), `filter`
  /// the DropFilter the endpoint's FilteredTransport consults.
  PlanRuntime(Node& node, Transport& transport, DropFilter& filter,
              TimerService& timers)
      : node_(node), transport_(transport), filter_(filter), timers_(timers) {}

  PlanRuntime(const PlanRuntime&) = delete;
  PlanRuntime& operator=(const PlanRuntime&) = delete;

  /// Schedules every event of `plan`, anchored at absolute time `anchor`
  /// (the start of the first post-warmup epoch). `base_epoch` anchors
  /// clock-drift epoch windows. Call at most once; the runtime must
  /// outlive the scheduled events.
  void install(const fault::FaultPlan& plan, SimTime anchor,
               std::uint64_t base_epoch);

  /// This endpoint's clock-drift offset for `epoch` (zero outside every
  /// drift window — the resync the plan format promises).
  [[nodiscard]] SimTime skew(std::uint64_t epoch) const;

 private:
  void freeze(std::uint32_t node, bool on);
  void block_link(std::uint32_t a, std::uint32_t b, bool on);

  Node& node_;
  Transport& transport_;
  DropFilter& filter_;
  TimerService& timers_;
  bool installed_ = false;
  std::uint64_t base_epoch_ = 0;

  // Overlap-safe window bookkeeping, as in fault::FaultInjector.
  std::map<std::uint32_t, int> freeze_depth_;
  std::map<std::uint64_t, int> link_depth_;
  std::vector<fault::FaultEvent> drifts_;
};

}  // namespace cfds::service
