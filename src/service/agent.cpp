#include "service/agent.h"

#include <algorithm>

#include "common/expect.h"
#include "common/rng.h"
#include "fds/messages.h"
#include "radio/payload.h"
#include "service/directory.h"
#include "transport/reception.h"

namespace cfds::service {

namespace {

/// Per-endpoint loss-stream seed: endpoints draw independently, but the
/// whole deployment is reproducible from the one configured seed.
[[nodiscard]] std::uint64_t endpoint_seed(std::uint64_t seed, NodeId self) {
  std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL *
                                   (std::uint64_t{self.value()} + 1);
  return splitmix64(state);
}

[[nodiscard]] FdsConfig service_fds_config(const ServiceConfig& config) {
  FdsConfig fds;
  fds.heartbeat_interval = config.phi;
  // Crash-recovery is the point of a soak with injected crashes.
  fds.recovery_enabled = true;
  // Real transport: scheduler jitter / clock skew can deliver a neighbour's
  // round frames before this endpoint's begin_epoch fires; age evidence out
  // instead of wiping it, and carry subscription heartbeats to R-3 (see
  // FdsConfig::tolerate_epoch_skew).
  fds.tolerate_epoch_skew = true;
  fds.adaptive_enabled = config.adaptive;
  fds.checkpoint_enabled = config.checkpoint;
  return fds;
}

/// Energy is effectively unmetered in service mode (the transport has no
/// RadioCounters); a large budget keeps every energy fraction at 1.
constexpr double kServiceEnergyUj = 1e12;

/// Consecutive subscription epochs a foreign subscriber must accumulate
/// before an adopter may take it. Its live home head admits within one
/// epoch, so a streak this long means the home block is genuinely headless
/// — a lossy overhearing gap can no longer trigger a spurious adoption.
constexpr std::uint64_t kAdoptionStreak = 3;

}  // namespace

ServiceAgent::ServiceAgent(const ServiceConfig& config, NodeId self,
                           Transport& raw, TimerService& timers)
    : config_(config),
      node_(store_, self, directory_position(self, config.node_count),
            kServiceEnergyUj),
      view_(self),
      filtered_(raw, filter_, self, config.loss_p,
                endpoint_seed(config.seed, self), &ServiceAgent::position_thunk,
                this),
      fds_config_(service_fds_config(config)),
      fds_(node_, view_, filtered_, timers, config.t_hop, fds_config_, hooks_),
      plan_(node_, raw, filter_, timers),
      timers_(timers) {
  fds_config_.validate(config.t_hop);
  // In one broadcast domain every clusterhead hears every F5 subscription
  // heartbeat; scope admission to this endpoint's directory block so a
  // recovered node is re-admitted by exactly one head (with deterministic
  // orphan adoption when that block's head is gone — see admit_thunk).
  fds_config_.admit_filter = &ServiceAgent::admit_thunk;
  fds_config_.admit_filter_ctx = this;
  filtered_.add_receive_handler(&ServiceAgent::overhear_thunk, this);
  view_.set_cluster(
      directory_cluster(self, config.node_count, config.cluster_size));
  node_.set_marked(true);  // directory admission: no formation handshake
}

void ServiceAgent::overhear_thunk(void* ctx, const Reception& reception) {
  auto* self = static_cast<ServiceAgent*>(ctx);
  if (const auto* hb = payload_cast<HeartbeatPayload>(reception.payload)) {
    self->note_subscription(hb->sender, !hb->marked);
    return;
  }
  // Every bare HealthUpdatePayload is authored by a node acting as the head
  // of update->cluster (members relay through UpdateForwardPayload instead),
  // so overhearing one is proof of an acting head for that block.
  const auto* update = payload_cast<HealthUpdatePayload>(reception.payload);
  if (update == nullptr) return;
  ++self->updates_overheard_;
  if (std::find(update->admitted.begin(), update->admitted.end(),
                self->node_.id()) != update->admitted.end()) {
    ++self->admit_offers_;
    if (update->epoch > self->last_offer_epoch_) {
      self->last_offer_epoch_ = update->epoch;
    }
  }
  const std::uint32_t block =
      directory_cluster_index(NodeId{update->cluster.value()},
                              self->config_.cluster_size);
  std::uint64_t& newest = self->block_head_epoch_[block];
  if (update->epoch > newest) newest = update->epoch;
}

void ServiceAgent::note_subscription(NodeId sender, bool subscribing) {
  if (!subscribing) {
    sub_streak_.erase(sender.value());
    return;
  }
  const std::uint64_t epoch = fds_.current_epoch();
  const auto [it, inserted] =
      sub_streak_.try_emplace(sender.value(), epoch, epoch);
  if (inserted) return;
  auto& [first, last] = it->second;
  if (epoch <= last) return;  // retransmission within the same epoch
  if (epoch == last + 1) {
    last = epoch;
  } else {
    it->second = {epoch, epoch};  // a gap restarts the streak
  }
}

bool ServiceAgent::block_head_alive(std::uint32_t block) const {
  const auto it = block_head_epoch_.find(block);
  if (it == block_head_epoch_.end()) return false;
  const std::uint64_t epoch = fds_.current_epoch();
  return it->second + 2 >= epoch;
}

bool ServiceAgent::admit_thunk(void* ctx, NodeId subscriber) {
  auto* self = static_cast<ServiceAgent*>(ctx);
  const std::uint32_t home =
      directory_cluster_index(subscriber, self->config_.cluster_size);
  const std::uint32_t mine = directory_cluster_index(
      NodeId{self->view_.cluster()->id.value()}, self->config_.cluster_size);
  if (home == mine) return true;
  // Orphan adoption: the subscriber's home block has no acting head left
  // (its whole deputy chain died), so *somebody* must take the node or it
  // stays unaffiliated forever. Exactly one head volunteers — the acting
  // head with the lowest block index — which every head can determine
  // locally from the updates it overhears.
  if (self->block_head_alive(home)) return false;  // home head's job
  for (const auto& [block, epoch] : self->block_head_epoch_) {
    if (block >= mine) break;
    if (block != home && self->block_head_alive(block)) return false;
  }
  // Home-head priority window: a live home head collects its subscriber
  // within one epoch, so only a streak of unanswered subscriptions proves
  // the node is genuinely orphaned rather than momentarily overlooked.
  const auto it = self->sub_streak_.find(subscriber.value());
  if (it == self->sub_streak_.end()) return false;
  const auto& [first, last] = it->second;
  return last + 1 - first >= kAdoptionStreak;
}

Vec2 ServiceAgent::position_thunk(void* ctx, NodeId id) {
  auto* self = static_cast<ServiceAgent*>(ctx);
  return directory_position(id, self->config_.node_count);
}

void ServiceAgent::start(SimTime start, const fault::FaultPlan* plan) {
  if (plan != nullptr) {
    const SimTime anchor =
        start + std::int64_t(config_.warmup_epochs) * config_.phi;
    plan_.install(*plan, anchor, config_.warmup_epochs);
    // Detection-latency sampling: remember when each planned crash fires,
    // then chain onto on_detection (after any hook the embedding tool
    // installed) and stamp the first verdict this endpoint renders against
    // a planned victim. A recovered-then-recrashed node keeps its first
    // sample — the metric is first detection of the first crash.
    for (const fault::FaultEvent& e : plan->events) {
      if (e.kind != fault::FaultKind::kCrash) continue;
      crash_at_.emplace(e.node, anchor + SimTime::micros(e.at_us));
    }
    if (!crash_at_.empty()) {
      hooks_.on_detection =
          [this, prev = std::move(hooks_.on_detection)](
              NodeId decider, std::uint64_t epoch,
              const std::vector<NodeId>& failed, bool by_deputy) {
            const SimTime now = timers_.now();
            for (NodeId f : failed) {
              const auto it = crash_at_.find(f.value());
              if (it == crash_at_.end()) continue;
              if (detect_ms_.count(f.value()) != 0) continue;
              const std::int64_t us = now.as_micros() - it->second.as_micros();
              detect_ms_[f.value()] =
                  us > 0 ? std::uint32_t(us / 1000) : 0U;
            }
            if (prev) prev(decider, epoch, failed, by_deputy);
          };
    }
  }
  // Deterministic per-endpoint phase offset within a quarter round: with
  // every endpoint on one machine, perfectly aligned round starts make all
  // of them wake, broadcast, and drain at the same instant — a thundering
  // herd whose queueing delay alone can exceed the one-hop bound. Spreading
  // the starts keeps the per-tick burst small; the offset is a constant
  // clock bias per endpoint, exactly what tolerate_epoch_skew absorbs.
  const std::int64_t spread_us = config_.t_hop.as_micros() / 4;
  std::uint64_t phase_state = node_.id().value();
  const SimTime phase =
      spread_us > 0
          ? SimTime::micros(std::int64_t(
                splitmix64(phase_state) %
                static_cast<std::uint64_t>(spread_us)))
          : SimTime::zero();
  for (std::uint64_t k = 0; k < config_.epochs; ++k) {
    const SimTime t =
        start + phase + std::int64_t(k) * config_.phi + plan_.skew(k);
    // Same-instant events fire in schedule order (the embedded simulator's
    // stable sequence numbers), so begin_epoch always precedes round 1.
    timers_.schedule_at(t, [this, k] { fds_.begin_epoch(k); });
    timers_.schedule_at(t, [this] { fds_.round1_heartbeat(); });
    timers_.schedule_at(t + config_.t_hop, [this] { fds_.round2_digest(); });
    timers_.schedule_at(t + 2 * config_.t_hop,
                        [this] { fds_.round3_update(); });
    timers_.schedule_at(t + 3 * config_.t_hop, [this] { fds_.deputy_check(); });
    timers_.schedule_at(t + 4 * config_.t_hop,
                        [this] { fds_.completeness_check(); });
  }
  timers_.schedule_at(start + std::int64_t(config_.epochs) * config_.phi,
                      [this] { done_ = true; });
}

AgentStatus ServiceAgent::status() const {
  AgentStatus s;
  s.node = node_.id().value();
  s.alive = node_.alive();
  s.marked = node_.marked();
  s.affiliated = view_.affiliated();
  s.is_clusterhead = view_.is_clusterhead();
  s.left = fds_.has_left();
  s.epoch = fds_.current_epoch();
  if (const auto& cluster = view_.cluster()) {
    s.cluster = cluster->id.value();
    s.clusterhead = cluster->clusterhead.value();
    for (NodeId m : cluster->members) s.members.push_back(m.value());
    for (NodeId d : cluster->deputies) s.deputies.push_back(d.value());
  }
  for (NodeId f : fds_.log().known_failed()) s.failed.push_back(f.value());
  s.updates_overheard = updates_overheard_;
  s.admit_offers = admit_offers_;
  s.last_offer_epoch = last_offer_epoch_;
  s.hb_sent = fds_.heartbeats_sent();
  s.unmarked_sent = fds_.unmarked_heartbeats_sent();
  s.last_unmarked_epoch = fds_.last_unmarked_sent_epoch();
  for (NodeId sub : fds_.unmarked_heard()) s.subscribers.push_back(sub.value());
  for (std::uint64_t count : fds_.reverts()) {
    s.reverts.push_back(static_cast<std::uint32_t>(count));
  }
  s.last_revert_epoch = fds_.last_revert_epoch();
  s.last_revert_cause = fds_.last_revert_cause();
  for (const auto& [victim, ms] : detect_ms_) {
    s.detect_node.push_back(victim);
    s.detect_ms.push_back(ms);
  }
  return s;
}

}  // namespace cfds::service
