// Live membership status records and the live invariant checker.
//
// Each service agent serializes its protocol state as one JSON line when
// its run completes (and cfds_serve can emit it on demand); the soak
// harness collects the lines from all endpoints and checks the live
// counterparts of the chaos oracle's invariants I1-I5 (src/fault/oracle.h)
// against them.
//
// The live checks are VIEW-based where the simulator oracle is also
// geometry-based: service mode is a single broadcast domain, so "within
// radio range" is always true and the reachability carve-outs of the
// simulated oracle collapse. F5 admission may cross directory blocks (any
// CH that hears an unmarked heartbeat may admit the sender), so the checks
// follow each node's own view of its cluster, never the static directory.
//
//   L-I1  every cluster referenced by an alive affiliated node has exactly
//         one alive acting clusterhead
//   L-I2  an alive marked node is affiliated, its clusterhead is alive and
//         acting for the node's cluster, and that clusterhead lists the
//         node as a member
//   L-I3  no alive marked same-cluster node appears in an alive node's
//         failure log (no zombies after crash-recovery)
//   L-I4  if any alive acting clusterhead exists, every alive node that did
//         not voluntarily leave is affiliated (F5 must succeed)
//   L-I5  dead nodes appear in no alive node's view (clusterhead, members,
//         or deputies)

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cfds::service {

/// One endpoint's end-of-run protocol state, as serialized to the status
/// JSONL. Plain integers, not StrongIds: this is an exchange format.
struct AgentStatus {
  std::uint32_t node = 0;
  bool alive = true;
  bool marked = false;
  bool affiliated = false;
  bool is_clusterhead = false;
  bool left = false;
  /// View fields; meaningful only when affiliated.
  std::uint32_t cluster = 0xFFFFFFFFU;
  std::uint32_t clusterhead = 0xFFFFFFFFU;
  std::uint64_t epoch = 0;
  std::vector<std::uint32_t> members;   ///< the view's non-CH member list
  std::vector<std::uint32_t> deputies;
  std::vector<std::uint32_t> failed;    ///< failure-log contents
  /// Receive-side diagnostics (service layer): how many bare health updates
  /// this endpoint overheard, how many of them offered it admission, and
  /// the epoch of the newest such offer. Not invariant inputs — they exist
  /// so a soak post-mortem can tell a deaf endpoint from an ignored one.
  std::uint64_t updates_overheard = 0;
  std::uint64_t admit_offers = 0;
  std::uint64_t last_offer_epoch = 0;
  /// Send-side diagnostics: lifetime heartbeats sent, how many of them were
  /// unmarked (subscriptions), and the epoch of the newest subscription.
  std::uint64_t hb_sent = 0;
  std::uint64_t unmarked_sent = 0;
  std::uint64_t last_unmarked_epoch = 0;
  /// Subscriptions this endpoint has heard and not yet consumed at R-3 —
  /// on an acting head, who is currently asking to join.
  std::vector<std::uint32_t> subscribers;
  /// Lifetime counts of marked/affiliated-state reverts by cause, indexed
  /// by FdsAgent::RevertCause (missed-updates, fresh self news, stale self
  /// news, roster drop, rival head), plus when/why the newest one fired.
  std::vector<std::uint32_t> reverts;
  std::uint64_t last_revert_epoch = 0;
  std::uint64_t last_revert_cause = 0;
  /// Per-detection latency samples, index-aligned: detect_node[i] is a
  /// planned crash victim this endpoint judged failed, detect_ms[i] the
  /// latency from the planned crash instant to that verdict. Only deciders
  /// (CH/DCH at the moment of detection) carry samples; the soak harness
  /// reduces to the min per victim across all endpoints.
  std::vector<std::uint32_t> detect_node;
  std::vector<std::uint32_t> detect_ms;

  friend bool operator==(const AgentStatus&, const AgentStatus&) = default;

  /// One JSON object, no trailing newline.
  [[nodiscard]] std::string to_json() const;

  /// Parses a to_json() line. Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<AgentStatus> parse(
      const std::string& line);
};

/// Checks L-I1 .. L-I5 over a complete set of endpoint statuses. Returns
/// one human-readable message per violation; empty means the deployment
/// reconverged. `statuses` need not be sorted; duplicate NIDs are reported
/// as violations.
[[nodiscard]] std::vector<std::string> check_live_invariants(
    const std::vector<AgentStatus>& statuses);

}  // namespace cfds::service
