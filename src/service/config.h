// Service-mode deployment parameters.
//
// Service mode runs the FDS against real time over a real transport (UDP
// loopback across processes, or in-process loopback queues across threads).
// The deployment is a single broadcast domain — every endpoint hears every
// frame, the degenerate dense case of the paper's radio model — and the
// cluster organization is installed from a directory (src/service/
// directory.h) instead of being negotiated by the formation protocol, so
// every process derives the identical organization without a handshake.

#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace cfds::service {

struct ServiceConfig {
  /// Deployment size; NIDs are 0 .. node_count-1.
  std::uint32_t node_count = 16;
  /// Directory clustering: contiguous NID blocks of this size (the last
  /// block absorbs the remainder). CH = lowest NID of the block.
  std::uint32_t cluster_size = 8;

  /// One-hop bound Thop, real time. The FDS round offsets (T, T+Thop, ...,
  /// T+4Thop) and the phi >= 7*Thop constraint carry over unchanged.
  SimTime t_hop = SimTime::millis(50);
  /// Heartbeat interval phi.
  SimTime phi = SimTime::millis(500);

  /// FDS executions to run; the daemon exits after the last one.
  std::uint64_t epochs = 10;
  /// Executions before the fault plan's anchor: fault event at_us = 0 fires
  /// at the start of epoch `warmup_epochs`.
  std::uint64_t warmup_epochs = 2;

  /// Seed for per-endpoint Bernoulli loss streams (combined with the NID,
  /// so endpoints draw independently).
  std::uint64_t seed = 1;
  /// Independent per-frame receive loss probability.
  double loss_p = 0.0;

  /// Self-tuning (accrual) detection — see FdsConfig::adaptive_enabled.
  bool adaptive = false;
  /// Checkpointed CH/DCH recovery — see FdsConfig::checkpoint_enabled.
  bool checkpoint = false;

  [[nodiscard]] std::uint32_t cluster_count() const {
    if (node_count == 0 || cluster_size == 0) return 0;
    return (node_count + cluster_size - 1) / cluster_size;
  }
};

}  // namespace cfds::service
