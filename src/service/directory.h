// Directory-installed cluster organization.
//
// Service mode skips the distributed formation protocol: every process
// computes the same cluster organization from (node_count, cluster_size)
// alone. NIDs are partitioned into contiguous blocks; within a block the
// lowest NID is the clusterhead and the next `kDeputies` NIDs are the
// ranked deputies — the same lowest-NID policy the formation protocol
// elects, minus the negotiation.
//
// Positions are a unit grid (row-major, 10 m pitch). They only matter to
// the jam-disk fault filter: the transport is a full broadcast domain, so
// geometry does not gate delivery.

#pragma once

#include <cstdint>

#include "cluster/roles.h"
#include "common/geometry.h"
#include "common/ids.h"

namespace cfds::service {

/// Deputies installed per directory cluster (matches FormationConfig's
/// default num_deputies).
inline constexpr std::uint32_t kDeputies = 2;

/// Grid pitch of directory positions, metres.
inline constexpr double kGridPitch = 10.0;

/// The directory cluster (block) index of `id`.
[[nodiscard]] std::uint32_t directory_cluster_index(NodeId id,
                                                    std::uint32_t cluster_size);

/// The full organization of the cluster containing `self`: block members,
/// CH = lowest NID, deputies = next kDeputies NIDs. No gateway links — the
/// broadcast domain needs no backbone. `self` must be < node_count.
[[nodiscard]] ClusterView directory_cluster(NodeId self,
                                            std::uint32_t node_count,
                                            std::uint32_t cluster_size);

/// Row-major grid position of `id` (used by jam-disk fault checks only).
[[nodiscard]] Vec2 directory_position(NodeId id, std::uint32_t node_count);

}  // namespace cfds::service
