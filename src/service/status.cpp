#include "service/status.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>

namespace cfds::service {

namespace {

void append_list(std::ostringstream& os, const char* key,
                 const std::vector<std::uint32_t>& values) {
  os << "\"" << key << "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ",";
    os << values[i];
  }
  os << "]";
}

/// Finds `"key":` in `line` and returns the offset just past the colon,
/// or npos. Keys in this format are unique and never appear inside values
/// (values are numbers, booleans, and integer arrays only).
std::size_t value_offset(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

bool parse_bool(const std::string& line, const std::string& key, bool* out) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string::npos) return false;
  if (line.compare(at, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (line.compare(at, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

bool parse_u64(const std::string& line, const std::string& key,
               std::uint64_t* out) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string::npos) return false;
  std::size_t end = at;
  while (end < line.size() && line[end] >= '0' && line[end] <= '9') ++end;
  if (end == at) return false;
  *out = std::stoull(line.substr(at, end - at));
  return true;
}

bool parse_u32(const std::string& line, const std::string& key,
               std::uint32_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(line, key, &v) || v > 0xFFFFFFFFULL) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_list(const std::string& line, const std::string& key,
                std::vector<std::uint32_t>* out) {
  std::size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '[') {
    return false;
  }
  ++at;
  out->clear();
  while (at < line.size() && line[at] != ']') {
    std::size_t end = at;
    while (end < line.size() && line[end] >= '0' && line[end] <= '9') ++end;
    if (end == at) return false;
    out->push_back(
        static_cast<std::uint32_t>(std::stoul(line.substr(at, end - at))));
    at = end;
    if (at < line.size() && line[at] == ',') ++at;
  }
  return at < line.size() && line[at] == ']';
}

[[nodiscard]] const char* json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string AgentStatus::to_json() const {
  std::ostringstream os;
  os << "{\"node\":" << node << ",\"alive\":" << json_bool(alive)
     << ",\"marked\":" << json_bool(marked)
     << ",\"affiliated\":" << json_bool(affiliated)
     << ",\"ch\":" << json_bool(is_clusterhead)
     << ",\"left\":" << json_bool(left) << ",\"cluster\":" << cluster
     << ",\"clusterhead\":" << clusterhead << ",\"epoch\":" << epoch << ",";
  append_list(os, "members", members);
  os << ",";
  append_list(os, "deputies", deputies);
  os << ",";
  append_list(os, "failed", failed);
  os << ",\"updates_overheard\":" << updates_overheard
     << ",\"admit_offers\":" << admit_offers
     << ",\"last_offer_epoch\":" << last_offer_epoch
     << ",\"hb_sent\":" << hb_sent << ",\"unmarked_sent\":" << unmarked_sent
     << ",\"last_unmarked_epoch\":" << last_unmarked_epoch << ",";
  append_list(os, "subscribers", subscribers);
  os << ",";
  append_list(os, "reverts", reverts);
  os << ",\"last_revert_epoch\":" << last_revert_epoch
     << ",\"last_revert_cause\":" << last_revert_cause << ",";
  append_list(os, "detect_node", detect_node);
  os << ",";
  append_list(os, "detect_ms", detect_ms);
  os << "}";
  return os.str();
}

std::optional<AgentStatus> AgentStatus::parse(const std::string& line) {
  AgentStatus s;
  if (!parse_u32(line, "node", &s.node)) return std::nullopt;
  if (!parse_bool(line, "alive", &s.alive)) return std::nullopt;
  if (!parse_bool(line, "marked", &s.marked)) return std::nullopt;
  if (!parse_bool(line, "affiliated", &s.affiliated)) return std::nullopt;
  if (!parse_bool(line, "ch", &s.is_clusterhead)) return std::nullopt;
  if (!parse_bool(line, "left", &s.left)) return std::nullopt;
  if (!parse_u32(line, "cluster", &s.cluster)) return std::nullopt;
  if (!parse_u32(line, "clusterhead", &s.clusterhead)) return std::nullopt;
  if (!parse_u64(line, "epoch", &s.epoch)) return std::nullopt;
  if (!parse_list(line, "members", &s.members)) return std::nullopt;
  if (!parse_list(line, "deputies", &s.deputies)) return std::nullopt;
  if (!parse_list(line, "failed", &s.failed)) return std::nullopt;
  // Diagnostics are optional: a status line from an older endpoint still
  // parses, with the counters left at zero.
  (void)parse_u64(line, "updates_overheard", &s.updates_overheard);
  (void)parse_u64(line, "admit_offers", &s.admit_offers);
  (void)parse_u64(line, "last_offer_epoch", &s.last_offer_epoch);
  (void)parse_u64(line, "hb_sent", &s.hb_sent);
  (void)parse_u64(line, "unmarked_sent", &s.unmarked_sent);
  (void)parse_u64(line, "last_unmarked_epoch", &s.last_unmarked_epoch);
  (void)parse_list(line, "subscribers", &s.subscribers);
  (void)parse_list(line, "reverts", &s.reverts);
  (void)parse_u64(line, "last_revert_epoch", &s.last_revert_epoch);
  (void)parse_u64(line, "last_revert_cause", &s.last_revert_cause);
  (void)parse_list(line, "detect_node", &s.detect_node);
  (void)parse_list(line, "detect_ms", &s.detect_ms);
  return s;
}

std::vector<std::string> check_live_invariants(
    const std::vector<AgentStatus>& statuses) {
  std::vector<std::string> violations;
  auto violation = [&violations](const std::string& msg) {
    violations.push_back(msg);
  };

  std::map<std::uint32_t, const AgentStatus*> by_node;
  for (const AgentStatus& s : statuses) {
    if (!by_node.emplace(s.node, &s).second) {
      violation("duplicate status for node " + std::to_string(s.node));
    }
  }
  auto status_of = [&by_node](std::uint32_t nid) -> const AgentStatus* {
    const auto it = by_node.find(nid);
    return it == by_node.end() ? nullptr : it->second;
  };
  auto is_alive = [&status_of](std::uint32_t nid) {
    const AgentStatus* s = status_of(nid);
    return s != nullptr && s->alive;
  };

  // Acting clusterheads per cluster id.
  std::map<std::uint32_t, std::vector<std::uint32_t>> heads;
  bool any_head = false;
  for (const auto& [nid, s] : by_node) {
    if (s->alive && s->is_clusterhead && s->affiliated) {
      heads[s->cluster].push_back(nid);
      any_head = true;
    }
  }

  for (const auto& [nid, s] : by_node) {
    if (!s->alive) continue;
    const std::string who = "node " + std::to_string(nid);

    // L-I5: dead nodes appear in no alive node's view.
    if (s->affiliated) {
      if (status_of(s->clusterhead) != nullptr && !is_alive(s->clusterhead)) {
        violation("I5: " + who + " names dead clusterhead " +
                  std::to_string(s->clusterhead));
      }
      for (std::uint32_t m : s->members) {
        if (status_of(m) != nullptr && !is_alive(m)) {
          violation("I5: " + who + " lists dead member " + std::to_string(m));
        }
      }
      for (std::uint32_t d : s->deputies) {
        if (status_of(d) != nullptr && !is_alive(d)) {
          violation("I5: " + who + " lists dead deputy " + std::to_string(d));
        }
      }
    }

    // L-I1: the node's cluster has exactly one acting head.
    if (s->affiliated) {
      const auto it = heads.find(s->cluster);
      if (it == heads.end()) {
        violation("I1: cluster " + std::to_string(s->cluster) +
                  " referenced by " + who + " has no acting clusterhead");
      } else if (it->second.size() > 1) {
        violation("I1: cluster " + std::to_string(s->cluster) + " has " +
                  std::to_string(it->second.size()) + " acting clusterheads");
      }
    }

    // L-I2: marked => consistent membership.
    if (s->marked && !s->left) {
      if (!s->affiliated) {
        violation("I2: " + who + " is marked but unaffiliated");
      } else if (!s->is_clusterhead) {
        const AgentStatus* head = status_of(s->clusterhead);
        if (head == nullptr || !head->alive || !head->is_clusterhead ||
            head->cluster != s->cluster) {
          violation("I2: " + who + "'s clusterhead " +
                    std::to_string(s->clusterhead) + " is not acting for " +
                    "cluster " + std::to_string(s->cluster));
        } else if (std::find(head->members.begin(), head->members.end(),
                             nid) == head->members.end()) {
          violation("I2: clusterhead " + std::to_string(s->clusterhead) +
                    " does not list " + who + " as a member");
        }
      }
    }

    // L-I3: no alive marked same-cluster node in the failure log.
    for (std::uint32_t f : s->failed) {
      const AgentStatus* fs = status_of(f);
      if (fs != nullptr && fs->alive && fs->marked && !fs->left &&
          fs->affiliated && s->affiliated && fs->cluster == s->cluster) {
        violation("I3: " + who + " still records alive node " +
                  std::to_string(f) + " as failed");
      }
    }

    // L-I4: somebody is acting => everybody (who did not leave) belongs.
    if (any_head && !s->left && !s->affiliated) {
      violation("I4: " + who + " is alive and unaffiliated despite acting " +
                "clusterheads being present");
    }
  }

  std::sort(violations.begin(), violations.end());
  return violations;
}

}  // namespace cfds::service
