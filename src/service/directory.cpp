#include "service/directory.h"

#include <cmath>

#include "common/expect.h"

namespace cfds::service {

std::uint32_t directory_cluster_index(NodeId id, std::uint32_t cluster_size) {
  CFDS_EXPECT(cluster_size > 0, "directory: cluster_size must be positive");
  return id.value() / cluster_size;
}

ClusterView directory_cluster(NodeId self, std::uint32_t node_count,
                              std::uint32_t cluster_size) {
  CFDS_EXPECT(self.is_valid() && self.value() < node_count,
              "directory: NID out of range");
  const std::uint32_t block = directory_cluster_index(self, cluster_size);
  const std::uint32_t first = block * cluster_size;
  std::uint32_t last = first + cluster_size;  // exclusive
  if (last > node_count) last = node_count;
  // A trailing remainder block smaller than cluster_size still forms a
  // cluster; a final block of one node is a singleton cluster (its CH).

  ClusterView view;
  view.clusterhead = NodeId{first};
  view.id = ClusterId{first};  // clusters are named after their founding CH
  for (std::uint32_t nid = first + 1; nid < last; ++nid) {
    view.members.push_back(NodeId{nid});
    if (nid - first <= kDeputies) view.deputies.push_back(NodeId{nid});
  }
  return view;
}

Vec2 directory_position(NodeId id, std::uint32_t node_count) {
  // Square-ish grid: side = ceil(sqrt(n)).
  std::uint32_t side = 1;
  while (side * side < node_count) ++side;
  const std::uint32_t row = id.value() / side;
  const std::uint32_t col = id.value() % side;
  return Vec2{kGridPitch * static_cast<double>(col),
              kGridPitch * static_cast<double>(row)};
}

}  // namespace cfds::service
