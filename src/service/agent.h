// One service-mode endpoint: a node plus its FDS agent, driven by real
// timers over a real transport.
//
// ServiceAgent is the composition root cfds_serve (one per process) and the
// loopback soak harness (one per thread) share. It owns the node, the
// directory-installed membership view, the fault DropFilter with its
// FilteredTransport wrapper, the FdsAgent, and the PlanRuntime, and it
// replaces FdsService::schedule_epoch as the round driver: all rounds of
// all configured epochs are scheduled up front on the endpoint's
// TimerService, offset per-epoch by the plan's clock drift — mirroring the
// simulated service's schedule exactly, one endpoint at a time.

#pragma once

#include <cstdint>
#include <map>

#include "cluster/membership.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "fault/fault_plan.h"
#include "fds/agent.h"
#include "fds/config.h"
#include "net/node.h"
#include "service/config.h"
#include "service/plan_runtime.h"
#include "service/status.h"
#include "transport/drop_filter.h"
#include "transport/filtered_transport.h"
#include "transport/transport.h"

namespace cfds::service {

class ServiceAgent {
 public:
  /// `raw` is the endpoint's real transport (UDP or loopback); the agent
  /// interposes its FilteredTransport between it and the FdsAgent. Both
  /// `raw` and `timers` must outlive the agent.
  ServiceAgent(const ServiceConfig& config, NodeId self, Transport& raw,
               TimerService& timers);

  ServiceAgent(const ServiceAgent&) = delete;
  ServiceAgent& operator=(const ServiceAgent&) = delete;

  /// Schedules every configured epoch starting at absolute time `start`
  /// (epoch k runs at start + k*phi, plus any plan clock drift for this
  /// endpoint). `plan` (may be nullptr) is anchored at the start of epoch
  /// `config.warmup_epochs` and must outlive the run.
  void start(SimTime start, const fault::FaultPlan* plan);

  /// True once the interval of the last scheduled epoch has elapsed (set
  /// by a timer, so it is accurate after the owning loop's run_due()).
  [[nodiscard]] bool done() const { return done_; }

  /// Snapshot of the protocol state, for the status JSONL.
  [[nodiscard]] AgentStatus status() const;

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] FdsAgent& fds() { return fds_; }
  /// Instrumentation hooks observed by the FDS agent (reference-bound at
  /// construction, so callbacks installed here take effect immediately).
  [[nodiscard]] FdsHooks& hooks() { return hooks_; }
  [[nodiscard]] Node& node() { return node_; }
  [[nodiscard]] DropFilter& filter() { return filter_; }

 private:
  static Vec2 position_thunk(void* ctx, NodeId id);
  static bool admit_thunk(void* ctx, NodeId subscriber);
  static void overhear_thunk(void* ctx, const Reception& reception);

  /// True when an acting head for directory block `block` has been overheard
  /// within the last two epochs (its scheduled updates reach everyone in the
  /// broadcast domain).
  [[nodiscard]] bool block_head_alive(std::uint32_t block) const;

  /// Tracks consecutive-epoch subscription streaks (unmarked heartbeats)
  /// per sender; a marked heartbeat ends the sender's streak.
  void note_subscription(NodeId sender, bool subscribing);

  ServiceConfig config_;
  /// Single-slot backing store for this endpoint's Node view.
  NodeStore store_;
  Node node_;
  MembershipView view_;
  DropFilter filter_;
  FilteredTransport filtered_;
  FdsConfig fds_config_;
  FdsHooks hooks_;
  FdsAgent fds_;
  PlanRuntime plan_;
  TimerService& timers_;
  bool done_ = false;
  /// Newest epoch carried by an overheard health update, per directory block
  /// index — the passive acting-head liveness signal behind orphan adoption.
  std::map<std::uint32_t, std::uint64_t> block_head_epoch_;
  /// Per-subscriber {first, last} epoch of the current unbroken run of
  /// unmarked heartbeats — the home-head priority window behind adoption.
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> sub_streak_;
  /// Receive-side diagnostics for AgentStatus (see status.h).
  std::uint64_t updates_overheard_ = 0;
  std::uint64_t admit_offers_ = 0;
  std::uint64_t last_offer_epoch_ = 0;
  /// Per-detection latency sampling: absolute crash instant per planned
  /// victim (from the installed FaultPlan), and the latency in ms from that
  /// instant until THIS endpoint first judged the victim failed (the
  /// on_detection hook — deciders only). The soak harness takes the min
  /// across endpoints per victim, which is the deployment's first verdict.
  std::map<std::uint32_t, SimTime> crash_at_;
  std::map<std::uint32_t, std::uint32_t> detect_ms_;
};

}  // namespace cfds::service
