#include "service/plan_runtime.h"

#include <algorithm>
#include <memory>

#include "common/expect.h"
#include "common/geometry.h"

namespace cfds::service {

void PlanRuntime::freeze(std::uint32_t node, bool on) {
  if (on) {
    if (freeze_depth_[node]++ == 0) filter_.set_muted(NodeId{node}, true);
  } else {
    if (--freeze_depth_[node] == 0) filter_.set_muted(NodeId{node}, false);
  }
}

void PlanRuntime::block_link(std::uint32_t a, std::uint32_t b, bool on) {
  const std::uint64_t key = DropFilter::link_key(NodeId{a}, NodeId{b});
  if (on) {
    if (link_depth_[key]++ == 0) {
      filter_.set_link_blocked(NodeId{a}, NodeId{b}, true);
    }
  } else {
    if (--link_depth_[key] == 0) {
      filter_.set_link_blocked(NodeId{a}, NodeId{b}, false);
    }
  }
}

void PlanRuntime::install(const fault::FaultPlan& plan, SimTime anchor,
                          std::uint64_t base_epoch) {
  CFDS_EXPECT(!installed_, "install() may be called once per runtime");
  installed_ = true;
  base_epoch_ = base_epoch;
  const std::uint32_t self = node_.id().value();

  for (const fault::FaultEvent& e : plan.events) {
    const SimTime at = anchor + SimTime::micros(e.at_us);
    const SimTime until = at + SimTime::micros(e.duration_us);
    switch (e.kind) {
      case fault::FaultKind::kCrash:
        if (e.node != self) break;  // every endpoint crashes only itself
        timers_.schedule_at(at, [this] {
          transport_.set_powered(false);
          node_.crash();
        });
        break;
      case fault::FaultKind::kRecover:
        if (e.node != self) break;
        timers_.schedule_at(at, [this] {
          node_.recover();
          transport_.set_powered(true);
        });
        break;
      case fault::FaultKind::kFreeze:
        timers_.schedule_at(at, [this, n = e.node] { freeze(n, true); });
        timers_.schedule_at(until, [this, n = e.node] { freeze(n, false); });
        break;
      case fault::FaultKind::kLinkDown:
        timers_.schedule_at(at, [this, a = e.node, b = e.peer] {
          block_link(a, b, true);
        });
        timers_.schedule_at(until, [this, a = e.node, b = e.peer] {
          block_link(a, b, false);
        });
        break;
      case fault::FaultKind::kJam: {
        const Disk area{{e.x, e.y}, e.radius};
        auto token = std::make_shared<int>(-1);
        timers_.schedule_at(at, [this, area, token] {
          *token = filter_.add_jam_region(area);
        });
        timers_.schedule_at(until, [this, token] {
          if (*token >= 0) filter_.remove_jam_region(*token);
        });
        break;
      }
      case fault::FaultKind::kClockDrift:
        if (e.node == self) drifts_.push_back(e);
        break;
      case fault::FaultKind::kLoss:
        // Channel-wide loss bursts are a simulated-channel property (the
        // Channel's loss override). A live endpoint has no probabilistic
        // drop stage — DropFilter verdicts are deterministic per frame, and
        // seeding per-receiver RNGs here would reintroduce the divergence
        // the service determinism story forbids — so over a real network
        // the medium itself supplies the loss and the event is a no-op.
        break;
    }
  }
}

SimTime PlanRuntime::skew(std::uint64_t epoch) const {
  SimTime extra = SimTime::zero();
  for (const fault::FaultEvent& d : drifts_) {
    const std::uint64_t s = base_epoch_ + d.start_epoch;
    const std::uint64_t e = base_epoch_ + d.end_epoch;
    if (epoch >= s && epoch < e) {
      extra += SimTime::micros(d.per_epoch_us * std::int64_t(epoch - s + 1));
    }
  }
  return extra;
}

}  // namespace cfds::service
