// Chaos trials: randomized fault campaigns with an invariant oracle.
//
// One trial = one deployment driven through three phases:
//
//   warmup      fault-free executions so every node settles into its role
//   faults      a seeded FaultPlan runs against the deployment (crashes,
//               recoveries, freezes, link partitions, jamming, clock drift)
//   quiescence  every fault window is closed and the channel is switched to
//               perfect links; the protocol gets several executions to
//               reconverge
//
// After quiescence the ChaosOracle checks the eventual-consistency
// invariants (oracle.h). Everything is derived from the trial seed, so a
// failing (seed, plan) pair replays byte for byte: log the plan, reload it,
// re-run, debug.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "radio/loss_model.h"

namespace cfds::fault {

/// Wraps a loss model with an off switch. The chaos harness flips a trial's
/// channel to perfect links for the quiescence phase — injected faults must
/// be the only persistent disturbance when the oracle runs, and background
/// loss would otherwise keep (legitimately) delaying reconvergence forever.
class SwitchableLoss final : public LossModel {
 public:
  explicit SwitchableLoss(std::unique_ptr<LossModel> inner)
      : inner_(std::move(inner)) {}

  void set_perfect(bool perfect) { perfect_ = perfect; }

  [[nodiscard]] bool lost(NodeId sender, Vec2 from, NodeId receiver, Vec2 to,
                          Rng& rng) override {
    return !perfect_ && inner_->lost(sender, from, receiver, to, rng);
  }

 private:
  std::unique_ptr<LossModel> inner_;
  bool perfect_ = false;
};

/// Trial shape. The defaults give a ~10-cluster deployment dense enough for
/// deputies and gateways everywhere, small enough for sub-second trials.
struct ChaosConfig {
  std::uint32_t node_count = 48;
  double width = 520.0;
  double height = 380.0;
  double range = 100.0;
  double loss_p = 0.08;  ///< background loss during warmup + fault phases
  SimTime epoch_interval = SimTime::seconds(2);  ///< phi
  std::uint64_t warmup_epochs = 2;
  std::uint64_t fault_epochs = 6;
  std::uint64_t quiesce_epochs = 10;

  /// Self-tuning (accrual) detection — see FdsConfig::adaptive_enabled.
  bool adaptive = false;
  /// Checkpointed CH/DCH recovery — see FdsConfig::checkpoint_enabled.
  bool checkpoint = false;

  /// Event mix handed to FaultPlan::random (node_count/width/height/range/
  /// epoch_interval/fault_epochs are filled in from the fields above).
  ChaosProfile mix;

  [[nodiscard]] ChaosProfile profile() const {
    ChaosProfile p = mix;
    p.node_count = node_count;
    p.width = width;
    p.height = height;
    p.range = range;
    p.epoch_interval = epoch_interval;
    p.fault_epochs = fault_epochs;
    return p;
  }
};

struct ChaosResult {
  std::uint64_t seed = 0;
  FaultPlan plan;
  std::vector<std::string> violations;
  std::size_t alive = 0;
  std::size_t clusters = 0;
  double affiliation = 0.0;
  /// Rejoin-to-consistent: for each kRecover event whose node came back,
  /// the time from the recovery instant until the node is alive, affiliated
  /// and marked again (polled at epoch_interval/4 granularity). This is the
  /// metric the checkpointed-recovery path is judged on: a restoring CH/DCH
  /// skips the subscribe/admit handshake, so its rejoin time should drop.
  std::size_t rejoins = 0;        ///< recoveries that reached consistency
  std::size_t rejoin_pending = 0; ///< recoveries that never became consistent
  std::int64_t rejoin_mean_us = 0;
  std::int64_t rejoin_max_us = 0;

  [[nodiscard]] bool passed() const { return violations.empty(); }

  /// One JSON object (no trailing newline) summarizing the trial.
  [[nodiscard]] std::string summary_json() const;
};

/// Generates the seeded random plan for this (config, seed) and runs it.
[[nodiscard]] ChaosResult run_chaos_trial(const ChaosConfig& config,
                                          std::uint64_t seed);

/// Runs an explicit plan (e.g. reloaded from a campaign's JSONL log) against
/// the deployment derived from (config, seed). run_chaos_trial(config, s) and
/// replay_chaos_trial(config, s, FaultPlan::random(s, config.profile()))
/// produce identical results.
[[nodiscard]] ChaosResult replay_chaos_trial(const ChaosConfig& config,
                                             std::uint64_t seed,
                                             const FaultPlan& plan);

}  // namespace cfds::fault
