#include "fault/chaos.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "fault/injector.h"
#include "fault/oracle.h"
#include "sim/scenario.h"

namespace cfds::fault {

namespace {

/// One kRecover event under observation: when did the node come back, and
/// when was it next seen alive + affiliated + marked.
struct RejoinProbe {
  NodeId id{0};
  SimTime recovered_at = SimTime::zero();
  bool done = false;
  SimTime consistent_at = SimTime::zero();
};

/// True once `id` is fully re-integrated: powered on, carrying a cluster
/// view, and admitted (marked) by an acting head. Read-only — the probes
/// must not perturb the trial they are measuring.
[[nodiscard]] bool rejoined(Scenario& scenario, NodeId id) {
  if (!scenario.network().has_node(id)) return false;
  const Node& node = scenario.network().node(id);
  if (!node.alive() || !node.marked()) return false;
  for (const MembershipView* view : scenario.views()) {
    if (view->self() == id) return view->affiliated();
  }
  return false;
}

}  // namespace

std::string ChaosResult::summary_json() const {
  char buffer[384];
  std::snprintf(buffer, sizeof buffer,
                "{\"seed\":%llu,\"events\":%zu,\"violations\":%zu,"
                "\"alive\":%zu,\"clusters\":%zu,\"affiliation\":%.6f,"
                "\"rejoins\":%zu,\"rejoin_pending\":%zu,"
                "\"rejoin_mean_us\":%lld,\"rejoin_max_us\":%lld}",
                static_cast<unsigned long long>(seed), plan.events.size(),
                violations.size(), alive, clusters, affiliation, rejoins,
                rejoin_pending, static_cast<long long>(rejoin_mean_us),
                static_cast<long long>(rejoin_max_us));
  return buffer;
}

ChaosResult run_chaos_trial(const ChaosConfig& config, std::uint64_t seed) {
  return replay_chaos_trial(config, seed,
                            FaultPlan::random(seed, config.profile()));
}

ChaosResult replay_chaos_trial(const ChaosConfig& config, std::uint64_t seed,
                               const FaultPlan& plan) {
  ScenarioConfig sc;
  sc.width = config.width;
  sc.height = config.height;
  sc.node_count = config.node_count;
  sc.range = config.range;
  sc.heartbeat_interval = config.epoch_interval;
  sc.seed = seed;
  sc.fds.recovery_enabled = true;
  sc.fds.adaptive_enabled = config.adaptive;
  sc.fds.checkpoint_enabled = config.checkpoint;
  SwitchableLoss* switchable = nullptr;
  sc.loss_factory = [&switchable, p = config.loss_p] {
    auto loss =
        std::make_unique<SwitchableLoss>(std::make_unique<BernoulliLoss>(p));
    switchable = loss.get();
    return std::unique_ptr<LossModel>(std::move(loss));
  };

  Scenario scenario(sc);
  scenario.setup();
  scenario.run_epochs(config.warmup_epochs);

  FaultInjector injector(scenario);
  const SimTime anchor = scenario.next_epoch_time();
  injector.install(plan);

  // Rejoin-to-consistent probes: a fixed ladder of read-only checks at
  // quarter-epoch granularity from each recovery instant to the end of the
  // trial. Scheduled up front (like the plan itself) so a replay schedules
  // the identical event sequence.
  const std::int64_t phi_us = config.epoch_interval.as_micros();
  const std::int64_t step_us = phi_us / 4;
  const std::int64_t tail_us =
      std::int64_t(config.fault_epochs + config.quiesce_epochs) * phi_us;
  std::vector<std::shared_ptr<RejoinProbe>> probes;
  Simulator& sim = scenario.network().simulator();
  for (const FaultEvent& e : plan.events) {
    if (e.kind != FaultKind::kRecover) continue;
    auto probe = std::make_shared<RejoinProbe>();
    probe->id = NodeId{e.node};
    probe->recovered_at = anchor + SimTime::micros(e.at_us);
    probes.push_back(probe);
    for (std::int64_t off = step_us; e.at_us + off <= tail_us;
         off += step_us) {
      sim.schedule_at(probe->recovered_at + SimTime::micros(off),
                      [probe, &scenario, &sim] {
                        if (probe->done) return;
                        if (!rejoined(scenario, probe->id)) return;
                        probe->done = true;
                        probe->consistent_at = sim.now();
                      });
    }
  }

  scenario.run_epochs(config.fault_epochs);

  // Quiescence: no channel fault survives the horizon and the background
  // loss is switched off, so the oracle judges steady state, not luck.
  injector.clear_channel_faults();
  switchable->set_perfect(true);
  scenario.run_epochs(config.quiesce_epochs);

  ChaosResult result;
  result.seed = seed;
  result.plan = plan;
  result.violations = ChaosOracle::check(scenario);
  result.alive = scenario.network().alive_count();
  result.clusters = scenario.cluster_count();
  result.affiliation = scenario.affiliation_rate();
  std::int64_t total_us = 0;
  for (const auto& probe : probes) {
    if (!probe->done) {
      ++result.rejoin_pending;
      continue;
    }
    const std::int64_t latency_us =
        probe->consistent_at.as_micros() - probe->recovered_at.as_micros();
    ++result.rejoins;
    total_us += latency_us;
    result.rejoin_max_us = std::max(result.rejoin_max_us, latency_us);
  }
  if (result.rejoins > 0) {
    result.rejoin_mean_us = total_us / std::int64_t(result.rejoins);
  }
  return result;
}

}  // namespace cfds::fault
