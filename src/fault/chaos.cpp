#include "fault/chaos.h"

#include <cstdio>

#include "fault/injector.h"
#include "fault/oracle.h"
#include "sim/scenario.h"

namespace cfds::fault {

std::string ChaosResult::summary_json() const {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "{\"seed\":%llu,\"events\":%zu,\"violations\":%zu,"
                "\"alive\":%zu,\"clusters\":%zu,\"affiliation\":%.6f}",
                static_cast<unsigned long long>(seed), plan.events.size(),
                violations.size(), alive, clusters, affiliation);
  return buffer;
}

ChaosResult run_chaos_trial(const ChaosConfig& config, std::uint64_t seed) {
  return replay_chaos_trial(config, seed,
                            FaultPlan::random(seed, config.profile()));
}

ChaosResult replay_chaos_trial(const ChaosConfig& config, std::uint64_t seed,
                               const FaultPlan& plan) {
  ScenarioConfig sc;
  sc.width = config.width;
  sc.height = config.height;
  sc.node_count = config.node_count;
  sc.range = config.range;
  sc.heartbeat_interval = config.epoch_interval;
  sc.seed = seed;
  sc.fds.recovery_enabled = true;
  SwitchableLoss* switchable = nullptr;
  sc.loss_factory = [&switchable, p = config.loss_p] {
    auto loss =
        std::make_unique<SwitchableLoss>(std::make_unique<BernoulliLoss>(p));
    switchable = loss.get();
    return std::unique_ptr<LossModel>(std::move(loss));
  };

  Scenario scenario(sc);
  scenario.setup();
  scenario.run_epochs(config.warmup_epochs);

  FaultInjector injector(scenario);
  injector.install(plan);
  scenario.run_epochs(config.fault_epochs);

  // Quiescence: no channel fault survives the horizon and the background
  // loss is switched off, so the oracle judges steady state, not luck.
  injector.clear_channel_faults();
  switchable->set_perfect(true);
  scenario.run_epochs(config.quiesce_epochs);

  ChaosResult result;
  result.seed = seed;
  result.plan = plan;
  result.violations = ChaosOracle::check(scenario);
  result.alive = scenario.network().alive_count();
  result.clusters = scenario.cluster_count();
  result.affiliation = scenario.affiliation_rate();
  return result;
}

}  // namespace cfds::fault
