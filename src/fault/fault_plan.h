// Declarative fault schedules.
//
// A FaultPlan is a seeded, serializable list of typed fault events applied
// to a running deployment through the injection hooks in Channel, Network/
// Node, and FdsService — never through ad-hoc test code. Because the plan is
// data, any chaos-campaign failure is replayable: the campaign logs the plan
// (JSONL) next to the violation, and re-running the same seed + plan
// reproduces the execution byte for byte.
//
// Taxonomy (docs/FAULTS.md):
//   crash        fail-stop: the node goes dark (Section 2.1's model)
//   recover      crash-recovery: the node restarts with volatile state lost
//                and a bumped incarnation; it must re-run affiliation
//   freeze       omission fault: the node's frames vanish in the air and it
//                hears nothing for a window, then resumes with STALE state
//                (the node itself never notices)
//   link_down    the link {a, b} drops every frame for a window (partition
//                faults are sets of link_down events)
//   jam          loss probability forced to 1 for any frame whose sender or
//                receiver lies inside a disk, for a window
//   clock_drift  a node's round clock drifts further ahead each epoch over
//                [start_epoch, end_epoch), then resyncs
//
// Event times are offsets from the fault phase's start (the injector anchors
// them to an absolute simulation time); drift is expressed in epochs
// relative to the fault phase's first epoch.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace cfds::fault {

enum class FaultKind : std::uint8_t {
  kCrash,
  kRecover,
  kFreeze,
  kLinkDown,
  kJam,
  kClockDrift,
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault. A plain tagged record: only the fields relevant to
/// `kind` are meaningful (see the serializer for the per-kind schema).
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Offset from the fault phase start (crash/recover/freeze/link_down/jam).
  std::int64_t at_us = 0;
  /// Window length for freeze/link_down/jam.
  std::int64_t duration_us = 0;
  /// Target node (crash/recover/freeze/clock_drift); link endpoint `a`.
  std::uint32_t node = 0;
  /// Link endpoint `b` (link_down only).
  std::uint32_t peer = 0;
  /// Jam disk (jam only).
  double x = 0.0;
  double y = 0.0;
  double radius = 0.0;
  /// Drift window in epochs relative to the fault phase's first epoch, and
  /// the per-epoch skew increment (clock_drift only).
  std::uint64_t start_epoch = 0;
  std::uint64_t end_epoch = 0;
  std::int64_t per_epoch_us = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Knobs for FaultPlan::random: sized from the deployment under test.
struct ChaosProfile {
  std::uint32_t node_count = 0;  ///< targets drawn from [0, node_count)
  double width = 0.0;            ///< jam placement bounds
  double height = 0.0;
  double range = 100.0;          ///< jam radii scale with the radio range
  SimTime epoch_interval = SimTime::seconds(2);  ///< phi
  /// Fault horizon: every window closes and every ramp resyncs before this
  /// many epochs, so the quiescence phase that follows is genuinely
  /// fault-free and the oracle's eventual-consistency invariants apply.
  std::uint64_t fault_epochs = 6;

  // Event mix (counts per plan).
  int crashes = 3;          ///< each has ~60% chance of a later recover
  int freezes = 2;
  int link_downs = 2;
  int jams = 1;
  int clock_drifts = 1;
};

struct FaultPlan {
  std::uint64_t seed = 0;  ///< the seed random() was called with (0 = n/a)
  std::vector<FaultEvent> events;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

  /// Serializes as JSONL: a header line, then one line per event.
  [[nodiscard]] std::string to_jsonl() const;

  /// Parses to_jsonl() output (also accepts plans without a header).
  /// Returns nullopt with *error set on malformed input.
  [[nodiscard]] static std::optional<FaultPlan> parse_jsonl(
      const std::string& text, std::string* error = nullptr);

  /// Loads a plan from a JSONL file.
  [[nodiscard]] static std::optional<FaultPlan> load(const std::string& path,
                                                     std::string* error = nullptr);

  /// Generates a seeded random plan mixing every fault kind per the profile.
  /// Deterministic: same seed + profile => identical plan. Windows never
  /// extend past the profile's fault horizon, and per-node freeze windows
  /// never overlap (each target node is frozen at most once).
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const ChaosProfile& profile);
};

}  // namespace cfds::fault
