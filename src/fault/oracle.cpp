#include "fault/oracle.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/flat.h"
#include "common/geometry.h"

namespace cfds::fault {

namespace {

// fmt is always a literal at the call sites in this file; the variadic
// template hides that from -Wformat-nonliteral.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
void report(std::vector<std::string>& out, const char* fmt, auto... args) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer, fmt, args...);
  out.emplace_back(buffer);
}
#pragma GCC diagnostic pop

}  // namespace

std::vector<std::string> ChaosOracle::check(Scenario& scenario) {
  std::vector<std::string> violations;
  Network& net = scenario.network();
  const auto views = scenario.views();
  const double range = net.config().channel.range;

  const auto alive = [&](NodeId id) {
    return net.has_node(id) && net.node(id).alive();
  };
  // Participating = alive and not voluntarily departed; only these nodes owe
  // the group any consistency.
  const auto participating = [&](NodeId id) {
    return alive(id) && !scenario.fds().agent_for(id).has_left();
  };

  // Acting clusterheads per referenced cluster. Ordered map: I4 below
  // iterates it, and violation report order must be replay-stable.
  std::map<std::uint32_t, std::vector<NodeId>> acting_chs;
  FlatSet<std::uint32_t> referenced;
  for (Node* node : net.nodes()) {
    if (!participating(node->id())) continue;
    const MembershipView& view = *views[node->id().value()];
    if (!view.affiliated()) continue;
    referenced.insert(view.cluster()->id.value());
    if (view.is_clusterhead()) {
      acting_chs[view.cluster()->id.value()].push_back(node->id());
    }
  }

  // I1: exactly one acting CH per referenced cluster. A cluster split into
  // disconnected radio components by failures can legitimately end with one
  // head per component — two heads are a violation only if they are within
  // range of each other (in contact, they must have resolved the conflict).
  for (std::uint32_t cid : referenced) {
    const auto it = acting_chs.find(cid);
    if (it == acting_chs.end()) {
      report(violations, "I1: cluster %u has 0 acting clusterheads", cid);
      continue;
    }
    const auto& heads = it->second;
    for (std::size_t a = 0; a < heads.size(); ++a) {
      for (std::size_t b = a + 1; b < heads.size(); ++b) {
        if (distance(net.node(heads[a]).position(),
                     net.node(heads[b]).position()) <= range) {
          report(violations,
                 "I1: cluster %u has acting clusterheads %u and %u in "
                 "mutual range",
                 cid, heads[a].value(), heads[b].value());
        }
      }
    }
  }

  for (Node* node : net.nodes()) {
    const NodeId id = node->id();
    if (!participating(id)) continue;
    const MembershipView& view = *views[id.value()];

    // I2: marked => affiliated, CH alive + acting, and CH lists us.
    if (node->marked() && !view.affiliated()) {
      report(violations, "I2: node %u is marked but unaffiliated", id.value());
    }
    if (view.affiliated() && !view.is_clusterhead()) {
      const ClusterView& cluster = *view.cluster();
      const NodeId head = cluster.clusterhead;
      if (!alive(head)) {
        report(violations, "I2: node %u follows dead clusterhead %u",
               id.value(), head.value());
      } else {
        const MembershipView& head_view = *views[head.value()];
        if (!head_view.is_clusterhead() ||
            head_view.cluster()->id != cluster.id) {
          report(violations,
                 "I2: node %u follows node %u which is not acting "
                 "clusterhead of cluster %u",
                 id.value(), head.value(), cluster.id.value());
        } else if (!head_view.cluster()->is_member(id)) {
          report(violations,
                 "I2: clusterhead %u does not list follower %u as a member",
                 head.value(), id.value());
        }
      }
    }

    // I3: our failure log must not name an alive same-cluster node that our
    // own clusterhead can hear — its heartbeat refutes the entry and the
    // erase propagates through the CH's cumulative updates. An alive node in
    // a disconnected component of a split cluster is beyond evidence's reach
    // and exempt.
    if (view.affiliated()) {
      const NodeId my_head = view.cluster()->clusterhead;
      const FailureLog& log = scenario.fds().agent_for(id).log();
      for (NodeId failed : log.known_failed()) {
        if (!participating(failed)) continue;
        const MembershipView& failed_view = *views[failed.value()];
        if (failed_view.affiliated() &&
            failed_view.cluster()->id == view.cluster()->id &&
            alive(my_head) &&
            distance(net.node(failed).position(),
                     net.node(my_head).position()) <= range) {
          report(violations,
                 "I3: node %u's failure log names alive cluster-mate %u "
                 "within its clusterhead's range",
                 id.value(), failed.value());
        }
      }
    }

    // I4: an unaffiliated node with an acting CH in range must have been
    // re-admitted by now.
    if (!view.affiliated() && !node->marked()) {
      for (const auto& [cid, heads] : acting_chs) {
        for (NodeId head : heads) {
          if (distance(node->position(), net.node(head).position()) <=
              range) {
            report(violations,
                   "I4: node %u is unaffiliated with acting clusterhead %u "
                   "in range",
                   id.value(), head.value());
            goto next_node;  // one report per node is enough
          }
        }
      }
    next_node:;
    }

    // I5: dead nodes must have been purged from every view.
    if (view.affiliated()) {
      const ClusterView& cluster = *view.cluster();
      if (!alive(cluster.clusterhead)) {
        report(violations, "I5: node %u's view keeps dead clusterhead %u",
               id.value(), cluster.clusterhead.value());
      }
      for (NodeId m : cluster.members) {
        if (net.has_node(m) && !net.node(m).alive()) {
          report(violations, "I5: node %u's view keeps dead member %u",
                 id.value(), m.value());
        }
      }
      for (NodeId d : cluster.deputies) {
        if (net.has_node(d) && !net.node(d).alive()) {
          report(violations, "I5: node %u's view keeps dead deputy %u",
                 id.value(), d.value());
        }
      }
    }
  }

  return violations;
}

}  // namespace cfds::fault
