// Post-execution invariant oracle for chaos campaigns.
//
// After a chaos trial's quiescence phase (all fault windows closed, links
// perfect for several executions) the deployment must have reconverged; the
// oracle walks every node's state and checks the eventual-consistency
// invariants below. Violations are returned as human-readable strings — an
// empty vector means the trial passed.
//
//   I1  every cluster referenced by an alive affiliated node has an acting
//       clusterhead, and no two acting clusterheads of the same cluster are
//       within range of each other (a cluster split into disconnected radio
//       components may keep one head per component; heads in contact must
//       have resolved the conflict)
//   I2  membership is consistent: an alive marked node is affiliated, its
//       clusterhead is alive and acting for the same cluster, and that
//       clusterhead lists the node as a member
//   I3  no alive same-cluster node within the clusterhead's range appears in
//       a node's failure log (no permanent zombies after crash-recovery;
//       nodes in a disconnected component are beyond evidence's reach and
//       exempt)
//   I4  an alive unmarked node with an alive acting clusterhead in radio
//       range is affiliated (F5 subscription must eventually succeed)
//   I5  dead nodes appear in no alive node's view (clusterhead, members,
//       or deputies)
//
// The oracle is scoped to what the protocol can actually guarantee: nodes
// that voluntarily left (announce_leave) are exempt, and I4 only obliges
// nodes that have an acting clusterhead within range — a node isolated by
// geometry is allowed to stay unaffiliated.

#pragma once

#include <string>
#include <vector>

#include "sim/scenario.h"

namespace cfds::fault {

class ChaosOracle {
 public:
  /// Checks invariants I1-I5 against the deployment's current state.
  /// Returns one message per violation; empty means all invariants hold.
  [[nodiscard]] static std::vector<std::string> check(Scenario& scenario);
};

}  // namespace cfds::fault
