#include "fault/fault_plan.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/expect.h"
#include "common/flat.h"

namespace cfds::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kFreeze: return "freeze";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kJam: return "jam";
    case FaultKind::kClockDrift: return "clock_drift";
    case FaultKind::kLoss: return "loss";
  }
  return "?";
}

namespace {

[[nodiscard]] std::optional<FaultKind> kind_from(const std::string& name) {
  for (FaultKind k : {FaultKind::kCrash, FaultKind::kRecover,
                      FaultKind::kFreeze, FaultKind::kLinkDown,
                      FaultKind::kJam, FaultKind::kClockDrift,
                      FaultKind::kLoss}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

// fmt is always a literal at the call sites in this file; the variadic
// template hides that from -Wformat-nonliteral.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
void append(std::string& out, const char* fmt, auto... args) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer, fmt, args...);
  out += buffer;
}
#pragma GCC diagnostic pop

/// Finds `"key":` in `line` and parses the number that follows. Returns
/// false if the key is absent or the value is not a number.
bool find_number(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return false;
  *out = value;
  return true;
}

/// Locates the raw value text after `"key":`, or nullptr if absent.
const char* find_value(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + needle.size();
}

// Integer fields are parsed as integers, not through double: a double only
// holds 53 bits of mantissa, so a round-trip through find_number would
// silently corrupt large at_us/seed values, and a negative value cast to an
// unsigned type would wrap instead of failing the line.
bool find_i64(const std::string& line, const char* key, std::int64_t* out) {
  const char* start = find_value(line, key);
  if (start == nullptr) return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(start, &end, 10);
  if (end == start || errno == ERANGE) return false;
  // Reject "1.5" or "1e3" masquerading as an integer: the value must stop
  // at a JSON delimiter, not a fraction/exponent marker.
  if (*end == '.' || *end == 'e' || *end == 'E') return false;
  *out = value;
  return true;
}

bool find_u64(const std::string& line, const char* key, std::uint64_t* out) {
  const char* start = find_value(line, key);
  if (start == nullptr) return false;
  if (*start == '-') return false;  // strtoull would wrap, not fail
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(start, &end, 10);
  if (end == start || errno == ERANGE) return false;
  if (*end == '.' || *end == 'e' || *end == 'E') return false;
  *out = value;
  return true;
}

bool find_u32(const std::string& line, const char* key, std::uint32_t* out) {
  std::uint64_t value = 0;
  if (!find_u64(line, key, &value)) return false;
  if (value > 0xFFFFFFFFull) return false;
  *out = static_cast<std::uint32_t>(value);
  return true;
}

/// Extracts the string value of `"key":"..."`.
bool find_string(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return false;
  *out = line.substr(start, close - start);
  return true;
}

}  // namespace

std::string FaultPlan::to_jsonl() const {
  std::string out;
  append(out, "{\"fault_plan\":1,\"seed\":%llu,\"events\":%zu}\n",
         static_cast<unsigned long long>(seed), events.size());
  for (const FaultEvent& e : events) {
    append(out, "{\"fault\":\"%s\"", to_string(e.kind));
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        append(out, ",\"node\":%u,\"at_us\":%lld", e.node,
               static_cast<long long>(e.at_us));
        break;
      case FaultKind::kFreeze:
        append(out, ",\"node\":%u,\"at_us\":%lld,\"duration_us\":%lld",
               e.node, static_cast<long long>(e.at_us), static_cast<long long>(e.duration_us));
        break;
      case FaultKind::kLinkDown:
        append(out,
               ",\"node\":%u,\"peer\":%u,\"at_us\":%lld,\"duration_us\":%lld",
               e.node, e.peer, static_cast<long long>(e.at_us), static_cast<long long>(e.duration_us));
        break;
      case FaultKind::kJam:
        append(out,
               ",\"x\":%.17g,\"y\":%.17g,\"radius\":%.17g,\"at_us\":%lld,"
               "\"duration_us\":%lld",
               e.x, e.y, e.radius, static_cast<long long>(e.at_us),
               static_cast<long long>(e.duration_us));
        break;
      case FaultKind::kClockDrift:
        append(out,
               ",\"node\":%u,\"start_epoch\":%llu,\"end_epoch\":%llu,"
               "\"per_epoch_us\":%lld",
               e.node, static_cast<unsigned long long>(e.start_epoch),
               static_cast<unsigned long long>(e.end_epoch), static_cast<long long>(e.per_epoch_us));
        break;
      case FaultKind::kLoss:
        append(out, ",\"x\":%.17g,\"at_us\":%lld,\"duration_us\":%lld", e.x,
               static_cast<long long>(e.at_us),
               static_cast<long long>(e.duration_us));
        break;
    }
    out += "}\n";
  }
  return out;
}

std::optional<FaultPlan> FaultPlan::parse_jsonl(const std::string& text,
                                                std::string* error) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) -> std::optional<FaultPlan> {
    if (error) {
      *error = "fault plan line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (line.find("\"fault_plan\"") != std::string::npos) {
      (void)find_u64(line, "seed", &plan.seed);
      continue;
    }
    std::string kind_name;
    if (!find_string(line, "fault", &kind_name)) {
      return fail("missing \"fault\" key");
    }
    const auto kind = kind_from(kind_name);
    if (!kind) return fail("unknown fault kind '" + kind_name + "'");
    FaultEvent e;
    e.kind = *kind;
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        if (!find_u32(line, "node", &e.node) ||
            !find_i64(line, "at_us", &e.at_us)) {
          return fail("crash/recover needs node, at_us");
        }
        break;
      case FaultKind::kFreeze:
        if (!find_u32(line, "node", &e.node) ||
            !find_i64(line, "at_us", &e.at_us) ||
            !find_i64(line, "duration_us", &e.duration_us)) {
          return fail("freeze needs node, at_us, duration_us");
        }
        break;
      case FaultKind::kLinkDown:
        if (!find_u32(line, "node", &e.node) ||
            !find_u32(line, "peer", &e.peer) ||
            !find_i64(line, "at_us", &e.at_us) ||
            !find_i64(line, "duration_us", &e.duration_us)) {
          return fail("link_down needs node, peer, at_us, duration_us");
        }
        break;
      case FaultKind::kJam:
        if (!find_number(line, "x", &e.x) || !find_number(line, "y", &e.y) ||
            !find_number(line, "radius", &e.radius) ||
            !find_i64(line, "at_us", &e.at_us) ||
            !find_i64(line, "duration_us", &e.duration_us)) {
          return fail("jam needs x, y, radius, at_us, duration_us");
        }
        break;
      case FaultKind::kClockDrift:
        if (!find_u32(line, "node", &e.node) ||
            !find_u64(line, "start_epoch", &e.start_epoch) ||
            !find_u64(line, "end_epoch", &e.end_epoch) ||
            !find_i64(line, "per_epoch_us", &e.per_epoch_us)) {
          return fail(
              "clock_drift needs node, start_epoch, end_epoch, per_epoch_us");
        }
        break;
      case FaultKind::kLoss:
        if (!find_number(line, "x", &e.x) ||
            !find_i64(line, "at_us", &e.at_us) ||
            !find_i64(line, "duration_us", &e.duration_us)) {
          return fail("loss needs x, at_us, duration_us");
        }
        break;
    }
    plan.events.push_back(e);
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::load(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open fault plan file: " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_jsonl(buffer.str(), error);
}

FaultPlan FaultPlan::random(std::uint64_t seed, const ChaosProfile& profile) {
  CFDS_EXPECT(profile.node_count > 0, "chaos profile needs nodes");
  CFDS_EXPECT(profile.fault_epochs >= 2, "fault horizon too short");
  Rng rng(seed ^ 0xFA017);
  FaultPlan plan;
  plan.seed = seed;
  const std::int64_t phi = profile.epoch_interval.as_micros();
  const std::int64_t horizon =
      std::int64_t(profile.fault_epochs) * phi;

  // Crash/freeze/drift targets are kept distinct so each node experiences at
  // most one node-level fault per plan — overlapping faults on one node are
  // legal for the injector but make plans needlessly hard to reason about.
  FlatSet<std::uint32_t> used;
  auto fresh_node = [&]() -> std::uint32_t {
    if (used.size() >= profile.node_count) {
      return std::uint32_t(rng.below(profile.node_count));
    }
    for (;;) {
      const auto n = std::uint32_t(rng.below(profile.node_count));
      if (used.insert(n)) return n;
    }
  };

  for (int i = 0; i < profile.crashes; ++i) {
    FaultEvent crash;
    crash.kind = FaultKind::kCrash;
    crash.node = fresh_node();
    crash.at_us = std::int64_t(rng.below(std::uint64_t(horizon / 2)));
    plan.events.push_back(crash);
    if (rng.bernoulli(0.6)) {
      // Crash-recovery: the node comes back at least one epoch before the
      // horizon so re-affiliation completes inside the fault phase's tail
      // plus quiescence.
      FaultEvent rec;
      rec.kind = FaultKind::kRecover;
      rec.node = crash.node;
      const std::int64_t lo = crash.at_us + phi / 2;
      const std::int64_t hi = horizon - phi;
      rec.at_us = hi > lo ? lo + std::int64_t(rng.below(std::uint64_t(hi - lo)))
                          : lo;
      plan.events.push_back(rec);
    }
  }

  for (int i = 0; i < profile.freezes; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kFreeze;
    e.node = fresh_node();
    e.at_us = std::int64_t(rng.below(std::uint64_t(horizon / 2)));
    // 1-3 epochs of silence, window closed before the horizon.
    e.duration_us = phi + std::int64_t(rng.below(std::uint64_t(2 * phi)));
    e.duration_us = std::min(e.duration_us, horizon - e.at_us);
    plan.events.push_back(e);
  }

  for (int i = 0; i < profile.link_downs; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLinkDown;
    e.node = std::uint32_t(rng.below(profile.node_count));
    do {
      e.peer = std::uint32_t(rng.below(profile.node_count));
    } while (e.peer == e.node);
    e.at_us = std::int64_t(rng.below(std::uint64_t(horizon / 2)));
    e.duration_us =
        std::min(phi + std::int64_t(rng.below(std::uint64_t(2 * phi))),
                 horizon - e.at_us);
    plan.events.push_back(e);
  }

  for (int i = 0; i < profile.jams; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kJam;
    e.x = rng.uniform(0.0, profile.width);
    e.y = rng.uniform(0.0, profile.height);
    e.radius = rng.uniform(0.6, 1.2) * profile.range;
    e.at_us = std::int64_t(rng.below(std::uint64_t(horizon / 2)));
    e.duration_us =
        std::min(phi + std::int64_t(rng.below(std::uint64_t(phi))),
                 horizon - e.at_us);
    plan.events.push_back(e);
  }

  for (int i = 0; i < profile.clock_drifts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kClockDrift;
    e.node = fresh_node();
    e.start_epoch = rng.below(profile.fault_epochs / 2 + 1);
    e.end_epoch = std::min(e.start_epoch + 1 + rng.below(3),
                           profile.fault_epochs);
    // Up to 20 ms of extra skew per epoch: well under Thop in total, enough
    // to push rounds measurably out of alignment.
    e.per_epoch_us = 2000 + std::int64_t(rng.below(18000));
    plan.events.push_back(e);
  }

  // Loss bursts draw LAST: a profile with loss_bursts == 0 (the default)
  // makes exactly the draws older profiles made, so pre-existing seeds keep
  // producing byte-identical plans.
  for (int i = 0; i < profile.loss_bursts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLoss;
    // Heavy interference: 30-80% frame loss for 1-3 epochs.
    e.x = rng.uniform(0.3, 0.8);
    e.at_us = std::int64_t(rng.below(std::uint64_t(horizon / 2)));
    e.duration_us =
        std::min(phi + std::int64_t(rng.below(std::uint64_t(2 * phi))),
                 horizon - e.at_us);
    plan.events.push_back(e);
  }

  return plan;
}

}  // namespace cfds::fault
