// Applies a FaultPlan to a running Scenario.
//
// The injector translates declarative fault events into calls on the
// simulator-level injection hooks: Network::schedule_crash/schedule_recover
// for node lifecycle, Channel::set_muted / set_link_blocked /
// add_jam_region for channel faults, and FdsService::set_skew_provider for
// clock drift. It schedules everything up front (install), anchored at the
// scenario's next epoch boundary, so a plan replays identically whenever the
// scenario it is applied to is identical.
//
// The injector must outlive the simulation run: scheduled events and the
// skew provider capture it.

#pragma once

#include <map>
#include <vector>

#include "fault/fault_plan.h"
#include "sim/scenario.h"

namespace cfds::fault {

class FaultInjector {
 public:
  explicit FaultInjector(Scenario& scenario);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event of `plan`, anchored at the scenario's next epoch
  /// start (event at_us = 0 fires exactly when the next execution begins).
  /// May be called once per injector.
  void install(const FaultPlan& plan);

  /// Defensively clears any channel fault still active (mutes, blocked
  /// links, jam regions). Well-formed plans close their own windows; this
  /// protects campaigns replaying handcrafted plans whose windows run past
  /// the fault horizon, so the quiescence phase is genuinely fault-free.
  void clear_channel_faults();

  /// Anchor epoch index: plan drift epochs are relative to this.
  [[nodiscard]] std::uint64_t base_epoch() const { return base_epoch_; }

 private:
  void freeze(std::uint32_t node, bool on);
  void block_link(std::uint32_t a, std::uint32_t b, bool on);

  Scenario& scenario_;
  SimTime anchor_;
  std::uint64_t base_epoch_;
  bool installed_ = false;

  // Overlap-safe bookkeeping: a node stays muted (a link stays blocked)
  // until every window covering it has closed. Ordered maps:
  // clear_channel_faults() walks them, and the unmute/unblock call order
  // must be replay-stable.
  std::map<std::uint32_t, int> freeze_depth_;
  std::map<std::uint64_t, int> link_depth_;
  std::vector<int> active_jams_;
  std::vector<FaultEvent> drifts_;
  /// Open kLoss windows. Overlapping bursts are legal: the most recently
  /// activated probability wins, and the override clears only when the last
  /// window closes.
  int loss_depth_ = 0;
};

}  // namespace cfds::fault
