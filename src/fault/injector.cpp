#include "fault/injector.h"

#include <algorithm>
#include <memory>

#include "common/expect.h"

namespace cfds::fault {

namespace {

[[nodiscard]] std::uint64_t link_key(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  return (hi << 32) | lo;
}

}  // namespace

FaultInjector::FaultInjector(Scenario& scenario)
    : scenario_(scenario),
      anchor_(scenario.next_epoch_time()),
      base_epoch_(scenario.epochs_run()) {}

void FaultInjector::freeze(std::uint32_t node, bool on) {
  const NodeId id{node};
  if (!scenario_.network().has_node(id)) return;
  if (on) {
    if (freeze_depth_[node]++ == 0) {
      scenario_.network().channel().set_muted(id, true);
    }
  } else {
    if (--freeze_depth_[node] == 0) {
      scenario_.network().channel().set_muted(id, false);
    }
  }
}

void FaultInjector::block_link(std::uint32_t a, std::uint32_t b, bool on) {
  const NodeId na{a}, nb{b};
  if (!scenario_.network().has_node(na) || !scenario_.network().has_node(nb)) {
    return;
  }
  const std::uint64_t key = link_key(a, b);
  if (on) {
    if (link_depth_[key]++ == 0) {
      scenario_.network().channel().set_link_blocked(na, nb, true);
    }
  } else {
    if (--link_depth_[key] == 0) {
      scenario_.network().channel().set_link_blocked(na, nb, false);
    }
  }
}

void FaultInjector::install(const FaultPlan& plan) {
  CFDS_EXPECT(!installed_, "install() may be called once per injector");
  installed_ = true;
  Simulator& sim = scenario_.network().simulator();

  for (const FaultEvent& e : plan.events) {
    const SimTime at = anchor_ + SimTime::micros(e.at_us);
    const SimTime until = at + SimTime::micros(e.duration_us);
    switch (e.kind) {
      case FaultKind::kCrash:
        sim.schedule_at(at, [this, n = e.node] {
          const NodeId id{n};
          if (scenario_.network().has_node(id)) scenario_.network().crash(id);
        });
        break;
      case FaultKind::kRecover:
        sim.schedule_at(at, [this, n = e.node] {
          const NodeId id{n};
          if (scenario_.network().has_node(id)) {
            scenario_.network().recover(id);
          }
        });
        break;
      case FaultKind::kFreeze:
        sim.schedule_at(at, [this, n = e.node] { freeze(n, true); });
        sim.schedule_at(until, [this, n = e.node] { freeze(n, false); });
        break;
      case FaultKind::kLinkDown:
        sim.schedule_at(at, [this, a = e.node, b = e.peer] {
          block_link(a, b, true);
        });
        sim.schedule_at(until, [this, a = e.node, b = e.peer] {
          block_link(a, b, false);
        });
        break;
      case FaultKind::kJam: {
        // The removal closure needs the token handed out at activation
        // time; a shared holder ties each window's two events together.
        const Disk area{{e.x, e.y}, e.radius};
        auto token = std::make_shared<int>(-1);
        sim.schedule_at(at, [this, area, token] {
          *token = scenario_.network().channel().add_jam_region(area);
          active_jams_.push_back(*token);
        });
        sim.schedule_at(until, [this, token] {
          if (*token < 0) return;
          scenario_.network().channel().remove_jam_region(*token);
          active_jams_.erase(
              std::remove(active_jams_.begin(), active_jams_.end(), *token),
              active_jams_.end());
        });
        break;
      }
      case FaultKind::kClockDrift:
        drifts_.push_back(e);
        break;
      case FaultKind::kLoss:
        sim.schedule_at(at, [this, p = e.x] {
          ++loss_depth_;
          scenario_.network().channel().set_loss_override(p);
        });
        sim.schedule_at(until, [this] {
          if (--loss_depth_ == 0) {
            scenario_.network().channel().clear_loss_override();
          }
        });
        break;
    }
  }

  if (!drifts_.empty()) {
    scenario_.fds().set_skew_provider(
        [this](NodeId id, std::uint64_t epoch) {
          SimTime extra = SimTime::zero();
          for (const FaultEvent& d : drifts_) {
            if (d.node != id.value()) continue;
            const std::uint64_t s = base_epoch_ + d.start_epoch;
            const std::uint64_t e = base_epoch_ + d.end_epoch;
            if (epoch >= s && epoch < e) {
              // Linear ramp: one increment per elapsed epoch; past
              // end_epoch the contribution drops to zero (clock resync).
              extra += SimTime::micros(d.per_epoch_us *
                                       std::int64_t(epoch - s + 1));
            }
          }
          return extra;
        });
  }
}

void FaultInjector::clear_channel_faults() {
  Channel& channel = scenario_.network().channel();
  for (const auto& [node, depth] : freeze_depth_) {
    if (depth > 0) channel.set_muted(NodeId{node}, false);
  }
  freeze_depth_.clear();
  for (const auto& [key, depth] : link_depth_) {
    if (depth > 0) {
      channel.set_link_blocked(NodeId{std::uint32_t(key & 0xFFFFFFFF)},
                               NodeId{std::uint32_t(key >> 32)}, false);
    }
  }
  link_depth_.clear();
  for (int token : active_jams_) channel.remove_jam_region(token);
  active_jams_.clear();
  if (loss_depth_ > 0) {
    channel.clear_loss_override();
    loss_depth_ = 0;
  }
}

}  // namespace cfds::fault
