#include "power/duty_cycle.h"

#include "common/expect.h"

namespace cfds {

DutyCycleScheduler::DutyCycleScheduler(Network& network, FdsService& fds,
                                       DutyCycleConfig config, Rng rng)
    : network_(network), fds_(fds), config_(config), rng_(rng) {
  CFDS_EXPECT(config_.sleep_fraction >= 0.0 && config_.sleep_fraction <= 1.0,
              "sleep fraction outside [0,1]");
}

std::vector<NodeId> DutyCycleScheduler::begin_window(SimTime now,
                                                     SimTime interval) {
  // Only ordinary members duty-cycle: CHs, deputies and gateways carry
  // roles the cluster depends on every execution (the clustering already
  // concentrates duty on them; that asymmetry is the architecture's price).
  std::vector<NodeId> candidates;
  for (FdsAgent* agent : fds_.agents()) {
    if (!network_.node(agent->id()).alive()) continue;
    if (!agent->view().affiliated()) continue;
    if (agent->view().role() != Role::kOrdinaryMember) continue;
    candidates.push_back(agent->id());
  }

  std::vector<NodeId> sleepers;
  for (NodeId candidate : candidates) {
    if (!rng_.bernoulli(config_.sleep_fraction)) continue;
    sleepers.push_back(candidate);
    FdsAgent& agent = fds_.agent_for(candidate);
    if (config_.announce) {
      agent.announce_sleep(config_.sleep_epochs);
    } else {
      network_.node(candidate).radio().set_powered(false);
    }
    ++asleep_;
    // Wake shortly before the first execution after the window, so the
    // node's next heartbeat is heard on schedule.
    const SimTime wake_at =
        now + std::int64_t(config_.sleep_epochs + 1) * interval -
        SimTime::micros(interval.as_micros() / 10);
    network_.simulator().schedule_at(wake_at, [this, candidate] {
      fds_.agent_for(candidate).wake_up();
      --asleep_;
    });
  }
  ++windows_;
  return sleepers;
}

}  // namespace cfds
