// Sleep/wakeup power management (Section 6's future-work extension).
//
// "A cluster-based architecture may support sleep/wakeup power management
// strategies ... On the other hand, sleep mode may cause false detections.
// Accordingly, we plan to investigate ... deriving algorithms to reduce the
// likelihood of sleep-mode-caused false detection."
//
// The mechanism implemented here: a node entering a sleep window announces
// it with a SleepNoticePayload during fds.R-1 (the notice doubles as that
// execution's heartbeat), then powers its radio down; the CH and DCH exempt
// it from the detection rule for the announced number of executions. With
// announcements disabled (the hazard configuration), sleepers are duly —
// and falsely — reported failed.

#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "fds/agent.h"
#include "net/network.h"

namespace cfds {

struct DutyCycleConfig {
  /// Fraction of ordinary members put to sleep per window.
  double sleep_fraction = 0.2;
  /// FDS executions each sleeper sits out (beyond the announcing one).
  std::uint32_t sleep_epochs = 2;
  /// true: announce via SleepNoticePayload (the mitigation);
  /// false: sleep silently (the paper's hazard).
  bool announce = true;
};

/// Drives duty-cycled sleeping on top of a running FdsService.
class DutyCycleScheduler {
 public:
  DutyCycleScheduler(Network& network, FdsService& fds,
                     DutyCycleConfig config, Rng rng);

  /// Starts one sleep window at simulated time `now` (must be an epoch
  /// start): a random sleep_fraction of the alive ordinary members announce
  /// (if configured) and power down, with wake-ups scheduled after
  /// sleep_epochs further executions of length `interval`. Returns the
  /// sleepers.
  [[nodiscard]] std::vector<NodeId> begin_window(SimTime now,
                                                 SimTime interval);

  /// Nodes currently inside a sleep window.
  [[nodiscard]] std::size_t asleep_now() const { return asleep_; }
  /// Total sleep windows entered so far.
  [[nodiscard]] std::uint64_t windows_started() const { return windows_; }

 private:
  Network& network_;
  FdsService& fds_;
  DutyCycleConfig config_;
  Rng rng_;
  std::size_t asleep_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace cfds
