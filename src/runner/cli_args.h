// Minimal shared command-line parsing for the experiment tooling.
//
// FlagSet is a registry of typed "--name value" (and presence-only) flags.
// parse() consumes the flags it knows from argv — compacting the array in
// place — and leaves everything else untouched, so it composes with other
// parsers: the benches run it first and hand the remainder to
// benchmark::Initialize, while cfds_cli registers every flag it has and
// treats leftovers as an error.
//
// RunnerOptions bundles the four flags every experiment entry point shares
// (--threads, --trials, --seed, --out) plus --no-wall-time for
// bit-reproducible JSONL.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cfds::runner {

class FlagSet {
 public:
  /// Presence flag: "--name" sets *target to true.
  void add_flag(const std::string& name, bool* target, const std::string& help);

  /// Valued flags: "--name V" parses V into *target. Parse failure (bad
  /// number, missing value) fails the whole parse() call.
  void add_value(const std::string& name, long* target, const std::string& help);
  void add_value(const std::string& name, long long* target,
                 const std::string& help);
  void add_value(const std::string& name, int* target, const std::string& help);
  void add_value(const std::string& name, std::uint64_t* target,
                 const std::string& help);
  void add_value(const std::string& name, double* target,
                 const std::string& help);
  void add_value(const std::string& name, std::string* target,
                 const std::string& help);

  /// Consumes recognized flags from argv (argv[0] is never touched) and
  /// shifts the survivors down; argc is updated. Returns false and fills
  /// *error on a malformed or missing value. Unrecognized arguments are not
  /// an error — they stay in argv for the next parser.
  [[nodiscard]] bool parse(int& argc, char** argv, std::string* error);

  /// parse() that prints the error plus usage() to stderr and exits(2).
  void parse_or_exit(int& argc, char** argv);

  /// One "  --name  help" line per registered flag.
  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string name;
    bool takes_value;
    std::function<bool(const char*)> apply;
    std::string help;
  };

  void add(std::string name, bool takes_value,
           std::function<bool(const char*)> apply, std::string help);

  std::vector<Flag> flags_;
};

/// The uniform experiment flags. `trials` and `threads` keep 0 as "caller
/// decides" (benches fall back to their historical per-figure budgets;
/// threads 0 means one per hardware thread). `seed` keeps -1 as "caller
/// decides" so entry points can preserve their historical default seeds.
struct RunnerOptions {
  int threads = 0;
  long trials = 0;
  std::int64_t seed = -1;
  std::string out;  ///< JSONL path; empty = no sink, "-" = stdout
  bool no_wall_time = false;
  /// Run every simulator on the binary-heap event queue instead of the
  /// calendar queue (--no-calendar). The heap is the property-test oracle;
  /// the flag exists so any experiment can be replayed on it — output must
  /// be byte-identical (tools/check_perf.sh diffs the two).
  bool no_calendar = false;
  std::string fault_plan;  ///< FaultPlan JSONL to replay (empty = none)
  /// Label stamped on every BenchRecord this run writes (--label). The
  /// committed trajectory files (BENCH_kernel.json, BENCH_megascale.json)
  /// key rows by label — "pre_pr4"/"post_pr4", "post_pr5", ... — so a
  /// baseline refresh is one flag instead of a sed pass over the JSONL.
  std::string label = "current";

  [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed >= 0 ? std::uint64_t(seed) : fallback;
  }
  [[nodiscard]] long trials_or(long fallback) const {
    return trials > 0 ? trials : fallback;
  }
};

/// Registers --threads/--trials/--seed/--out/--no-wall-time on the set.
void add_runner_flags(FlagSet& flags, RunnerOptions& options);

/// Splits "50,75,100" into integers. Returns false on any malformed item.
[[nodiscard]] bool parse_int_list(const std::string& text,
                                  std::vector<int>* values);

}  // namespace cfds::runner
