#include "runner/result_sink.h"

namespace cfds::runner {

std::string to_jsonl(const PointRecord& record, bool include_wall_time) {
  char buffer[640];
  int written = std::snprintf(
      buffer, sizeof buffer,
      "{\"experiment\":\"%s\",\"kind\":\"%s\",\"n\":%d,\"p\":%.17g,"
      "\"range\":%.17g,\"trials\":%lld,\"successes\":%lld,\"mean\":%.17g,"
      "\"ci99\":%.17g,\"wilson_lo\":%.17g,\"wilson_hi\":%.17g,"
      "\"seed\":%llu,\"shards\":%ld",
      record.experiment.c_str(), estimator_kind_name(record.kind),
      record.point.n, record.point.p, record.point.range,
      static_cast<long long>(record.trials), static_cast<long long>(record.successes), record.mean,
      record.ci99, record.wilson.lo, record.wilson.hi,
      static_cast<unsigned long long>(record.seed), record.shards);
  std::string line(buffer, written > 0 ? std::size_t(written) : 0);
  if (include_wall_time) {
    std::snprintf(buffer, sizeof buffer, ",\"wall_ms\":%.3f", record.wall_ms);
    line += buffer;
  }
  line += "}";
  return line;
}

std::string to_jsonl(const BenchRecord& record) {
  char buffer[384];
  const int written = std::snprintf(
      buffer, sizeof buffer,
      "{\"bench\":\"%s\",\"metric\":\"%s\",\"n\":%d,\"value\":%.6g,"
      "\"label\":\"%s\"}",
      record.bench.c_str(), record.metric.c_str(), record.n, record.value,
      record.label.c_str());
  return std::string(buffer, written > 0 ? std::size_t(written) : 0);
}

JsonlResultSink::JsonlResultSink(const std::string& path,
                                 bool include_wall_time)
    : include_wall_time_(include_wall_time) {
  if (path == "-") {
    file_ = stdout;
  } else {
    file_ = std::fopen(path.c_str(), "w");
    owns_file_ = true;
  }
}

JsonlResultSink::~JsonlResultSink() {
  if (file_ == nullptr) return;
  if (owns_file_) {
    std::fclose(file_);
  } else {
    std::fflush(file_);
  }
}

void JsonlResultSink::write(const PointRecord& record) {
  if (file_ == nullptr) return;
  const std::string line = to_jsonl(record, include_wall_time_);
  std::lock_guard<std::mutex> lock(mutex_);
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
}

void JsonlResultSink::write(const BenchRecord& record) {
  if (file_ == nullptr) return;
  const std::string line = to_jsonl(record);
  std::lock_guard<std::mutex> lock(mutex_);
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
}

}  // namespace cfds::runner
