#include "runner/thread_pool.h"

#include <utility>

namespace cfds::runner {

unsigned ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> done;
  done.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    done.push_back(submit([&body, i] { body(i); }));
  }
  // Wait first (noexcept), then harvest: `body` and captured state must not
  // go out of scope while any worker still runs an iteration.
  for (std::future<void>& f : done) f.wait();
  for (std::future<void>& f : done) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cfds::runner
