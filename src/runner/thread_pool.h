// Fixed-size worker pool over a FIFO work queue.
//
// The experiment executor shards independent Monte-Carlo trials across these
// workers; nothing about the pool is experiment-specific, so it is equally
// usable for any embarrassingly parallel sweep (see bench_scalability).
//
// Shutdown is graceful by construction: the destructor lets every task that
// was already submitted run to completion before the workers join. Dropping
// queued work on the floor would silently truncate an experiment, which is
// strictly worse than finishing late.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cfds::runner {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned threads = 0);

  /// Drains every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future becomes ready when it has run (and carries
  /// any exception the task threw).
  std::future<void> submit(std::function<void()> task);

  /// Runs body(0) .. body(count-1) across the pool and waits for all of
  /// them. Rethrows the first failure only after every iteration finished,
  /// so `body` never dangles behind a still-running worker.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  [[nodiscard]] unsigned size() const { return unsigned(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static unsigned hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cfds::runner
