#include "runner/experiment.h"

namespace cfds::runner {

const char* estimator_kind_name(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kMcFalseDetection: return "mc_false_detection";
    case EstimatorKind::kMcFalseDetectionOnCh: return "mc_false_detection_on_ch";
    case EstimatorKind::kMcIncompleteness: return "mc_incompleteness";
    case EstimatorKind::kStackFalseDetection: return "stack_false_detection";
    case EstimatorKind::kStackFalseDetectionOnCh:
      return "stack_false_detection_on_ch";
    case EstimatorKind::kStackIncompleteness: return "stack_incompleteness";
  }
  return "unknown";
}

bool is_full_stack(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kStackFalseDetection:
    case EstimatorKind::kStackFalseDetectionOnCh:
    case EstimatorKind::kStackIncompleteness:
      return true;
    default:
      return false;
  }
}

bool parse_estimator_kind(const std::string& text, EstimatorKind* kind) {
  if (text == "fig5") *kind = EstimatorKind::kMcFalseDetection;
  else if (text == "fig6") *kind = EstimatorKind::kMcFalseDetectionOnCh;
  else if (text == "fig7") *kind = EstimatorKind::kMcIncompleteness;
  else if (text == "fig5-stack") *kind = EstimatorKind::kStackFalseDetection;
  else if (text == "fig6-stack") *kind = EstimatorKind::kStackFalseDetectionOnCh;
  else if (text == "fig7-stack") *kind = EstimatorKind::kStackIncompleteness;
  else return false;
  return true;
}

ExperimentSpec ExperimentSpec::for_kind(EstimatorKind kind) {
  ExperimentSpec spec;
  spec.kind = kind;
  spec.name = estimator_kind_name(kind);
  switch (kind) {
    case EstimatorKind::kStackFalseDetection:
    case EstimatorKind::kStackIncompleteness:
      // Figures 5 and 7 condition on the watched node sitting on the cluster
      // circumference; deputies are disabled because a false DCH takeover
      // re-broadcasts the update through a channel the analysis omits.
      spec.pin_edge_node = true;
      spec.pin_deputy_center = false;
      spec.num_deputies = 0;
      break;
    case EstimatorKind::kStackFalseDetectionOnCh:
      // Figure 6 conditions on the primary DCH at the cluster centre (q = 1).
      spec.pin_edge_node = false;
      spec.pin_deputy_center = true;
      spec.num_deputies = 1;
      break;
    default:
      break;  // the kMc* kinds take their conditioning from FastMcConfig
  }
  return spec;
}

std::vector<GridPoint> make_grid(const std::vector<int>& ns,
                                 const std::vector<double>& ps, double range) {
  std::vector<GridPoint> grid;
  grid.reserve(ns.size() * ps.size());
  for (int n : ns) {
    for (double p : ps) grid.push_back(GridPoint{n, p, range});
  }
  return grid;
}

}  // namespace cfds::runner
