#include "runner/cli_args.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace cfds::runner {
namespace {

/// strto* wrapper demanding the whole token parse.
template <typename T, typename Parse>
bool parse_number(const char* text, T* target, Parse parse) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const auto value = parse(text, &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *target = T(value);
  return true;
}

}  // namespace

void FlagSet::add(std::string name, bool takes_value,
                  std::function<bool(const char*)> apply, std::string help) {
  flags_.push_back(
      Flag{std::move(name), takes_value, std::move(apply), std::move(help)});
}

void FlagSet::add_flag(const std::string& name, bool* target,
                       const std::string& help) {
  add(name, false, [target](const char*) {
    *target = true;
    return true;
  }, help);
}

void FlagSet::add_value(const std::string& name, long* target,
                        const std::string& help) {
  add(name, true, [target](const char* v) {
    return parse_number(v, target,
                        [](const char* s, char** e) { return std::strtol(s, e, 10); });
  }, help);
}

void FlagSet::add_value(const std::string& name, int* target,
                        const std::string& help) {
  add(name, true, [target](const char* v) {
    return parse_number(v, target,
                        [](const char* s, char** e) { return std::strtol(s, e, 10); });
  }, help);
}

void FlagSet::add_value(const std::string& name, long long* target,
                        const std::string& help) {
  add(name, true, [target](const char* v) {
    return parse_number(v, target, [](const char* s, char** e) {
      return std::strtoll(s, e, 10);
    });
  }, help);
}

void FlagSet::add_value(const std::string& name, std::uint64_t* target,
                        const std::string& help) {
  add(name, true, [target](const char* v) {
    return parse_number(v, target, [](const char* s, char** e) {
      return std::strtoull(s, e, 10);
    });
  }, help);
}

void FlagSet::add_value(const std::string& name, double* target,
                        const std::string& help) {
  add(name, true, [target](const char* v) {
    return parse_number(v, target,
                        [](const char* s, char** e) { return std::strtod(s, e); });
  }, help);
}

void FlagSet::add_value(const std::string& name, std::string* target,
                        const std::string& help) {
  add(name, true, [target](const char* v) {
    *target = v;
    return true;
  }, help);
}

bool FlagSet::parse(int& argc, char** argv, std::string* error) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const Flag* match = nullptr;
    for (const Flag& flag : flags_) {
      if (flag.name == argv[i]) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    const char* value = nullptr;
    if (match->takes_value) {
      if (i + 1 >= argc) {
        if (error != nullptr) *error = match->name + " needs a value";
        return false;
      }
      value = argv[++i];
    }
    if (!match->apply(value)) {
      if (error != nullptr) {
        *error = "bad value for " + match->name + ": " + value;
      }
      return false;
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return true;
}

void FlagSet::parse_or_exit(int& argc, char** argv) {
  std::string error;
  if (!parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s: %s\n%s", argv[0], error.c_str(),
                 usage().c_str());
    std::exit(2);
  }
}

std::string FlagSet::usage() const {
  std::string text;
  for (const Flag& flag : flags_) {
    char line[160];
    std::snprintf(line, sizeof line, "  %-24s %s\n",
                  (flag.name + (flag.takes_value ? " V" : "")).c_str(),
                  flag.help.c_str());
    text += line;
  }
  return text;
}

void add_runner_flags(FlagSet& flags, RunnerOptions& options) {
  flags.add_value("--threads", &options.threads,
                  "worker threads (0 = one per hardware thread)");
  flags.add_value("--trials", &options.trials,
                  "trials per grid point (0 = per-experiment default)");
  flags.add_value("--seed", &options.seed,
                  "base RNG seed (-1 = per-experiment default)");
  flags.add_value("--out", &options.out,
                  "JSONL results path (\"-\" = stdout)");
  flags.add_flag("--no-wall-time", &options.no_wall_time,
                 "omit wall_ms from JSONL (bit-reproducible output)");
  flags.add_flag("--no-calendar", &options.no_calendar,
                 "use the binary-heap event queue (calendar-queue oracle)");
  flags.add_value("--fault-plan", &options.fault_plan,
                  "FaultPlan JSONL to inject/replay (docs/FAULTS.md)");
  flags.add_value("--label", &options.label,
                  "label stamped on BenchRecord JSONL rows (baselines)");
}

bool parse_int_list(const std::string& text, std::vector<int>* values) {
  values->clear();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    int value = 0;
    if (!parse_number(item.c_str(), &value, [](const char* s, char** e) {
          return std::strtol(s, e, 10);
        })) {
      return false;
    }
    values->push_back(value);
    pos = comma + 1;
  }
  return !values->empty();
}

}  // namespace cfds::runner
