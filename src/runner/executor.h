// Shard scheduling for declarative experiments.
//
// run_experiment splits each grid point's trial budget into fixed-size
// shards, executes the shards on a thread pool, merges the per-shard
// ProportionEstimators (common/statistics) in shard order, and emits one
// record per point — in grid order — to an optional ResultSink.
//
// Determinism contract: each shard seeds its own Rng from
// shard_seed(spec.seed, point_index, shard_index), a pure splitmix64-derived
// counter scheme, and the shard decomposition depends only on
// (spec.trials, spec.shard_trials). Neither the thread count nor the
// scheduling order can therefore affect any estimate; a --threads 8 run is
// bit-identical to --threads 1.

#pragma once

#include <cstdint>
#include <vector>

#include "common/statistics.h"
#include "runner/experiment.h"
#include "runner/result_sink.h"
#include "runner/thread_pool.h"

namespace cfds::runner {

/// Counter-based per-shard seed: a splitmix64 chain over (seed, point,
/// shard). Pure function — no shared RNG state crosses shard boundaries.
[[nodiscard]] std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t point,
                                       std::uint64_t shard);

/// The shard size used when spec.shard_trials == 0: small for the
/// event-driven full-stack kinds (each trial runs a whole FDS execution),
/// large for the cheap semantic Monte-Carlo kinds.
[[nodiscard]] long default_shard_trials(EstimatorKind kind);

struct PointResult {
  GridPoint point;
  ProportionEstimator estimator;
  long shards = 0;
  /// Elapsed milliseconds from experiment start until this point's shards
  /// were all merged (monotonic across points, not a per-point cost).
  double wall_ms = 0.0;
};

/// Runs one shard synchronously. Exposed for tests and for callers that
/// want to embed a shard in their own scheduling.
[[nodiscard]] ProportionEstimator run_shard(const ExperimentSpec& spec,
                                            const GridPoint& point,
                                            long trials, std::uint64_t seed);

/// Executes the full spec on the pool. Results come back in grid order and
/// are written to `sink` (when non-null) in that same order once all shards
/// finish. An empty grid or non-positive trial budget yields no points.
std::vector<PointResult> run_experiment(const ExperimentSpec& spec,
                                        ThreadPool& pool,
                                        ResultSink* sink = nullptr);

}  // namespace cfds::runner
