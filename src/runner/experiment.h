// Declarative experiment specifications for the parallel runner.
//
// An ExperimentSpec names one estimator (a semantic Monte-Carlo measure from
// sim/fast_mc.h or a full protocol-stack measure from sim/single_cluster.h),
// a grid of (N, p, R) points, a trial budget per point, and a base seed. The
// executor (runner/executor.h) shards the trials across a thread pool; the
// spec itself is pure data, so benches, the CLI, and tests all build sweeps
// the same way.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fds/detector.h"

namespace cfds::runner {

/// What each trial samples. The kMc* kinds run the closed-form-adjacent
/// semantic Monte-Carlo estimators; the kStack* kinds run one real
/// event-driven FDS execution per trial (orders of magnitude slower).
enum class EstimatorKind {
  kMcFalseDetection,       ///< Figure 5, sim/fast_mc.h
  kMcFalseDetectionOnCh,   ///< Figure 6, sim/fast_mc.h
  kMcIncompleteness,       ///< Figure 7, sim/fast_mc.h
  kStackFalseDetection,    ///< Figure 5 spot check, sim/single_cluster.h
  kStackFalseDetectionOnCh,///< Figure 6 spot check, sim/single_cluster.h
  kStackIncompleteness,    ///< Figure 7 spot check, sim/single_cluster.h
};

[[nodiscard]] const char* estimator_kind_name(EstimatorKind kind);
[[nodiscard]] bool is_full_stack(EstimatorKind kind);

/// Maps the CLI spellings "fig5"/"fig6"/"fig7" (semantic MC) and
/// "fig5-stack"/"fig6-stack"/"fig7-stack" (full protocol stack) to a kind.
[[nodiscard]] bool parse_estimator_kind(const std::string& text,
                                        EstimatorKind* kind);

/// One point of the parameter grid: cluster population N, loss probability
/// p, transmission range R.
struct GridPoint {
  int n = 100;
  double p = 0.3;
  double range = 100.0;
};

struct ExperimentSpec {
  std::string name;  ///< free-form label, copied into every JSONL record
  EstimatorKind kind = EstimatorKind::kMcFalseDetection;
  std::vector<GridPoint> grid;
  long trials = 100000;    ///< per grid point
  /// Trials per shard (the unit of work one thread executes). 0 picks a
  /// kind-appropriate default. The shard decomposition depends only on
  /// (trials, shard_trials) — never on the thread count — which is what
  /// makes results bit-identical across pool sizes.
  long shard_trials = 0;
  std::uint64_t seed = 1;

  // Protocol knobs forwarded to the estimator configs.
  RuleMode rule_mode = RuleMode::kFull;
  bool peer_forwarding = true;

  // Full-stack topology conditioning (ignored by the kMc* kinds).
  bool pin_edge_node = true;
  bool pin_deputy_center = false;
  std::size_t num_deputies = 1;

  /// Spec with the topology conditioning each figure's analysis assumes
  /// (edge-pinned watched node and no deputies for Figures 5/7, centre-pinned
  /// deputy for Figure 6). Callers override grid/trials/seed afterwards.
  [[nodiscard]] static ExperimentSpec for_kind(EstimatorKind kind);
};

/// Cross product helper: one GridPoint per (n, p) pair, in row-major order
/// (all p for the first n, then the next n, ...).
[[nodiscard]] std::vector<GridPoint> make_grid(const std::vector<int>& ns,
                                               const std::vector<double>& ps,
                                               double range = 100.0);

}  // namespace cfds::runner
