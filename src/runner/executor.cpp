#include "runner/executor.h"

#include <algorithm>
#include <chrono>

#include "common/rng.h"
#include "sim/fast_mc.h"
#include "sim/single_cluster.h"

namespace cfds::runner {

std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t point,
                         std::uint64_t shard) {
  std::uint64_t state = seed;
  std::uint64_t mixed = splitmix64(state);
  state = mixed ^ (point * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  mixed = splitmix64(state);
  state = mixed ^ (shard * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL);
  return splitmix64(state);
}

long default_shard_trials(EstimatorKind kind) {
  return is_full_stack(kind) ? 500 : 50000;
}

ProportionEstimator run_shard(const ExperimentSpec& spec,
                              const GridPoint& point, long trials,
                              std::uint64_t seed) {
  if (!is_full_stack(spec.kind)) {
    FastMcConfig config;
    config.n = point.n;
    config.p = point.p;
    config.range = point.range;
    config.rule_mode = spec.rule_mode;
    config.peer_forwarding = spec.peer_forwarding;
    Rng rng(seed);
    switch (spec.kind) {
      case EstimatorKind::kMcFalseDetection:
        return mc_false_detection(config, trials, rng);
      case EstimatorKind::kMcFalseDetectionOnCh:
        return mc_false_detection_on_ch(config, trials, rng);
      default:
        return mc_incompleteness(config, trials, rng);
    }
  }
  SingleClusterConfig config;
  config.n = point.n;
  config.p = point.p;
  config.range = point.range;
  config.seed = seed;
  config.rule_mode = spec.rule_mode;
  config.peer_forwarding = spec.peer_forwarding;
  config.pin_edge_node = spec.pin_edge_node;
  config.pin_deputy_center = spec.pin_deputy_center;
  config.num_deputies = spec.num_deputies;
  SingleClusterExperiment experiment(config);
  switch (spec.kind) {
    case EstimatorKind::kStackFalseDetection:
      return experiment.run_false_detection(int(trials));
    case EstimatorKind::kStackFalseDetectionOnCh:
      return experiment.run_false_detection_on_ch(int(trials));
    default:
      return experiment.run_incompleteness(int(trials));
  }
}

std::vector<PointResult> run_experiment(const ExperimentSpec& spec,
                                        ThreadPool& pool, ResultSink* sink) {
  std::vector<PointResult> results;
  if (spec.grid.empty() || spec.trials <= 0) return results;

  const long shard_size =
      spec.shard_trials > 0 ? spec.shard_trials : default_shard_trials(spec.kind);
  const long shards_per_point = (spec.trials + shard_size - 1) / shard_size;

  // Measures reporting-only wall time, emitted per point and stripped from
  // the JSONL under --no-wall-time; no simulated behaviour depends on it.
  // LINT-ALLOW(wall-clock): reporting-only timing
  const auto start = std::chrono::steady_clock::now();

  struct PointShards {
    std::vector<ProportionEstimator> parts;
    std::vector<std::future<void>> done;
  };
  std::vector<PointShards> pending(spec.grid.size());
  for (std::size_t i = 0; i < spec.grid.size(); ++i) {
    pending[i].parts.resize(std::size_t(shards_per_point));
    pending[i].done.reserve(std::size_t(shards_per_point));
    for (long s = 0; s < shards_per_point; ++s) {
      const long first = s * shard_size;
      const long count = std::min(shard_size, spec.trials - first);
      const std::uint64_t seed = shard_seed(spec.seed, i, std::uint64_t(s));
      ProportionEstimator* slot = &pending[i].parts[std::size_t(s)];
      pending[i].done.push_back(
          pool.submit([&spec, point = spec.grid[i], count, seed, slot] {
            *slot = run_shard(spec, point, count, seed);
          }));
    }
  }

  // Wait on every shard before the first get(): the shard lambdas reference
  // spec, which must stay alive if an exception unwinds this frame.
  for (PointShards& point : pending) {
    for (std::future<void>& f : point.done) f.wait();
  }
  results.reserve(spec.grid.size());
  for (std::size_t i = 0; i < spec.grid.size(); ++i) {
    PointResult result;
    result.point = spec.grid[i];
    result.shards = shards_per_point;
    for (std::size_t s = 0; s < pending[i].done.size(); ++s) {
      pending[i].done[s].get();
      result.estimator.merge(pending[i].parts[s]);
    }
    result.wall_ms =
        std::chrono::duration<double, std::milli>(
            // LINT-ALLOW(wall-clock): reporting-only, see above
            std::chrono::steady_clock::now() - start)
            .count();
    if (sink != nullptr) {
      PointRecord record;
      record.experiment = spec.name;
      record.kind = spec.kind;
      record.point = result.point;
      record.trials = result.estimator.trials();
      record.successes = result.estimator.successes();
      record.mean = result.estimator.estimate();
      record.ci99 = result.estimator.ci99();
      record.wilson = result.estimator.wilson99();
      record.seed = spec.seed;
      record.shards = result.shards;
      record.wall_ms = result.wall_ms;
      sink->write(record);
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace cfds::runner
