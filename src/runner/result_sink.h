// Thread-safe JSONL emission of per-point experiment results.
//
// One record per grid point, one JSON object per line:
//
//   {"experiment":"fig5_false_detection","kind":"mc_false_detection",
//    "n":50,"p":0.3,"range":100,"trials":400000,"successes":1234,
//    "mean":0.003085,"ci99":...,"wilson_lo":...,"wilson_hi":...,
//    "seed":3861,"shards":8,"wall_ms":12.5}
//
// Every field except wall_ms is a pure function of (spec, merged counts), so
// with wall-time emission disabled the byte stream is identical no matter
// how many threads produced it. The executor writes records in grid order
// from one thread; the sink still locks so several experiments may share it.

#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/statistics.h"
#include "runner/experiment.h"

namespace cfds::runner {

struct PointRecord {
  std::string experiment;
  EstimatorKind kind = EstimatorKind::kMcFalseDetection;
  GridPoint point;
  std::int64_t trials = 0;
  std::int64_t successes = 0;
  double mean = 0.0;
  double ci99 = 0.0;
  ProportionInterval wilson;
  std::uint64_t seed = 0;
  long shards = 0;
  double wall_ms = 0.0;
};

/// Serializes one record as a single JSON line (no trailing newline).
/// Doubles are printed with %.17g, enough to round-trip the exact bits.
[[nodiscard]] std::string to_jsonl(const PointRecord& record,
                                   bool include_wall_time);

/// One microbenchmark measurement (bench_kernel, bench_scalability):
///
///   {"bench":"graph_build","metric":"ms","n":2000,"value":3.1,
///    "label":"current"}
///
/// `label` distinguishes committed baselines ("pre_pr4", "post_pr5") from
/// fresh runs ("current") in BENCH_kernel.json-style trajectory files; set
/// it with the uniform --label flag.
struct BenchRecord {
  std::string bench;
  std::string metric;
  int n = 0;  ///< problem size; 0 when the metric has none
  double value = 0.0;
  std::string label = "current";
};

[[nodiscard]] std::string to_jsonl(const BenchRecord& record);

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void write(const PointRecord& record) = 0;
};

/// Appends JSONL records to a file; the path "-" means stdout. Pass
/// include_wall_time=false for bit-reproducible output (determinism tests,
/// golden files).
class JsonlResultSink : public ResultSink {
 public:
  explicit JsonlResultSink(const std::string& path,
                           bool include_wall_time = true);
  ~JsonlResultSink() override;

  JsonlResultSink(const JsonlResultSink&) = delete;
  JsonlResultSink& operator=(const JsonlResultSink&) = delete;

  /// False if the output file could not be opened (records are dropped).
  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  void write(const PointRecord& record) override;
  /// Appends one benchmark measurement line (perf trajectories).
  void write(const BenchRecord& record);

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  bool include_wall_time_ = true;
};

/// In-memory sink for tests.
class CollectingSink : public ResultSink {
 public:
  void write(const PointRecord& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
  }

  [[nodiscard]] const std::vector<PointRecord>& records() const {
    return records_;
  }

 private:
  std::mutex mutex_;
  std::vector<PointRecord> records_;
};

}  // namespace cfds::runner
