// 2-D geometry for unit-disk wireless models.
//
// The paper's analysis (Section 5) hinges on areas of intersecting disks:
// a cluster is a unit disk of radius R around the CH, and the number of
// in-cluster neighbours of a node v follows a Binomial whose success
// probability is An/Au, where An is the lens between the cluster disk and
// v's own transmission disk. This header provides exact lens areas plus an
// adaptive Simpson integrator used for the DCH-reachability model, where
// the relevant region is a three-disk intersection with no simple closed form.

#pragma once

#include <cmath>
#include <functional>

namespace cfds {

/// A point or vector in the plane, in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return {k * a.x, k * a.y}; }
  friend constexpr bool operator==(Vec2, Vec2) = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
};

/// Euclidean distance between two points.
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// True if |a-b| <= range (closed ball, matching the paper's "distance from v
/// less than or equal to R" definition of a one-hop neighbour).
[[nodiscard]] inline bool within_range(Vec2 a, Vec2 b, double range) {
  return distance(a, b) <= range;
}

/// A disk (centre, radius). Radius must be >= 0.
struct Disk {
  Vec2 center;
  double radius = 0.0;

  [[nodiscard]] bool contains(Vec2 p) const {
    return within_range(center, p, radius);
  }
  [[nodiscard]] double area() const { return M_PI * radius * radius; }
};

/// Exact area of the intersection (lens) of two disks.
///
/// Handles the degenerate cases (disjoint, nested) exactly. For two disks of
/// equal radius R whose centres are R apart — the paper's worst-case node on
/// the cluster circumference — this evaluates to 2*pi*R^2/3 - sqrt(3)/2*R^2.
[[nodiscard]] double lens_area(const Disk& a, const Disk& b);

/// The paper's An: the in-cluster neighbourhood area of a node sitting on the
/// circumference of a cluster of radius r (both disks have radius r, centres
/// r apart). Equals lens_area for that configuration; kept as a named
/// function because the analysis module uses it directly.
[[nodiscard]] double worst_case_overlap_area(double r);

/// The paper's ratio q = An/Au for the worst-case (circumference) node:
/// 2/3 - sqrt(3)/(2*pi), independent of r.
[[nodiscard]] double worst_case_overlap_fraction();

/// Area of the intersection of three disks, via adaptive 2-D integration on
/// the bounding box of the smallest disk. Accurate to ~1e-6 relative error;
/// used only by the DCH-reachability study where no closed form exists.
[[nodiscard]] double triple_intersection_area(const Disk& a, const Disk& b,
                                              const Disk& c);

/// Adaptive Simpson quadrature of f over [lo, hi] with absolute tolerance.
[[nodiscard]] double integrate(const std::function<double(double)>& f, double lo,
                               double hi, double tolerance = 1e-10);

}  // namespace cfds
