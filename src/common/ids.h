// Strongly-typed identifiers used throughout the CFDS library.
//
// The paper assumes globally unique node IDs (NIDs); the clustering
// algorithm elects the lowest NID in a one-hop neighbourhood as clusterhead,
// and peer-forwarding waiting periods are derived from the NID, so ordering
// and hashing must be cheap and total. A strong typedef prevents the classic
// bug of passing a cluster id where a node id is expected.

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace cfds {

/// Tag-discriminated integral id. Comparable, hashable, streamable.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  /// Underlying integral value.
  [[nodiscard]] constexpr Rep value() const { return value_; }

  /// Sentinel meaning "no such entity".
  [[nodiscard]] static constexpr StrongId invalid() {
    return StrongId{std::numeric_limits<Rep>::max()};
  }

  [[nodiscard]] constexpr bool is_valid() const {
    return value_ != std::numeric_limits<Rep>::max();
  }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.is_valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  Rep value_ = std::numeric_limits<Rep>::max();
};

struct NodeIdTag {};
struct ClusterIdTag {};
struct ReportIdTag {};

/// Globally unique node identifier (the paper's NID).
using NodeId = StrongId<NodeIdTag>;

/// Cluster identifier. By convention a cluster is named after the NID of the
/// clusterhead that founded it.
using ClusterId = StrongId<ClusterIdTag>;

/// Identifier for a failure report traveling across the backbone
/// (used for dedup during inter-cluster flooding).
using ReportId = StrongId<ReportIdTag, std::uint64_t>;

}  // namespace cfds

namespace std {
template <typename Tag, typename Rep>
struct hash<cfds::StrongId<Tag, Rep>> {
  size_t operator()(cfds::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
