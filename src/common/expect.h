// Lightweight precondition/invariant checking.
//
// CFDS_EXPECT aborts with a diagnostic on violation in all build types;
// protocol-state invariants are cheap relative to simulation work, and a
// silently corrupted simulation is worse than a crash.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace cfds::detail {
[[noreturn]] inline void expect_failed(const char* expr, const char* file,
                                       int line, const char* msg) {
  std::fprintf(stderr, "CFDS_EXPECT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}
}  // namespace cfds::detail

#define CFDS_EXPECT(expr, msg)                                      \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::cfds::detail::expect_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                               \
  } while (false)
