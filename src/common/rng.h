// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256++ seeded via splitmix64: fast, high quality, and reproducible
// across platforms (unlike std::default_random_engine). Every stochastic
// component of the simulator draws from an Rng it is handed, so whole
// experiments replay bit-identically from a scenario seed.

#pragma once

#include <array>
#include <cstdint>

namespace cfds {

/// splitmix64 step; used for seeding and for cheap stateless hashing
/// (e.g. deriving per-node waiting periods from NIDs).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0xC0FFEE) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return double((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = __uint128_t((*this)()) * n;
    auto lo = std::uint64_t(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        m = __uint128_t((*this)()) * n;
        lo = std::uint64_t(m);
      }
    }
    return std::uint64_t(m >> 64);
  }

  /// Bernoulli trial with success probability prob (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double prob) { return uniform() < prob; }

  /// Derives an independent child generator; used to give each node its own
  /// stream so that adding a node does not perturb others' draws.
  [[nodiscard]] Rng fork() { return Rng((*this)()); }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cfds
