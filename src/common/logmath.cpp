#include "common/logmath.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cfds {

double log_factorial(std::int64_t n) {
  return std::lgamma(double(n) + 1.0);
}

double log_binomial_coefficient(std::int64_t n, std::int64_t k) {
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double safe_log(double p) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(p);
}

double log_sum_exp(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(std::min(a, b) - m));
}

double log_sum_exp(std::span<const double> terms) {
  double m = -std::numeric_limits<double>::infinity();
  for (double t : terms) m = std::max(m, t);
  if (std::isinf(m) && m < 0) return m;
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - m);
  return m + std::log(sum);
}

double log_binomial_pmf(std::int64_t n, std::int64_t k, double p) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  // Handle the endpoint probabilities exactly (0^0 == 1 convention).
  double term = log_binomial_coefficient(n, k);
  if (k > 0) term += double(k) * safe_log(p);
  if (n - k > 0) term += double(n - k) * std::log1p(-p);
  return term;
}

double log1m_exp(double x) {
  // Mächler's algorithm: branch at log(1/2) for accuracy.
  if (x >= 0.0) return -std::numeric_limits<double>::infinity();
  if (x > -M_LN2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double binomial_ci99_halfwidth(std::int64_t successes, std::int64_t trials) {
  if (trials <= 0) return std::numeric_limits<double>::infinity();
  const double z = 2.5758;  // 99% two-sided normal quantile
  const double phat = double(successes) / double(trials);
  const double normal =
      z * std::sqrt(phat * (1.0 - phat) / double(trials));
  // Near-degenerate counts break the normal approximation; fall back to the
  // rule-of-three bound so a zero-success estimate still brackets small
  // true probabilities.
  return std::max(normal, 5.0 / double(trials));
}

}  // namespace cfds
