// Simulation time: a signed 64-bit count of microseconds.
//
// The paper's protocol timing is expressed in units of Thop (the one-hop
// delivery bound) and the heartbeat interval phi; both map naturally onto an
// integral microsecond clock, which keeps event ordering exact (no float
// comparison hazards in the event queue).

#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace cfds {

/// A point in simulated time or a duration, in microseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) {
    return SimTime{us};
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) {
    return SimTime{ms * 1000};
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_seconds() const { return double(us_) / 1e6; }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.us_ + b.us_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.us_ - b.us_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.us_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  constexpr SimTime& operator+=(SimTime b) {
    us_ += b.us_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.us_ << "us";
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace cfds
