// Small online statistics toolkit used by the simulation harness and the
// Monte-Carlo cross-check benches.

#pragma once

#include <cstdint>
#include <vector>

namespace cfds {

/// Welford online accumulator for mean and variance.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two observations).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Closed interval for a binomial proportion.
struct ProportionInterval {
  double lo = 0.0;
  double hi = 1.0;
};

/// Wilson score interval at 99% confidence. Unlike the normal approximation
/// it stays inside [0, 1] and behaves sensibly at zero successes, which
/// matters for the runner's JSONL records on un-sampleable grid points.
[[nodiscard]] ProportionInterval wilson_ci99(std::int64_t successes,
                                             std::int64_t trials);

/// Counter for Bernoulli outcomes with confidence-interval support.
class ProportionEstimator {
 public:
  /// Records one trial.
  void add(bool success);

  /// Folds another estimator's counts into this one. Count addition
  /// commutes, so merging per-shard estimators in any order yields the same
  /// totals — the property the parallel runner's determinism rests on.
  void merge(const ProportionEstimator& other);

  /// Estimator pre-loaded with counts (deserialization and tests).
  [[nodiscard]] static ProportionEstimator from_counts(std::int64_t successes,
                                                       std::int64_t trials);

  [[nodiscard]] std::int64_t trials() const { return trials_; }
  [[nodiscard]] std::int64_t successes() const { return successes_; }
  [[nodiscard]] double estimate() const;
  /// Half-width of the 99% normal-approximation CI.
  [[nodiscard]] double ci99() const;
  /// Wilson score interval at 99% confidence.
  [[nodiscard]] ProportionInterval wilson99() const;
  /// True if `value` lies within the 99% CI of the estimate.
  [[nodiscard]] bool consistent_with(double value) const;

 private:
  std::int64_t trials_ = 0;
  std::int64_t successes_ = 0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for detection-latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::int64_t>& bins() const { return bins_; }
  /// Value at the given quantile in [0, 1]; linear within a bin's range.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> bins_;
  std::int64_t total_ = 0;
};

}  // namespace cfds
