// Flat (sorted-vector) set and map containers for protocol round state.
//
// The FDS and formation agents accumulate small per-round collections —
// heartbeat senders heard, digests received, claims overheard — that are
// filled, queried, and cleared once per execution. Node-based std::set/
// std::map pay one heap allocation per element per round; these flat
// containers keep one contiguous buffer that clear() retains, so steady-state
// rounds allocate nothing. Iteration order is ascending by key, matching the
// std::set/std::map ordering the detection rules and digest emission relied
// on — swapping the containers cannot reorder any message content or event.
//
// Deliberately minimal: only the operations the protocol layers use.
// Insertion is O(size) worst case (memmove), which beats node allocation for
// the cluster-sized (~tens of elements) collections involved.

#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

#include "common/expect.h"

namespace cfds {

/// Sorted-unique vector with a set-like interface.
template <typename T>
class FlatSet {
 public:
  using const_iterator = typename std::vector<T>::const_iterator;
  using value_type = T;

  FlatSet() = default;
  FlatSet(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  FlatSet& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  /// Inserts `value`; returns true if it was not already present.
  bool insert(const T& value) {
    const auto it = std::lower_bound(items_.begin(), items_.end(), value);
    if (it != items_.end() && *it == value) return false;
    items_.insert(it, value);
    return true;
  }

  /// Replaces the contents with the (possibly unsorted, possibly duplicated)
  /// range [first, last). Reuses the existing buffer.
  template <typename It>
  void assign(It first, It last) {
    items_.assign(first, last);
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  [[nodiscard]] bool contains(const T& value) const {
    return std::binary_search(items_.begin(), items_.end(), value);
  }

  /// Removes `value`; returns true if it was present.
  bool erase(const T& value) {
    const auto it = std::lower_bound(items_.begin(), items_.end(), value);
    if (it == items_.end() || *it != value) return false;
    items_.erase(it);
    return true;
  }

  /// Drops all elements but keeps the allocated buffer for the next round.
  void clear() { items_.clear(); }

  /// Pre-sizes the backing buffer (std::vector::reserve semantics).
  void reserve(std::size_t n) { items_.reserve(n); }
  [[nodiscard]] std::size_t capacity() const { return items_.capacity(); }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }

  friend bool operator==(const FlatSet&, const FlatSet&) = default;

 private:
  std::vector<T> items_;
};

/// Sorted-by-key vector of pairs with a map-like interface.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  /// Returns the value for `key`, default-constructing it if absent.
  V& operator[](const K& key) {
    const auto it = lower_bound(key);
    if (it != items_.end() && it->first == key) return it->second;
    return items_.insert(it, value_type{key, V{}})->second;
  }

  [[nodiscard]] const V& at(const K& key) const {
    const auto it = find(key);
    CFDS_EXPECT(it != end(), "FlatMap::at: key not present");
    return it->second;
  }

  [[nodiscard]] bool contains(const K& key) const {
    const auto it = lower_bound(key);
    return it != items_.end() && it->first == key;
  }

  [[nodiscard]] iterator find(const K& key) {
    const auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }
  [[nodiscard]] const_iterator find(const K& key) const {
    const auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }

  /// Removes the entry for `key`; returns true if it was present.
  bool erase(const K& key) {
    const auto it = lower_bound(key);
    if (it == items_.end() || it->first != key) return false;
    items_.erase(it);
    return true;
  }

  /// Drops all entries but keeps the entry buffer for the next round.
  void clear() { items_.clear(); }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] iterator begin() { return items_.begin(); }
  [[nodiscard]] iterator end() { return items_.end(); }
  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }

 private:
  [[nodiscard]] iterator lower_bound(const K& key) {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& item, const K& k) { return item.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const K& key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& item, const K& k) { return item.first < k; });
  }

  std::vector<value_type> items_;
};

}  // namespace cfds
