// Numerically stable combinatorics in log space.
//
// The paper's Figures 5-7 plot probabilities down to 1e-120, far below
// double underflow when computed naively as products of binomial terms.
// All analytic measures are therefore evaluated as log-probabilities and
// combined with log-sum-exp; callers exponentiate only for display.

#pragma once

#include <cstdint>
#include <span>

namespace cfds {

/// Natural log of n! via lgamma. Exact for the integer arguments used here.
[[nodiscard]] double log_factorial(std::int64_t n);

/// Natural log of the binomial coefficient C(n, k). Requires 0 <= k <= n.
[[nodiscard]] double log_binomial_coefficient(std::int64_t n, std::int64_t k);

/// log(p) that maps p == 0 to -infinity without raising FE_DIVBYZERO noise.
[[nodiscard]] double safe_log(double p);

/// log(exp(a) + exp(b)) without overflow/underflow.
[[nodiscard]] double log_sum_exp(double a, double b);

/// log(sum_i exp(terms[i])); returns -infinity for an empty span.
[[nodiscard]] double log_sum_exp(std::span<const double> terms);

/// Log of the Binomial(n, p) pmf at k.
[[nodiscard]] double log_binomial_pmf(std::int64_t n, std::int64_t k, double p);

/// log1p(-exp(x)) for x <= 0: log(1 - exp(x)) evaluated stably.
/// Used for complements of tiny probabilities, e.g. log(1 - P) where
/// P = exp(x) may be 1e-120.
[[nodiscard]] double log1m_exp(double x);

/// Two-sided (Wilson) confidence interval half-width helper:
/// the normal-approximation 99% CI half-width for a Binomial proportion with
/// `successes` out of `trials`. Used by Monte-Carlo vs analytic cross-checks.
[[nodiscard]] double binomial_ci99_halfwidth(std::int64_t successes,
                                             std::int64_t trials);

}  // namespace cfds
