#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/logmath.h"

namespace cfds {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ > 0 ? stddev() / std::sqrt(double(n_)) : 0.0;
}

ProportionInterval wilson_ci99(std::int64_t successes, std::int64_t trials) {
  if (trials <= 0) return {0.0, 1.0};
  constexpr double z = 2.5758293035489004;  // Phi^-1(0.995)
  const double n = double(trials);
  const double phat = double(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (phat + z2 / (2.0 * n)) / denom;
  const double halfwidth =
      (z / denom) * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, centre - halfwidth), std::min(1.0, centre + halfwidth)};
}

void ProportionEstimator::add(bool success) {
  ++trials_;
  if (success) ++successes_;
}

void ProportionEstimator::merge(const ProportionEstimator& other) {
  trials_ += other.trials_;
  successes_ += other.successes_;
}

ProportionEstimator ProportionEstimator::from_counts(std::int64_t successes,
                                                     std::int64_t trials) {
  ProportionEstimator estimator;
  estimator.successes_ = successes;
  estimator.trials_ = trials;
  return estimator;
}

double ProportionEstimator::estimate() const {
  return trials_ > 0 ? double(successes_) / double(trials_) : 0.0;
}

double ProportionEstimator::ci99() const {
  return binomial_ci99_halfwidth(successes_, trials_);
}

ProportionInterval ProportionEstimator::wilson99() const {
  return wilson_ci99(successes_, trials_);
}

bool ProportionEstimator::consistent_with(double value) const {
  return std::abs(estimate() - value) <= ci99();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = std::int64_t(t * double(bins_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, std::int64_t(bins_.size()) - 1);
  ++bins_[std::size_t(idx)];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const double target = q * double(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cumulative + double(bins_[i]);
    if (next >= target) {
      const double within =
          bins_[i] > 0 ? (target - cumulative) / double(bins_[i]) : 0.0;
      const double bin_width = (hi_ - lo_) / double(bins_.size());
      return lo_ + (double(i) + within) * bin_width;
    }
    cumulative = next;
  }
  return hi_;
}

}  // namespace cfds
