#include "common/geometry.h"

#include <algorithm>
#include <cmath>

namespace cfds {
namespace {

double simpson(double lo, double hi, double flo, double fmid, double fhi) {
  return (hi - lo) / 6.0 * (flo + 4.0 * fmid + fhi);
}

double adaptive(const std::function<double(double)>& f, double lo, double hi,
                double flo, double fmid, double fhi, double whole, double tol,
                int depth) {
  const double mid = 0.5 * (lo + hi);
  const double lmid = 0.5 * (lo + mid);
  const double rmid = 0.5 * (mid + hi);
  const double flmid = f(lmid);
  const double frmid = f(rmid);
  const double left = simpson(lo, mid, flo, flmid, fmid);
  const double right = simpson(mid, hi, fmid, frmid, fhi);
  if (depth <= 0 || std::abs(left + right - whole) <= 15.0 * tol) {
    return left + right + (left + right - whole) / 15.0;
  }
  return adaptive(f, lo, mid, flo, flmid, fmid, left, tol / 2, depth - 1) +
         adaptive(f, mid, hi, fmid, frmid, fhi, right, tol / 2, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double lo, double hi,
                 double tolerance) {
  if (lo == hi) return 0.0;
  const double mid = 0.5 * (lo + hi);
  const double flo = f(lo);
  const double fmid = f(mid);
  const double fhi = f(hi);
  const double whole = simpson(lo, hi, flo, fmid, fhi);
  return adaptive(f, lo, hi, flo, fmid, fhi, whole, tolerance, 48);
}

double lens_area(const Disk& a, const Disk& b) {
  const double d = distance(a.center, b.center);
  const double r1 = a.radius;
  const double r2 = b.radius;
  if (d >= r1 + r2) return 0.0;                       // disjoint
  if (d <= std::abs(r1 - r2)) {                       // nested
    const double r = std::min(r1, r2);
    return M_PI * r * r;
  }
  // Standard two-circle lens: sum of two circular segments.
  const double alpha = std::acos(std::clamp(
      (d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1), -1.0, 1.0));
  const double beta = std::acos(std::clamp(
      (d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2), -1.0, 1.0));
  return r1 * r1 * (alpha - std::sin(alpha) * std::cos(alpha)) +
         r2 * r2 * (beta - std::sin(beta) * std::cos(beta));
}

double worst_case_overlap_area(double r) {
  return lens_area(Disk{{0.0, 0.0}, r}, Disk{{r, 0.0}, r});
}

double worst_case_overlap_fraction() {
  return 2.0 / 3.0 - std::sqrt(3.0) / (2.0 * M_PI);
}

double triple_intersection_area(const Disk& a, const Disk& b, const Disk& c) {
  // Integrate the chord length of (b ∩ c) inside a, sweeping x across a's
  // horizontal extent. For each x we intersect the three disks' y-intervals.
  const Disk* smallest = &a;
  for (const Disk* d : {&b, &c}) {
    if (d->radius < smallest->radius) smallest = d;
  }
  const double x_lo = smallest->center.x - smallest->radius;
  const double x_hi = smallest->center.x + smallest->radius;

  auto y_interval = [](const Disk& d, double x, double& lo, double& hi) {
    const double dx = x - d.center.x;
    const double h2 = d.radius * d.radius - dx * dx;
    if (h2 <= 0.0) {
      lo = 1.0;
      hi = 0.0;  // empty
      return;
    }
    const double h = std::sqrt(h2);
    lo = d.center.y - h;
    hi = d.center.y + h;
  };

  auto chord = [&](double x) {
    double lo = -1e300, hi = 1e300;
    for (const Disk* d : {&a, &b, &c}) {
      double dlo = 0.0, dhi = 0.0;
      y_interval(*d, x, dlo, dhi);
      lo = std::max(lo, dlo);
      hi = std::min(hi, dhi);
      if (lo >= hi) return 0.0;
    }
    return hi - lo;
  };

  return integrate(chord, x_lo, x_hi, 1e-8);
}

}  // namespace cfds
