// Inter-cluster failure-report forwarding (Section 4.3).
//
// When a CH emits a health-status update carrying news (a valid report id),
// the report must cross the backbone to every cluster. Per gateway link
// between clusters A and B:
//
//   GW (rank 0)    forwards the update as a FailureReport to the other CH
//                  immediately, then listens (n+1)*2*Thop for the implicit
//                  acknowledgement — an emission by the destination CH whose
//                  `acks` list names the report — and re-forwards on silence;
//   BGW (rank k)   arms a timer k*2*Thop on overhearing the update; if no
//                  implicit ack has been overheard by expiry it forwards the
//                  report itself, then waits (n+1)*2*Thop and releases on ack;
//   sending CH     watches 2*Thop for *some* forward of its report on each
//                  link (the forward doubles as the GW-side implicit ack of
//                  Figure 3) and retransmits the update, addressed to the
//                  link's GW, on silence.
//
// A destination CH that receives a report answers by emitting a relay update
// (FdsAgent::broadcast_relay): if the report carried news the relay informs
// the local cluster and — carrying a fresh report id — triggers further
// forwarding on the CH's other links; either way its `acks` list names the
// incoming report, closing the loop without a dedicated acknowledgement
// frame. Relays record the cluster they learned from, and gateways on that
// link suppress forwarding straight back (flood damping).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/membership.h"
#include "common/ids.h"
#include "event/simulator.h"
#include "fds/agent.h"
#include "intercluster/messages.h"
#include "net/network.h"
#include "transport/sim_transport.h"
#include "transport/transport.h"

namespace cfds {

/// Acknowledgement scheme. kImplicit is the paper's contribution;
/// kExplicit is the two-acknowledgements-per-hop strawman it replaces
/// ("which is not acceptable due to energy limitations").
enum class AckMode { kImplicit, kExplicit };

struct ForwarderConfig {
  /// Re-sends of the update by the CH toward an unresponsive gateway.
  int max_ch_retransmits = 2;
  /// Re-forwards by a GW/BGW that never hears the implicit acknowledgement.
  int max_gw_retries = 2;
  /// Backup-gateway assistance (ablation knob).
  bool bgw_assist = true;
  AckMode ack_mode = AckMode::kImplicit;
};

/// Aggregate traffic counters for the forwarding layer.
struct ForwarderStats {
  std::uint64_t reports_forwarded = 0;   ///< GW first attempts
  std::uint64_t gw_retries = 0;          ///< re-forwards after ack silence
  std::uint64_t bgw_assists = 0;         ///< forwards performed by BGWs
  std::uint64_t ch_retransmissions = 0;  ///< update re-sends by the CH
  std::uint64_t reports_received = 0;    ///< reports accepted by a CH
  std::uint64_t explicit_acks = 0;       ///< kExplicit mode only
};

class ForwarderService;

/// Per-node participant in inter-cluster forwarding. Only nodes whose
/// current view gives them a CH, GW, or BGW role ever act.
class ForwarderAgent {
 public:
  /// Frames and timers flow only through `transport` and the service's
  /// TimerService; `node` supplies identity and liveness.
  ForwarderAgent(Node& node, MembershipView& view, FdsAgent& fds,
                 Transport& transport, ForwarderService& service);

  [[nodiscard]] NodeId id() const { return node_.id(); }

  /// Invoked (via FdsHooks) when this node, as CH, emits an update.
  void on_own_update_sent(
      const std::shared_ptr<const HealthUpdatePayload>& update);

 private:
  void on_frame(const Reception& reception);
  void on_update_overheard(
      const std::shared_ptr<const HealthUpdatePayload>& update);
  void on_report(const FailureReportPayload& report);

  /// Considers acting on an update emitted by the cluster on one side of
  /// `link`, with this node holding `rank` on the link; `dest_cluster` /
  /// `dest_ch` name the other side.
  void consider_link(const std::shared_ptr<const HealthUpdatePayload>& update,
                     std::size_t rank, std::size_t n_backups,
                     ClusterId dest_cluster, NodeId dest_ch);

  /// Sends the report for `update` toward `dest_ch` and arms the ack watch.
  void forward_across(const std::shared_ptr<const HealthUpdatePayload>& update,
                      ClusterId dest_cluster, NodeId dest_ch,
                      std::size_t my_rank, std::size_t n_backups,
                      int attempts_left);
  void arm_ch_watch(const std::shared_ptr<const HealthUpdatePayload>& update,
                    ClusterId dest_cluster, int attempts_left);

  [[nodiscard]] bool acked(ReportId report, ClusterId by) const;

  Node& node_;
  MembershipView& view_;
  FdsAgent& fds_;
  Transport& transport_;
  ForwarderService& service_;

  /// (report, acking cluster) pairs collected from overheard emissions.
  std::set<std::pair<ReportId, ClusterId>> acks_seen_;
  /// (report, destination cluster) pairs for which some forward was seen —
  /// the CH-side implicit acknowledgement of Figure 3.
  std::set<std::pair<ReportId, ClusterId>> forwards_seen_;
  /// Reports this node already forwarded per destination (dedup for BGWs
  /// triggered by both the update and a retransmission).
  std::set<std::pair<ReportId, ClusterId>> armed_;
};

/// Owns the per-node forwarder agents and the layer's counters.
class ForwarderService {
 public:
  /// Wires itself into `fds.hooks().on_update_sent` (chaining any hook that
  /// was installed before). `views` is indexed by NID value, as in FdsService.
  ForwarderService(Network& network, FdsService& fds,
                   std::vector<MembershipView*> views, ForwarderConfig config);

  /// Wires a node added after construction (must already have an FdsAgent).
  void adopt_node(Node& node, MembershipView& view, FdsAgent& fds);

  [[nodiscard]] const ForwarderStats& stats() const { return stats_; }
  [[nodiscard]] ForwarderStats& stats() { return stats_; }
  [[nodiscard]] const ForwarderConfig& config() const { return config_; }
  [[nodiscard]] Simulator& simulator() { return network_.simulator(); }
  /// The clock/timer source the agents schedule their watches on.
  [[nodiscard]] TimerService& timers() { return timers_; }
  [[nodiscard]] SimTime t_hop() const {
    return network_.channel().config().t_hop;
  }

 private:
  void install_hook(FdsService& fds);

  Network& network_;
  ForwarderConfig config_;
  ForwarderStats stats_;
  SimTimerService timers_;
  /// One SimTransport per agent (pointer-stable; agents keep references).
  std::vector<std::unique_ptr<SimTransport>> transports_;
  std::vector<std::unique_ptr<ForwarderAgent>> agents_;
};

}  // namespace cfds
