// Frame payloads for inter-cluster failure-report forwarding (Section 4.3).

#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "radio/payload.h"

namespace cfds {

/// A failure report forwarded across a cluster boundary by a GW or BGW.
/// Carries the cumulative failure set ("no news is good news" — reports are
/// emitted only when there IS news, and aggregate older news for clusters
/// that missed earlier reports).
struct FailureReportPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kFailureReport;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  FailureReportPayload() : Payload(kTag) {}

  /// Id of the health-status update being forwarded; the implicit
  /// acknowledgement is any emission by the destination CH whose `acks`
  /// list contains this id.
  ReportId report;
  /// Cluster whose CH emitted the update being forwarded (one hop back).
  ClusterId from_cluster;
  NodeId forwarder;
  /// The destination clusterhead.
  NodeId to_ch;
  std::uint64_t epoch = 0;
  /// Newly detected plus previously known failed NIDs.
  std::vector<NodeId> failed;

  [[nodiscard]] std::string_view kind() const override { return "report"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 29 + 4 * failed.size();
  }
};

/// Explicit acknowledgement — only used by the `kExplicit` ablation mode,
/// the costly scheme the paper's implicit acknowledgements replace.
struct ExplicitAckPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kExplicitAck;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  ExplicitAckPayload() : Payload(kTag) {}

  ReportId report;
  NodeId sender;
  NodeId to;
  /// For a receipt ack: the acknowledging CH's cluster. For a forward ack
  /// (GW promising the CH it will forward): the destination cluster covered.
  ClusterId cluster;
  /// True: the destination CH confirms receipt. False: the GW confirms it
  /// took responsibility for forwarding.
  bool receipt = true;

  [[nodiscard]] std::string_view kind() const override { return "eack"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 17; }
};

}  // namespace cfds
