// Backbone routing toward a sink cluster.
//
// The paper distinguishes "across-cluster forwarding" (one hop between
// neighbouring clusters) from "inter-cluster forwarding", "in which the
// source and destination are not necessarily neighboring clusters"
// (Section 2.3), and assumes "the presence of a routing protocol at the
// inter-cluster communication layer" (Section 2.4). Failure reports use
// backbone flooding (robustness first); for periodic bulk data — cluster
// aggregates bound for a base station — directed next-hop routing over the
// same gateway links costs one path instead of a flood.
//
// The table is computed from global knowledge (the directory), matching the
// paper's stance that any routing algorithm can be plugged in; a
// distributed distance-vector construction would converge to the same
// next-hops.

#pragma once

#include <cstddef>
#include <map>
#include <optional>

#include "cluster/directory.h"
#include "common/ids.h"

namespace cfds {

class BackboneRouting {
 public:
  /// BFS over the directory's gateway-link graph from `sink`: every cluster
  /// gets its next hop toward the sink (clusters with no path get none).
  static BackboneRouting toward(const ClusterDirectory& directory,
                                ClusterId sink);

  [[nodiscard]] ClusterId sink() const { return sink_; }

  /// The neighbouring cluster a report from `from` should cross into next,
  /// or nullopt if `from` is the sink or unreachable.
  [[nodiscard]] std::optional<ClusterId> next_hop(ClusterId from) const;

  /// Backbone hops from `from` to the sink; SIZE_MAX if unreachable.
  [[nodiscard]] std::size_t hops_from(ClusterId from) const;

  [[nodiscard]] bool reachable(ClusterId from) const {
    return from == sink_ || next_hop(from).has_value();
  }

 private:
  ClusterId sink_;
  std::map<ClusterId, ClusterId> next_hop_;
  std::map<ClusterId, std::size_t> hops_;
};

}  // namespace cfds
