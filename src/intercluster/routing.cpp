#include "intercluster/routing.h"

#include <limits>
#include <queue>

namespace cfds {

BackboneRouting BackboneRouting::toward(const ClusterDirectory& directory,
                                        ClusterId sink) {
  BackboneRouting routing;
  routing.sink_ = sink;
  routing.hops_[sink] = 0;

  std::queue<ClusterId> frontier;
  frontier.push(sink);
  // Adjacency from the directory's (symmetric) link tables.
  auto neighbors_of = [&](ClusterId id) {
    std::vector<ClusterId> out;
    for (const ClusterView& cluster : directory.clusters()) {
      if (cluster.id != id) continue;
      for (const GatewayLink& link : cluster.links) {
        out.push_back(link.neighbor_cluster);
      }
    }
    return out;
  };

  while (!frontier.empty()) {
    const ClusterId current = frontier.front();
    frontier.pop();
    const std::size_t d = routing.hops_.at(current);
    for (ClusterId neighbor : neighbors_of(current)) {
      if (routing.hops_.contains(neighbor)) continue;
      routing.hops_[neighbor] = d + 1;
      routing.next_hop_[neighbor] = current;
      frontier.push(neighbor);
    }
  }
  return routing;
}

std::optional<ClusterId> BackboneRouting::next_hop(ClusterId from) const {
  const auto it = next_hop_.find(from);
  if (it == next_hop_.end()) return std::nullopt;
  return it->second;
}

std::size_t BackboneRouting::hops_from(ClusterId from) const {
  const auto it = hops_.find(from);
  return it == hops_.end() ? std::numeric_limits<std::size_t>::max()
                           : it->second;
}

}  // namespace cfds
