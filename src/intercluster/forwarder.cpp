#include "intercluster/forwarder.h"

#include <algorithm>

#include "common/expect.h"

namespace cfds {
namespace {

/// Failure set carried by a report: newly detected plus historical NIDs.
std::vector<NodeId> merged_failures(const HealthUpdatePayload& update) {
  std::vector<NodeId> failed = update.all_failed;
  for (NodeId f : update.newly_failed) {
    if (std::find(failed.begin(), failed.end(), f) == failed.end()) {
      failed.push_back(f);
    }
  }
  std::sort(failed.begin(), failed.end());
  return failed;
}

}  // namespace

ForwarderAgent::ForwarderAgent(Node& node, MembershipView& view, FdsAgent& fds,
                               Transport& transport,
                               ForwarderService& service)
    : node_(node),
      view_(view),
      fds_(fds),
      transport_(transport),
      service_(service) {
  transport_.add_receive_handler(
      [](void* self, const Reception& reception) {
        static_cast<ForwarderAgent*>(self)->on_frame(reception);
      },
      this);
}

bool ForwarderAgent::acked(ReportId report, ClusterId by) const {
  return acks_seen_.contains({report, by});
}

void ForwarderAgent::on_own_update_sent(
    const std::shared_ptr<const HealthUpdatePayload>& update) {
  if (!node_.alive() || !view_.is_clusterhead()) return;
  if (!update->report.is_valid()) return;  // no news, no forwarding
  for (const GatewayLink& link : view_.cluster()->links) {
    if (link.neighbor_cluster == update->learned_from) continue;  // damping
    if (!link.gateway.is_valid()) continue;  // link lost all its gateways
    arm_ch_watch(update, link.neighbor_cluster,
                 service_.config().max_ch_retransmits);
  }
}

void ForwarderAgent::arm_ch_watch(
    const std::shared_ptr<const HealthUpdatePayload>& update,
    ClusterId dest_cluster, int attempts_left) {
  service_.timers().schedule_after(
      2 * service_.t_hop(),
      [this, update, dest_cluster, attempts_left] {
        if (!node_.alive()) return;
        // A recovery election may have cleared the view (or handed the
        // cluster to a rival head) while this watch was pending; a node
        // that is no longer the CH must not retransmit on its behalf —
        // and its former view's links no longer exist to consult.
        if (!view_.is_clusterhead()) return;
        if (forwards_seen_.contains({update->report, dest_cluster})) return;
        if (attempts_left <= 0) return;
        // Figure 3: no forwarding overheard — assume the first transmission
        // failed and retransmit, addressed to the link's current gateway.
        const GatewayLink* link = nullptr;
        for (const GatewayLink& l : view_.cluster()->links) {
          if (l.neighbor_cluster == dest_cluster) link = &l;
        }
        if (link == nullptr || !link->gateway.is_valid()) return;
        service_.stats().ch_retransmissions++;
        transport_.send(update, link->gateway);
        arm_ch_watch(update, dest_cluster, attempts_left - 1);
      });
}

void ForwarderAgent::consider_link(
    const std::shared_ptr<const HealthUpdatePayload>& update, std::size_t rank,
    std::size_t n_backups, ClusterId dest_cluster, NodeId dest_ch) {
  if (update->learned_from == dest_cluster) return;  // flood damping
  if (!armed_.insert({update->report, dest_cluster}).second) return;

  if (rank == 0) {
    // The GW "will forward m immediately after receiving the message and
    // learning of the need to forward" (Section 4.3).
    if (service_.config().ack_mode == AckMode::kExplicit) {
      auto ack = std::make_shared<ExplicitAckPayload>();
      ack->report = update->report;
      ack->sender = node_.id();
      ack->to = update->sender;
      ack->cluster = dest_cluster;
      ack->receipt = false;
      service_.stats().explicit_acks++;
      transport_.send(std::move(ack), update->sender);
    }
    forward_across(update, dest_cluster, dest_ch, rank, n_backups,
                   service_.config().max_gw_retries);
    return;
  }

  if (!service_.config().bgw_assist) return;
  // BGW ranked k stands by for k * 2*Thop, then forwards itself unless the
  // destination CH's implicit acknowledgement was overheard meanwhile.
  service_.timers().schedule_after(
      std::int64_t(rank) * 2 * service_.t_hop(),
      [this, update, rank, n_backups, dest_cluster, dest_ch] {
        if (!node_.alive()) return;
        if (acked(update->report, dest_cluster)) return;
        forward_across(update, dest_cluster, dest_ch, rank, n_backups,
                       service_.config().max_gw_retries);
      });
}

void ForwarderAgent::forward_across(
    const std::shared_ptr<const HealthUpdatePayload>& update,
    ClusterId dest_cluster, NodeId dest_ch, std::size_t my_rank,
    std::size_t n_backups, int attempts_left) {
  if (acked(update->report, dest_cluster)) return;

  auto report = std::make_shared<FailureReportPayload>();
  report->report = update->report;
  report->from_cluster = update->cluster;
  report->forwarder = node_.id();
  report->to_ch = dest_ch;
  report->epoch = update->epoch;
  report->failed = merged_failures(*update);

  if (my_rank == 0) {
    if (attempts_left == service_.config().max_gw_retries) {
      service_.stats().reports_forwarded++;
    } else {
      service_.stats().gw_retries++;
    }
  } else {
    service_.stats().bgw_assists++;
  }
  transport_.send(std::move(report), dest_ch);

  // Both the GW and an assisting BGW wait (n+1) * 2*Thop for the implicit
  // acknowledgement before re-forwarding.
  service_.timers().schedule_after(
      std::int64_t(n_backups + 1) * 2 * service_.t_hop(),
      [this, update, dest_cluster, dest_ch, my_rank, n_backups,
       attempts_left] {
        if (!node_.alive()) return;
        if (acked(update->report, dest_cluster)) return;
        if (attempts_left <= 0) return;
        forward_across(update, dest_cluster, dest_ch, my_rank, n_backups,
                       attempts_left - 1);
      });
}

void ForwarderAgent::on_update_overheard(
    const std::shared_ptr<const HealthUpdatePayload>& update) {
  // Any overheard CH emission acknowledges the reports in its acks list.
  for (ReportId rid : update->acks) {
    acks_seen_.insert({rid, update->cluster});
  }
  if (!view_.affiliated()) return;
  const ClusterId home = view_.cluster()->id;

  // A gateway that overhears a neighbouring cluster's takeover learns who
  // heads that cluster now.
  if (update->takeover && update->cluster != home) {
    view_.update_link_neighbor(update->cluster, update->sender);
  }

  if (!update->report.is_valid()) return;

  for (const MembershipView::LinkRole& role : view_.my_links()) {
    const GatewayLink& link = *role.link;
    if (update->cluster == home) {
      // Our own CH detected something: carry it to the neighbour.
      consider_link(update, role.rank, link.backups.size(),
                    link.neighbor_cluster, link.neighbor_clusterhead);
    } else if (update->cluster == link.neighbor_cluster) {
      // The neighbour's CH detected something: carry it home.
      consider_link(update, role.rank, link.backups.size(), home,
                    view_.cluster()->clusterhead);
    }
  }
}

void ForwarderAgent::on_report(const FailureReportPayload& report) {
  // CH side: note forwards of our own reports (Figure 3's implicit ack for
  // the CH->GW hop).
  if (view_.affiliated() && view_.is_clusterhead() &&
      report.from_cluster == view_.cluster()->id) {
    for (const GatewayLink& link : view_.cluster()->links) {
      if (link.neighbor_clusterhead == report.to_ch) {
        forwards_seen_.insert({report.report, link.neighbor_cluster});
      }
    }
  }

  if (report.to_ch != node_.id()) return;
  if (!view_.affiliated() || !view_.is_clusterhead()) return;
  service_.stats().reports_received++;

  if (service_.config().ack_mode == AckMode::kExplicit) {
    auto ack = std::make_shared<ExplicitAckPayload>();
    ack->report = report.report;
    ack->sender = node_.id();
    ack->to = report.forwarder;
    ack->cluster = view_.cluster()->id;
    ack->receipt = true;
    service_.stats().explicit_acks++;
    transport_.send(std::move(ack), report.forwarder);
  }
  // The relay informs the local cluster, triggers further forwarding on our
  // other links when the report carried news, and — listing the report in
  // its acks — doubles as the implicit acknowledgement.
  fds_.broadcast_relay(report.failed, report.report, report.from_cluster);
}

void ForwarderAgent::on_frame(const Reception& reception) {
  if (!node_.alive()) return;
  if (auto update = payload_cast_shared<HealthUpdatePayload>(reception.payload)) {
    on_update_overheard(update);
    return;
  }
  if (const auto* forward =
          payload_cast<UpdateForwardPayload>(reception.payload)) {
    // A gateway that missed the CH's broadcast and recovered the update via
    // intra-cluster peer forwarding has still "learned of the need to
    // forward" (Section 4.3) — treat the recovered update like an overheard
    // one.
    if (forward->target == node_.id()) on_update_overheard(forward->update);
    return;
  }
  if (const auto* report =
          payload_cast<FailureReportPayload>(reception.payload)) {
    on_report(*report);
    return;
  }
  if (const auto* ack = payload_cast<ExplicitAckPayload>(reception.payload)) {
    if (ack->receipt) {
      acks_seen_.insert({ack->report, ack->cluster});
    } else if (ack->to == node_.id()) {
      forwards_seen_.insert({ack->report, ack->cluster});
    }
    return;
  }
}

ForwarderService::ForwarderService(Network& network, FdsService& fds,
                                   std::vector<MembershipView*> views,
                                   ForwarderConfig config)
    : network_(network), config_(config), timers_(network.simulator()) {
  for (Node* node : network_.nodes()) {
    const std::size_t idx = node->id().value();
    CFDS_EXPECT(idx < views.size() && views[idx] != nullptr,
                "missing membership view");
    CFDS_EXPECT(idx == agents_.size(),
                "forwarder requires densely numbered nodes");
    transports_.push_back(std::make_unique<SimTransport>(*node));
    agents_.push_back(std::make_unique<ForwarderAgent>(
        *node, *views[idx], fds.agent_for(node->id()), *transports_.back(),
        *this));
  }
  install_hook(fds);
}

void ForwarderService::adopt_node(Node& node, MembershipView& view,
                                  FdsAgent& fds) {
  CFDS_EXPECT(node.id().value() == agents_.size(),
              "forwarder requires densely numbered nodes");
  transports_.push_back(std::make_unique<SimTransport>(node));
  agents_.push_back(std::make_unique<ForwarderAgent>(
      node, view, fds, *transports_.back(), *this));
}

void ForwarderService::install_hook(FdsService& fds) {
  auto previous = fds.hooks().on_update_sent;
  fds.hooks().on_update_sent =
      [this, previous](NodeId sender,
                       const std::shared_ptr<const HealthUpdatePayload>& upd) {
        if (previous) previous(sender, upd);
        agents_[sender.value()]->on_own_update_sent(upd);
      };
}

}  // namespace cfds
