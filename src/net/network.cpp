#include "net/network.h"

#include "common/expect.h"

namespace cfds {

Network::Network(NetworkConfig config, std::unique_ptr<LossModel> loss)
    : config_(config),
      loss_(std::move(loss)),
      rng_(config.seed),
      channel_(sim_, *loss_, config.channel, Rng(config.seed ^ 0x5EED)) {
  CFDS_EXPECT(loss_ != nullptr, "loss model required");
}

Node& Network::add_node(Vec2 position) {
  const NodeId id{next_nid_++};
  auto node = std::make_unique<Node>(id, position, config_.energy,
                                     config_.initial_energy_uj);
  channel_.attach(node->radio());
  index_.emplace(id, nodes_.size());
  nodes_.push_back(std::move(node));
  node_ptrs_.push_back(nodes_.back().get());
  const_node_ptrs_.push_back(nodes_.back().get());
  return *nodes_.back();
}

void Network::add_nodes(const std::vector<Vec2>& positions) {
  for (Vec2 p : positions) add_node(p);
}

Node& Network::node(NodeId id) {
  const auto it = index_.find(id);
  CFDS_EXPECT(it != index_.end(), "unknown node id");
  return *nodes_[it->second];
}

const Node& Network::node(NodeId id) const {
  const auto it = index_.find(id);
  CFDS_EXPECT(it != index_.end(), "unknown node id");
  return *nodes_[it->second];
}

bool Network::has_node(NodeId id) const { return index_.contains(id); }

std::size_t Network::alive_count() const {
  std::size_t alive = 0;
  for (const auto& n : nodes_) {
    if (n->alive()) ++alive;
  }
  return alive;
}

void Network::crash(NodeId id) { node(id).crash(); }

void Network::schedule_crash(NodeId id, SimTime when) {
  sim_.schedule_at(when, [this, id] { crash(id); });
}

void Network::recover(NodeId id) { node(id).recover(); }

void Network::schedule_recover(NodeId id, SimTime when) {
  sim_.schedule_at(when, [this, id] { recover(id); });
}

}  // namespace cfds
