#include "net/network.h"

#include "common/expect.h"

namespace cfds {

Network::Network(NetworkConfig config, std::unique_ptr<LossModel> loss)
    : config_(config),
      loss_(std::move(loss)),
      rng_(config.seed),
      channel_(sim_, *loss_, config.channel, Rng(config.seed ^ 0x5EED)),
      store_(config.energy) {
  CFDS_EXPECT(loss_ != nullptr, "loss model required");
}

Node& Network::add_node(Vec2 position) {
  const NodeId id{next_nid_++};
  Node& node =
      nodes_.emplace_back(store_, id, position, config_.initial_energy_uj);
  channel_.attach(node.radio());
  node_ptrs_.push_back(&node);
  const_node_ptrs_.push_back(&node);
  return node;
}

void Network::add_nodes(const std::vector<Vec2>& positions) {
  for (Vec2 p : positions) add_node(p);
}

Node& Network::node(NodeId id) {
  CFDS_EXPECT(id.value() < nodes_.size(), "unknown node id");
  return nodes_[id.value()];
}

const Node& Network::node(NodeId id) const {
  CFDS_EXPECT(id.value() < nodes_.size(), "unknown node id");
  return nodes_[id.value()];
}

bool Network::has_node(NodeId id) const {
  return id.is_valid() && id.value() < nodes_.size();
}

std::size_t Network::alive_count() const { return store_.alive_count(); }

void Network::crash(NodeId id) { node(id).crash(); }

void Network::schedule_crash(NodeId id, SimTime when) {
  sim_.schedule_at(when, [this, id] { crash(id); });
}

void Network::recover(NodeId id) { node(id).recover(); }

void Network::schedule_recover(NodeId id, SimTime when) {
  sim_.schedule_at(when, [this, id] { recover(id); });
}

}  // namespace cfds
