// Network: the composition root for a simulated deployment.
//
// Owns the simulator, the loss model, the channel, and every node. Provides
// fail-stop crash injection and replenishment (the paper's application model,
// Section 2.1: new resources are deployed when the operational population
// drops), and exposes lookups used by protocol layers and metrics.

#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "event/simulator.h"
#include "net/node.h"
#include "net/node_store.h"
#include "radio/channel.h"
#include "radio/loss_model.h"

namespace cfds {

/// Everything needed to stand up a deployment.
struct NetworkConfig {
  ChannelConfig channel;
  EnergyModel energy;
  /// Initial per-node radio energy budget, microjoules.
  double initial_energy_uj = 1e9;
  std::uint64_t seed = 1;
};

class Network {
 public:
  /// The network takes ownership of the loss model.
  Network(NetworkConfig config, std::unique_ptr<LossModel> loss);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Creates a node at `position` with the next sequential NID.
  Node& add_node(Vec2 position);

  /// Creates one node per position, in order (NIDs are assigned in order, so
  /// generators that place special nodes first — e.g. analysis_cluster's CH —
  /// give them the lowest NIDs, matching the lowest-NID election).
  void add_nodes(const std::vector<Vec2>& positions);

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] bool has_node(NodeId id) const;

  /// The loss model installed at construction (tests flip switchable models
  /// mid-run to stage interference bursts).
  [[nodiscard]] LossModel& loss_model() { return *loss_; }

  /// All nodes in NID order. Returns a reference to a cache maintained by
  /// add_node — callers in per-round loops pay nothing per call. The
  /// reference is invalidated by add_node.
  [[nodiscard]] const std::vector<Node*>& nodes() { return node_ptrs_; }
  [[nodiscard]] const std::vector<const Node*>& nodes() const {
    return const_node_ptrs_;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t alive_count() const;

  /// Immediately crashes the node (fail-stop until recover()).
  void crash(NodeId id);

  /// Schedules a crash at an absolute simulated time.
  void schedule_crash(NodeId id, SimTime when);

  /// Immediately restarts a crashed node (see Node::recover).
  void recover(NodeId id);

  /// Schedules a recovery at an absolute simulated time.
  void schedule_recover(NodeId id, SimTime when);

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] Channel& channel() { return channel_; }
  [[nodiscard]] const Channel& channel() const { return channel_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// The struct-of-arrays node state backing every Node view. Slot i holds
  /// NodeId{i}'s state; whole-world scans (grid builds, alive counts,
  /// benches) read its dense arrays directly.
  [[nodiscard]] NodeStore& node_store() { return store_; }
  [[nodiscard]] const NodeStore& node_store() const { return store_; }

  /// Fork of the network-level RNG for components needing their own stream.
  [[nodiscard]] Rng fork_rng() { return rng_.fork(); }

 private:
  NetworkConfig config_;
  Simulator sim_;
  std::unique_ptr<LossModel> loss_;
  Rng rng_;
  Channel channel_;
  NodeStore store_;
  /// Node views in NID order. A deque so references stay stable as nodes
  /// are added (replenishment) without one heap object per node: storage is
  /// contiguous blocks, and NIDs are sequential so nodes_[id.value()] is
  /// the lookup — no hash index.
  std::deque<Node> nodes_;
  // Pointer caches backing nodes(); appended in lockstep by add_node.
  std::vector<Node*> node_ptrs_;
  std::vector<const Node*> const_node_ptrs_;
  std::uint32_t next_nid_ = 0;
};

}  // namespace cfds
