#include "net/mobility.h"

#include <cmath>

#include "common/expect.h"

namespace cfds {

RandomWaypointMobility::RandomWaypointMobility(Network& network,
                                               WaypointConfig config, Rng rng)
    : network_(network), config_(config), rng_(rng) {
  CFDS_EXPECT(config_.min_speed_mps > 0.0 &&
                  config_.max_speed_mps >= config_.min_speed_mps,
              "invalid speed range");
  CFDS_EXPECT(config_.tick > SimTime::zero(), "tick must be positive");
}

void RandomWaypointMobility::retarget(std::size_t i, Vec2 from) {
  (void)from;
  trajectories_[i].target = {rng_.uniform(0.0, config_.width),
                             rng_.uniform(0.0, config_.height)};
  trajectories_[i].speed_mps =
      rng_.uniform(config_.min_speed_mps, config_.max_speed_mps);
}

void RandomWaypointMobility::tick() {
  const auto& nodes = network_.nodes();
  // Lazily extend trajectories for replenished nodes.
  while (trajectories_.size() < nodes.size()) {
    trajectories_.push_back({});
    retarget(trajectories_.size() - 1,
             nodes[trajectories_.size() - 1]->position());
  }
  const SimTime now = network_.simulator().now();
  const double dt = config_.tick.as_seconds();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Node& node = *nodes[i];
    if (!node.alive()) continue;  // crashed hosts stay where they fell
    Trajectory& trajectory = trajectories_[i];
    if (now < trajectory.pause_until) continue;

    const Vec2 position = node.position();
    const Vec2 to_target = trajectory.target - position;
    const double remaining = to_target.norm();
    const double step = trajectory.speed_mps * dt;
    if (remaining <= step || remaining == 0.0) {
      node.radio().set_position(trajectory.target);
      travelled_ += remaining;
      trajectory.pause_until = now + config_.pause;
      retarget(i, trajectory.target);
    } else {
      const Vec2 moved = position + (step / remaining) * to_target;
      node.radio().set_position(moved);
      travelled_ += step;
    }
  }
}

void RandomWaypointMobility::run(SimTime from, SimTime until) {
  Simulator& sim = network_.simulator();
  for (SimTime t = from; t <= until; t += config_.tick) {
    if (t < sim.now()) continue;
    sim.schedule_at(t, [this] { tick(); });
  }
}

}  // namespace cfds
