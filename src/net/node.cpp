#include "net/node.h"

#include <algorithm>

namespace cfds {

Node::Node(NodeId id, Vec2 position, EnergyModel energy_model,
           double initial_energy_uj)
    : radio_(id, position),
      energy_model_(energy_model),
      initial_energy_uj_(initial_energy_uj) {
  radio_.set_receive_handler(
      [this](const Reception& reception) { dispatch(reception); });
}

void Node::add_frame_handler(FrameHandler handler) {
  handlers_.push_back(std::move(handler));
}

void Node::add_lifecycle_handler(LifecycleHandler handler) {
  lifecycle_handlers_.push_back(std::move(handler));
}

void Node::crash() {
  if (!alive_) return;
  alive_ = false;
  radio_.set_powered(false);
  for (const auto& handler : lifecycle_handlers_) handler(false);
}

void Node::recover() {
  if (alive_) return;
  alive_ = true;
  ++incarnation_;
  radio_.set_powered(true);
  for (const auto& handler : lifecycle_handlers_) handler(true);
}

double Node::remaining_energy_uj() const {
  return std::max(0.0, initial_energy_uj_ -
                           energy_model_.spent_uj(radio_.counters()));
}

void Node::dispatch(const Reception& reception) {
  if (!alive_) return;
  for (const auto& handler : handlers_) handler(reception);
}

}  // namespace cfds
