#include "net/node.h"

#include <algorithm>

namespace cfds {

Node::Node(NodeStore& store, NodeId id, Vec2 position,
           double initial_energy_uj)
    : store_(&store),
      slot_(store.add(position, initial_energy_uj)),
      radio_(store, slot_, id) {
  radio_.set_receive_handler(
      [](void* self, const Reception& reception) {
        static_cast<Node*>(self)->dispatch(reception);
      },
      this);
}

void Node::add_frame_handler(FrameHandler handler) {
  boxed_frame_handlers_.push_back(
      std::make_unique<FrameHandler>(std::move(handler)));
  add_frame_handler(
      [](void* boxed, const Reception& reception) {
        (*static_cast<FrameHandler*>(boxed))(reception);
      },
      boxed_frame_handlers_.back().get());
}

void Node::add_frame_handler(RawFrameHandler handler, void* ctx) {
  if (handler_count_ < kInlineHandlers) {
    inline_handlers_[handler_count_] = HandlerRef{handler, ctx};
  } else {
    overflow_handlers_.push_back(HandlerRef{handler, ctx});
  }
  ++handler_count_;
}

void Node::add_lifecycle_handler(LifecycleHandler handler) {
  lifecycle_handlers_.push_back(std::move(handler));
}

void Node::crash() {
  if (!alive()) return;
  store_->set_alive(slot_, false);
  radio_.set_powered(false);
  for (const auto& handler : lifecycle_handlers_) handler(false);
}

void Node::recover() {
  if (alive()) return;
  store_->set_alive(slot_, true);
#ifndef CFDS_MUTATION_SKIP_INCARNATION_BUMP
  store_->bump_incarnation(slot_);
#endif
  radio_.set_powered(true);
  for (const auto& handler : lifecycle_handlers_) handler(true);
}

double Node::remaining_energy_uj() const {
  return std::max(0.0, initial_energy_uj() -
                           store_->energy_model().spent_uj(radio_.counters()));
}

void Node::dispatch(const Reception& reception) {
  if (!alive()) return;
  const std::uint32_t inline_count =
      std::min<std::uint32_t>(handler_count_, kInlineHandlers);
  for (std::uint32_t i = 0; i < inline_count; ++i) {
    inline_handlers_[i].fn(inline_handlers_[i].ctx, reception);
  }
  for (const HandlerRef& handler : overflow_handlers_) {
    handler.fn(handler.ctx, reception);
  }
}

}  // namespace cfds
