// Node runtime.
//
// A node hosts a radio plus any number of protocol layers (cluster formation,
// the FDS, inter-cluster forwarding, baselines). The node fans incoming
// frames out to every registered layer, tracks fail-stop crash state, and
// accounts radio energy — peer-forwarding waiting periods (Section 4.2,
// "Energy Considerations") are a function of remaining energy.

#pragma once

#include <functional>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "radio/channel.h"

namespace cfds {

/// Linear radio energy model: cost = base + per_byte * bytes, per frame.
struct EnergyModel {
  double tx_base_uj = 50.0;    ///< microjoules per transmitted frame
  double tx_per_byte_uj = 2.0;
  double rx_base_uj = 20.0;    ///< microjoules per received frame
  double rx_per_byte_uj = 1.0;

  /// Total energy implied by the given traffic counters, in microjoules.
  [[nodiscard]] double spent_uj(const RadioCounters& counters) const {
    return tx_base_uj * double(counters.frames_sent) +
           tx_per_byte_uj * double(counters.bytes_sent) +
           rx_base_uj * double(counters.frames_received) +
           rx_per_byte_uj * double(counters.bytes_received);
  }
};

/// A host in the ad hoc network.
class Node {
 public:
  using FrameHandler = std::function<void(const Reception&)>;

  Node(NodeId id, Vec2 position, EnergyModel energy_model,
       double initial_energy_uj);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return radio_.id(); }
  [[nodiscard]] Vec2 position() const { return radio_.position(); }

  [[nodiscard]] Radio& radio() { return radio_; }
  [[nodiscard]] const Radio& radio() const { return radio_; }

  /// Registers a protocol layer's frame handler. Handlers run in
  /// registration order for every frame the radio hears.
  void add_frame_handler(FrameHandler handler);

  /// Fail-stop crash: the node permanently stops sending and receiving.
  void crash();
  [[nodiscard]] bool alive() const { return alive_; }

  /// Remaining radio energy in microjoules (never negative).
  [[nodiscard]] double remaining_energy_uj() const;
  [[nodiscard]] double initial_energy_uj() const { return initial_energy_uj_; }

  /// Marked nodes have been admitted to a cluster (paper footnote 2).
  /// Maintained by the clustering layer; read by the FDS heartbeats.
  [[nodiscard]] bool marked() const { return marked_; }
  void set_marked(bool m) { marked_ = m; }

 private:
  void dispatch(const Reception& reception);

  Radio radio_;
  EnergyModel energy_model_;
  double initial_energy_uj_;
  bool alive_ = true;
  bool marked_ = false;
  std::vector<FrameHandler> handlers_;
};

}  // namespace cfds
