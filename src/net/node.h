// Node runtime.
//
// A node hosts a radio plus any number of protocol layers (cluster formation,
// the FDS, inter-cluster forwarding, baselines). The node fans incoming
// frames out to every registered layer, tracks crash state, and accounts
// radio energy — peer-forwarding waiting periods (Section 4.2, "Energy
// Considerations") are a function of remaining energy.
//
// Beyond the paper's fail-stop model the node supports crash-RECOVERY: a
// crashed node may be brought back with recover(), which bumps its
// incarnation number (the SWIM-style counter that lets the rest of the
// network distinguish "this node resurrected" from "a stale failure record")
// and notifies every registered lifecycle handler so protocol layers can
// cancel timers on crash and reset volatile state on recovery.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "net/node_store.h"
#include "radio/channel.h"

namespace cfds {

/// A host in the ad hoc network. A thin view over the world's NodeStore:
/// the node's state (liveness, marking, incarnation, energy budget) lives in
/// the store's dense arrays; the Node itself carries only the radio view and
/// the per-node handler tables. EnergyModel and RadioCounters are defined in
/// net/node_store.h alongside the arrays they meter.
class Node {
 public:
  using FrameHandler = std::function<void(const Reception&)>;
  /// Allocation-free handler form for the per-delivery hot path: raw
  /// function pointer plus opaque context (protocol agents register with
  /// this; the std::function overload boxes into it).
  using RawFrameHandler = void (*)(void* ctx, const Reception& reception);

  /// Appends a fresh slot to `store` and wraps it. For network-owned nodes
  /// the slot equals id.value(); standalone hosts may use any id.
  Node(NodeStore& store, NodeId id, Vec2 position, double initial_energy_uj);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return radio_.id(); }
  [[nodiscard]] Vec2 position() const { return radio_.position(); }

  [[nodiscard]] Radio& radio() { return radio_; }
  [[nodiscard]] const Radio& radio() const { return radio_; }

  /// Registers a protocol layer's frame handler. Handlers run in
  /// registration order for every frame the radio hears.
  void add_frame_handler(FrameHandler handler);
  /// Raw-pointer variant: one predictable indirect call per frame, no
  /// std::function wrapper on the delivery hot path.
  void add_frame_handler(RawFrameHandler handler, void* ctx);

  /// Invoked with `true` on recover() and `false` on crash(), in
  /// registration order. Protocol layers use the crash edge to cancel
  /// pending timers (a dead node must never fire a round callback) and the
  /// recovery edge to discard stale volatile state.
  using LifecycleHandler = std::function<void(bool alive)>;
  void add_lifecycle_handler(LifecycleHandler handler);

  /// Crash: the node stops sending and receiving. Fail-stop unless a later
  /// recover() call resurrects it. Idempotent.
  void crash();

  /// Crash-recovery: restarts a crashed node with volatile state lost. The
  /// incarnation counter is bumped so the node's future heartbeats prove it
  /// outlived any recorded failure. No-op on a live node.
  void recover();

  [[nodiscard]] bool alive() const { return store_->alive(slot_); }

  /// Number of times this node has recovered from a crash. Carried in
  /// heartbeats; a heartbeat with an incarnation newer than a failure-log
  /// entry refutes that entry.
  [[nodiscard]] std::uint32_t incarnation() const {
    return store_->incarnation(slot_);
  }

  /// Remaining radio energy in microjoules (never negative).
  [[nodiscard]] double remaining_energy_uj() const;
  [[nodiscard]] double initial_energy_uj() const {
    return store_->initial_energy_uj(slot_);
  }

  /// Marked nodes have been admitted to a cluster (paper footnote 2).
  /// Maintained by the clustering layer; read by the FDS heartbeats.
  [[nodiscard]] bool marked() const { return store_->marked(slot_); }
  void set_marked(bool m) { store_->set_marked(slot_, m); }

 private:
  void dispatch(const Reception& reception);

  NodeStore* store_;
  std::uint32_t slot_;
  Radio radio_;
  /// One registered frame handler: raw callback plus opaque context.
  struct HandlerRef {
    RawFrameHandler fn;
    void* ctx;
  };
  /// Every protocol stack registers a handful of layers, so the handler
  /// table lives inline in the node — the per-delivery dispatch loop walks
  /// memory the delivery already touched instead of chasing a separate heap
  /// buffer. The overflow vector keeps registration unbounded (tests).
  static constexpr std::size_t kInlineHandlers = 6;
  /// All frame handlers in registration order: the first kInlineHandlers
  /// live in inline_handlers_, the rest in overflow_handlers_;
  /// std::function handlers point into boxed_frame_handlers_.
  std::array<HandlerRef, kInlineHandlers> inline_handlers_{};
  std::uint32_t handler_count_ = 0;
  std::vector<HandlerRef> overflow_handlers_;
  /// Owns the boxed std::function handlers (stable addresses — handlers_
  /// keeps raw pointers to the boxes).
  std::vector<std::unique_ptr<FrameHandler>> boxed_frame_handlers_;
  std::vector<LifecycleHandler> lifecycle_handlers_;
};

}  // namespace cfds
