// Node runtime.
//
// A node hosts a radio plus any number of protocol layers (cluster formation,
// the FDS, inter-cluster forwarding, baselines). The node fans incoming
// frames out to every registered layer, tracks crash state, and accounts
// radio energy — peer-forwarding waiting periods (Section 4.2, "Energy
// Considerations") are a function of remaining energy.
//
// Beyond the paper's fail-stop model the node supports crash-RECOVERY: a
// crashed node may be brought back with recover(), which bumps its
// incarnation number (the SWIM-style counter that lets the rest of the
// network distinguish "this node resurrected" from "a stale failure record")
// and notifies every registered lifecycle handler so protocol layers can
// cancel timers on crash and reset volatile state on recovery.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/ids.h"
#include "radio/channel.h"

namespace cfds {

/// Linear radio energy model: cost = base + per_byte * bytes, per frame.
struct EnergyModel {
  double tx_base_uj = 50.0;    ///< microjoules per transmitted frame
  double tx_per_byte_uj = 2.0;
  double rx_base_uj = 20.0;    ///< microjoules per received frame
  double rx_per_byte_uj = 1.0;

  /// Total energy implied by the given traffic counters, in microjoules.
  [[nodiscard]] double spent_uj(const RadioCounters& counters) const {
    return tx_base_uj * double(counters.frames_sent) +
           tx_per_byte_uj * double(counters.bytes_sent) +
           rx_base_uj * double(counters.frames_received) +
           rx_per_byte_uj * double(counters.bytes_received);
  }
};

/// A host in the ad hoc network.
class Node {
 public:
  using FrameHandler = std::function<void(const Reception&)>;
  /// Allocation-free handler form for the per-delivery hot path: raw
  /// function pointer plus opaque context (protocol agents register with
  /// this; the std::function overload boxes into it).
  using RawFrameHandler = void (*)(void* ctx, const Reception& reception);

  Node(NodeId id, Vec2 position, EnergyModel energy_model,
       double initial_energy_uj);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return radio_.id(); }
  [[nodiscard]] Vec2 position() const { return radio_.position(); }

  [[nodiscard]] Radio& radio() { return radio_; }
  [[nodiscard]] const Radio& radio() const { return radio_; }

  /// Registers a protocol layer's frame handler. Handlers run in
  /// registration order for every frame the radio hears.
  void add_frame_handler(FrameHandler handler);
  /// Raw-pointer variant: one predictable indirect call per frame, no
  /// std::function wrapper on the delivery hot path.
  void add_frame_handler(RawFrameHandler handler, void* ctx);

  /// Invoked with `true` on recover() and `false` on crash(), in
  /// registration order. Protocol layers use the crash edge to cancel
  /// pending timers (a dead node must never fire a round callback) and the
  /// recovery edge to discard stale volatile state.
  using LifecycleHandler = std::function<void(bool alive)>;
  void add_lifecycle_handler(LifecycleHandler handler);

  /// Crash: the node stops sending and receiving. Fail-stop unless a later
  /// recover() call resurrects it. Idempotent.
  void crash();

  /// Crash-recovery: restarts a crashed node with volatile state lost. The
  /// incarnation counter is bumped so the node's future heartbeats prove it
  /// outlived any recorded failure. No-op on a live node.
  void recover();

  [[nodiscard]] bool alive() const { return alive_; }

  /// Number of times this node has recovered from a crash. Carried in
  /// heartbeats; a heartbeat with an incarnation newer than a failure-log
  /// entry refutes that entry.
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }

  /// Remaining radio energy in microjoules (never negative).
  [[nodiscard]] double remaining_energy_uj() const;
  [[nodiscard]] double initial_energy_uj() const { return initial_energy_uj_; }

  /// Marked nodes have been admitted to a cluster (paper footnote 2).
  /// Maintained by the clustering layer; read by the FDS heartbeats.
  [[nodiscard]] bool marked() const { return marked_; }
  void set_marked(bool m) { marked_ = m; }

 private:
  void dispatch(const Reception& reception);

  Radio radio_;
  EnergyModel energy_model_;
  double initial_energy_uj_;
  bool alive_ = true;
  bool marked_ = false;
  std::uint32_t incarnation_ = 0;
  /// One registered frame handler: raw callback plus opaque context.
  struct HandlerRef {
    RawFrameHandler fn;
    void* ctx;
  };
  /// Every protocol stack registers a handful of layers, so the handler
  /// table lives inline in the node — the per-delivery dispatch loop walks
  /// memory the delivery already touched instead of chasing a separate heap
  /// buffer. The overflow vector keeps registration unbounded (tests).
  static constexpr std::size_t kInlineHandlers = 6;
  /// All frame handlers in registration order: the first kInlineHandlers
  /// live in inline_handlers_, the rest in overflow_handlers_;
  /// std::function handlers point into boxed_frame_handlers_.
  std::array<HandlerRef, kInlineHandlers> inline_handlers_{};
  std::uint32_t handler_count_ = 0;
  std::vector<HandlerRef> overflow_handlers_;
  /// Owns the boxed std::function handlers (stable addresses — handlers_
  /// keeps raw pointers to the boxes).
  std::vector<std::unique_ptr<FrameHandler>> boxed_frame_handlers_;
  std::vector<LifecycleHandler> lifecycle_handlers_;
};

}  // namespace cfds
