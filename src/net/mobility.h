// Random-waypoint mobility.
//
// The paper's application model (Section 2.1) covers "mobile hosts that have
// localization capability and may migrate in the field autonomously (e.g.,
// nano-sat swarms)"; it defers migration handling but argues that "sound
// clustering algorithms will support cluster and routing stability in mobile
// ad hoc wireless settings [8,9], [so] our failure detection framework can
// be extended accordingly". This module provides the classic random-waypoint
// process to exercise that claim: nodes pick a destination uniformly in the
// field, travel at a uniform speed, pause, and repeat. The mobility studies
// interleave FDS executions with open-ended formation iterations (F4) and
// measure how affiliation and accuracy hold up with speed.

#pragma once

#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "net/network.h"

namespace cfds {

struct WaypointConfig {
  double width = 1000.0;
  double height = 1000.0;
  double min_speed_mps = 0.5;
  double max_speed_mps = 3.0;
  /// Pause at each waypoint before picking the next.
  SimTime pause = SimTime::seconds(2);
  /// Position-update granularity.
  SimTime tick = SimTime::millis(500);
};

/// Moves every alive node of a network along independent random-waypoint
/// trajectories. Positions update on a fixed tick; crashed nodes freeze.
class RandomWaypointMobility {
 public:
  RandomWaypointMobility(Network& network, WaypointConfig config, Rng rng);

  /// Schedules position updates from `from` until `until` (inclusive of
  /// every tick in between). Call again to extend.
  void run(SimTime from, SimTime until);

  /// Total distance travelled by all nodes so far, in metres.
  [[nodiscard]] double total_distance() const { return travelled_; }

 private:
  struct Trajectory {
    Vec2 target;
    double speed_mps = 0.0;
    SimTime pause_until;
  };

  void tick();
  void retarget(std::size_t i, Vec2 from);

  Network& network_;
  WaypointConfig config_;
  Rng rng_;
  std::vector<Trajectory> trajectories_;
  double travelled_ = 0.0;
};

}  // namespace cfds
