#include "net/graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

#include "common/expect.h"

namespace cfds {

namespace {

// Same packing as Channel::cell_key: cell size = range, coordinates biased so
// negative positions stay well-defined.
std::int64_t cell_key(std::int64_t cx, std::int64_t cy) {
  return ((cx + 0x40000000) << 32) | std::int64_t(std::uint32_t(cy + 0x40000000));
}

}  // namespace

void UnitDiskGraph::build_csr(
    std::size_t n, std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  offsets_.assign(n + 1, 0);
  for (const auto& [i, j] : edges) {
    ++offsets_[i + 1];
    ++offsets_[j + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  flat_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [i, j] : edges) {
    flat_[cursor[i]++] = j;
    flat_[cursor[j]++] = i;
  }
  // Ascending neighbour order, matching the all-pairs build.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(flat_.begin() + std::ptrdiff_t(offsets_[v]),
              flat_.begin() + std::ptrdiff_t(offsets_[v + 1]));
  }
  edges.clear();
  edges.shrink_to_fit();
}

UnitDiskGraph::UnitDiskGraph(const std::vector<Vec2>& positions, double range) {
  const std::size_t n = positions.size();
  CFDS_EXPECT(n < std::numeric_limits<std::uint32_t>::max(),
              "node count exceeds graph index width");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  if (range <= 0.0) {
    // Degenerate range: the grid cell size would be zero, so fall back to the
    // all-pairs scan (only co-located points are adjacent at range 0).
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        if (within_range(positions[i], positions[j], range)) {
          edges.emplace_back(i, j);
        }
      }
    }
    build_csr(n, edges);
    return;
  }

  // Bucket points into range-sized cells via head/next chains (one flat
  // `next` array instead of a vector per cell).
  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  std::unordered_map<std::int64_t, std::uint32_t> head;
  head.reserve(n);
  std::vector<std::uint32_t> next(n, kNone);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto cx = std::int64_t(std::floor(positions[i].x / range));
    const auto cy = std::int64_t(std::floor(positions[i].y / range));
    auto [it, inserted] = head.try_emplace(cell_key(cx, cy), i);
    if (!inserted) {
      next[i] = it->second;
      it->second = i;
    }
  }

  // Any neighbour of i lies in the 3x3 cell block around i's cell. Emitting
  // only j > i visits each candidate pair once.
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto ccx = std::int64_t(std::floor(positions[i].x / range));
    const auto ccy = std::int64_t(std::floor(positions[i].y / range));
    for (std::int64_t cx = ccx - 1; cx <= ccx + 1; ++cx) {
      for (std::int64_t cy = ccy - 1; cy <= ccy + 1; ++cy) {
        const auto it = head.find(cell_key(cx, cy));
        if (it == head.end()) continue;
        for (std::uint32_t j = it->second; j != kNone; j = next[j]) {
          if (j <= i) continue;
          if (!within_range(positions[i], positions[j], range)) continue;
          edges.emplace_back(i, j);
        }
      }
    }
  }
  build_csr(n, edges);
}

UnitDiskGraph UnitDiskGraph::brute_force(const std::vector<Vec2>& positions,
                                         double range) {
  const std::size_t n = positions.size();
  CFDS_EXPECT(n < std::numeric_limits<std::uint32_t>::max(),
              "node count exceeds graph index width");
  UnitDiskGraph graph;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (within_range(positions[i], positions[j], range)) {
        edges.emplace_back(i, j);
      }
    }
  }
  graph.build_csr(n, edges);
  return graph;
}

MobileGrid::MobileGrid(std::vector<Vec2> positions, double range)
    : range_(range), positions_(std::move(positions)) {
  CFDS_EXPECT(range_ > 0.0, "MobileGrid needs a positive range");
  const std::size_t n = positions_.size();
  CFDS_EXPECT(n < std::numeric_limits<std::uint32_t>::max(),
              "node count exceeds graph index width");
  next_.assign(n, kNone);
  prev_.assign(n, kNone);
  cell_.resize(n);
  head_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    cell_[i] = cell_of(positions_[i]);
    auto [it, inserted] = head_.try_emplace(cell_[i], i);
    if (!inserted) {
      next_[i] = it->second;
      prev_[it->second] = i;
      it->second = i;
    }
  }
}

void MobileGrid::move(std::size_t i, Vec2 new_position) {
  positions_[i] = new_position;
  const std::int64_t key = cell_of(new_position);
  if (key == cell_[i]) return;  // stayed within its cell: nothing to relink
  const auto idx = std::uint32_t(i);
  // Unlink from the old chain (the head keeps its map entry, possibly with a
  // kNone head: cells a node ever occupied are revisited under mobility).
  if (prev_[idx] != kNone) {
    next_[prev_[idx]] = next_[idx];
  } else {
    head_[cell_[idx]] = next_[idx];
  }
  if (next_[idx] != kNone) prev_[next_[idx]] = prev_[idx];
  // Link at the head of the new chain.
  auto [it, inserted] = head_.try_emplace(key, kNone);
  (void)inserted;
  next_[idx] = it->second;
  prev_[idx] = kNone;
  if (it->second != kNone) prev_[it->second] = idx;
  it->second = idx;
  cell_[idx] = key;
}

UnitDiskGraph MobileGrid::graph() const {
  const std::size_t n = positions_.size();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  // Same enumeration as UnitDiskGraph's constructor: each node probes its
  // 3x3 block and emits j > i once per pair. Chain order differs from a
  // fresh build's (moves reorder chains), but the edge *set* is equal and
  // build_csr sorts each slice, so the CSR arrays come out byte-identical.
  for (std::uint32_t i = 0; i < n; ++i) {
    probe(positions_[i], [&](std::uint32_t j) {
      if (j > i && within_range(positions_[i], positions_[j], range_)) {
        edges.emplace_back(i, j);
      }
    });
  }
  UnitDiskGraph out;
  out.build_csr(n, edges);
  return out;
}

std::vector<std::size_t> UnitDiskGraph::hop_distances(std::size_t from) const {
  std::vector<std::size_t> dist(size(), std::numeric_limits<std::size_t>::max());
  std::queue<std::size_t> frontier;
  dist[from] = 0;
  frontier.push(from);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v : neighbors(u)) {
      if (dist[v] == std::numeric_limits<std::size_t>::max()) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::size_t> UnitDiskGraph::components() const {
  constexpr auto kUnset = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> label(size(), kUnset);
  std::size_t next = 0;
  for (std::size_t seed = 0; seed < size(); ++seed) {
    if (label[seed] != kUnset) continue;
    label[seed] = next;
    std::queue<std::size_t> frontier;
    frontier.push(seed);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (std::size_t v : neighbors(u)) {
        if (label[v] == kUnset) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

bool UnitDiskGraph::connected() const {
  if (size() == 0) return false;
  const auto dist = hop_distances(0);
  for (std::size_t d : dist) {
    if (d == std::numeric_limits<std::size_t>::max()) return false;
  }
  return true;
}

std::vector<std::size_t> UnitDiskGraph::isolated_nodes() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < size(); ++i) {
    if (degree(i) == 0) out.push_back(i);
  }
  return out;
}

}  // namespace cfds
