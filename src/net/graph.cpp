#include "net/graph.h"

#include <limits>
#include <queue>

namespace cfds {

UnitDiskGraph::UnitDiskGraph(const std::vector<Vec2>& positions, double range)
    : adjacency_(positions.size()) {
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (within_range(positions[i], positions[j], range)) {
        adjacency_[i].push_back(j);
        adjacency_[j].push_back(i);
      }
    }
  }
}

std::vector<std::size_t> UnitDiskGraph::hop_distances(std::size_t from) const {
  std::vector<std::size_t> dist(size(), std::numeric_limits<std::size_t>::max());
  std::queue<std::size_t> frontier;
  dist[from] = 0;
  frontier.push(from);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v : adjacency_[u]) {
      if (dist[v] == std::numeric_limits<std::size_t>::max()) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::size_t> UnitDiskGraph::components() const {
  constexpr auto kUnset = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> label(size(), kUnset);
  std::size_t next = 0;
  for (std::size_t seed = 0; seed < size(); ++seed) {
    if (label[seed] != kUnset) continue;
    label[seed] = next;
    std::queue<std::size_t> frontier;
    frontier.push(seed);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (std::size_t v : adjacency_[u]) {
        if (label[v] == kUnset) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

bool UnitDiskGraph::connected() const {
  if (size() == 0) return false;
  const auto dist = hop_distances(0);
  for (std::size_t d : dist) {
    if (d == std::numeric_limits<std::size_t>::max()) return false;
  }
  return true;
}

std::vector<std::size_t> UnitDiskGraph::isolated_nodes() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < size(); ++i) {
    if (adjacency_[i].empty()) out.push_back(i);
  }
  return out;
}

}  // namespace cfds
