#include "net/topology.h"

#include <cmath>

#include "common/expect.h"

namespace cfds {

std::vector<Vec2> uniform_disk(std::size_t n, Vec2 center, double radius,
                               Rng& rng) {
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = radius * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    points.push_back(
        {center.x + r * std::cos(theta), center.y + r * std::sin(theta)});
  }
  return points;
}

std::vector<Vec2> uniform_rect(std::size_t n, double w, double h, Rng& rng) {
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.0, w), rng.uniform(0.0, h)});
  }
  return points;
}

std::vector<Vec2> jittered_grid(std::size_t rows, std::size_t cols,
                                double spacing, double jitter, Rng& rng) {
  std::vector<Vec2> points;
  points.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      points.push_back({double(c) * spacing + rng.uniform(-jitter, jitter),
                        double(r) * spacing + rng.uniform(-jitter, jitter)});
    }
  }
  return points;
}

std::vector<Vec2> poisson_field(double intensity, double w, double h,
                                Rng& rng) {
  CFDS_EXPECT(intensity >= 0.0, "intensity must be non-negative");
  // Sample the count from Poisson(intensity * area) by inversion.
  constexpr std::size_t kMaxCount = 10'000'000;
  const double lambda = intensity * w * h;
  std::size_t count = 0;
  double acc = std::exp(-lambda);
  double cdf = acc;
  const double u = rng.uniform();
  while (u > cdf && count < kMaxCount) {
    ++count;
    acc *= lambda / double(count);
    cdf += acc;
  }
  // Refusing loudly beats silently truncating the draw: a count this large
  // means the intensity is far outside anything the simulator can run.
  CFDS_EXPECT(count < kMaxCount,
              "poisson_field: sampled count hit the 10M safety cap");
  return uniform_rect(count, w, h, rng);
}

std::vector<Vec2> analysis_cluster(std::size_t n, Vec2 center, double radius,
                                   Rng& rng) {
  CFDS_EXPECT(n >= 1, "cluster needs at least the CH");
  auto points = uniform_disk(n - 1, center, radius, rng);
  points.insert(points.begin(), center);
  return points;
}

std::vector<Vec2> analysis_cluster_worst_case(std::size_t n, Vec2 center,
                                              double radius, Rng& rng) {
  CFDS_EXPECT(n >= 2, "worst-case cluster needs the CH and the edge node");
  auto points = analysis_cluster(n - 1, center, radius, rng);
  const double theta = rng.uniform(0.0, 2.0 * M_PI);
  points.push_back({center.x + radius * std::cos(theta),
                    center.y + radius * std::sin(theta)});
  return points;
}

}  // namespace cfds
