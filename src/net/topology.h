// Node placement generators.
//
// The paper's evaluation assumes 50-100 hosts per cluster, uniformly
// distributed within the clusterhead's transmission range (a unit disk of
// radius R = 100 m). The generators here cover that single-cluster setting
// plus multi-cluster fields for end-to-end experiments.

#pragma once

#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

namespace cfds {

/// n points uniform in the disk (rejection-free polar sampling).
[[nodiscard]] std::vector<Vec2> uniform_disk(std::size_t n, Vec2 center,
                                             double radius, Rng& rng);

/// n points uniform in the axis-aligned rectangle [0,w] x [0,h].
[[nodiscard]] std::vector<Vec2> uniform_rect(std::size_t n, double w, double h,
                                             Rng& rng);

/// rows x cols lattice with the given spacing, origin at (0,0), plus
/// uniform jitter in [-jitter, jitter] per coordinate.
[[nodiscard]] std::vector<Vec2> jittered_grid(std::size_t rows,
                                              std::size_t cols, double spacing,
                                              double jitter, Rng& rng);

/// Homogeneous Poisson point process with the given intensity
/// (points per square metre) on [0,w] x [0,h].
[[nodiscard]] std::vector<Vec2> poisson_field(double intensity, double w,
                                              double h, Rng& rng);

/// The paper's single-cluster analysis geometry: the clusterhead at `center`
/// and n-1 members uniform in the disk of `radius` around it. The first
/// returned point is the CH position (the exact centre).
[[nodiscard]] std::vector<Vec2> analysis_cluster(std::size_t n, Vec2 center,
                                                 double radius, Rng& rng);

/// Like analysis_cluster, but the last member is pinned to the circumference
/// — the worst-case node position used by the paper's upper-bound measures
/// (Figures 5 and 7).
[[nodiscard]] std::vector<Vec2> analysis_cluster_worst_case(std::size_t n,
                                                            Vec2 center,
                                                            double radius,
                                                            Rng& rng);

}  // namespace cfds
