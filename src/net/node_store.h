// Struct-of-arrays backing store for node/radio state.
//
// Per-object node state (position, power, liveness, marking, incarnation,
// traffic counters, energy budget) lives in dense NodeId-indexed arrays owned
// by one NodeStore per world. Node and Radio are thin views — a (store, slot)
// pair — so a million-node world is a handful of flat allocations instead of
// a million heap objects, and whole-world scans (grid rebuilds, alive counts,
// mobility sweeps) walk contiguous memory instead of chasing pointers.
//
// Slots are append-only and never reused; for network-owned nodes the slot
// equals the NodeId value (NIDs are assigned sequentially). Standalone hosts
// (tests, the service-mode single-node runtime, checker worlds) create their
// own small store. Accessors take the slot index, so the field vectors may
// reallocate as nodes are added without invalidating any view.
//
// This header is include-light by design: it sits below both src/radio/ and
// src/net/ (Radio state lives here, and cfds_radio must not link cfds_net).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/expect.h"
#include "common/geometry.h"

namespace cfds {

/// Per-radio traffic counters (basis of the energy model).
struct RadioCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Linear radio energy model: cost = base + per_byte * bytes, per frame.
struct EnergyModel {
  double tx_base_uj = 50.0;  ///< microjoules per transmitted frame
  double tx_per_byte_uj = 2.0;
  double rx_base_uj = 20.0;  ///< microjoules per received frame
  double rx_per_byte_uj = 1.0;

  /// Total energy implied by the given traffic counters, in microjoules.
  [[nodiscard]] double spent_uj(const RadioCounters& counters) const {
    return tx_base_uj * double(counters.frames_sent) +
           tx_per_byte_uj * double(counters.bytes_sent) +
           rx_base_uj * double(counters.frames_received) +
           rx_per_byte_uj * double(counters.bytes_received);
  }
};

/// Dense struct-of-arrays node state. One per world; indexed by slot.
class NodeStore {
 public:
  NodeStore() = default;
  explicit NodeStore(EnergyModel energy) : energy_(energy) {}

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  /// Appends one node's state; returns its slot. Nodes start alive and
  /// powered, unmarked, at incarnation 0.
  std::uint32_t add(Vec2 position, double initial_energy_uj) {
    const auto slot = std::uint32_t(positions_.size());
    positions_.push_back(position);
    powered_.push_back(1);
    alive_.push_back(1);
    marked_.push_back(0);
    incarnations_.push_back(0);
    counters_.emplace_back();
    initial_energy_uj_.push_back(initial_energy_uj);
    return slot;
  }

  [[nodiscard]] std::size_t size() const { return positions_.size(); }

  [[nodiscard]] Vec2 position(std::uint32_t slot) const {
    return positions_[slot];
  }
  void set_position(std::uint32_t slot, Vec2 p) { positions_[slot] = p; }

  [[nodiscard]] bool powered(std::uint32_t slot) const {
    return powered_[slot] != 0;
  }
  void set_powered(std::uint32_t slot, bool on) { powered_[slot] = on ? 1 : 0; }

  [[nodiscard]] bool alive(std::uint32_t slot) const {
    return alive_[slot] != 0;
  }
  void set_alive(std::uint32_t slot, bool alive) {
    alive_[slot] = alive ? 1 : 0;
  }

  [[nodiscard]] bool marked(std::uint32_t slot) const {
    return marked_[slot] != 0;
  }
  void set_marked(std::uint32_t slot, bool marked) {
    marked_[slot] = marked ? 1 : 0;
  }

  [[nodiscard]] std::uint32_t incarnation(std::uint32_t slot) const {
    return incarnations_[slot];
  }
  void bump_incarnation(std::uint32_t slot) { ++incarnations_[slot]; }

  [[nodiscard]] RadioCounters& counters(std::uint32_t slot) {
    return counters_[slot];
  }
  [[nodiscard]] const RadioCounters& counters(std::uint32_t slot) const {
    return counters_[slot];
  }

  [[nodiscard]] double initial_energy_uj(std::uint32_t slot) const {
    return initial_energy_uj_[slot];
  }

  [[nodiscard]] const EnergyModel& energy_model() const { return energy_; }
  void set_energy_model(EnergyModel energy) { energy_ = energy; }

  /// Dense views for whole-world scans (grid builds, benches).
  [[nodiscard]] const std::vector<Vec2>& positions() const {
    return positions_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& alive_flags() const {
    return alive_;
  }

  [[nodiscard]] std::size_t alive_count() const {
    std::size_t n = 0;
    for (const std::uint8_t a : alive_) n += a;
    return n;
  }

  /// Resident bytes of the store itself (capacity, not size) — the "world
  /// bytes per node" numerator reported by bench_megascale.
  [[nodiscard]] std::size_t resident_bytes() const {
    return positions_.capacity() * sizeof(Vec2) +
           (powered_.capacity() + alive_.capacity() + marked_.capacity()) *
               sizeof(std::uint8_t) +
           incarnations_.capacity() * sizeof(std::uint32_t) +
           counters_.capacity() * sizeof(RadioCounters) +
           initial_energy_uj_.capacity() * sizeof(double);
  }

 private:
  EnergyModel energy_;
  std::vector<Vec2> positions_;
  std::vector<std::uint8_t> powered_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> marked_;
  std::vector<std::uint32_t> incarnations_;
  std::vector<RadioCounters> counters_;
  std::vector<double> initial_energy_uj_;
};

}  // namespace cfds
