// Connectivity-graph utilities over node placements.
//
// The paper models the network as G = (V, E) with an edge whenever two hosts
// are within the common transmission range (Section 2.3). These helpers are
// used by topology validation, by tests of clustering invariants (every OM
// one hop from its CH; any two co-members at most two hops apart), and by
// the scalability bench.
//
// Construction uses a uniform grid with cell size = range (the same 3x3-probe
// scheme Channel uses for frame delivery), so building the graph costs
// O(n * local density) instead of O(n^2). The adjacency is stored in CSR form
// (one offsets array + one flat neighbour array) rather than a vector of
// vectors, so a build performs O(1) allocations regardless of node count.
// Neighbour lists are sorted ascending — identical, edge for edge, to what
// the brute-force all-pairs build produces.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace cfds {

/// Undirected unit-disk graph: neighbors(i) lists the indices of nodes within
/// `range` of node i (excluding i itself), in ascending index order.
class UnitDiskGraph {
 public:
  /// Lightweight view over one node's CSR neighbour slice.
  class NeighborSpan {
   public:
    using const_iterator = const std::uint32_t*;
    NeighborSpan(const_iterator first, const_iterator last)
        : first_(first), last_(last) {}
    [[nodiscard]] const_iterator begin() const { return first_; }
    [[nodiscard]] const_iterator end() const { return last_; }
    [[nodiscard]] std::size_t size() const {
      return static_cast<std::size_t>(last_ - first_);
    }
    [[nodiscard]] bool empty() const { return first_ == last_; }
    [[nodiscard]] std::uint32_t operator[](std::size_t i) const {
      return first_[i];
    }

   private:
    const_iterator first_;
    const_iterator last_;
  };

  UnitDiskGraph(const std::vector<Vec2>& positions, double range);

  /// Reference all-pairs O(n^2) build. Produces a graph identical to the
  /// grid build; kept as the oracle for property tests.
  [[nodiscard]] static UnitDiskGraph brute_force(
      const std::vector<Vec2>& positions, double range);

  [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }
  [[nodiscard]] NeighborSpan neighbors(std::size_t i) const {
    return NeighborSpan{flat_.data() + offsets_[i],
                        flat_.data() + offsets_[i + 1]};
  }
  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }

  /// Hop distance from `from` to every node; unreachable nodes get SIZE_MAX.
  [[nodiscard]] std::vector<std::size_t> hop_distances(std::size_t from) const;

  /// Component label per node (labels are 0..k-1 in discovery order).
  [[nodiscard]] std::vector<std::size_t> components() const;

  /// True if every node is reachable from node 0 (false for an empty graph).
  [[nodiscard]] bool connected() const;

  /// Indices of nodes with no neighbours at all — the paper's "isolated"
  /// nodes, which clustering legitimately leaves uncovered.
  [[nodiscard]] std::vector<std::size_t> isolated_nodes() const;

 private:
  UnitDiskGraph() = default;

  /// Builds the CSR arrays from an i<j edge list (destroys `edges`).
  void build_csr(std::size_t n,
                 std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

  std::vector<std::size_t> offsets_{0};  // size() + 1 entries
  std::vector<std::uint32_t> flat_;
};

}  // namespace cfds
