// Connectivity-graph utilities over node placements.
//
// The paper models the network as G = (V, E) with an edge whenever two hosts
// are within the common transmission range (Section 2.3). These helpers are
// used by topology validation, by tests of clustering invariants (every OM
// one hop from its CH; any two co-members at most two hops apart), and by
// the scalability bench.
//
// Construction uses a uniform grid with cell size = range (the same 3x3-probe
// scheme Channel uses for frame delivery), so building the graph costs
// O(n * local density) instead of O(n^2). The adjacency is stored in CSR form
// (one offsets array + one flat neighbour array) rather than a vector of
// vectors, so a build performs O(1) allocations regardless of node count.
// Neighbour lists are sorted ascending — identical, edge for edge, to what
// the brute-force all-pairs build produces.

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"

namespace cfds {

/// Undirected unit-disk graph: neighbors(i) lists the indices of nodes within
/// `range` of node i (excluding i itself), in ascending index order.
class UnitDiskGraph {
 public:
  /// Lightweight view over one node's CSR neighbour slice.
  class NeighborSpan {
   public:
    using const_iterator = const std::uint32_t*;
    NeighborSpan(const_iterator first, const_iterator last)
        : first_(first), last_(last) {}
    [[nodiscard]] const_iterator begin() const { return first_; }
    [[nodiscard]] const_iterator end() const { return last_; }
    [[nodiscard]] std::size_t size() const {
      return static_cast<std::size_t>(last_ - first_);
    }
    [[nodiscard]] bool empty() const { return first_ == last_; }
    [[nodiscard]] std::uint32_t operator[](std::size_t i) const {
      return first_[i];
    }

   private:
    const_iterator first_;
    const_iterator last_;
  };

  UnitDiskGraph(const std::vector<Vec2>& positions, double range);

  /// Reference all-pairs O(n^2) build. Produces a graph identical to the
  /// grid build; kept as the oracle for property tests.
  [[nodiscard]] static UnitDiskGraph brute_force(
      const std::vector<Vec2>& positions, double range);

  [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }
  [[nodiscard]] NeighborSpan neighbors(std::size_t i) const {
    return NeighborSpan{flat_.data() + offsets_[i],
                        flat_.data() + offsets_[i + 1]};
  }
  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }

  /// Hop distance from `from` to every node; unreachable nodes get SIZE_MAX.
  [[nodiscard]] std::vector<std::size_t> hop_distances(std::size_t from) const;

  /// Component label per node (labels are 0..k-1 in discovery order).
  [[nodiscard]] std::vector<std::size_t> components() const;

  /// True if every node is reachable from node 0 (false for an empty graph).
  [[nodiscard]] bool connected() const;

  /// Indices of nodes with no neighbours at all — the paper's "isolated"
  /// nodes, which clustering legitimately leaves uncovered.
  [[nodiscard]] std::vector<std::size_t> isolated_nodes() const;

  /// Raw CSR arrays. build_csr sorts every neighbour slice ascending, so two
  /// graphs over the same edge set have byte-identical arrays no matter how
  /// their edges were enumerated — the property tests compare these directly
  /// to prove the incremental grid equals a from-scratch rebuild.
  [[nodiscard]] const std::vector<std::size_t>& csr_offsets() const {
    return offsets_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& csr_neighbors() const {
    return flat_;
  }

 private:
  friend class MobileGrid;

  UnitDiskGraph() = default;

  /// Builds the CSR arrays from an i<j edge list (destroys `edges`).
  void build_csr(std::size_t n,
                 std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

  std::vector<std::size_t> offsets_{0};  // size() + 1 entries
  std::vector<std::uint32_t> flat_;
};

/// Incrementally maintained uniform grid over mobile node positions.
///
/// UnitDiskGraph's constructor buckets every node on every build; under a
/// mobility model that moves a handful of nodes per step, rebucketing the
/// whole world each step is the dominant cost at 10^5+ nodes. MobileGrid
/// keeps the same range-sized cells as doubly-linked chains and updates only
/// the moved node's cell on move() — O(1) when the node stays in its cell
/// (the common case for small steps), O(1) unlink + relink otherwise.
///
/// graph() materialises the adjacency of the current placement through the
/// same 3x3-probe enumeration as a fresh build, so its CSR arrays are
/// byte-identical to UnitDiskGraph(positions(), range) — the from-scratch
/// build stays the property-test oracle for any move sequence.
class MobileGrid {
 public:
  MobileGrid(std::vector<Vec2> positions, double range);

  /// Moves node i, relinking its cell chain membership if the move crossed
  /// a cell boundary.
  void move(std::size_t i, Vec2 new_position);

  [[nodiscard]] std::size_t size() const { return positions_.size(); }
  [[nodiscard]] Vec2 position(std::size_t i) const { return positions_[i]; }
  [[nodiscard]] const std::vector<Vec2>& positions() const {
    return positions_;
  }
  [[nodiscard]] double range() const { return range_; }

  /// Adjacency of the current placement (see class comment).
  [[nodiscard]] UnitDiskGraph graph() const;

  /// Calls fn(j) for every node j != i within range of node i. Probes only
  /// the 3x3 cell block — the per-step query the megascale bench pairs with
  /// move() so neither end of a mobility step touches the whole world.
  template <typename F>
  void for_each_in_range(std::size_t i, F&& fn) const {
    probe(positions_[i], [&](std::uint32_t j) {
      if (j != i && within_range(positions_[i], positions_[j], range_)) {
        fn(j);
      }
    });
  }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// Same packing as UnitDiskGraph's builder (and Channel::cell_key):
  /// coordinates biased so negative positions stay well-defined.
  [[nodiscard]] static std::int64_t pack_cell(std::int64_t cx,
                                              std::int64_t cy) {
    return ((cx + 0x40000000) << 32) |
           std::int64_t(std::uint32_t(cy + 0x40000000));
  }
  [[nodiscard]] std::int64_t cell_of(Vec2 p) const {
    return pack_cell(std::int64_t(std::floor(p.x / range_)),
                     std::int64_t(std::floor(p.y / range_)));
  }

  template <typename F>
  void probe(Vec2 around, F&& fn) const;

  double range_;
  std::vector<Vec2> positions_;
  /// Cell chains: head_ maps packed cell key -> first node, next_/prev_
  /// thread the nodes of one cell (kNone-terminated both ways). Emptied
  /// cells keep their map entry with a kNone head.
  std::unordered_map<std::int64_t, std::uint32_t> head_;
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> prev_;
  std::vector<std::int64_t> cell_;  ///< packed key of each node's cell
};

template <typename F>
void MobileGrid::probe(Vec2 around, F&& fn) const {
  const auto ccx = std::int64_t(std::floor(around.x / range_));
  const auto ccy = std::int64_t(std::floor(around.y / range_));
  for (std::int64_t cx = ccx - 1; cx <= ccx + 1; ++cx) {
    for (std::int64_t cy = ccy - 1; cy <= ccy + 1; ++cy) {
      const auto it = head_.find(pack_cell(cx, cy));
      if (it == head_.end()) continue;
      for (std::uint32_t j = it->second; j != kNone; j = next_[j]) fn(j);
    }
  }
}

}  // namespace cfds
