// Connectivity-graph utilities over node placements.
//
// The paper models the network as G = (V, E) with an edge whenever two hosts
// are within the common transmission range (Section 2.3). These helpers are
// used by topology validation, by tests of clustering invariants (every OM
// one hop from its CH; any two co-members at most two hops apart), and by
// the scalability bench.

#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"

namespace cfds {

/// Undirected unit-disk graph: adjacency[i] lists the indices of nodes within
/// `range` of node i (excluding i itself).
class UnitDiskGraph {
 public:
  UnitDiskGraph(const std::vector<Vec2>& positions, double range);

  [[nodiscard]] std::size_t size() const { return adjacency_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& neighbors(std::size_t i) const {
    return adjacency_[i];
  }
  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return adjacency_[i].size();
  }

  /// Hop distance from `from` to every node; unreachable nodes get SIZE_MAX.
  [[nodiscard]] std::vector<std::size_t> hop_distances(std::size_t from) const;

  /// Component label per node (labels are 0..k-1 in discovery order).
  [[nodiscard]] std::vector<std::size_t> components() const;

  /// True if every node is reachable from node 0 (false for an empty graph).
  [[nodiscard]] bool connected() const;

  /// Indices of nodes with no neighbours at all — the paper's "isolated"
  /// nodes, which clustering legitimately leaves uncovered.
  [[nodiscard]] std::vector<std::size_t> isolated_nodes() const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace cfds
