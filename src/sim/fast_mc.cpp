#include "sim/fast_mc.h"

#include <cmath>

#include "common/expect.h"
#include "common/geometry.h"

namespace cfds {
namespace {

/// Uniform point in the disk of radius r around the origin.
Vec2 disk_point(double r, Rng& rng) {
  const double rad = r * std::sqrt(rng.uniform());
  const double theta = rng.uniform(0.0, 2.0 * M_PI);
  return {rad * std::cos(theta), rad * std::sin(theta)};
}

}  // namespace

ProportionEstimator mc_false_detection(const FastMcConfig& config, long trials,
                                       Rng& rng) {
  CFDS_EXPECT(config.n >= 2, "need a CH and the watched node");
  ProportionEstimator estimator;
  const double r = config.range;
  const Vec2 v{r, 0.0};  // worst case: on the circumference
  for (long t = 0; t < trials; ++t) {
    // Rule condition C1: both direct indicators lost.
    if (!rng.bernoulli(config.p)) {  // heartbeat reached the CH
      estimator.add(false);
      continue;
    }
    if (config.rule_mode != RuleMode::kHeartbeatOnly &&
        !rng.bernoulli(config.p)) {  // digest reached the CH
      estimator.add(false);
      continue;
    }
    // Rule condition C2 (kFull only): no member digest mentions v.
    bool witnessed = false;
    if (config.rule_mode == RuleMode::kFull) {
      for (int u = 0; u < config.n - 2 && !witnessed; ++u) {
        const Vec2 pos = disk_point(r, rng);
        if (!within_range(pos, v, r)) continue;
        witnessed = rng.bernoulli(1.0 - config.p) &&  // overheard heartbeat
                    rng.bernoulli(1.0 - config.p);    // digest landed
      }
    }
    estimator.add(!witnessed);
  }
  return estimator;
}

ProportionEstimator mc_false_detection_on_ch(const FastMcConfig& config,
                                             long trials, Rng& rng) {
  CFDS_EXPECT(config.n >= 2, "need a CH and the DCH");
  ProportionEstimator estimator;
  for (long t = 0; t < trials; ++t) {
    // Conditions 1 and 3: heartbeat, digest AND R-3 update all lost to the
    // DCH (the digest leg drops out under kHeartbeatOnly).
    bool direct_silent = rng.bernoulli(config.p) &&  // heartbeat lost
                         rng.bernoulli(config.p);    // update lost
    if (config.rule_mode != RuleMode::kHeartbeatOnly) {
      direct_silent = direct_silent && rng.bernoulli(config.p);  // digest lost
    }
    if (!direct_silent) {
      estimator.add(false);
      continue;
    }
    // Condition 2 (kFull): no member digest reflects the CH's heartbeat.
    // The DCH sits at the centre, so every member's digest can reach it.
    bool witnessed = false;
    if (config.rule_mode == RuleMode::kFull) {
      for (int u = 0; u < config.n - 2 && !witnessed; ++u) {
        witnessed = rng.bernoulli(1.0 - config.p) &&  // member heard the CH
                    rng.bernoulli(1.0 - config.p);    // digest landed
      }
    }
    estimator.add(!witnessed);
  }
  return estimator;
}

ProportionEstimator mc_incompleteness(const FastMcConfig& config, long trials,
                                      Rng& rng) {
  CFDS_EXPECT(config.n >= 2, "need a CH and the watched node");
  ProportionEstimator estimator;
  const double r = config.range;
  const Vec2 v{r, 0.0};
  for (long t = 0; t < trials; ++t) {
    if (!rng.bernoulli(config.p)) {  // update arrived directly
      estimator.add(false);
      continue;
    }
    bool rescued = false;
    if (config.peer_forwarding) {
      for (int u = 0; u < config.n - 2 && !rescued; ++u) {
        const Vec2 pos = disk_point(r, rng);
        if (!within_range(pos, v, r)) continue;
        rescued = rng.bernoulli(1.0 - config.p) &&  // peer holds the update
                  rng.bernoulli(1.0 - config.p) &&  // heard v's request
                  rng.bernoulli(1.0 - config.p);    // forward landed
      }
    }
    estimator.add(!rescued);
  }
  return estimator;
}

}  // namespace cfds
