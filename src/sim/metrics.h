// Instrumentation for FDS experiments: detection events with ground truth,
// and completeness/latency queries.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "fds/agent.h"
#include "net/network.h"

namespace cfds {

/// One failure-detection decision, stamped with ground truth at the moment
/// of the decision.
struct DetectionEvent {
  NodeId decider;
  NodeId suspect;
  std::uint64_t epoch = 0;
  SimTime when;
  bool by_deputy = false;
  /// Ground truth: the suspect was actually alive (a false detection — the
  /// accuracy violation of Section 4.1).
  bool suspect_was_alive = false;
};

/// Hooks into an FdsService and accumulates detection events.
class MetricsCollector {
 public:
  /// Chains onto the service's on_detection hook. Call before running.
  void attach(FdsService& fds, Network& network);

  [[nodiscard]] const std::vector<DetectionEvent>& detections() const {
    return detections_;
  }

  [[nodiscard]] std::size_t false_detections() const;
  [[nodiscard]] std::size_t true_detections() const;

  /// Earliest detection of `suspect` by anyone, if any.
  [[nodiscard]] std::optional<DetectionEvent> first_detection(
      NodeId suspect) const;

  void clear() { detections_.clear(); }

 private:
  std::vector<DetectionEvent> detections_;
};

/// Fraction of operational, cluster-affiliated nodes (other than `failed`)
/// whose failure log knows about `failed` — the system-level completeness
/// measure ("every node failure will be reported to every operational
/// node"). Returns 1.0 when there is no eligible observer.
[[nodiscard]] double knowledge_coverage(FdsService& fds, Network& network,
                                        NodeId failed);

/// Total frames and bytes transmitted across the network so far.
struct TrafficTotals {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
};
[[nodiscard]] TrafficTotals traffic_totals(const Network& network);

}  // namespace cfds
