#include "sim/single_cluster.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"
#include "net/topology.h"

namespace cfds {

SingleClusterExperiment::SingleClusterExperiment(SingleClusterConfig config)
    : config_(config), rng_(config.seed) {
  CFDS_EXPECT(config_.n >= 4, "need CH, DCH, and at least two members");

  NetworkConfig net_config;
  net_config.channel.range = config_.range;
  net_config.channel.t_hop = config_.t_hop;
  net_config.seed = config_.seed ^ 0xA11CE;
  network_ = std::make_unique<Network>(
      net_config, config_.loss_factory
                      ? config_.loss_factory()
                      : std::make_unique<BernoulliLoss>(config_.p));

  // Node 0 (the CH) at the centre; members placed per-trial.
  for (int i = 0; i < config_.n; ++i) {
    network_->add_node(Vec2{0.0, 0.0});
  }

  views_.reserve(std::size_t(config_.n));
  for (int i = 0; i < config_.n; ++i) {
    views_.push_back(std::make_unique<MembershipView>(NodeId{std::uint32_t(i)}));
  }
  DirectoryConfig dir_config;
  dir_config.num_deputies = config_.num_deputies;
  directory_ = ClusterDirectory::single_cluster(std::size_t(config_.n),
                                                dir_config);

  FdsConfig fds_config;
  fds_config.rule_mode = config_.rule_mode;
  fds_config.peer_forwarding = config_.peer_forwarding;
  fds_config.heartbeat_interval = 8 * config_.t_hop;
  std::vector<MembershipView*> view_ptrs;
  for (auto& v : views_) view_ptrs.push_back(v.get());
  fds_ = std::make_unique<FdsService>(*network_, view_ptrs, fds_config);

  fds_->hooks().on_detection = [this](NodeId decider, std::uint64_t,
                                      const std::vector<NodeId>& failed,
                                      bool by_deputy) {
    if (!by_deputy && decider == clusterhead() &&
        std::find(failed.begin(), failed.end(), edge_node()) != failed.end()) {
      ch_detected_edge_ = true;
    }
    if (by_deputy && decider == deputy() &&
        std::find(failed.begin(), failed.end(), clusterhead()) !=
            failed.end()) {
      deputy_detected_ch_ = true;
    }
  };
}

SingleClusterExperiment::~SingleClusterExperiment() = default;

void SingleClusterExperiment::run_one_trial() {
  // Fresh geometry: CH at the centre, members uniform in the disk, with the
  // experiment's pinned positions applied on top.
  network_->node(clusterhead()).radio().set_position({0.0, 0.0});
  for (int i = 1; i < config_.n; ++i) {
    const double rad = config_.range * std::sqrt(rng_.uniform());
    const double theta = rng_.uniform(0.0, 2.0 * M_PI);
    network_->node(NodeId{std::uint32_t(i)})
        .radio()
        .set_position({rad * std::cos(theta), rad * std::sin(theta)});
  }
  if (config_.pin_deputy_center) {
    network_->node(deputy()).radio().set_position({0.0, 0.0});
  }
  if (config_.pin_edge_node) {
    // Nudged fractionally inside the circumference: at exactly R the
    // cos/sin round-trip rounds the node outside the CH's range in ~9% of
    // draws, which would disconnect it outright instead of modelling the
    // paper's worst-case *member*.
    const double rad = config_.range * (1.0 - 1e-9);
    const double theta = rng_.uniform(0.0, 2.0 * M_PI);
    network_->node(edge_node())
        .radio()
        .set_position({rad * std::cos(theta), rad * std::sin(theta)});
  }

  // Re-install the canonical organization (undoing removals, takeovers and
  // unmarkings from earlier trials) and run one execution.
  std::vector<MembershipView*> view_ptrs;
  for (auto& v : views_) view_ptrs.push_back(v.get());
  directory_.install(*network_, view_ptrs);

  ch_detected_edge_ = false;
  deputy_detected_ch_ = false;

  Simulator& sim = network_->simulator();
  const SimTime start = sim.now();
  fds_->schedule_epoch(trial_, start);
  sim.run_until(start + 7 * config_.t_hop);
  ++trial_;
}

ProportionEstimator SingleClusterExperiment::run_false_detection(int trials) {
  ProportionEstimator estimator;
  for (int t = 0; t < trials; ++t) {
    run_one_trial();
    estimator.add(ch_detected_edge_);
  }
  return estimator;
}

ProportionEstimator SingleClusterExperiment::run_false_detection_on_ch(
    int trials) {
  ProportionEstimator estimator;
  for (int t = 0; t < trials; ++t) {
    run_one_trial();
    estimator.add(deputy_detected_ch_);
  }
  return estimator;
}

ProportionEstimator SingleClusterExperiment::run_incompleteness(int trials) {
  ProportionEstimator estimator;
  for (int t = 0; t < trials; ++t) {
    run_one_trial();
    estimator.add(!fds_->agent_for(edge_node()).got_scheduled_update());
  }
  return estimator;
}

}  // namespace cfds
