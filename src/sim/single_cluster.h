// Full-stack Monte-Carlo experiments on a single cluster.
//
// Reproduces the exact setting of the paper's Section 5 analysis — a cluster
// of N hosts uniform in a disk of radius R = 100 m around the CH, iid frame
// loss probability p — by running the real protocol stack (event queue,
// promiscuous channel, FdsAgent round machinery) one FDS execution per
// trial. The cluster organization is re-installed between trials so every
// execution is an independent sample.
//
// Topology knobs mirror the analysis's conditioning:
//   pin_edge_node     the highest-NID member sits exactly on the cluster
//                     circumference (the worst case of Figures 5 and 7);
//   pin_deputy_center the primary DCH (NID 1) sits at the cluster centre
//                     (the q = 1 assumption behind Figure 6).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/directory.h"
#include "cluster/membership.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "fds/agent.h"
#include "net/network.h"

namespace cfds {

struct SingleClusterConfig {
  int n = 75;
  double p = 0.3;
  double range = 100.0;
  /// Optional override of the loss model (defaults to BernoulliLoss(p),
  /// the paper's model). Used by the robustness bench to swap in bursty
  /// (Gilbert-Elliott) and distance-dependent models.
  std::function<std::unique_ptr<LossModel>()> loss_factory;
  SimTime t_hop = SimTime::millis(100);
  std::uint64_t seed = 1;
  RuleMode rule_mode = RuleMode::kFull;
  bool peer_forwarding = true;
  bool pin_edge_node = true;
  bool pin_deputy_center = false;
  /// Deputies installed in the cluster. The Figure 7 experiment sets 0: a
  /// false DCH takeover (possible at high p) re-broadcasts the update and
  /// would rescue the watched node through a channel the paper's analysis
  /// does not model.
  std::size_t num_deputies = 1;
};

class SingleClusterExperiment {
 public:
  explicit SingleClusterExperiment(SingleClusterConfig config);
  ~SingleClusterExperiment();

  /// P(the CH falsely detects the pinned edge node) per execution (Fig. 5).
  [[nodiscard]] ProportionEstimator run_false_detection(int trials);

  /// P(the primary DCH falsely detects the operational CH) (Fig. 6).
  [[nodiscard]] ProportionEstimator run_false_detection_on_ch(int trials);

  /// P(the pinned edge node misses the health-status update) (Fig. 7).
  [[nodiscard]] ProportionEstimator run_incompleteness(int trials);

  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] FdsService& fds() { return *fds_; }
  [[nodiscard]] NodeId clusterhead() const { return NodeId{0}; }
  [[nodiscard]] NodeId deputy() const { return NodeId{1}; }
  [[nodiscard]] NodeId edge_node() const {
    return NodeId{std::uint32_t(config_.n - 1)};
  }

 private:
  /// Re-randomizes member positions and re-installs the cluster
  /// organization, then runs exactly one FDS execution.
  void run_one_trial();

  SingleClusterConfig config_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<MembershipView>> views_;
  std::unique_ptr<FdsService> fds_;
  ClusterDirectory directory_;

  std::uint64_t trial_ = 0;
  // Per-trial detection outcome, filled by the on_detection hook.
  bool ch_detected_edge_ = false;
  bool deputy_detected_ch_ = false;
};

}  // namespace cfds
