// Semantic Monte-Carlo estimators for the paper's per-cluster measures.
//
// These sample exactly the random structure the protocol induces — member
// positions uniform in the cluster disk, iid per-receiver frame losses —
// and apply the detection/recovery rules from fds/detector.h semantics, but
// without running the event-driven stack. That makes millions of trials
// cheap, so the benches can put tight Monte-Carlo confidence intervals next
// to the analytic curves wherever the probabilities are large enough to
// sample. The full protocol stack is cross-validated separately (and more
// slowly) by sim/single_cluster.h.

#pragma once

#include "common/rng.h"
#include "common/statistics.h"
#include "fds/detector.h"

namespace cfds {

struct FastMcConfig {
  int n = 100;          ///< cluster population including the CH
  double p = 0.3;       ///< message-loss probability
  double range = 100.0; ///< transmission range R (also the cluster radius)
  RuleMode rule_mode = RuleMode::kFull;
  bool peer_forwarding = true;  ///< incompleteness estimator only
};

/// P(the CH falsely detects an operational node v pinned to the cluster
/// circumference) over one FDS execution — the event of Figure 5.
[[nodiscard]] ProportionEstimator mc_false_detection(const FastMcConfig& config,
                                                     long trials, Rng& rng);

/// P(the central DCH falsely detects the operational CH) — Figure 6.
[[nodiscard]] ProportionEstimator mc_false_detection_on_ch(
    const FastMcConfig& config, long trials, Rng& rng);

/// P(a node v pinned to the circumference ends the execution without the
/// health-status update, peer forwarding included) — Figure 7.
[[nodiscard]] ProportionEstimator mc_incompleteness(const FastMcConfig& config,
                                                    long trials, Rng& rng);

}  // namespace cfds
