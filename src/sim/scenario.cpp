#include "sim/scenario.h"

#include "common/expect.h"
#include "common/flat.h"
#include "net/topology.h"

namespace cfds {

Scenario::Scenario(ScenarioConfig config) : config_(config) {
  // Fail loudly at construction, before any simulation time is spent: the
  // FDS config must satisfy the documented constraints against this
  // scenario's Thop (FdsService re-validates with the effective phi).
  FdsConfig effective = config_.fds;
  effective.heartbeat_interval = config_.heartbeat_interval;
  effective.validate(config_.t_hop);
  NetworkConfig net_config;
  net_config.channel.range = config_.range;
  net_config.channel.t_hop = config_.t_hop;
  net_config.seed = config_.seed;
  network_ = std::make_unique<Network>(
      net_config, config_.loss_factory
                      ? config_.loss_factory()
                      : std::make_unique<BernoulliLoss>(config_.loss_p));
}

Scenario::~Scenario() = default;

std::vector<MembershipView*> Scenario::views() {
  std::vector<MembershipView*> out;
  if (formation_) {
    for (FormationAgent* agent : formation_->agents()) {
      out.push_back(&agent->view());
    }
  } else {
    for (auto& view : owned_views_) out.push_back(view.get());
  }
  return out;
}

SimTime Scenario::setup() {
  CFDS_EXPECT(fds_ == nullptr, "setup() must be called exactly once");

  Rng placement = network_->fork_rng();
  const auto positions = uniform_rect(config_.node_count, config_.width,
                                      config_.height, placement);
  network_->add_nodes(positions);

  SimTime settled = SimTime::zero();
  if (config_.distributed_formation) {
    formation_ = std::make_unique<FormationProtocol>(*network_);
    settled = formation_->run(config_.formation_iterations);
  } else {
    const auto directory =
        ClusterDirectory::build(positions, config_.range);
    for (std::size_t i = 0; i < config_.node_count; ++i) {
      owned_views_.push_back(
          std::make_unique<MembershipView>(NodeId{std::uint32_t(i)}));
    }
    auto view_ptrs = views();
    directory.install(*network_, view_ptrs);
  }

  FdsConfig fds_config = config_.fds;
  fds_config.heartbeat_interval = config_.heartbeat_interval;
  fds_ = std::make_unique<FdsService>(*network_, views(), fds_config);
  metrics_.attach(*fds_, *network_);
  if (config_.enable_forwarder) {
    forwarder_ = std::make_unique<ForwarderService>(*network_, *fds_, views(),
                                                    config_.forwarder);
  }

  // First epoch starts one interval after formation settles.
  next_epoch_time_ = settled + config_.heartbeat_interval;
  return settled;
}

SimTime Scenario::run_epochs(std::uint64_t count) {
  CFDS_EXPECT(fds_ != nullptr, "call setup() first");
  for (std::uint64_t k = 0; k < count; ++k) {
    fds_->schedule_epoch(next_epoch_++, next_epoch_time_);
    next_epoch_time_ += config_.heartbeat_interval;
  }
  network_->simulator().run_until(next_epoch_time_);
  return next_epoch_time_;
}

void Scenario::schedule_crash(NodeId id, SimTime when) {
  network_->schedule_crash(id, when);
}

void Scenario::schedule_recover(NodeId id, SimTime when) {
  network_->schedule_recover(id, when);
}

std::vector<NodeId> Scenario::replenish(std::size_t count) {
  CFDS_EXPECT(fds_ != nullptr, "call setup() first");
  CFDS_EXPECT(formation_ == nullptr,
              "replenish() supports the centralized-formation path; with "
              "distributed formation use FormationProtocol::adopt_new_nodes");
  Rng placement = network_->fork_rng();
  std::vector<NodeId> added;
  for (std::size_t i = 0; i < count; ++i) {
    Node& node = network_->add_node({placement.uniform(0.0, config_.width),
                                     placement.uniform(0.0, config_.height)});
    owned_views_.push_back(std::make_unique<MembershipView>(node.id()));
    FdsAgent& agent = fds_->adopt_node(node, *owned_views_.back());
    if (forwarder_) {
      forwarder_->adopt_node(node, *owned_views_.back(), agent);
    }
    added.push_back(node.id());
  }
  return added;
}

std::size_t Scenario::cluster_count() const {
  FlatSet<ClusterId> seen;
  for (const MembershipView* view :
       const_cast<Scenario*>(this)->views()) {
    if (view->affiliated()) seen.insert(view->cluster()->id);
  }
  return seen.size();
}

double Scenario::affiliation_rate() const {
  std::size_t alive = 0;
  std::size_t affiliated = 0;
  auto* self = const_cast<Scenario*>(this);
  const auto all_views = self->views();
  for (const Node* node : self->network_->nodes()) {
    if (!node->alive()) continue;
    ++alive;
    if (all_views[node->id().value()]->affiliated()) ++affiliated;
  }
  return alive == 0 ? 1.0 : double(affiliated) / double(alive);
}

}  // namespace cfds
