#include "sim/metrics.h"

#include <algorithm>

namespace cfds {

void MetricsCollector::attach(FdsService& fds, Network& network) {
  auto previous = fds.hooks().on_detection;
  fds.hooks().on_detection =
      [this, previous, &network](NodeId decider, std::uint64_t epoch,
                                 const std::vector<NodeId>& failed,
                                 bool by_deputy) {
        if (previous) previous(decider, epoch, failed, by_deputy);
        for (NodeId suspect : failed) {
          detections_.push_back(DetectionEvent{
              decider, suspect, epoch, network.simulator().now(), by_deputy,
              network.has_node(suspect) && network.node(suspect).alive()});
        }
      };
}

std::size_t MetricsCollector::false_detections() const {
  return std::size_t(std::count_if(
      detections_.begin(), detections_.end(),
      [](const DetectionEvent& e) { return e.suspect_was_alive; }));
}

std::size_t MetricsCollector::true_detections() const {
  return detections_.size() - false_detections();
}

std::optional<DetectionEvent> MetricsCollector::first_detection(
    NodeId suspect) const {
  std::optional<DetectionEvent> best;
  for (const DetectionEvent& e : detections_) {
    if (e.suspect != suspect) continue;
    if (!best || e.when < best->when) best = e;
  }
  return best;
}

double knowledge_coverage(FdsService& fds, Network& network, NodeId failed) {
  std::size_t eligible = 0;
  std::size_t knowing = 0;
  for (FdsAgent* agent : fds.agents()) {
    if (agent->id() == failed) continue;
    if (!network.node(agent->id()).alive()) continue;
    if (!agent->view().affiliated()) continue;
    ++eligible;
    if (agent->log().knows(failed)) ++knowing;
  }
  return eligible == 0 ? 1.0 : double(knowing) / double(eligible);
}

TrafficTotals traffic_totals(const Network& network) {
  TrafficTotals totals;
  for (const Node* node : network.nodes()) {
    totals.frames += node->radio().counters().frames_sent;
    totals.bytes += node->radio().counters().bytes_sent;
  }
  return totals;
}

}  // namespace cfds
