// End-to-end multi-cluster scenario harness.
//
// Stands up a full deployment — nodes scattered over a field, cluster
// formation (distributed protocol or centralized reference), the FDS, and
// inter-cluster forwarding — and drives FDS executions with crash injection.
// This is the entry point the examples, integration tests, and system-level
// benches build on.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/directory.h"
#include "cluster/formation.h"
#include "cluster/membership.h"
#include "fds/agent.h"
#include "intercluster/forwarder.h"
#include "net/network.h"
#include "sim/metrics.h"

namespace cfds {

struct ScenarioConfig {
  double width = 1200.0;
  double height = 800.0;
  std::size_t node_count = 300;
  double range = 100.0;            ///< transmission range R
  double loss_p = 0.1;             ///< Bernoulli message-loss probability
  /// When set, overrides loss_p with a custom loss model (e.g. the chaos
  /// harness's SwitchableLoss, or a Gilbert-Elliott burst model).
  std::function<std::unique_ptr<LossModel>()> loss_factory;
  SimTime t_hop = SimTime::millis(100);
  SimTime heartbeat_interval = SimTime::seconds(2);  ///< phi
  std::uint64_t seed = 1;

  /// true: run the distributed formation protocol over the lossy channel;
  /// false: install the centralized reference clustering.
  bool distributed_formation = false;
  std::size_t formation_iterations = 4;

  FdsConfig fds;                   ///< heartbeat_interval is overridden
  ForwarderConfig forwarder;
  bool enable_forwarder = true;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  /// Places nodes and forms clusters. Must be called exactly once, before
  /// run_epochs. Returns the simulated time when formation settled.
  SimTime setup();

  /// Runs `count` further FDS executions (continuing the epoch counter).
  /// Returns the simulated time after the last one.
  SimTime run_epochs(std::uint64_t count);

  /// Schedules a fail-stop crash at an absolute simulated time.
  void schedule_crash(NodeId id, SimTime when);

  /// Schedules a crash-recovery at an absolute simulated time (the node
  /// restarts unaffiliated/unmarked and re-subscribes via F5).
  void schedule_recover(NodeId id, SimTime when);

  /// Start time of the next FDS execution to be scheduled. The fault
  /// injector anchors its relative event times here.
  [[nodiscard]] SimTime next_epoch_time() const { return next_epoch_time_; }

  /// Deploys `count` replenishment nodes at uniform positions (the paper's
  /// Section 2.1: resources are added when the population drops). The
  /// newcomers arrive unmarked; their next heartbeat subscribes them to a
  /// reachable cluster (feature F5). Returns their NIDs. Only supported on
  /// the centralized-formation path.
  std::vector<NodeId> replenish(std::size_t count);

  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] FdsService& fds() { return *fds_; }
  [[nodiscard]] ForwarderService* forwarder() { return forwarder_.get(); }
  [[nodiscard]] MetricsCollector& metrics() { return metrics_; }
  [[nodiscard]] std::vector<MembershipView*> views();
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  /// Clusters currently believed in by at least one node.
  [[nodiscard]] std::size_t cluster_count() const;
  /// Fraction of alive nodes affiliated with some cluster.
  [[nodiscard]] double affiliation_rate() const;
  [[nodiscard]] std::uint64_t epochs_run() const { return next_epoch_; }

 private:
  ScenarioConfig config_;
  std::unique_ptr<Network> network_;

  // Centralized path: the scenario owns the views.
  std::vector<std::unique_ptr<MembershipView>> owned_views_;
  // Distributed path: views live in the formation agents.
  std::unique_ptr<FormationProtocol> formation_;

  std::unique_ptr<FdsService> fds_;
  std::unique_ptr<ForwarderService> forwarder_;
  MetricsCollector metrics_;

  std::uint64_t next_epoch_ = 0;
  SimTime next_epoch_time_ = SimTime::zero();
};

}  // namespace cfds
