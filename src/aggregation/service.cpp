#include "aggregation/service.h"

#include "common/expect.h"

namespace cfds {

AggregationAgent::AggregationAgent(Node& node, MembershipView& view,
                                   AggregationService& service)
    : node_(node), view_(view), service_(service) {
  node_.add_frame_handler(
      [](void* self, const Reception& reception) {
        static_cast<AggregationAgent*>(self)->on_frame(reception);
      },
      this);
}

void AggregationAgent::readings_epoch_begin(std::uint64_t epoch) {
  readings_.clear();
  readings_epoch_ = epoch;
}

void AggregationAgent::send_measurement(std::uint64_t epoch) {
  if (!node_.alive()) return;
  auto measurement = std::make_shared<MeasurementPayload>();
  measurement->sender = node_.id();
  measurement->marked = node_.marked();
  measurement->reading = service_.sensor()(node_.id(), epoch);
  node_.radio().send(std::move(measurement));
}

void AggregationAgent::publish_cluster_aggregate(std::uint64_t epoch) {
  if (!node_.alive() || !view_.is_clusterhead()) return;
  Aggregate aggregate;
  aggregate.add(service_.sensor()(node_.id(), epoch));  // own reading
  if (readings_epoch_ == epoch) {
    for (const auto& [member, reading] : readings_) {
      if (view_.cluster()->is_member(member)) aggregate.add(reading);
    }
  }
  const auto key = std::make_pair(epoch, view_.cluster()->id);
  table_[key] = aggregate;
  relayed_.insert(key);  // our own: broadcast below, never re-relay

  auto payload = std::make_shared<ClusterAggregatePayload>();
  payload->cluster = view_.cluster()->id;
  payload->sender = node_.id();
  payload->epoch = epoch;
  payload->aggregate = aggregate;
  if (const BackboneRouting* routing = service_.routing()) {
    payload->directed = true;
    if (const auto hop = routing->next_hop(view_.cluster()->id)) {
      payload->toward = *hop;
    }
  }
  node_.radio().send(std::move(payload));
}

std::vector<Aggregate> AggregationAgent::aggregates_for(
    std::uint64_t epoch) const {
  std::vector<Aggregate> out;
  for (const auto& [key, aggregate] : table_) {
    if (key.first == epoch) out.push_back(aggregate);
  }
  return out;
}

Aggregate AggregationAgent::global_view(std::uint64_t epoch) const {
  Aggregate merged;
  for (const Aggregate& aggregate : aggregates_for(epoch)) {
    merged.merge(aggregate);
  }
  return merged;
}

void AggregationAgent::on_frame(const Reception& reception) {
  if (!node_.alive()) return;

  if (const auto* measurement =
          payload_cast<MeasurementPayload>(reception.payload)) {
    // Only the CH folds readings (members overhear but don't aggregate).
    if (!view_.is_clusterhead()) return;
    // Epoch inference: readings are tagged by arrival; the service clears
    // the buffer at each epoch start via readings_epoch_.
    readings_[measurement->sender] = measurement->reading;
    return;
  }

  if (auto aggregate =
          payload_cast_shared<ClusterAggregatePayload>(reception.payload)) {
    handle_cluster_aggregate(aggregate);
    return;
  }
}

void AggregationAgent::handle_cluster_aggregate(
    const std::shared_ptr<const ClusterAggregatePayload>& payload) {
  if (!view_.affiliated()) return;
  const auto key = std::make_pair(payload->epoch, payload->cluster);
  table_.emplace(key, payload->aggregate);

  const ClusterId home = view_.cluster()->id;
  if (view_.is_clusterhead()) {
    if (payload->cluster == home) return;
    if (payload->directed) {
      // Directed mode: unless we ARE the sink, pass it along our own next
      // hop (a fresh emission the gateways on that link will carry).
      const BackboneRouting* routing = service_.routing();
      if (routing == nullptr || home == routing->sink()) return;
      if (!relayed_.insert(key).second) return;
      auto copy = std::make_shared<ClusterAggregatePayload>(*payload);
      copy->sender = node_.id();
      copy->toward = routing->next_hop(home).value_or(ClusterId::invalid());
      if (copy->toward.is_valid()) node_.radio().send(std::move(copy));
      return;
    }
    // Flooding mode: first sight of a foreign cluster's aggregate is
    // re-broadcast once so our own gateways carry it onward.
    if (relayed_.insert(key).second) {
      auto copy = std::make_shared<ClusterAggregatePayload>(*payload);
      copy->sender = node_.id();
      node_.radio().send(std::move(copy));
    }
    return;
  }

  // Gateway side: carry the frame across a link (one shot, no
  // acknowledgements — a lost epoch summary is superseded next epoch).
  for (const MembershipView::LinkRole& role : view_.my_links()) {
    if (role.rank != 0) continue;  // only the primary GW relays aggregates
    const GatewayLink& link = *role.link;
    // The cluster the emitting CH belongs to, seen from this link's ends.
    const bool from_neighbor = payload->sender == link.neighbor_clusterhead;
    const bool from_home = payload->sender == view_.cluster()->clusterhead;
    if (!from_neighbor && !from_home) continue;
    const ClusterId far_side = from_home ? link.neighbor_cluster : home;
    // Directed mode: only the link leading to `toward` carries the frame.
    if (payload->directed && payload->toward != far_side) continue;
    // One carry per (epoch, origin cluster, destination) through this node.
    if (!gw_carried_.insert({key.first, key.second, far_side}).second) {
      continue;
    }
    auto copy = std::make_shared<ClusterAggregatePayload>(*payload);
    copy->sender = node_.id();
    node_.radio().send(std::move(copy), from_neighbor
                                            ? view_.cluster()->clusterhead
                                            : link.neighbor_clusterhead);
  }
}

AggregationService::AggregationService(Network& network, FdsService& fds,
                                       std::vector<MembershipView*> views,
                                       SensorModel sensor)
    : network_(network), fds_(fds), sensor_(std::move(sensor)) {
  CFDS_EXPECT(bool(sensor_), "sensor model required");
  for (Node* node : network_.nodes()) {
    const std::size_t idx = node->id().value();
    CFDS_EXPECT(idx < views.size() && views[idx] != nullptr,
                "missing membership view");
    agents_.push_back(
        std::make_unique<AggregationAgent>(*node, *views[idx], *this));
  }
}

std::vector<AggregationAgent*> AggregationService::agents() {
  std::vector<AggregationAgent*> out;
  out.reserve(agents_.size());
  for (auto& a : agents_) out.push_back(a.get());
  return out;
}

AggregationAgent& AggregationService::agent_for(NodeId id) {
  for (auto& a : agents_) {
    if (a->id() == id) return *a;
  }
  CFDS_EXPECT(false, "no aggregation agent for node id");
  __builtin_unreachable();
}

void AggregationService::schedule_epoch(std::uint64_t epoch, SimTime t) {
  // FDS first: its begin_epoch events land before our measurement sends at
  // the same timestamp, so measurements count as this epoch's heartbeats.
  fds_.schedule_epoch(epoch, t);
  Simulator& sim = network_.simulator();
  const SimTime t_hop = network_.channel().config().t_hop;
  sim.schedule_at(t, [this, epoch] {
    for (auto& agent : agents_) {
      agent->readings_epoch_begin(epoch);
      agent->send_measurement(epoch);
    }
  });
  sim.schedule_at(t + 2 * t_hop, [this, epoch] {
    for (auto& agent : agents_) agent->publish_cluster_aggregate(epoch);
  });
}

SimTime AggregationService::run_epochs(std::uint64_t count, SimTime start) {
  const SimTime interval = fds_.config().heartbeat_interval;
  for (std::uint64_t k = 0; k < count; ++k) {
    schedule_epoch(k, start + std::int64_t(k) * interval);
  }
  const SimTime end = start + std::int64_t(count) * interval;
  network_.simulator().run_until(end);
  return end;
}

}  // namespace cfds
