// Cluster-based data aggregation with FDS piggybacking (Section 6).
//
// Per FDS execution:
//   fds.R-1   every node emits a MeasurementPayload — which IS its
//             heartbeat (set FdsConfig::external_heartbeats so the FDS
//             doesn't emit a redundant bare heartbeat);
//   T+2*Thop  each CH folds the readings it heard from its members into a
//             cluster Aggregate and broadcasts it;
//   backbone  gateways forward cluster aggregates across links; CHs
//             re-broadcast first-seen (cluster, epoch) aggregates, flooding
//             every cluster's summary to every CH.
//
// Any CH can then answer global average/min/max queries from its table of
// per-cluster aggregates. Aggregate frames are fire-and-forget (a lost
// epoch summary is superseded next epoch), unlike failure reports, which
// carry the Section 4.3 acknowledgement machinery.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "aggregation/messages.h"
#include "cluster/membership.h"
#include "fds/agent.h"
#include "intercluster/routing.h"
#include "net/network.h"

namespace cfds {

/// Supplies node readings: (node, epoch) -> measurement value.
using SensorModel = std::function<double(NodeId, std::uint64_t)>;

class AggregationService;

class AggregationAgent {
 public:
  AggregationAgent(Node& node, MembershipView& view,
                   AggregationService& service);

  [[nodiscard]] NodeId id() const { return node_.id(); }

  /// Clears the per-epoch reading buffer (epoch-start action).
  void readings_epoch_begin(std::uint64_t epoch);

  /// Emits this epoch's measurement (R-1 action).
  void send_measurement(std::uint64_t epoch);

  /// CH action at T+2*Thop: fold heard readings, broadcast the aggregate.
  void publish_cluster_aggregate(std::uint64_t epoch);

  /// Per-cluster aggregates this node has collected for `epoch`
  /// (meaningful at CHs; members only hold their own cluster's).
  [[nodiscard]] std::vector<Aggregate> aggregates_for(
      std::uint64_t epoch) const;

  /// Merged global view for `epoch` from every cluster aggregate known here.
  [[nodiscard]] Aggregate global_view(std::uint64_t epoch) const;

 private:
  void on_frame(const Reception& reception);
  void handle_cluster_aggregate(
      const std::shared_ptr<const ClusterAggregatePayload>& payload);

  Node& node_;
  MembershipView& view_;
  AggregationService& service_;

  /// Member readings heard this epoch (CH side): member -> reading.
  std::map<NodeId, double> readings_;
  std::uint64_t readings_epoch_ = 0;

  /// Known cluster aggregates: (epoch, cluster) -> aggregate.
  std::map<std::pair<std::uint64_t, ClusterId>, Aggregate> table_;
  /// Flood dedup: aggregates already re-broadcast / forwarded.
  std::set<std::pair<std::uint64_t, ClusterId>> relayed_;
  /// Gateway dedup: (epoch, origin cluster, destination cluster) carried.
  std::set<std::tuple<std::uint64_t, ClusterId, ClusterId>> gw_carried_;
};

class AggregationService {
 public:
  /// Requires the FdsService so epochs co-schedule; set
  /// FdsConfig::external_heartbeats before constructing the FdsService for
  /// the message-sharing mode, or leave it false to run both layers with
  /// separate frames (the configuration the sharing bench compares against).
  AggregationService(Network& network, FdsService& fds,
                     std::vector<MembershipView*> views, SensorModel sensor);

  [[nodiscard]] std::vector<AggregationAgent*> agents();
  [[nodiscard]] AggregationAgent& agent_for(NodeId id);
  [[nodiscard]] const SensorModel& sensor() const { return sensor_; }
  [[nodiscard]] Network& network() { return network_; }

  /// Switches dissemination from backbone flooding to next-hop routing
  /// toward `routing->sink()` (Section 2.4's pluggable routing layer).
  /// The routing object must outlive the service; nullptr restores flooding.
  void set_routing(const BackboneRouting* routing) { routing_ = routing; }
  [[nodiscard]] const BackboneRouting* routing() const { return routing_; }

  /// Schedules one joint FDS + aggregation execution at `t`.
  void schedule_epoch(std::uint64_t epoch, SimTime t);

  /// Schedules `count` executions and runs past them.
  SimTime run_epochs(std::uint64_t count, SimTime start);

 private:
  Network& network_;
  FdsService& fds_;
  SensorModel sensor_;
  const BackboneRouting* routing_ = nullptr;
  std::vector<std::unique_ptr<AggregationAgent>> agents_;
};

}  // namespace cfds
