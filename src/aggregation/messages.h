// Frame payloads of the aggregation layer.

#pragma once

#include "aggregation/types.h"
#include "common/ids.h"
#include "fds/messages.h"

namespace cfds {

/// A sensor reading emitted in fds.R-1. Derives from HeartbeatPayload so
/// the FDS accepts it as heartbeat evidence unchanged — one frame serves
/// both services (the "message sharing" energy benefit of Section 6).
struct MeasurementPayload final : HeartbeatPayload {
  static constexpr PayloadKind kTag = PayloadKind::kMeasurement;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  MeasurementPayload() : HeartbeatPayload(kTag) {}

  double reading = 0.0;

  [[nodiscard]] std::string_view kind() const override { return "measure"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 14; }
};

/// A cluster's per-epoch aggregate, broadcast by its CH. Two dissemination
/// modes: flooded across the backbone (every CH learns every aggregate), or
/// — when `directed` — routed hop by hop toward a sink cluster.
struct ClusterAggregatePayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kClusterAggregate;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  ClusterAggregatePayload() : Payload(kTag) {}

  ClusterId cluster;
  NodeId sender;
  std::uint64_t epoch = 0;
  Aggregate aggregate;
  /// Directed mode: only gateways on the (emitting cluster, toward) link
  /// carry the frame. `toward` invalid with `directed` set means the
  /// emitter is the sink (or has no route): no forwarding at all.
  bool directed = false;
  ClusterId toward;

  [[nodiscard]] std::string_view kind() const override { return "agg"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 50; }
};

}  // namespace cfds
