// Aggregate algebra for in-network computation.
//
// Section 6: "cluster-based communication architectures can also be utilized
// for scalable, robust aggregation (e.g., coordinated in-network computation
// for average, maximum, or minimum of sensor measurements)". The Aggregate
// is a commutative monoid (merge is associative and commutative with an
// empty identity), so partial aggregates can combine in any order along the
// backbone.

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace cfds {

/// Running summary of a set of sensor readings: supports average, min, max.
struct Aggregate {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Folds one reading in.
  void add(double reading) {
    ++count;
    sum += reading;
    min = std::min(min, reading);
    max = std::max(max, reading);
  }

  /// Combines two partial aggregates.
  void merge(const Aggregate& other) {
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] double average() const {
    return count > 0 ? sum / double(count) : 0.0;
  }

  friend bool operator==(const Aggregate&, const Aggregate&) = default;
};

}  // namespace cfds
