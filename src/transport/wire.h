// Binary wire format for FDS frames (service mode).
//
// In simulation, payloads travel as shared_ptr<const Payload> and never
// leave the process. Service mode sends them between processes over UDP (or
// between threads over the loopback transport), so every FDS payload type
// gets a canonical little-endian encoding here.
//
// Frame layout:
//
//   [magic u16 = 0xCFD5] [version u8 = 2] [kind u8] [sender u32] [intended u32]
//   [payload body, kind-specific]
//
// Version history:
//   1  initial service-mode format
//   2  health-update body gains the self-tuning trailer (cluster_loss_pm
//      u16, tune_level u8); new kCheckpoint frame
//
// `kind` is the PayloadKind tag value. `sender`/`intended` mirror the
// Reception addressing of the simulated channel: `intended` is the NID the
// frame is addressed to, or NodeId::invalid() for a plain broadcast —
// receivers still see every frame (promiscuous overhearing is part of the
// protocol), the field only distinguishes "addressed to me" frames.
//
// All integers are little-endian fixed-width. Vectors are a u16 element
// count followed by the elements. Decoding is total: any truncated,
// malformed, or unknown-kind buffer yields `false`, never UB — the UDP
// socket is an open port and must tolerate garbage.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "radio/payload.h"

namespace cfds::wire {

inline constexpr std::uint16_t kMagic = 0xCFD5;
inline constexpr std::uint8_t kVersion = 2;
/// Bytes before the kind-specific payload body.
inline constexpr std::size_t kHeaderSize = 12;

/// A frame parsed off the wire: channel-level addressing plus the payload.
struct DecodedFrame {
  NodeId sender;
  NodeId intended;  ///< invalid() for broadcast frames
  PayloadPtr payload;
};

/// Appends the full frame (header + payload body) for `payload` to `out`
/// (existing contents are preserved, so one buffer can be reused per send).
/// Returns false if the payload kind has no wire encoding (non-FDS frames
/// never travel in service mode).
[[nodiscard]] bool encode_frame(NodeId sender, NodeId intended,
                                const Payload& payload,
                                std::vector<std::uint8_t>* out);

/// Parses one frame. Returns false on any malformed input: wrong magic or
/// version, unknown kind, truncated body, or trailing bytes.
[[nodiscard]] bool decode_frame(const std::uint8_t* data, std::size_t len,
                                DecodedFrame* out);

}  // namespace cfds::wire
