#include "transport/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/expect.h"
#include "transport/reception.h"
#include "transport/wire.h"

namespace cfds {

struct UdpTransport::PeerAddr {
  sockaddr_in addr;
};

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(NodeId self, std::uint16_t port_base,
                           std::uint32_t n_nodes)
    : self_(self) {
  CFDS_EXPECT(self.is_valid() && self.value() < n_nodes,
              "udp transport: self NID out of range");
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("udp: socket() failed: ") +
                             std::strerror(errno));
  }
  const std::uint16_t my_port =
      static_cast<std::uint16_t>(port_base + self.value());
  sockaddr_in me = loopback_addr(my_port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&me), sizeof(me)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("udp: bind(127.0.0.1:" +
                             std::to_string(my_port) +
                             ") failed: " + std::strerror(err));
  }
  // A 200-process soak multiplies every broadcast by the peer count, and
  // heartbeats arrive as one epoch-aligned burst (~0.5 MB of skb truesize
  // at n=200). Worse, a process starved of CPU for a few epochs must find
  // every one of those bursts still queued when it resumes — RcvbufErrors
  // here silently eat the scheduled updates members need to stay
  // affiliated. Ask for the largest buffer the kernel will grant
  // (clamped to net.core.rmem_max). Best-effort: the default still works.
  const int rcvbuf = 4 << 20;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  peers_.reserve(n_nodes - 1);
  for (std::uint32_t nid = 0; nid < n_nodes; ++nid) {
    if (nid == self.value()) continue;
    peers_.push_back(PeerAddr{
        loopback_addr(static_cast<std::uint16_t>(port_base + nid))});
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::send(PayloadPtr payload, NodeId intended) {
  if (!powered_) return;
  scratch_.clear();
  if (!wire::encode_frame(self_, intended, *payload, &scratch_)) return;
  // One batched syscall per chunk instead of one sendto per peer: every
  // round tick, every endpoint broadcasts at once, so the per-peer syscall
  // storm (n sends x n processes) is what blows the one-hop latency bound
  // on a loaded machine. A failed slot means that one datagram is gone —
  // transiently (ENOBUFS) or because the peer's port is unbound (peer
  // crashed) — exactly a lost radio frame; skip it and batch the rest.
  constexpr std::size_t kBatch = 128;
  iovec iov{scratch_.data(), scratch_.size()};
  std::array<mmsghdr, kBatch> batch;
  std::size_t at = 0;
  while (at < peers_.size()) {
    const std::size_t n = std::min(kBatch, peers_.size() - at);
    for (std::size_t i = 0; i < n; ++i) {
      std::memset(&batch[i], 0, sizeof(mmsghdr));
      batch[i].msg_hdr.msg_iov = &iov;
      batch[i].msg_hdr.msg_iovlen = 1;
      batch[i].msg_hdr.msg_name =
          const_cast<sockaddr_in*>(&peers_[at + i].addr);
      batch[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    }
    const int sent = ::sendmmsg(fd_, batch.data(), static_cast<unsigned>(n), 0);
    if (sent < 0) {
      ++at;  // the head slot failed: drop that one frame, batch the rest
    } else if (static_cast<std::size_t>(sent) < n) {
      at += static_cast<std::size_t>(sent) + 1;  // slot `sent` failed
    } else {
      at += n;
    }
  }
}

void UdpTransport::add_receive_handler(RawReceiveHandler handler, void* ctx) {
  CFDS_EXPECT(handler_count_ < kMaxHandlers, "udp handler table full");
  handlers_[handler_count_++] = Handler{handler, ctx};
}

void UdpTransport::set_powered(bool on) { powered_ = on; }

bool UdpTransport::wait(SimTime max_wait) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const std::int64_t us = max_wait.as_micros();
  const int timeout_ms =
      us <= 0 ? 0 : static_cast<int>((us + 999) / 1000);  // round up
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & POLLIN) != 0;
}

std::size_t UdpTransport::drain(SimTime now) {
  // Batched receive, for the same reason send() batches: the epoch-aligned
  // heartbeat burst is hundreds of tiny datagrams, and draining them one
  // recvfrom at a time costs a kernel entry each. 4 KiB per slot fits the
  // largest wire frame (a full-roster health update) with headroom.
  constexpr std::size_t kBatch = 32;
  constexpr std::size_t kBufSize = 4096;
  std::array<std::array<std::uint8_t, kBufSize>, kBatch> bufs;
  std::array<iovec, kBatch> iovs;
  std::array<mmsghdr, kBatch> batch;
  std::size_t dispatched = 0;
  for (;;) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      iovs[i] = iovec{bufs[i].data(), kBufSize};
      std::memset(&batch[i], 0, sizeof(mmsghdr));
      batch[i].msg_hdr.msg_iov = &iovs[i];
      batch[i].msg_hdr.msg_iovlen = 1;
    }
    const int got =
        ::recvmmsg(fd_, batch.data(), kBatch, 0, nullptr);
    if (got <= 0) break;  // EAGAIN/EWOULDBLOCK: drained
    for (int slot = 0; slot < got; ++slot) {
      if (!powered_) continue;  // read-and-discard keeps the buffer fresh
      wire::DecodedFrame frame;
      if (!wire::decode_frame(bufs[static_cast<std::size_t>(slot)].data(),
                              batch[static_cast<std::size_t>(slot)].msg_len,
                              &frame)) {
        continue;
      }
      if (frame.sender == self_) continue;  // defensive: no self-delivery
      Reception reception;
      reception.sender = frame.sender;
      reception.intended = frame.intended;
      reception.payload = std::move(frame.payload);
      reception.sent_at = now;
      for (std::size_t i = 0; i < handler_count_; ++i) {
        handlers_[i].fn(handlers_[i].ctx, reception);
      }
      ++dispatched;
    }
    if (static_cast<std::size_t>(got) < kBatch) break;  // socket drained
  }
  return dispatched;
}

}  // namespace cfds
