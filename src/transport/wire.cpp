#include "transport/wire.h"

#include <memory>
#include <utility>

#include "fds/messages.h"

namespace cfds::wire {
namespace {

// --- primitive writers ----------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v & 0xFFU));
    u8(static_cast<std::uint8_t>(v >> 8U));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xFFFFU));
    u16(static_cast<std::uint16_t>(v >> 16U));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFU));
    u32(static_cast<std::uint32_t>(v >> 32U));
  }
  void node(NodeId id) { u32(id.value()); }
  void cluster(ClusterId id) { u32(id.value()); }
  void report(ReportId id) { u64(id.value()); }
  void boolean(bool v) { u8(v ? 1U : 0U); }

  void nodes(const std::vector<NodeId>& v) {
    u16(static_cast<std::uint16_t>(v.size()));
    for (NodeId id : v) node(id);
  }
  void reports(const std::vector<ReportId>& v) {
    u16(static_cast<std::uint16_t>(v.size()));
    for (ReportId id : v) report(id);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// --- primitive readers ----------------------------------------------------

/// Cursor over the frame body. Every accessor returns a defined value even
/// after a short read; `ok()` reports whether all reads were in-bounds, so
/// callers validate once at the end instead of checking every field.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : p_(data), end_(data + len) {}

  std::uint8_t u8() {
    if (p_ == end_) {
      ok_ = false;
      return 0;
    }
    return *p_++;
  }
  std::uint16_t u16() {
    const auto lo = static_cast<std::uint16_t>(u8());
    const auto hi = static_cast<std::uint16_t>(u8());
    return static_cast<std::uint16_t>(lo | static_cast<std::uint16_t>(hi << 8U));
  }
  std::uint32_t u32() {
    const auto lo = static_cast<std::uint32_t>(u16());
    const auto hi = static_cast<std::uint32_t>(u16());
    return lo | (hi << 16U);
  }
  std::uint64_t u64() {
    const auto lo = static_cast<std::uint64_t>(u32());
    const auto hi = static_cast<std::uint64_t>(u32());
    return lo | (hi << 32U);
  }
  NodeId node() { return NodeId{u32()}; }
  ClusterId cluster() { return ClusterId{u32()}; }
  ReportId report() { return ReportId{u64()}; }
  bool boolean() { return u8() != 0; }

  void nodes(std::vector<NodeId>* out) {
    const std::uint16_t n = u16();
    if (remaining() < static_cast<std::size_t>(n) * 4) {
      ok_ = false;
      return;
    }
    out->reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) out->push_back(node());
  }
  void reports(std::vector<ReportId>* out) {
    const std::uint16_t n = u16();
    if (remaining() < static_cast<std::size_t>(n) * 8) {
      ok_ = false;
      return;
    }
    out->reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) out->push_back(report());
  }

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  [[nodiscard]] bool done() const { return ok_ && p_ == end_; }
  [[nodiscard]] bool ok() const { return ok_; }
  void fail() { ok_ = false; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

// --- per-type bodies ------------------------------------------------------

void encode_body(Writer& w, const HeartbeatPayload& p) {
  w.node(p.sender);
  w.boolean(p.marked);
  w.u32(p.incarnation);
}

void encode_body(Writer& w, const LeaveNoticePayload& p) { w.node(p.sender); }

void encode_body(Writer& w, const SleepNoticePayload& p) {
  w.node(p.sender);
  w.u32(p.epochs);
}

void encode_body(Writer& w, const DigestPayload& p) {
  w.node(p.sender);
  w.cluster(p.cluster);
  w.nodes(p.heard);
  w.u16(static_cast<std::uint16_t>(p.sleeping.size()));
  for (const auto& [who, epochs] : p.sleeping) {
    w.node(who);
    w.u32(epochs);
  }
}

void encode_body(Writer& w, const HealthUpdatePayload& p) {
  w.cluster(p.cluster);
  w.node(p.sender);
  w.u64(p.epoch);
  w.nodes(p.newly_failed);
  w.nodes(p.all_failed);
  w.nodes(p.admitted);
  w.nodes(p.departed);
  w.nodes(p.members_snapshot);
  w.boolean(p.takeover);
  w.nodes(p.sender_heard);
  w.report(p.report);
  w.reports(p.acks);
  w.cluster(p.learned_from);
  // v2 self-tuning trailer (zeros when adaptive detection is off).
  w.u16(p.cluster_loss_pm);
  w.u8(p.tune_level);
}

void encode_body(Writer& w, const UpdateRequestPayload& p) {
  w.node(p.sender);
  w.cluster(p.cluster);
  w.u64(p.epoch);
}

void encode_body(Writer& w, const UpdateForwardPayload& p) {
  w.node(p.forwarder);
  w.node(p.target);
  // The nested update travels inline; presence flag guards a null pointer
  // (never sent by the protocol, but the codec must not crash on one).
  w.boolean(p.update != nullptr);
  if (p.update != nullptr) encode_body(w, *p.update);
}

void encode_body(Writer& w, const UpdateAckPayload& p) {
  w.node(p.sender);
  w.u64(p.epoch);
}

void encode_body(Writer& w, const CheckpointPayload& p) {
  w.cluster(p.cluster);
  w.node(p.sender);
  w.u64(p.epoch);
  w.u64(p.seq);
  w.node(p.clusterhead);
  w.nodes(p.members);
  w.nodes(p.deputies);
  w.nodes(p.failed);
}

std::shared_ptr<HeartbeatPayload> decode_heartbeat(Reader& r) {
  auto p = std::make_shared<HeartbeatPayload>();
  p->sender = r.node();
  p->marked = r.boolean();
  p->incarnation = r.u32();
  return p;
}

std::shared_ptr<LeaveNoticePayload> decode_leave(Reader& r) {
  auto p = std::make_shared<LeaveNoticePayload>();
  p->sender = r.node();
  return p;
}

std::shared_ptr<SleepNoticePayload> decode_sleep(Reader& r) {
  auto p = std::make_shared<SleepNoticePayload>();
  p->sender = r.node();
  p->epochs = r.u32();
  return p;
}

std::shared_ptr<DigestPayload> decode_digest(Reader& r) {
  auto p = std::make_shared<DigestPayload>();
  p->sender = r.node();
  p->cluster = r.cluster();
  r.nodes(&p->heard);
  const std::uint16_t n = r.u16();
  if (r.remaining() < static_cast<std::size_t>(n) * 8) {
    r.fail();
    return p;
  }
  p->sleeping.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    const NodeId who = r.node();
    const std::uint32_t epochs = r.u32();
    p->sleeping.emplace_back(who, epochs);
  }
  return p;
}

std::shared_ptr<HealthUpdatePayload> decode_update(Reader& r) {
  auto p = std::make_shared<HealthUpdatePayload>();
  p->cluster = r.cluster();
  p->sender = r.node();
  p->epoch = r.u64();
  r.nodes(&p->newly_failed);
  r.nodes(&p->all_failed);
  r.nodes(&p->admitted);
  r.nodes(&p->departed);
  r.nodes(&p->members_snapshot);
  p->takeover = r.boolean();
  r.nodes(&p->sender_heard);
  p->report = r.report();
  r.reports(&p->acks);
  p->learned_from = r.cluster();
  p->cluster_loss_pm = r.u16();
  p->tune_level = r.u8();
  return p;
}

std::shared_ptr<UpdateRequestPayload> decode_request(Reader& r) {
  auto p = std::make_shared<UpdateRequestPayload>();
  p->sender = r.node();
  p->cluster = r.cluster();
  p->epoch = r.u64();
  return p;
}

std::shared_ptr<UpdateForwardPayload> decode_forward(Reader& r) {
  auto p = std::make_shared<UpdateForwardPayload>();
  p->forwarder = r.node();
  p->target = r.node();
  if (r.boolean()) p->update = decode_update(r);
  return p;
}

std::shared_ptr<UpdateAckPayload> decode_ack(Reader& r) {
  auto p = std::make_shared<UpdateAckPayload>();
  p->sender = r.node();
  p->epoch = r.u64();
  return p;
}

std::shared_ptr<CheckpointPayload> decode_checkpoint(Reader& r) {
  auto p = std::make_shared<CheckpointPayload>();
  p->cluster = r.cluster();
  p->sender = r.node();
  p->epoch = r.u64();
  p->seq = r.u64();
  p->clusterhead = r.node();
  r.nodes(&p->members);
  r.nodes(&p->deputies);
  r.nodes(&p->failed);
  return p;
}

}  // namespace

bool encode_frame(NodeId sender, NodeId intended, const Payload& payload,
                  std::vector<std::uint8_t>* out) {
  const std::size_t mark = out->size();
  Writer w(*out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(payload.tag()));
  w.node(sender);
  w.node(intended);
  switch (payload.tag()) {
    case PayloadKind::kHeartbeat:
    case PayloadKind::kMeasurement:
      // A measurement IS a heartbeat for FDS purposes (Section 6 message
      // sharing); service mode carries only its heartbeat fields.
      encode_body(w, static_cast<const HeartbeatPayload&>(payload));
      return true;
    case PayloadKind::kLeaveNotice:
      encode_body(w, static_cast<const LeaveNoticePayload&>(payload));
      return true;
    case PayloadKind::kSleepNotice:
      encode_body(w, static_cast<const SleepNoticePayload&>(payload));
      return true;
    case PayloadKind::kDigest:
      encode_body(w, static_cast<const DigestPayload&>(payload));
      return true;
    case PayloadKind::kHealthUpdate:
      encode_body(w, static_cast<const HealthUpdatePayload&>(payload));
      return true;
    case PayloadKind::kUpdateRequest:
      encode_body(w, static_cast<const UpdateRequestPayload&>(payload));
      return true;
    case PayloadKind::kUpdateForward:
      encode_body(w, static_cast<const UpdateForwardPayload&>(payload));
      return true;
    case PayloadKind::kUpdateAck:
      encode_body(w, static_cast<const UpdateAckPayload&>(payload));
      return true;
    case PayloadKind::kCheckpoint:
      encode_body(w, static_cast<const CheckpointPayload&>(payload));
      return true;
    default:
      // Un-encoded frame kinds (formation, aggregation, baselines) never
      // travel in service mode; drop the partial header we wrote.
      out->resize(mark);
      return false;
  }
}

bool decode_frame(const std::uint8_t* data, std::size_t len,
                  DecodedFrame* out) {
  if (len < kHeaderSize) return false;
  Reader r(data, len);
  if (r.u16() != kMagic) return false;
  if (r.u8() != kVersion) return false;
  const std::uint8_t kind = r.u8();
  out->sender = r.node();
  out->intended = r.node();
  switch (static_cast<PayloadKind>(kind)) {
    case PayloadKind::kHeartbeat:
    case PayloadKind::kMeasurement:
      // Only the heartbeat fields travel (see encode_frame); the receiver
      // gets a plain heartbeat either way.
      out->payload = decode_heartbeat(r);
      break;
    case PayloadKind::kLeaveNotice:
      out->payload = decode_leave(r);
      break;
    case PayloadKind::kSleepNotice:
      out->payload = decode_sleep(r);
      break;
    case PayloadKind::kDigest:
      out->payload = decode_digest(r);
      break;
    case PayloadKind::kHealthUpdate:
      out->payload = decode_update(r);
      break;
    case PayloadKind::kUpdateRequest:
      out->payload = decode_request(r);
      break;
    case PayloadKind::kUpdateForward:
      out->payload = decode_forward(r);
      break;
    case PayloadKind::kUpdateAck:
      out->payload = decode_ack(r);
      break;
    case PayloadKind::kCheckpoint:
      out->payload = decode_checkpoint(r);
      break;
    default:
      return false;
  }
  if (!r.done()) {
    out->payload.reset();
    return false;
  }
  return true;
}

}  // namespace cfds::wire
