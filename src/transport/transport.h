// Transport and clock abstraction: the seam between the protocol agents
// and whatever carries their frames and fires their timers.
//
// The paper describes CFDS as a *service* for ad hoc network applications;
// the protocol core (FdsAgent, FormationAgent, ForwarderAgent) must not
// care whether it runs inside the discrete-event simulator or as a real
// process. These two interfaces are that seam:
//
//   Transport     async send/receive of FDS payloads with per-peer
//                 addressing and broadcast (intended = NodeId::invalid()),
//                 promiscuous delivery included — every implementation
//                 hands overheard frames to the handlers too, because the
//                 protocol's redundancy argument (Section 4) depends on it.
//   TimerService  the protocol's only clock and timer source. SimTime is
//                 reused as the time type in service mode: there it means
//                 "microseconds since this process's epoch anchor" rather
//                 than simulated time, and EventFn/TimerHandle are reused
//                 verbatim so agent timer state is identical in both modes.
//
// Implementations:
//   SimTransport / SimTimerService   adapter over Radio/Channel/Simulator —
//                                    byte-identical to the pre-abstraction
//                                    direct path (src/transport/sim_transport.h)
//   LoopbackTransport                in-process queues between threads
//                                    (src/transport/loopback.h)
//   UdpTransport                     nonblocking UDP sockets on loopback
//                                    (src/transport/udp.h)
//   RealTimeScheduler                TimerService over the monotonic clock,
//                                    embedding a Simulator as its timer
//                                    wheel (src/transport/real_time.h)
//   FilteredTransport                fault-injection decorator applying a
//                                    DropFilter + seeded loss to any inner
//                                    transport (src/transport/filtered_transport.h)

#pragma once

#include "common/ids.h"
#include "common/sim_time.h"
#include "event/simulator.h"
#include "transport/reception.h"

namespace cfds {

/// Carries frames between agents. Handlers fire on every frame the local
/// endpoint hears — addressed or overheard — in registration order.
class Transport {
 public:
  /// Per-delivery handler: a raw function pointer plus an opaque context,
  /// matching Radio::RawReceiveHandler so agents register the same
  /// trampolines in simulation and in service mode.
  using RawReceiveHandler = void (*)(void* ctx, const Reception& reception);

  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Emits a frame. `intended` marks the addressed recipient
  /// (invalid() = broadcast); it does not restrict who hears the frame,
  /// only what receivers see in Reception::intended.
  virtual void send(PayloadPtr payload, NodeId intended = NodeId::invalid()) = 0;

  /// Registers a receive handler. Handlers are permanent (agents live as
  /// long as their transport) and fire in registration order.
  virtual void add_receive_handler(RawReceiveHandler handler, void* ctx) = 0;

  /// A powered-off endpoint neither sends nor receives (fail-stop crash,
  /// sleep mode). Mirrors Radio::set_powered.
  virtual void set_powered(bool on) = 0;
  [[nodiscard]] virtual bool powered() const = 0;

 protected:
  Transport() = default;
};

/// Read-only clock. In simulation this is simulated time; in service mode
/// it is the monotonic microsecond count since the process's epoch anchor.
class Clock {
 public:
  virtual ~Clock() = default;

  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  [[nodiscard]] virtual SimTime now() const = 0;

 protected:
  Clock() = default;
};

/// Clock plus cancellable one-shot timers. EventFn and TimerHandle are the
/// simulator kernel's types, reused verbatim: a TimerHandle minted by a
/// RealTimeScheduler cancels through the same slot/generation mechanism as
/// one minted by the Simulator directly, so agent timer state
/// (deputy_timer_, pending_forwards_, ...) is mode-independent.
class TimerService : public Clock {
 public:
  virtual TimerHandle schedule_at(SimTime when, EventFn action) = 0;
  virtual TimerHandle schedule_after(SimTime delay, EventFn action) = 0;
};

}  // namespace cfds
