// TimerService over the wall clock (service mode).
//
// In simulation, SimTime is virtual time owned by the Simulator. In service
// mode the same SimTime type is reinterpreted as "microseconds since the
// process's epoch anchor": RealTimeScheduler maps the monotonic clock onto
// that axis, so protocol code written against TimerService (FdsAgent and
// friends) runs unchanged against real time.
//
// Rather than reinventing a timer wheel, the scheduler EMBEDS a Simulator
// and uses its calendar-queue event machinery as the pending-timer store:
// schedule_* delegates to the simulator, and run_due() advances the
// simulator's virtual clock to the current wall-clock reading, firing
// everything due. The event loop around it is:
//
//   while (running) {
//     poll(sockets, timeout = next_deadline() - now());
//     drain sockets;
//     scheduler.run_due();
//   }
//
// Single-threaded by design, like the Simulator it wraps: one scheduler per
// event loop (cfds_serve has one; the loopback soak has one per agent
// thread). now() is safe from any thread; scheduling and run_due are not.

#pragma once

#include <chrono>
#include <cstddef>

#include "common/sim_time.h"
#include "event/simulator.h"
#include "transport/transport.h"

namespace cfds {

class RealTimeScheduler final : public TimerService {
 public:
  /// Anchors SimTime `start` (default zero) to the current instant: now()
  /// reads `start + elapsed`. Daemons that must agree on epoch boundaries
  /// across processes pass the offset of this process's launch from a
  /// shared anchor timestamp (cfds_serve --anchor-us).
  explicit RealTimeScheduler(SimTime start = SimTime::zero())
      : origin_(std::chrono::steady_clock::now()), start_(start) {
    sim_.run_until(start);  // align the embedded clock with the axis origin
  }

  /// Microseconds elapsed since the anchor, plus the anchor offset.
  [[nodiscard]] SimTime now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - origin_;
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed);
    return start_ + SimTime::micros(us.count());
  }

  TimerHandle schedule_at(SimTime when, EventFn action) override {
    // The embedded simulator refuses past deadlines only by firing them on
    // the next run_due(), which is the semantics a real-time timer wants.
    const SimTime base = sim_.now();
    return sim_.schedule_at(when < base ? base : when, std::move(action));
  }

  TimerHandle schedule_after(SimTime delay, EventFn action) override {
    // Relative timers anchor at the wall clock, not at the embedded
    // simulator's clock (which only advances inside run_due).
    return schedule_at(now() + delay, std::move(action));
  }

  /// Fires every timer due at or before the current wall-clock reading.
  /// Returns the number of events executed by this call.
  std::size_t run_due() {
    const std::uint64_t before = sim_.events_executed();
    sim_.run_until(now());
    return static_cast<std::size_t>(sim_.events_executed() - before);
  }

  /// Earliest pending deadline (a lower bound: cancelled timers may still
  /// occupy queue entries). False when no timer is pending — the caller's
  /// poll may then block indefinitely on I/O.
  [[nodiscard]] bool next_deadline(SimTime* when) {
    return sim_.next_event_time(when);
  }

  [[nodiscard]] std::size_t pending_timers() const {
    return sim_.pending_events();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
  SimTime start_;
  Simulator sim_;
};

}  // namespace cfds
