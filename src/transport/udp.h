// UDP-loopback transport (service mode, multi-process).
//
// Every agent process binds one nonblocking datagram socket on
// 127.0.0.1:(port_base + NID). A broadcast is a unicast fan-out: the frame
// is serialized once and sent to every peer port — on the loopback device
// this is the closest cheap analogue of a shared radio medium, and it
// preserves the promiscuous overhearing the protocol depends on (every
// process sees every frame, `intended` in the wire header distinguishes
// addressed traffic).
//
// The owning process's event loop is:
//
//   while (running) {
//     transport.wait(scheduler-bounded timeout);   // poll() on the socket
//     transport.drain(scheduler.now());            // recvfrom until empty
//     scheduler.run_due();
//   }
//
// This file (and the rest of src/transport/) is the only place in src/
// allowed to touch sockets or poll — the cfds-lint `raw-socket` rule
// enforces the boundary.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "transport/transport.h"

namespace cfds {

/// One process's attachment to the UDP-loopback medium. Single-threaded:
/// all methods are owning-thread only.
class UdpTransport final : public Transport {
 public:
  /// Binds 127.0.0.1:(port_base + self). Peers are the other NIDs in
  /// [0, n_nodes) at their corresponding ports. Throws std::runtime_error
  /// if the socket cannot be created or bound (port collision is the one
  /// failure a soak run must surface loudly).
  UdpTransport(NodeId self, std::uint16_t port_base, std::uint32_t n_nodes);
  ~UdpTransport() override;

  // --- Transport --------------------------------------------------------
  void send(PayloadPtr payload, NodeId intended) override;
  void add_receive_handler(RawReceiveHandler handler, void* ctx) override;
  void set_powered(bool on) override;
  [[nodiscard]] bool powered() const override { return powered_; }

  // --- Receive side -----------------------------------------------------
  /// Blocks up to `max_wait` for the socket to become readable. Returns
  /// true when data is waiting.
  bool wait(SimTime max_wait);

  /// Receives until the socket is empty, decoding and dispatching each
  /// frame stamped with `now`. Malformed datagrams are dropped silently
  /// (the port is open to the host). While unpowered, datagrams are read
  /// and discarded so the kernel buffer cannot fill with stale frames.
  std::size_t drain(SimTime now);

  [[nodiscard]] NodeId id() const { return self_; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  static constexpr std::size_t kMaxHandlers = 6;

  NodeId self_;
  int fd_ = -1;
  bool powered_ = true;

  struct Handler {
    RawReceiveHandler fn = nullptr;
    void* ctx = nullptr;
  };
  Handler handlers_[kMaxHandlers];
  std::size_t handler_count_ = 0;

  /// Destination addresses of every peer, opaque to keep <netinet/in.h>
  /// out of this header (each entry holds a sockaddr_in).
  struct PeerAddr;
  std::vector<PeerAddr> peers_;

  std::vector<std::uint8_t> scratch_;  ///< send-side encode buffer
};

}  // namespace cfds
