// In-process loopback transport: threads instead of processes.
//
// One LoopbackNet is the shared broadcast medium; each agent thread owns one
// LoopbackTransport endpoint. send() serializes the payload once (the wire
// codec keeps the bytes honest — loopback exercises the same encoding UDP
// does) and appends the frame to every other endpoint's inbox; each owning
// thread alternates wait()/drain() with its RealTimeScheduler's run_due(),
// the same loop shape cfds_serve runs around a UDP socket.
//
// Threading contract (checked by tools/check_tsan.sh):
//   * send / set_powered / drain / wait — owning thread only;
//   * an endpoint's inbox is touched under its own mutex, so concurrent
//     senders and the draining owner never race;
//   * the endpoint set is fixed at LoopbackNet construction (no registry
//     locking on the frame path).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "transport/transport.h"

namespace cfds {

class LoopbackTransport;

/// The shared medium: one inbox of serialized frames per endpoint.
class LoopbackNet {
 public:
  /// Creates one endpoint per id. The set is immutable afterwards.
  explicit LoopbackNet(const std::vector<NodeId>& ids);

  LoopbackNet(const LoopbackNet&) = delete;
  LoopbackNet& operator=(const LoopbackNet&) = delete;

  [[nodiscard]] std::size_t endpoint_count() const {
    return endpoints_.size();
  }

 private:
  friend class LoopbackTransport;

  struct Endpoint {
    NodeId id;
    std::mutex mu;
    std::condition_variable cv;
    /// Serialized frames awaiting the owner's drain(). Guarded by mu.
    std::deque<std::vector<std::uint8_t>> inbox;
    /// Radio power state; an unpowered endpoint receives nothing. Guarded
    /// by mu (read by senders, written by the owner).
    bool powered = true;
  };

  /// nullptr when `id` has no endpoint.
  [[nodiscard]] Endpoint* endpoint(NodeId id);

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

/// One node's attachment to the loopback medium.
class LoopbackTransport final : public Transport {
 public:
  /// `net` must outlive the transport and already contain an endpoint for
  /// `self`.
  LoopbackTransport(LoopbackNet& net, NodeId self);

  // --- Transport (owning thread) ---------------------------------------
  void send(PayloadPtr payload, NodeId intended) override;
  void add_receive_handler(RawReceiveHandler handler, void* ctx) override;
  void set_powered(bool on) override;
  [[nodiscard]] bool powered() const override;

  // --- Receive side (owning thread) ------------------------------------
  /// Sleeps until a frame is queued or `max_wait` elapses. Returns true
  /// when the inbox is non-empty.
  bool wait(SimTime max_wait);

  /// Decodes and dispatches every queued frame; receptions are stamped
  /// with `now` (the owner's clock reading). Malformed frames and frames
  /// queued before a power-down are discarded. Returns frames dispatched.
  std::size_t drain(SimTime now);

  [[nodiscard]] NodeId id() const { return self_.id; }

 private:
  static constexpr std::size_t kMaxHandlers = 6;

  LoopbackNet& net_;
  LoopbackNet::Endpoint& self_;

  struct Handler {
    RawReceiveHandler fn = nullptr;
    void* ctx = nullptr;
  };
  Handler handlers_[kMaxHandlers];
  std::size_t handler_count_ = 0;

  /// Send-side encode buffer (owning thread only).
  std::vector<std::uint8_t> scratch_;
  /// Drain-side swap buffer (owning thread only): frames are moved out of
  /// the inbox under the lock, decoded and dispatched outside it.
  std::vector<std::vector<std::uint8_t>> pending_;
};

}  // namespace cfds
