// The frame-as-received record shared by every transport.
//
// Reception is what a protocol agent sees per frame, whether the frame
// crossed the simulated Channel, an in-process loopback queue, or a real
// UDP socket. It lives here — not in radio/channel.h — so the transport
// interface (src/transport/transport.h) does not depend on the simulated
// medium; channel.h includes this header, so existing channel users are
// unaffected.

#pragma once

#include "common/ids.h"
#include "common/sim_time.h"
#include "radio/payload.h"

namespace cfds {

/// A frame as seen by a receiver.
struct Reception {
  NodeId sender;
  /// Addressed recipient, or NodeId::invalid() for a broadcast. Receivers
  /// other than `intended` are overhearing — the inherent message redundancy
  /// the FDS exploits.
  NodeId intended;
  PayloadPtr payload;
  SimTime sent_at;
};

}  // namespace cfds
