// Receiver-side fault filtering for real transports.
//
// In simulation, the Channel consults the DropFilter (and its loss model)
// at transmit time, because the simulator sees both ends of every frame. A
// real transport has no such vantage point: each endpoint only sees what
// arrives. FilteredTransport re-creates the faulty medium at the receiver —
// every endpoint loads the SAME seeded FaultPlan, maintains its own
// DropFilter, and drops arriving frames whose (sender, receiver) verdict
// says the medium would have eaten them. The sender-side half of a
// symmetric fault (a muted sender) is equally well enforced by every
// receiver dropping that sender's frames, so one-sided filtering suffices.
//
// Bernoulli loss (`loss_p`) is drawn per arriving frame from a per-endpoint
// seeded Rng: across endpoints the draws are independent, which is exactly
// how independent per-receiver loss behaves on the simulated channel.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/expect.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "transport/drop_filter.h"
#include "transport/reception.h"
#include "transport/transport.h"

namespace cfds {

/// Wraps a real transport and applies fault-plan drops to arriving frames.
class FilteredTransport final : public Transport {
 public:
  /// Maps a NID to its (directory-assigned) position, for jam-disk checks.
  using PositionFn = Vec2 (*)(void* ctx, NodeId id);

  /// `inner` and `filter` must outlive this transport. `seed` should be
  /// derived from (plan seed, self) so endpoints draw independent loss.
  FilteredTransport(Transport& inner, const DropFilter& filter, NodeId self,
                    double loss_p, std::uint64_t seed, PositionFn position,
                    void* position_ctx)
      : inner_(inner),
        filter_(filter),
        self_(self),
        loss_p_(loss_p),
        rng_(seed),
        position_(position),
        position_ctx_(position_ctx) {
    inner_.add_receive_handler(&FilteredTransport::on_inner_frame, this);
  }

  void send(PayloadPtr payload, NodeId intended) override {
    inner_.send(std::move(payload), intended);
  }

  void add_receive_handler(RawReceiveHandler handler, void* ctx) override {
    CFDS_EXPECT(handler_count_ < kMaxHandlers,
                "filtered transport handler table full");
    handlers_[handler_count_++] = Handler{handler, ctx};
  }

  void set_powered(bool on) override { inner_.set_powered(on); }
  [[nodiscard]] bool powered() const override { return inner_.powered(); }

  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_;
  }

 private:
  static constexpr std::size_t kMaxHandlers = 6;

  static void on_inner_frame(void* ctx, const Reception& reception) {
    auto* self = static_cast<FilteredTransport*>(ctx);
    self->handle(reception);
  }

  void handle(const Reception& reception) {
    const Vec2 from = position_(position_ctx_, reception.sender);
    const Vec2 to = position_(position_ctx_, self_);
    if (filter_.drops(reception.sender, from, self_, to) ||
        (loss_p_ > 0.0 && rng_.bernoulli(loss_p_))) {
      ++frames_dropped_;
      return;
    }
    for (std::size_t i = 0; i < handler_count_; ++i) {
      handlers_[i].fn(handlers_[i].ctx, reception);
    }
  }

  Transport& inner_;
  const DropFilter& filter_;
  NodeId self_;
  double loss_p_;
  Rng rng_;
  PositionFn position_;
  void* position_ctx_;

  struct Handler {
    RawReceiveHandler fn = nullptr;
    void* ctx = nullptr;
  };
  Handler handlers_[kMaxHandlers];
  std::size_t handler_count_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace cfds
