// Transport-agnostic fault-drop state: which frames a seeded FaultPlan says
// must not arrive.
//
// The fault taxonomy's omission faults (freeze/mute), link partitions
// (link_down), and regional jamming used to live as private state inside
// the simulated Channel, which meant a FaultPlan could only drive simulated
// runs. DropFilter lifts exactly that state — muted nodes, blocked
// undirected links, jam disks — behind fine-grained queries, so the same
// plan drives both paths:
//
//   * Channel embeds a DropFilter and consults it per candidate receiver in
//     transmit(), with the has_*() fast paths preserving the seed tree's
//     empty()-branch structure (and therefore its RNG draw sequence) bit
//     for bit.
//   * FilteredTransport (service mode) consults drops() per received frame,
//     so a daemon fleet replays the identical plan over loopback UDP.
//
// Header-only: Channel::transmit calls these queries on its hot path, and
// keeping the filter out of any .cpp avoids a radio <-> transport link
// cycle (cfds_transport links cfds_radio for payload/wire code).

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat.h"
#include "common/geometry.h"
#include "common/ids.h"

namespace cfds {

class DropFilter {
 public:
  /// A muted radio's frames vanish in the air and it hears nothing, but the
  /// node itself keeps running (and paying tx energy) — an omission fault,
  /// distinct from a crash (Freeze in the fault taxonomy).
  void set_muted(NodeId id, bool muted) {
    if (muted) {
      muted_.insert(id);
    } else {
      muted_.erase(id);
    }
  }
  [[nodiscard]] bool is_muted(NodeId id) const { return muted_.contains(id); }
  [[nodiscard]] bool has_muted() const { return !muted_.empty(); }

  /// Blocks/unblocks the (symmetric) link between two nodes; blocked frames
  /// count as losses (LinkDown / partition faults).
  void set_link_blocked(NodeId a, NodeId b, bool blocked) {
    if (blocked) {
      blocked_links_.insert(link_key(a, b));
    } else {
      blocked_links_.erase(link_key(a, b));
    }
  }
  [[nodiscard]] bool link_blocked(NodeId a, NodeId b) const {
    return blocked_links_.contains(link_key(a, b));
  }
  [[nodiscard]] bool has_blocked_links() const {
    return !blocked_links_.empty();
  }

  /// Forces loss probability to 1 for any frame whose sender or receiver
  /// lies inside `area` (regional jamming). Returns a token for removal.
  int add_jam_region(Disk area) {
    const int token = next_jam_token_++;
    jam_regions_.emplace_back(token, area);
    return token;
  }
  void remove_jam_region(int token) {
    jam_regions_.erase(
        std::remove_if(jam_regions_.begin(), jam_regions_.end(),
                       [token](const auto& jr) { return jr.first == token; }),
        jam_regions_.end());
  }
  [[nodiscard]] bool jammed(Vec2 p) const {
    for (const auto& [token, disk] : jam_regions_) {
      if (disk.contains(p)) return true;
    }
    return false;
  }
  [[nodiscard]] bool has_jam_regions() const { return !jam_regions_.empty(); }

  /// Whole-frame verdict for transports without a per-receiver fan-out loop
  /// (service mode filters at the receiving endpoint): true when the frame
  /// from `sender` must not reach `receiver` under the current fault state.
  /// Branch order matches Channel::transmit — muted sender, muted receiver,
  /// blocked link, jammed endpoint.
  [[nodiscard]] bool drops(NodeId sender, Vec2 sender_pos, NodeId receiver,
                           Vec2 receiver_pos) const {
    if (has_muted() && (is_muted(sender) || is_muted(receiver))) return true;
    if (has_blocked_links() && link_blocked(sender, receiver)) return true;
    if (has_jam_regions() && (jammed(sender_pos) || jammed(receiver_pos))) {
      return true;
    }
    return false;
  }

  /// Order-independent key for the undirected link {a, b}.
  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b) {
    const std::uint64_t lo = std::min(a.value(), b.value());
    const std::uint64_t hi = std::max(a.value(), b.value());
    return (hi << 32) | lo;
  }

 private:
  FlatSet<NodeId> muted_;
  FlatSet<std::uint64_t> blocked_links_;
  std::vector<std::pair<int, Disk>> jam_regions_;
  int next_jam_token_ = 0;
};

}  // namespace cfds
