#include "transport/loopback.h"

#include <chrono>
#include <utility>

#include "common/expect.h"
#include "transport/reception.h"
#include "transport/wire.h"

namespace cfds {

LoopbackNet::LoopbackNet(const std::vector<NodeId>& ids) {
  endpoints_.reserve(ids.size());
  for (NodeId id : ids) {
    endpoints_.push_back(std::make_unique<Endpoint>());
    endpoints_.back()->id = id;
  }
}

LoopbackNet::Endpoint* LoopbackNet::endpoint(NodeId id) {
  for (auto& ep : endpoints_) {
    if (ep->id == id) return ep.get();
  }
  return nullptr;
}

LoopbackTransport::LoopbackTransport(LoopbackNet& net, NodeId self)
    : net_(net), self_(*net.endpoint(self)) {}

void LoopbackTransport::send(PayloadPtr payload, NodeId intended) {
  {
    std::lock_guard<std::mutex> lock(self_.mu);
    if (!self_.powered) return;  // a dark radio emits nothing
  }
  scratch_.clear();
  if (!wire::encode_frame(self_.id, intended, *payload, &scratch_)) return;
  // Broadcast medium: every other endpoint hears the frame (receivers
  // filter by intent/role themselves, exactly like the simulated channel).
  for (auto& ep : net_.endpoints_) {
    if (ep->id == self_.id) continue;
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(ep->mu);
      if (!ep->powered) continue;
      was_empty = ep->inbox.empty();
      ep->inbox.push_back(scratch_);
    }
    if (was_empty) ep->cv.notify_one();
  }
}

void LoopbackTransport::add_receive_handler(RawReceiveHandler handler,
                                            void* ctx) {
  CFDS_EXPECT(handler_count_ < kMaxHandlers, "loopback handler table full");
  handlers_[handler_count_++] = Handler{handler, ctx};
}

void LoopbackTransport::set_powered(bool on) {
  std::lock_guard<std::mutex> lock(self_.mu);
  self_.powered = on;
  // Frames queued while the radio was on but not yet drained were never
  // actually received; powering down loses them, like a real radio.
  if (!on) self_.inbox.clear();
}

bool LoopbackTransport::powered() const {
  std::lock_guard<std::mutex> lock(self_.mu);
  return self_.powered;
}

bool LoopbackTransport::wait(SimTime max_wait) {
  std::unique_lock<std::mutex> lock(self_.mu);
  if (!self_.inbox.empty()) return true;
  if (max_wait <= SimTime::zero()) return false;
  self_.cv.wait_for(lock, std::chrono::microseconds(max_wait.as_micros()),
                    [this] { return !self_.inbox.empty(); });
  return !self_.inbox.empty();
}

std::size_t LoopbackTransport::drain(SimTime now) {
  pending_.clear();
  {
    std::lock_guard<std::mutex> lock(self_.mu);
    if (!self_.powered) {
      self_.inbox.clear();
      return 0;
    }
    while (!self_.inbox.empty()) {
      pending_.push_back(std::move(self_.inbox.front()));
      self_.inbox.pop_front();
    }
  }
  std::size_t dispatched = 0;
  for (const auto& bytes : pending_) {
    wire::DecodedFrame frame;
    if (!wire::decode_frame(bytes.data(), bytes.size(), &frame)) continue;
    Reception reception;
    reception.sender = frame.sender;
    reception.intended = frame.intended;
    reception.payload = std::move(frame.payload);
    reception.sent_at = now;
    for (std::size_t i = 0; i < handler_count_; ++i) {
      handlers_[i].fn(handlers_[i].ctx, reception);
    }
    ++dispatched;
  }
  return dispatched;
}

}  // namespace cfds
