// Simulation adapters for the transport/clock seam.
//
// SimTransport forwards straight to the node's Radio (and the node's frame
// dispatch table for receive registration); SimTimerService forwards to the
// discrete-event Simulator. Every method is a one-line delegation compiled
// in-line, so routing the protocol agents through these adapters leaves the
// simulated path's behaviour — RNG draw order, event sequence numbers,
// energy accounting — byte-identical to the pre-abstraction direct calls
// (verified against committed fig5/6/7 JSONL goldens).

#pragma once

#include <utility>

#include "event/simulator.h"
#include "net/node.h"
#include "transport/transport.h"

namespace cfds {

/// Transport over the simulated broadcast channel, one per (agent, node).
/// Receive registration lands in the node's ordered handler table, so layer
/// dispatch order is exactly what direct Node::add_frame_handler calls gave.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(Node& node) : node_(node) {}

  void send(PayloadPtr payload, NodeId intended) override {
    node_.radio().send(std::move(payload), intended);
  }

  void add_receive_handler(RawReceiveHandler handler, void* ctx) override {
    node_.add_frame_handler(handler, ctx);
  }

  void set_powered(bool on) override { node_.radio().set_powered(on); }
  [[nodiscard]] bool powered() const override {
    return node_.radio().powered();
  }

 private:
  Node& node_;
};

/// TimerService over the discrete-event kernel. Handles and actions are the
/// simulator's own types, so this adapter adds nothing but the virtual hop.
class SimTimerService final : public TimerService {
 public:
  explicit SimTimerService(Simulator& sim) : sim_(sim) {}

  [[nodiscard]] SimTime now() const override { return sim_.now(); }

  TimerHandle schedule_at(SimTime when, EventFn action) override {
    return sim_.schedule_at(when, std::move(action));
  }

  TimerHandle schedule_after(SimTime delay, EventFn action) override {
    return sim_.schedule_after(delay, std::move(action));
  }

 private:
  Simulator& sim_;
};

}  // namespace cfds
