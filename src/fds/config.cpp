#include "fds/config.h"

#include "common/expect.h"

namespace cfds {

void FdsConfig::validate(SimTime t_hop) const {
  CFDS_EXPECT(t_hop > SimTime::zero(), "FdsConfig: Thop must be positive");
  CFDS_EXPECT(heartbeat_interval.as_micros() >= 7 * t_hop.as_micros(),
              "FdsConfig: phi must be at least 7 * Thop");
  CFDS_EXPECT(2 * max_clock_skew.as_micros() <=
                  heartbeat_interval.as_micros(),
              "FdsConfig: max_clock_skew must be at most phi / 2");
  CFDS_EXPECT(!adaptive_enabled || accrual_threshold_milli > 0,
              "FdsConfig: adaptive detection needs a positive "
              "accrual threshold");
  CFDS_EXPECT(!checkpoint_enabled || checkpoint_interval_epochs > 0,
              "FdsConfig: checkpointing needs a positive interval");
  CFDS_EXPECT(!checkpoint_enabled || recovery_enabled,
              "FdsConfig: checkpointed recovery requires recovery_enabled "
              "for the reconciliation rules");
}

}  // namespace cfds
