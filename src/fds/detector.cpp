#include "fds/detector.h"

#include <algorithm>

namespace cfds {

bool silent(NodeId v, const RoundEvidence& evidence, RuleMode mode) {
  if (evidence.heartbeats.contains(v)) return false;
  if (mode == RuleMode::kHeartbeatOnly) return true;
  if (evidence.has_digest_from(v)) return false;
  if (mode == RuleMode::kNoSpatial) return true;
#ifndef CFDS_MUTATION_DETECT_IGNORES_MENTIONS
  for (const auto& [sender, slot] : evidence.digest_index()) {
    if (sender != v && evidence.digest_slot(slot).contains(v)) return false;
  }
#endif
  return true;
}

std::vector<NodeId> detect_failed(const std::vector<NodeId>& expected,
                                  const RoundEvidence& evidence,
                                  RuleMode mode) {
  std::vector<NodeId> failed;
  for (NodeId v : expected) {
    if (silent(v, evidence, mode)) failed.push_back(v);
  }
  std::sort(failed.begin(), failed.end());
  return failed;
}

bool clusterhead_failed(NodeId ch, const RoundEvidence& evidence,
                        RuleMode mode) {
  return silent(ch, evidence, mode) && !evidence.ch_update_heard;
}

std::vector<NodeId> detect_failed_accrual(const std::vector<NodeId>& expected,
                                          const RoundEvidence& evidence,
                                          RuleMode mode,
                                          LinkQualityEstimator& estimator,
                                          std::uint32_t threshold_milli) {
  // First pass: who is silent this execution? The count is the cluster-wide
  // congestion signal no flat (per-link) accrual detector has: independent
  // crashes silence members one or two at a time, interference silences a
  // large fraction of the cluster in the same execution.
  std::vector<NodeId> failed;
  std::size_t silent_count = 0;
  std::vector<bool> is_silent(expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    is_silent[i] = silent(expected[i], evidence, mode);
    if (is_silent[i]) ++silent_count;
  }
  const bool congestion =
      silent_count >= 2 && 4 * silent_count >= expected.size();
  // In a congestion execution, per-member suspicion is capped by what the
  // cluster-wide miss fraction itself would explain: each consecutive miss
  // scores at most the surprisal of the observed fraction (floored so a
  // mass crash — silence the fraction can "explain" forever — is still
  // declared within threshold/floor executions, ~4 at the defaults).
  const std::uint32_t cluster_miss_pm =
      expected.empty()
          ? 0
          : std::uint32_t((silent_count * 1000) / expected.size());
  const std::uint32_t congestion_surprise =
      std::max(LinkQualityEstimator::surprise_milli(cluster_miss_pm),
               kCongestionSurpriseFloorMilli);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const NodeId v = expected[i];
    estimator.observe(v, !is_silent[i]);
    if (!is_silent[i]) continue;
    std::uint32_t suspicion = estimator.suspicion_milli(v);
    if (congestion) {
      suspicion = std::min(
          suspicion, estimator.consecutive_missed(v) * congestion_surprise);
    }
    if (suspicion >= threshold_milli) failed.push_back(v);
  }
  std::sort(failed.begin(), failed.end());
  return failed;
}

}  // namespace cfds
