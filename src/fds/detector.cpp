#include "fds/detector.h"

#include <algorithm>

namespace cfds {

bool silent(NodeId v, const RoundEvidence& evidence, RuleMode mode) {
  if (evidence.heartbeats.contains(v)) return false;
  if (mode == RuleMode::kHeartbeatOnly) return true;
  if (evidence.digests.contains(v)) return false;
  if (mode == RuleMode::kNoSpatial) return true;
  for (const auto& [sender, heard] : evidence.digests) {
    if (sender != v && heard.contains(v)) return false;
  }
  return true;
}

std::vector<NodeId> detect_failed(const std::vector<NodeId>& expected,
                                  const RoundEvidence& evidence,
                                  RuleMode mode) {
  std::vector<NodeId> failed;
  for (NodeId v : expected) {
    if (silent(v, evidence, mode)) failed.push_back(v);
  }
  std::sort(failed.begin(), failed.end());
  return failed;
}

bool clusterhead_failed(NodeId ch, const RoundEvidence& evidence,
                        RuleMode mode) {
  return silent(ch, evidence, mode) && !evidence.ch_update_heard;
}

}  // namespace cfds
