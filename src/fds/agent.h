// Per-node FDS protocol agent.
//
// Executes the node's part of the three-round service (Section 4.2) every
// heartbeat interval, under whatever role its MembershipView currently
// assigns. Round offsets within an execution starting at epoch time T
// (Thop is the one-hop bound of the channel):
//
//   T          fds.R-1  every alive node sends its heartbeat
//   T + Thop   fds.R-2  members and the CH exchange digests
//   T + 2Thop  fds.R-3  the CH runs the detection rule and broadcasts the
//                       health-status update
//   T + 3Thop           the highest-ranked DCH applies the CH-failure rule;
//                       on detection it broadcasts a takeover update
//   T + 4Thop           members missing the update broadcast forwarding
//                       requests; holders answer after unique waiting
//                       periods; the first success is acknowledged and the
//                       other candidates stand down
//
// All frames are emitted onto the promiscuous channel, so digests reach
// deputies, updates reach gateways, and forwarded updates are overheard by
// competing forwarders — the inherent message redundancy the paper exploits.

#pragma once

#include <array>
#include <memory>
#include <vector>

#include "cluster/membership.h"
#include "common/flat.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "event/simulator.h"
#include "fds/config.h"
#include "fds/detector.h"
#include "fds/failure_log.h"
#include "fds/messages.h"
#include "net/network.h"
#include "net/node.h"
#include "transport/sim_transport.h"
#include "transport/transport.h"

namespace cfds {

namespace check {
class StateFingerprinter;
}  // namespace check

/// Chains `extra` after an existing std::function-valued hook. Use this
/// instead of plain assignment when several layers observe the same hook
/// (e.g. MetricsCollector + a demo trace): assignment silently disconnects
/// the earlier observer.
template <typename F>
void chain_hook(std::function<F>& slot, std::function<F> extra) {
  if (!slot) {
    slot = std::move(extra);
    return;
  }
  slot = [first = std::move(slot),
          second = std::move(extra)](auto&&... args) {
    first(args...);
    second(std::forward<decltype(args)>(args)...);
  };
}

/// Instrumentation and layering hooks, owned by FdsService and shared by all
/// of its agents. All callbacks are optional.
struct FdsHooks {
  /// A CH/DCH broadcast a health-status update (scheduled, takeover, or
  /// relay). The inter-cluster forwarder uses this to watch the sender's own
  /// emissions, which its radio never hears back.
  std::function<void(NodeId sender, const std::shared_ptr<const HealthUpdatePayload>&)>
      on_update_sent;
  /// A node applied an update it received.
  std::function<void(NodeId node, const HealthUpdatePayload&)> on_update_applied;
  /// A decider (CH, or DCH when `by_deputy`) judged `failed` to have crashed.
  std::function<void(NodeId decider, std::uint64_t epoch,
                     const std::vector<NodeId>& failed, bool by_deputy)>
      on_detection;
  /// A deputy took over from `old_ch`.
  std::function<void(NodeId deputy, NodeId old_ch, std::uint64_t epoch)>
      on_takeover;
};

/// The waiting period a peer with NID `id` and remaining-energy fraction
/// `energy_frac` applies before answering a forwarding request: a unique
/// NID-derived point in (0, Thop), stretched for energy-depleted nodes so
/// well-charged peers answer first (Section 4.2, "Energy Considerations").
[[nodiscard]] SimTime peer_waiting_period(NodeId id, double energy_frac,
                                          SimTime t_hop);

class FdsAgent {
 public:
  /// The agent speaks to the outside world only through `transport` (frames)
  /// and `timers` (clock + cancellable timers): in simulation these are the
  /// SimTransport/SimTimerService adapters owned by FdsService; in service
  /// mode a real transport and a RealTimeScheduler. `node` supplies
  /// identity, liveness, marked state, and energy — never the radio.
  FdsAgent(Node& node, MembershipView& view, Transport& transport,
           TimerService& timers, SimTime t_hop, const FdsConfig& config,
           FdsHooks& hooks);

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] MembershipView& view() { return view_; }
  [[nodiscard]] const MembershipView& view() const { return view_; }
  [[nodiscard]] FailureLog& log() { return log_; }
  [[nodiscard]] const FailureLog& log() const { return log_; }

  /// True if this node received (or authored) the scheduled health-status
  /// update of the current epoch — the completeness event of Figure 7.
  [[nodiscard]] bool got_scheduled_update() const {
    return got_scheduled_update_;
  }
  [[nodiscard]] std::uint64_t current_epoch() const { return epoch_; }

  /// Lifetime send counters and the pending subscription set — diagnostics
  /// for service-mode post-mortems (see service::AgentStatus), never
  /// protocol inputs.
  [[nodiscard]] std::uint64_t heartbeats_sent() const {
    return heartbeats_sent_;
  }
  [[nodiscard]] std::uint64_t unmarked_heartbeats_sent() const {
    return unmarked_sent_;
  }
  [[nodiscard]] std::uint64_t last_unmarked_sent_epoch() const {
    return last_unmarked_epoch_;
  }
  [[nodiscard]] const FlatSet<NodeId>& unmarked_heard() const {
    return unmarked_heard_;
  }

  /// Causes for dropping marked/affiliated state, indexing reverts().
  enum RevertCause : std::uint32_t {
    kRevertMissedUpdates = 0,  ///< reaffiliate_after_missed exceeded
    kRevertFreshSelfNews = 1,  ///< an update freshly reported us failed
    kRevertStaleSelfNews = 2,  ///< cumulative failure news still lists us
    kRevertRosterDropped = 3,  ///< the CH's snapshot no longer carries us
    kRevertRivalHead = 4,      ///< lost the lowest-NID head arbitration
  };
  /// Lifetime revert counts by cause, plus when/why the newest one fired —
  /// diagnostics for service-mode post-mortems, never protocol inputs.
  [[nodiscard]] const std::array<std::uint64_t, 5>& reverts() const {
    return reverts_;
  }
  [[nodiscard]] std::uint64_t last_revert_epoch() const {
    return last_revert_epoch_;
  }
  [[nodiscard]] std::uint32_t last_revert_cause() const {
    return last_revert_cause_;
  }

  /// Self-tuning state (FdsConfig::adaptive_enabled): the link-quality
  /// estimator this node feeds from round evidence, and the tune level it
  /// currently applies (as CH: the level it announces; as member: the level
  /// adopted from the newest scheduled update).
  [[nodiscard]] const LinkQualityEstimator& estimator() const {
    return estimator_;
  }
  [[nodiscard]] std::uint8_t tune_level() const { return tune_level_; }

  /// Checkpointed-recovery state (FdsConfig::checkpoint_enabled): the
  /// freshest retained checkpoint (CH/DCH only), and whether the last
  /// crash-recovery restored from one instead of cold-rejoining.
  [[nodiscard]] const std::shared_ptr<const CheckpointPayload>&
  stable_checkpoint() const {
    return stable_checkpoint_;
  }
  [[nodiscard]] bool restored_from_checkpoint() const {
    return restored_from_checkpoint_;
  }

  // --- Round actions, driven by FdsService -----------------------------
  void begin_epoch(std::uint64_t epoch);
  void round1_heartbeat();
  void round2_digest();
  void round3_update();
  /// Arms this node's CH-failure evaluation: rank-0 deputies decide
  /// immediately, rank-k deputies stand by k further Thop (feature F2's
  /// ranked redundancy — a lower deputy acts only if everyone above it,
  /// including the CH, stays silent).
  void deputy_check();
  void completeness_check();

  /// Announces a voluntary departure (group-membership unsubscription) and
  /// leaves the cluster: the CH removes this node as `departed` — not
  /// failed — and the node stops participating (no heartbeats, digests or
  /// requests) until rejoin() is called.
  void announce_leave();
  /// Re-enters the group after announce_leave(): the next heartbeat is
  /// unmarked and acts as a fresh subscription (F5).
  void rejoin();
  [[nodiscard]] bool has_left() const { return left_; }

  /// Installed by FdsService on its batched (no-skew) scheduling path, where
  /// dead agents are skipped entirely: a crashed node no longer receives
  /// begin_epoch calls, so on recovery the agent reads the service's epoch
  /// counter through this pointer instead. nullptr (per-agent scheduling,
  /// service mode) keeps the historical behaviour where begin_epoch reaches
  /// every agent.
  void set_epoch_clock(const std::uint64_t* clock) { epoch_clock_ = clock; }

  /// Announces a sleep window covering the next `epochs` executions and
  /// powers the radio down. The harness (or application) is responsible for
  /// calling wake_up() when the window ends. Section 6 extension.
  void announce_sleep(std::uint32_t epochs);
  /// Powers the radio back up after a sleep window.
  void wake_up();

  /// Called by the inter-cluster layer when, as a CH, this node learns
  /// failures from another cluster's report: filters genuinely new NIDs,
  /// records them, and broadcasts a relay update that both informs the local
  /// cluster and serves as the implicit acknowledgement of Section 4.3.
  /// `ack` is the report id being acknowledged; `learned_from` the cluster
  /// the report came from (for gateway back-forwarding suppression).
  void broadcast_relay(const std::vector<NodeId>& reported_failed,
                       ReportId ack, ClusterId learned_from);

 private:
  /// The model checker's canonical serializer reads the private protocol
  /// state directly. Every member declared below must be mixed or
  /// FP-EXEMPT'd in src/check/fingerprint.cpp (cfds-lint rule
  /// state-outside-fingerprint enforces this).
  friend class check::StateFingerprinter;

  void on_frame(const Reception& reception);
  void on_lifecycle(bool alive);
  void evaluate_ch_failure();
  void handle_update(const std::shared_ptr<const HealthUpdatePayload>& update);
  /// Returns true if this node must step down: the update carried stale
  /// failure news about the node itself while it believed it was a marked
  /// cluster participant (crash-recovery reconciliation).
  [[nodiscard]] bool apply_failures(const HealthUpdatePayload& update);
  /// Records a sign of life from `sender` in this round's evidence,
  /// stamping its arrival time when tolerate_epoch_skew is on.
  void note_alive(NodeId sender);
  /// Bumps the revert diagnostics (see RevertCause / reverts()).
  void count_revert(std::uint32_t cause);
  /// Age-based evidence turnover for tolerate_epoch_skew: drops heartbeat
  /// and digest evidence older than one execution (plus Thop slack) instead
  /// of wiping everything, so early next-epoch arrivals survive the
  /// boundary and a node is failed only after two silent executions.
  void prune_evidence();
  void schedule_peer_forward(NodeId target);
  void broadcast_update(std::shared_ptr<HealthUpdatePayload> update);
  [[nodiscard]] ReportId fresh_report_id();
  [[nodiscard]] double energy_fraction() const;
  /// CH only: broadcasts (and retains) a minimum-process cluster-state
  /// checkpoint — roster, deputies, failure log (checkpoint_enabled).
  void emit_checkpoint();
  /// Retains `cp` if this node is a holder (CH/DCH of that cluster) and the
  /// checkpoint is fresher than the one already stored.
  void handle_checkpoint(const std::shared_ptr<const CheckpointPayload>& cp);
  /// Crash-recovery entry: if the stored checkpoint names this node as CH
  /// or deputy, reinstall the checkpointed view and failure log so the node
  /// reconciles with the live cluster instead of cold-rejoining.
  void restore_from_checkpoint();

  Node& node_;
  MembershipView& view_;
  Transport& transport_;
  TimerService& timers_;
  SimTime t_hop_;
  const FdsConfig& config_;
  FdsHooks& hooks_;
  FailureLog log_;

  std::uint64_t epoch_ = 0;
  std::uint64_t report_counter_ = 0;

  /// Announced sleep windows: node -> executions it may still sit out
  /// (consumed by this node's own detection decisions).
  FlatMap<NodeId, std::uint32_t> sleep_exemptions_;
  /// Voluntary departures heard this epoch (consumed by the CH's update).
  FlatSet<NodeId> leaves_heard_;
  /// Notices overheard this execution, for relaying in our digest.
  FlatMap<NodeId, std::uint32_t> notices_heard_;
  /// Consecutive executions whose scheduled update never arrived.
  std::uint32_t missed_updates_ = 0;
  /// Diagnostics only (see accessors above).
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t unmarked_sent_ = 0;
  std::uint64_t last_unmarked_epoch_ = 0;
  std::array<std::uint64_t, 5> reverts_{};
  std::uint64_t last_revert_epoch_ = 0;
  std::uint32_t last_revert_cause_ = 0;
  /// Voluntarily departed (announce_leave) and not yet rejoined.
  bool left_ = false;

  // Per-epoch evidence and peer-forwarding state. Flat containers: cleared
  // (buffer retained) every epoch, so steady-state rounds do not allocate.
  RoundEvidence evidence_;
  /// Arrival stamps for evidence entries, maintained only under
  /// tolerate_epoch_skew (prune_evidence erases by age; the simulator's
  /// hard-boundary path never touches them).
  FlatMap<NodeId, SimTime> heartbeat_seen_;
  FlatMap<NodeId, SimTime> digest_seen_;
  FlatSet<NodeId> unmarked_heard_;
  bool got_scheduled_update_ = false;
  std::shared_ptr<const HealthUpdatePayload> scheduled_update_;
  FlatSet<NodeId> acked_requesters_;
  FlatMap<NodeId, TimerHandle> pending_forwards_;
  /// Armed by deputy_check for rank > 0 deputies; stored so a crash can
  /// cancel it — a dead node must never fire a round callback.
  TimerHandle deputy_timer_;
  bool sent_ack_ = false;

  /// Self-tuning detection state (config_.adaptive_enabled; inert
  /// otherwise). As CH the estimator tracks every expected member; as a
  /// member it tracks the CH (via scheduled-update arrival), feeding the
  /// deputy's accrual gate on takeover.
  LinkQualityEstimator estimator_;
  std::uint8_t tune_level_ = 0;

  /// Checkpointed recovery (config_.checkpoint_enabled). stable_checkpoint_
  /// models stable storage: it is deliberately NOT wiped by on_lifecycle,
  /// so it survives this node's own crash.
  std::shared_ptr<const CheckpointPayload> stable_checkpoint_;
  std::uint64_t checkpoint_seq_ = 0;
  bool restored_from_checkpoint_ = false;

  /// See set_epoch_clock(). Points at FdsService::current_epoch_ on the
  /// batched scheduling path; null otherwise.
  const std::uint64_t* epoch_clock_ = nullptr;

  /// Send-side payload pools: each round's emission reuses the previous
  /// epoch's payload object when every receiver has released it
  /// (use_count() == 1 — receivers drop their references at the next
  /// begin_epoch, before the author's next emission). A reference retained
  /// longer (a stashed forward, an in-flight frame, a recording hook)
  /// safely forces a fresh allocation instead. Every field is overwritten
  /// before each send, so pooled payloads are never protocol inputs.
  std::shared_ptr<HeartbeatPayload> heartbeat_pool_;
  std::shared_ptr<DigestPayload> digest_pool_;
  std::shared_ptr<HealthUpdatePayload> update_pool_;
  /// Scratch for round3's sleep-exemption filtering (buffer reused).
  std::vector<NodeId> expected_scratch_;
};

// Fingerprint tripwire (src/check/fingerprint.h): a layout change means a
// state member was added, removed, or resized. Mix the new member in
// src/check/fingerprint.cpp — or FP-EXEMPT it there with a reason — then
// update the expected size. The gate pins the one ABI the assert's constant
// is computed for; other platforms rely on the lint rule alone.
#if defined(__x86_64__) && defined(__linux__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(FdsAgent) == 704,
              "FdsAgent layout changed: update src/check/fingerprint.cpp "
              "(mix or FP-EXEMPT the new member), then this tripwire");
#endif

/// Owns the per-node agents and drives synchronized FDS executions.
class FdsService {
 public:
  /// `views[i]` must be the membership view of the node with NID i; it may
  /// be owned by a FormationAgent (distributed path) or by the caller
  /// (directory-installed path).
  FdsService(Network& network, std::vector<MembershipView*> views,
             FdsConfig config);

  [[nodiscard]] FdsHooks& hooks() { return hooks_; }
  [[nodiscard]] FdsConfig& config() { return config_; }
  [[nodiscard]] std::vector<FdsAgent*> agents();
  [[nodiscard]] FdsAgent& agent_for(NodeId id);

  /// Number of agents currently swept by the batched scheduling path:
  /// exactly the alive nodes. Exposed for the O(active) regression bench.
  [[nodiscard]] std::size_t active_agents() const { return active_.size(); }

  /// Wires a node added after construction (replenishment, Section 2.1)
  /// into the service. The node participates from the next scheduled
  /// execution; if unmarked, its heartbeat subscribes it to a cluster (F5).
  FdsAgent& adopt_node(Node& node, MembershipView& view);

  /// Schedules one FDS execution with epoch index `epoch` starting at `t`.
  void schedule_epoch(std::uint64_t epoch, SimTime t);

  /// Schedules `count` executions phi apart starting at `start` and runs the
  /// simulator past the last one. Returns the end time.
  SimTime run_epochs(std::uint64_t count, SimTime start);

  /// Per-node additional clock skew, queried once per (node, epoch) when
  /// scheduling that node's rounds. Used by the fault injector's
  /// ClockDriftRamp; nullptr (the default) keeps the batched fast path, so
  /// fault-free runs schedule exactly as before.
  using SkewProvider = std::function<SimTime(NodeId, std::uint64_t epoch)>;
  void set_skew_provider(SkewProvider provider) {
    skew_provider_ = std::move(provider);
  }

 private:
  /// Registers the lifecycle handler that keeps `active_` in sync for the
  /// agent at `idx` (slot order == NID order == agents_ order).
  void watch_lifecycle(Node& node, std::size_t idx);
  /// Points every agent's epoch clock at current_epoch_ (batched path) or
  /// detaches it (per-agent path). O(n), but runs only when the scheduling
  /// mode actually changes.
  void install_epoch_clocks(bool install);

  Network& network_;
  FdsConfig config_;
  FdsHooks hooks_;
  SkewProvider skew_provider_;
  /// Simulation adapters for the transport/clock seam: one shared timer
  /// service over the network's simulator plus one SimTransport per agent
  /// (pointer-stable — agents keep references).
  SimTimerService timers_;
  std::vector<std::unique_ptr<SimTransport>> transports_;
  std::vector<std::unique_ptr<FdsAgent>> agents_;

  /// Batched path bookkeeping: the round sweeps visit only `active_`
  /// (agents_ indices of alive nodes, ascending = NID order), so a mostly
  /// idle world pays per round for its alive population, not its size.
  /// Dead agents' round actions are all no-ops (every one starts with an
  /// alive check), so skipping them changes no observable behaviour; the
  /// one exception — begin_epoch's epoch_ bookkeeping — is covered by the
  /// epoch clock the recovery path reads (set_epoch_clock).
  std::vector<std::uint32_t> active_;
  std::uint64_t current_epoch_ = 0;
  bool epoch_clocks_installed_ = false;
};

}  // namespace cfds
