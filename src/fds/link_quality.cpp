#include "fds/link_quality.h"

#include <bit>

namespace cfds {

std::uint32_t milli_log10(std::uint32_t x) {
  if (x <= 1) return 0;
  // Integer part of log2: position of the highest set bit.
  const std::uint32_t k = std::uint32_t(std::bit_width(x)) - 1;
  // Mantissa x / 2^k in Q16, in [1, 2). Ten rounds of shift-and-square
  // extract ten fractional bits of log2 — 1/1024 resolution, an order
  // finer than the milli-units we return.
  std::uint64_t m = (std::uint64_t{x} << 16) >> k;
  std::uint32_t frac = 0;
  for (int i = 0; i < 10; ++i) {
    m = (m * m) >> 16;
    frac <<= 1;
    if (m >= (std::uint64_t{2} << 16)) {
      m >>= 1;
      frac |= 1;
    }
  }
  const std::uint64_t log2_q10 = (std::uint64_t{k} << 10) | frac;
  // log10(x) = log2(x) * log10(2); 30103/100000 is log10(2) to 5 places.
  return std::uint32_t((log2_q10 * 30103) / 102400);
}

void LinkQualityEstimator::observe(NodeId member, bool heard) {
  Link& link = links_[member];
  if (!heard && link.consecutive_missed == 0) {
    // A silence run begins: snapshot the estimate as it stood while the
    // member was still being heard (see the file comment for why suspicion
    // must not be computed against an estimate the run itself inflates).
    link.run_loss_pm = link.loss_pm;
  }
  const std::uint32_t miss_pm = heard ? 0 : 1000;
  link.loss_pm = (3 * link.loss_pm + miss_pm) / 4;
  if (link.loss_pm < kMinLossPm) link.loss_pm = kMinLossPm;
  if (link.loss_pm > kMaxLossPm) link.loss_pm = kMaxLossPm;
  link.consecutive_missed = heard ? 0 : link.consecutive_missed + 1;
}

std::uint32_t LinkQualityEstimator::loss_pm(NodeId member) const {
  const auto it = links_.find(member);
  return it == links_.end() ? kMinLossPm : it->second.loss_pm;
}

std::uint32_t LinkQualityEstimator::consecutive_missed(NodeId member) const {
  const auto it = links_.find(member);
  return it == links_.end() ? 0 : it->second.consecutive_missed;
}

std::uint32_t LinkQualityEstimator::surprise_milli(std::uint32_t loss_pm) {
  if (loss_pm < kMinLossPm) loss_pm = kMinLossPm;
  if (loss_pm > kMaxLossPm) loss_pm = kMaxLossPm;
  // -log10(loss_pm/1000) * 1000 = 3000 - milli_log10(loss_pm).
  return 3000 - milli_log10(loss_pm);
}

std::uint32_t LinkQualityEstimator::suspicion_milli(NodeId member) const {
  const auto it = links_.find(member);
  if (it == links_.end()) return 0;
  return it->second.consecutive_missed * surprise_milli(it->second.run_loss_pm);
}

std::uint32_t LinkQualityEstimator::pending_suspicion_milli(
    NodeId member) const {
  const auto it = links_.find(member);
  if (it == links_.end()) {
    // Never observed: one miss over a clean link.
    return surprise_milli(kMinLossPm);
  }
  const Link& link = it->second;
  // If this pending miss starts a new run, the snapshot will be the current
  // live estimate; otherwise the run's existing snapshot keeps applying.
  const std::uint32_t snapshot =
      link.consecutive_missed == 0 ? link.loss_pm : link.run_loss_pm;
  return (link.consecutive_missed + 1) * surprise_milli(snapshot);
}

std::uint32_t LinkQualityEstimator::max_loss_pm() const {
  std::uint32_t worst = kMinLossPm;
  for (const auto& [member, link] : links_) {
    if (link.loss_pm > worst) worst = link.loss_pm;
  }
  return worst;
}

void LinkQualityEstimator::forget(NodeId member) { links_.erase(member); }

void LinkQualityEstimator::clear() { links_.clear(); }

}  // namespace cfds
