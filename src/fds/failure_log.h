// Per-node record of known failures.
//
// The completeness property is about this log: "every node failure will be
// reported to every operational node" means every operational node's log
// eventually contains the failed NID. Under the paper's fail-stop model
// entries are monotone — once a node is recorded failed it never leaves.
// The crash-recovery extension (FdsConfig::recovery_enabled) relaxes this:
// re-admission of a resurrected node erases its entry, and a recovered
// node's log is cleared outright (volatile state is lost in the crash).

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace cfds {

class FailureLog {
 public:
  struct Entry {
    SimTime learned_at;
    std::uint64_t epoch = 0;
    NodeId reported_by;  ///< the CH/DCH whose update carried the news
  };

  /// Records `failed`; keeps the earliest entry on duplicates.
  /// Returns true if the NID was new to this log.
  bool record(NodeId failed, Entry entry) {
    return entries_.emplace(failed, entry).second;
  }

  [[nodiscard]] bool knows(NodeId failed) const {
    return entries_.contains(failed);
  }

  /// Erases the record for `failed` (crash-recovery: the node was re-admitted
  /// alive, refuting the entry). Returns true if an entry was removed.
  bool erase(NodeId failed) { return entries_.erase(failed) > 0; }

  /// Drops every record (a recovering node restarts with an empty log).
  void clear() { entries_.clear(); }

  [[nodiscard]] const Entry* entry(NodeId failed) const {
    const auto it = entries_.find(failed);
    return it == entries_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// All known-failed NIDs in ascending order.
  [[nodiscard]] std::vector<NodeId> known_failed() const {
    std::vector<NodeId> out;
    out.reserve(entries_.size());
    for (const auto& [nid, entry] : entries_) {
      (void)entry;
      out.push_back(nid);
    }
    return out;
  }

 private:
  // LINT-FINGERPRINT: members below must be covered (mixed or FP-EXEMPT'd)
  // in src/check/fingerprint.cpp — rule state-outside-fingerprint.
  std::map<NodeId, Entry> entries_;
};

// Fingerprint tripwire (src/check/fingerprint.h): a layout change means
// log state was added — mix it in src/check/fingerprint.cpp (or FP-EXEMPT
// it with a reason), then update the expected size.
#if defined(__x86_64__) && defined(__linux__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(FailureLog) == 48,
              "FailureLog layout changed: update src/check/fingerprint.cpp, "
              "then this tripwire");
#endif

}  // namespace cfds
