#include "fds/agent.h"

#include <algorithm>

#include "common/expect.h"

namespace cfds {

namespace {

/// Send-pool accessor: hands back the pooled payload for in-place reuse when
/// this agent holds the only reference, or replaces it with a fresh object
/// when some receiver still does (see the pool members in fds/agent.h).
template <typename T>
T& pooled(std::shared_ptr<T>& pool) {
  if (!pool || pool.use_count() != 1) pool = std::make_shared<T>();
  return *pool;
}

}  // namespace

SimTime peer_waiting_period(NodeId id, double energy_frac, SimTime t_hop) {
  // NID-derived point in (0, 1): globally unique NIDs give (probabilistically)
  // unique waiting periods, so candidate forwarders fire one at a time.
  std::uint64_t sm = id.value();
  const double unique = double(splitmix64(sm) >> 11) * 0x1.0p-53;
  // Energy stretch: a full battery halves the wait relative to an empty one,
  // draining well-charged peers first (energy balancing).
  const double stretch = (2.0 - std::clamp(energy_frac, 0.0, 1.0)) / 2.0;
  const double frac = 0.04 + 0.92 * unique * stretch;
  return SimTime::micros(std::int64_t(frac * double(t_hop.as_micros())));
}

FdsAgent::FdsAgent(Node& node, MembershipView& view, Transport& transport,
                   TimerService& timers, SimTime t_hop,
                   const FdsConfig& config, FdsHooks& hooks)
    : node_(node),
      view_(view),
      transport_(transport),
      timers_(timers),
      t_hop_(t_hop),
      config_(config),
      hooks_(hooks) {
  transport_.add_receive_handler(
      [](void* self, const Reception& reception) {
        static_cast<FdsAgent*>(self)->on_frame(reception);
      },
      this);
  node_.add_lifecycle_handler([this](bool alive) { on_lifecycle(alive); });
}

void FdsAgent::on_lifecycle(bool alive) {
  if (!alive) {
    // Crash: a dead node must never fire a round callback. The deputy
    // evaluation and any armed peer forwards are cancelled outright (their
    // alive-guards would stop them too, but a cancelled timer costs nothing
    // and cannot race a same-epoch recovery).
    deputy_timer_.cancel();
    for (auto& [target, timer] : pending_forwards_) timer.cancel();
    pending_forwards_.clear();
    return;
  }
  // Recovery: volatile protocol state did not survive the crash. The node
  // restarts unaffiliated and unmarked, so its next heartbeat is a fresh
  // membership subscription (F5) and the lowest-NID affiliation rules of
  // Section 3 re-run naturally through the admission path.
  // Under batched scheduling this agent received no begin_epoch calls while
  // dead; catch the epoch counter up first so post-recovery bookkeeping
  // (last_unmarked_epoch_, revert diagnostics, log records) stamps the
  // execution the node actually rejoined.
  if (epoch_clock_) epoch_ = *epoch_clock_;
  view_.clear();
  node_.set_marked(false);
  log_.clear();
  missed_updates_ = 0;
  left_ = false;
  evidence_.clear();
  heartbeat_seen_.clear();
  digest_seen_.clear();
  unmarked_heard_.clear();
  leaves_heard_.clear();
  notices_heard_.clear();
  sleep_exemptions_.clear();
  got_scheduled_update_ = false;
  scheduled_update_.reset();
  acked_requesters_.clear();
  sent_ack_ = false;
  estimator_.clear();
  tune_level_ = 0;
  restored_from_checkpoint_ = false;
  // stable_checkpoint_ deliberately survives: it models stable storage,
  // the one thing a minimum-process checkpointing scheme assumes outlives
  // the crash. If it names this node as CH or deputy, restore from it and
  // reconcile with the live cluster instead of cold-rejoining.
  if (config_.checkpoint_enabled) restore_from_checkpoint();
}

void FdsAgent::restore_from_checkpoint() {
  if (!stable_checkpoint_) return;
  const CheckpointPayload& cp = *stable_checkpoint_;
  const bool named_ch = cp.clusterhead == node_.id();
  const bool named_dch =
      std::find(cp.deputies.begin(), cp.deputies.end(), node_.id()) !=
      cp.deputies.end();
  if (!named_ch && !named_dch) return;
  ClusterView fresh;
  fresh.id = cp.cluster;
  fresh.clusterhead = cp.clusterhead;
  fresh.members = cp.members;
  fresh.deputies = cp.deputies;
  view_.set_cluster(std::move(fresh));
  node_.set_marked(true);
  // The checkpointed failure log may be stale (a member re-admitted after
  // checkpoint time): the recovery_enabled reconciliation rules heal that —
  // stale self-news steps the zombie entry's owner down, its re-subscription
  // refutes the record everywhere the admission update lands.
  for (NodeId f : cp.failed) {
    if (f == node_.id()) continue;
    log_.record(f, {timers_.now(), cp.epoch, cp.sender});
  }
  restored_from_checkpoint_ = true;
}

double FdsAgent::energy_fraction() const {
  const double initial = node_.initial_energy_uj();
  return initial > 0.0 ? node_.remaining_energy_uj() / initial : 1.0;
}

ReportId FdsAgent::fresh_report_id() {
  return ReportId{(std::uint64_t(node_.id().value()) << 32) |
                  ++report_counter_};
}

// LINT-ROUND-PATH: per-epoch for every agent; allocation-free in steady
// state (tests/test_steady_state_alloc.cpp). Failure-path allocations are
// baseline burndown debt.
void FdsAgent::begin_epoch(std::uint64_t epoch) {
  // Close out the previous execution's contact accounting before resetting.
  if (node_.alive() && view_.affiliated() && !view_.is_clusterhead() &&
      transport_.powered()) {
    if (config_.adaptive_enabled) {
      // A member's only per-execution liveness signal from its CH is the
      // scheduled update; feed it to the estimator so the deputies' accrual
      // gate (evaluate_ch_failure) knows how flaky the CH's link is.
      estimator_.observe(view_.cluster()->clusterhead, got_scheduled_update_);
    }
    missed_updates_ = got_scheduled_update_ ? 0 : missed_updates_ + 1;
    // Under adaptive detection the CH-announced tune level stretches the
    // re-affiliation patience: a congested cluster (high announced loss)
    // must not shed members over transient misses.
    const std::uint32_t patience =
        config_.reaffiliate_after_missed +
        (config_.adaptive_enabled ? tune_level_ : 0U);
    if (config_.reaffiliate_after_missed > 0 && missed_updates_ >= patience) {
      // Lost contact with the cluster (drifted out of range, or the CH we
      // can hear changed): revert to unmarked and re-subscribe (F5).
      view_.clear();
      node_.set_marked(false);
      missed_updates_ = 0;
      count_revert(kRevertMissedUpdates);
      estimator_.clear();
      tune_level_ = 0;
    }
  }
  epoch_ = epoch;
  if (config_.tolerate_epoch_skew) {
    // Soft boundary: a neighbour running a few milliseconds ahead has
    // already delivered its R-1 heartbeat for this execution; wiping it
    // here would fail that neighbour every single epoch. Age out the old
    // evidence instead (see FdsConfig::tolerate_epoch_skew).
    prune_evidence();
  } else {
    evidence_.clear();
  }
  // An acting head under tolerate_epoch_skew keeps pending subscriptions
  // across the boundary (they are consumed at R-3); everyone else starts
  // the execution with a clean slate.
  if (!config_.tolerate_epoch_skew || !view_.is_clusterhead()) {
    unmarked_heard_.clear();
  }
  notices_heard_.clear();
  // leaves_heard_ persists across the epoch boundary: a notice arriving
  // after this epoch's R-3 must still be honoured by the next one.
  got_scheduled_update_ = false;
  scheduled_update_.reset();
  acked_requesters_.clear();
  for (auto& [target, timer] : pending_forwards_) timer.cancel();
  pending_forwards_.clear();
  deputy_timer_.cancel();
  sent_ack_ = false;
}

// LINT-ROUND-PATH: per-epoch for every agent; allocation-free in steady
// state (tests/test_steady_state_alloc.cpp). Failure-path allocations are
// baseline burndown debt.
void FdsAgent::round1_heartbeat() {
  if (!node_.alive() || left_) return;
  if (config_.external_heartbeats) return;  // another layer supplies them
  HeartbeatPayload& heartbeat = pooled(heartbeat_pool_);
  heartbeat.sender = node_.id();
  heartbeat.marked = node_.marked();
  heartbeat.incarnation = node_.incarnation();
  ++heartbeats_sent_;
  if (!heartbeat.marked) {
    ++unmarked_sent_;
    last_unmarked_epoch_ = epoch_;
  }
  transport_.send(heartbeat_pool_);
}

void FdsAgent::announce_leave() {
  if (!node_.alive()) return;
  auto notice = std::make_shared<LeaveNoticePayload>();
  notice->sender = node_.id();
  transport_.send(std::move(notice));
  view_.clear();
  node_.set_marked(false);
  estimator_.clear();
  tune_level_ = 0;
  left_ = true;
}

void FdsAgent::rejoin() { left_ = false; }

void FdsAgent::announce_sleep(std::uint32_t epochs) {
  if (!node_.alive()) return;
  auto notice = std::make_shared<SleepNoticePayload>();
  notice->sender = node_.id();
  notice->epochs = epochs;
  transport_.send(std::move(notice));
  transport_.set_powered(false);
}

void FdsAgent::wake_up() {
  if (!node_.alive()) return;
  transport_.set_powered(true);
}

// LINT-ROUND-PATH: per-epoch for every agent; allocation-free in steady
// state (tests/test_steady_state_alloc.cpp). Failure-path allocations are
// baseline burndown debt.
void FdsAgent::round2_digest() {
  if (!node_.alive() || !view_.affiliated()) return;
  const ClusterView& cluster = *view_.cluster();
  DigestPayload& digest = pooled(digest_pool_);
  digest.sender = node_.id();
  digest.cluster = cluster.id;
  digest.heard.clear();
  digest.sleeping.clear();
  // Enumerate only in-cluster heartbeats (the digest "enumerates the nodes
  // in C from which the sender hears or overhears their heartbeats").
  for (NodeId heard : evidence_.heartbeats) {
    if (cluster.is_member(heard)) digest.heard.push_back(heard);
  }
  if (config_.relay_sleep_notices) {
    for (const auto& [sleeper, epochs] : notices_heard_) {
      if (cluster.is_member(sleeper)) digest.sleeping.emplace_back(sleeper, epochs);
    }
  }
  // Members send to the CH; the CH broadcasts its own digest.
  const NodeId intended =
      view_.is_clusterhead() ? NodeId::invalid() : cluster.clusterhead;
  transport_.send(digest_pool_, intended);
}

// LINT-ROUND-PATH: per-epoch for every agent; allocation-free in steady
// state (tests/test_steady_state_alloc.cpp). Failure-path allocations are
// baseline burndown debt.
void FdsAgent::round3_update() {
  if (!node_.alive() || !view_.is_clusterhead()) return;
  // Voluntary departures announced this epoch leave the membership first —
  // bookkept as departures, never as failures.
  std::vector<NodeId> departed;
  for (NodeId leaver : leaves_heard_) {
    if (view_.cluster()->is_member(leaver)) departed.push_back(leaver);
  }
  view_.remove_members(departed);
  leaves_heard_.clear();

  // Members inside an announced sleep window are not expected to show any
  // sign of life (Section 6 extension); consume one exempt execution each.
  std::vector<NodeId>& expected = expected_scratch_;
  expected.clear();
  for (NodeId member : view_.cluster()->members) {
    const auto it = sleep_exemptions_.find(member);
    if (it != sleep_exemptions_.end() && it->second > 0) {
      --it->second;
      continue;
    }
    expected.push_back(member);
  }
  // Adaptive: the same evidence feeds the per-member link-quality estimator,
  // and a silent member is declared only once its accrued suspicion clears
  // the threshold — identical latency over clean links, extra consecutive
  // misses demanded over lossy ones (see fds/link_quality.h).
  const std::vector<NodeId> failed =
      config_.adaptive_enabled
          ? detect_failed_accrual(expected, evidence_, config_.rule_mode,
                                  estimator_, config_.accrual_threshold_milli)
          : detect_failed(expected, evidence_, config_.rule_mode);

  // Reset EVERY field of the pooled update: a recycled object still carries
  // the previous epoch's admissions, snapshot, report id and piggybacks.
  HealthUpdatePayload& update = pooled(update_pool_);
  update.cluster = view_.cluster()->id;
  update.sender = node_.id();
  update.epoch = epoch_;
  update.newly_failed = failed;
  update.departed = departed;
  update.admitted.clear();
  update.members_snapshot.clear();
  update.takeover = false;
  update.sender_heard.clear();
  update.report = ReportId();
  update.acks.clear();
  update.learned_from = ClusterId();
  update.cluster_loss_pm = 0;
  update.tune_level = 0;

  for (NodeId f : failed) {
    log_.record(f, {timers_.now(), epoch_, node_.id()});
    estimator_.forget(f);
  }
  for (NodeId d : departed) estimator_.forget(d);
  view_.remove_members(failed);

  if (config_.admit_unmarked) {
    for (NodeId newcomer : unmarked_heard_) {
      if (config_.admit_filter != nullptr &&
          !config_.admit_filter(config_.admit_filter_ctx, newcomer)) {
        continue;  // another clusterhead's responsibility
      }
      // Under crash-recovery, an unmarked heartbeat from a *current* member
      // is a node that lost its view (recovered or reaffiliating): it keeps
      // its membership slot but needs the snapshot to reinstall it.
      if (config_.recovery_enabled || !view_.cluster()->is_member(newcomer)) {
        update.admitted.push_back(newcomer);
      }
    }
    if (!update.admitted.empty()) {
      if (config_.recovery_enabled) {
        // Admission refutes stale failure records: a node subscribing with
        // a live heartbeat is alive, whatever the log said.
#ifndef CFDS_MUTATION_ADMIT_WITHOUT_REFUTE
        for (NodeId n : update.admitted) log_.erase(n);
#endif
      }
      view_.admit_members(update.admitted);
      update.members_snapshot = view_.cluster()->members;
    }
    if (config_.tolerate_epoch_skew) {
      // Consumed: each subscription is honoured (or delegated via the
      // filter) exactly once, so stale entries cannot trigger a re-admission
      // of a node that has long since died or joined elsewhere.
      unmarked_heard_.clear();
    }
  }
  // Cumulative knowledge is published after admissions, so a re-admitted
  // node is never simultaneously listed failed in the same update.
  update.all_failed = log_.known_failed();
  if (config_.recovery_enabled) {
    // Under crash-recovery the scheduled update always carries the full
    // roster: members reconcile against it, so a lost admission or removal
    // update heals at the next execution instead of diverging forever.
    update.members_snapshot = view_.cluster()->members;
  }

  if (!failed.empty()) {
    update.report = fresh_report_id();
    if (hooks_.on_detection) {
      hooks_.on_detection(node_.id(), epoch_, failed, /*by_deputy=*/false);
    }
  }
  if (config_.adaptive_enabled) {
    // Piggyback the self-tuning announcement: worst per-member loss estimate
    // plus the tune level, ramped by at most one step per epoch so members
    // (who adopt the announced level directly) and the CH never disagree by
    // more than one level even across a lost update.
    const std::uint32_t worst = estimator_.max_loss_pm();
    std::uint8_t target = 4;
    if (worst < 50) {
      target = 0;
    } else if (worst < 150) {
      target = 1;
    } else if (worst < 300) {
      target = 2;
    } else if (worst < 450) {
      target = 3;
    }
    if (target > tune_level_) {
      ++tune_level_;
    } else if (target < tune_level_) {
      --tune_level_;
    }
    update.cluster_loss_pm = static_cast<std::uint16_t>(worst);
    update.tune_level = tune_level_;
  }
  got_scheduled_update_ = true;  // the author trivially has the update
  scheduled_update_ = update_pool_;
  broadcast_update(update_pool_);
  if (config_.checkpoint_enabled && config_.checkpoint_interval_epochs > 0 &&
      epoch_ % config_.checkpoint_interval_epochs == 0) {
    emit_checkpoint();
  }
}

void FdsAgent::emit_checkpoint() {
  if (!node_.alive() || !view_.is_clusterhead()) return;
  auto cp = std::make_shared<CheckpointPayload>();
  cp->cluster = view_.cluster()->id;
  cp->sender = node_.id();
  cp->epoch = epoch_;
  cp->seq = ++checkpoint_seq_;
  cp->clusterhead = view_.cluster()->clusterhead;
  cp->members = view_.cluster()->members;
  cp->deputies = view_.cluster()->deputies;
  cp->failed = log_.known_failed();
  // The author's own copy IS its stable storage (its radio never hears its
  // own broadcast); the broadcast replicates it to the deputies.
  stable_checkpoint_ = cp;
  transport_.send(std::move(cp));
}

void FdsAgent::handle_checkpoint(
    const std::shared_ptr<const CheckpointPayload>& cp) {
  if (!config_.checkpoint_enabled) return;
  if (!view_.affiliated() || cp->cluster != view_.cluster()->id) return;
  // Minimum-process: only the CH and its deputies retain cluster state.
  // The checkpoint's own deputy list also counts — a deputy promoted by the
  // very roster this checkpoint carries may not see itself in its (older)
  // local view yet.
  const bool holder =
      view_.is_clusterhead() || view_.is_deputy() ||
      std::find(cp->deputies.begin(), cp->deputies.end(), node_.id()) !=
          cp->deputies.end();
  if (!holder) return;
  // Keep the freshest: newest epoch wins; the sequence number breaks ties
  // within an epoch (a takeover emits with a fresh head's counter).
#ifndef CFDS_MUTATION_NO_CHECKPOINT_SEQ_GUARD
  if (stable_checkpoint_ &&
      (cp->epoch < stable_checkpoint_->epoch ||
       (cp->epoch == stable_checkpoint_->epoch &&
        cp->seq < stable_checkpoint_->seq))) {
    return;
  }
#endif
  stable_checkpoint_ = cp;
}

// LINT-ROUND-PATH: per-epoch for every agent; allocation-free in steady
// state (tests/test_steady_state_alloc.cpp). Failure-path allocations are
// baseline burndown debt.
void FdsAgent::deputy_check() {
  if (!node_.alive() || !view_.affiliated()) return;
  // Ranked deputies (feature F2): the highest-ranked DCH decides now; each
  // lower rank stands by one further Thop and only acts if no takeover (or
  // CH update) has been heard by then — covering the CH and higher deputies
  // dying in the same interval.
  const auto& deputies = view_.cluster()->deputies;
  std::size_t rank = deputies.size();
  for (std::size_t i = 0; i < deputies.size(); ++i) {
    if (deputies[i] == node_.id()) rank = i;
  }
  if (rank == deputies.size()) return;  // not a deputy
  if (rank == 0) {
    evaluate_ch_failure();
  } else {
    const std::uint64_t epoch_at_arming = epoch_;
    // Stored (not discarded) so that crash() can cancel it: a node that dies
    // with its evaluation armed must not fire a takeover from the grave.
    deputy_timer_ = timers_.schedule_after(std::int64_t(rank) * t_hop_,
                                        [this, epoch_at_arming] {
                                          if (epoch_ == epoch_at_arming) {
                                            evaluate_ch_failure();
                                          }
                                        });
  }
}

void FdsAgent::evaluate_ch_failure() {
  if (!node_.alive() || !view_.affiliated()) return;
#ifndef CFDS_MUTATION_DEPUTY_IGNORES_CH_UPDATE
  if (got_scheduled_update_) return;  // the CH (or a higher deputy) spoke
  evidence_.ch_update_heard = got_scheduled_update_;
#else
  evidence_.ch_update_heard = false;
#endif
  const NodeId ch = view_.cluster()->clusterhead;
  if (!clusterhead_failed(ch, evidence_, config_.rule_mode)) return;
  if (config_.adaptive_enabled) {
    // Accrual gate on the takeover: suspicion accrued over past executions
    // (begin_epoch observes the CH once per epoch) plus this execution's
    // still-unrecorded miss must clear the threshold. Over a clean link
    // that is one miss — the static rule's latency; over a lossy link the
    // deputy holds back for more consecutive silence.
    if (estimator_.pending_suspicion_milli(ch) <
        config_.accrual_threshold_milli) {
      return;
    }
  }

  // Takeover (Section 4.2): the highest-ranked DCH assumes the CH role and
  // announces the failure together with its own R-1 hearing so members can
  // proactively cover any member outside the new CH's range (Figure 2(a)).
  view_.apply_takeover(node_.id());
  // Role change: the member-side estimator tracked the (now failed) CH;
  // as acting head this node starts estimating its members afresh.
  estimator_.clear();
  log_.record(ch, {timers_.now(), epoch_, node_.id()});

  auto update = std::make_shared<HealthUpdatePayload>();
  update->cluster = view_.cluster()->id;
  update->sender = node_.id();
  update->epoch = epoch_;
  update->newly_failed = {ch};
  update->all_failed = log_.known_failed();
  update->takeover = true;
  update->sender_heard.assign(evidence_.heartbeats.begin(),
                              evidence_.heartbeats.end());
  update->report = fresh_report_id();
  if (config_.recovery_enabled) {
    update->members_snapshot = view_.cluster()->members;
  }

  if (hooks_.on_detection) {
    hooks_.on_detection(node_.id(), epoch_, update->newly_failed,
                        /*by_deputy=*/true);
  }
  if (hooks_.on_takeover) hooks_.on_takeover(node_.id(), ch, epoch_);

  got_scheduled_update_ = true;
  scheduled_update_ = update;
  broadcast_update(std::move(update));
}

// LINT-ROUND-PATH: per-epoch for every agent; allocation-free in steady
// state (tests/test_steady_state_alloc.cpp). Failure-path allocations are
// baseline burndown debt.
void FdsAgent::completeness_check() {
  if (!node_.alive() || !view_.affiliated() || view_.is_clusterhead()) return;
  if (got_scheduled_update_) return;
  auto request = std::make_shared<UpdateRequestPayload>();
  request->sender = node_.id();
  request->cluster = view_.cluster()->id;
  request->epoch = epoch_;
  transport_.send(std::move(request));
}

void FdsAgent::broadcast_relay(const std::vector<NodeId>& reported_failed,
                               ReportId ack, ClusterId learned_from) {
  if (!node_.alive() || !view_.is_clusterhead()) return;
  std::vector<NodeId> news;
  for (NodeId f : reported_failed) {
    if (f != node_.id() && log_.record(f, {timers_.now(), epoch_, node_.id()})) {
      news.push_back(f);
    }
  }
  auto update = std::make_shared<HealthUpdatePayload>();
  update->cluster = view_.cluster()->id;
  update->sender = node_.id();
  update->epoch = epoch_;
  update->newly_failed = news;
  update->all_failed = log_.known_failed();
  update->learned_from = learned_from;
  if (ack.is_valid()) update->acks.push_back(ack);
  if (!news.empty()) {
    update->report = fresh_report_id();
    view_.remove_members(news);
  }
  broadcast_update(std::move(update));
}

void FdsAgent::broadcast_update(std::shared_ptr<HealthUpdatePayload> update) {
  std::shared_ptr<const HealthUpdatePayload> frozen = std::move(update);
  if (hooks_.on_update_sent) hooks_.on_update_sent(node_.id(), frozen);
  transport_.send(frozen);
}

void FdsAgent::note_alive(NodeId sender) {
  evidence_.heartbeats.insert(sender);
  if (config_.tolerate_epoch_skew) heartbeat_seen_[sender] = timers_.now();
}

void FdsAgent::count_revert(std::uint32_t cause) {
  ++reverts_[cause];
  last_revert_epoch_ = epoch_;
  last_revert_cause_ = cause;
}

void FdsAgent::prune_evidence() {
  // One full execution plus slack: an on-time previous-epoch frame (age
  // ~phi at the boundary) deliberately SURVIVES into the next execution,
  // so a node is judged silent only after missing two executions in a row.
  // On a real transport a single miss is routinely benign — one lost
  // datagram, or one heartbeat delivered late by a scheduling stall — and
  // each false detection costs a full revert/re-subscribe/re-admit cycle;
  // requiring consecutive misses suppresses that quadratically. The price
  // is one extra execution of detection latency, paid only in service mode
  // (the simulator's hard-boundary path never prunes).
  const SimTime cutoff =
      timers_.now() -
      SimTime::micros(config_.heartbeat_interval.as_micros() +
                      t_hop_.as_micros());
  std::vector<NodeId> stale;
  for (NodeId heard : evidence_.heartbeats) {
    const auto it = heartbeat_seen_.find(heard);
    if (it == heartbeat_seen_.end() || it->second < cutoff) {
      stale.push_back(heard);
    }
  }
  for (NodeId n : stale) {
    evidence_.heartbeats.erase(n);
    heartbeat_seen_.erase(n);
  }
  stale.clear();
  for (const auto& [sender, slot] : evidence_.digest_index()) {
    const auto it = digest_seen_.find(sender);
    if (it == digest_seen_.end() || it->second < cutoff) {
      stale.push_back(sender);
    }
  }
  for (NodeId n : stale) {
    evidence_.erase_digest(n);
    digest_seen_.erase(n);
  }
  evidence_.ch_update_heard = false;
}

bool FdsAgent::apply_failures(const HealthUpdatePayload& update) {
  bool step_down = false;
  std::vector<NodeId> to_remove;
  auto learn = [&](NodeId f, bool fresh_news) {
    if (f == node_.id()) {
      // We were falsely detected. Re-subscribe by reverting to the unmarked
      // state: our next heartbeat acts as a membership subscription (F5).
      if (fresh_news) {
        if (node_.marked()) count_revert(kRevertFreshSelfNews);
        node_.set_marked(false);
        if (config_.tolerate_epoch_skew) {
          // The author has already dropped us from its roster. Keeping the
          // now-stale view would pin us to that cluster: re-admission offers
          // from any other head would be discarded as foreign. Step down
          // fully so whichever head answers our subscription can install us.
          step_down = true;
        }
      } else if (config_.recovery_enabled && node_.marked()) {
        // Stale failure news about ourselves while we think we are a marked
        // participant: the cluster reorganized while we were silent (a
        // freeze, or a takeover update we missed). Our view is stale — the
        // caller drops it so the next heartbeat re-runs affiliation.
#ifndef CFDS_MUTATION_DROP_SELF_RECONCILIATION
        step_down = true;
        count_revert(kRevertStaleSelfNews);
#endif
      }
      return;
    }
    if (log_.record(f, {timers_.now(), update.epoch, update.sender})) {
      to_remove.push_back(f);
    }
  };
  for (NodeId f : update.newly_failed) learn(f, true);
  for (NodeId f : update.all_failed) learn(f, false);
  view_.remove_members(to_remove);
  return step_down;
}

void FdsAgent::handle_update(
    const std::shared_ptr<const HealthUpdatePayload>& update) {
  if (!view_.affiliated()) {
    // An unaffiliated node admitted via subscription installs a fresh view.
    const bool admitted_me =
        std::find(update->admitted.begin(), update->admitted.end(),
                  node_.id()) != update->admitted.end();
    if (admitted_me) {
      ClusterView fresh;
      fresh.id = update->cluster;
      fresh.clusterhead = update->sender;
      fresh.members = update->members_snapshot;
      view_.set_cluster(std::move(fresh));
      node_.set_marked(true);
      if (config_.tolerate_epoch_skew) {
        // Failure records accumulated before (or between) affiliations are
        // scoped to clusters we no longer watch; in a shared broadcast
        // domain they can name nodes that are alive and well elsewhere.
        // Start from the new head's knowledge: apply_failures() below
        // relearns its all_failed list.
        log_.clear();
      }
    } else {
      return;
    }
  }
  if (update->cluster != view_.cluster()->id) return;  // foreign cluster

  if (config_.recovery_enabled && view_.is_clusterhead() &&
      update->sender != node_.id()) {
    // Every direct health update is authored by a node acting as this
    // cluster's head, so hearing one means a rival head is in radio contact
    // (two deputies that took over on opposite sides of a healed partition,
    // or a thawed head meeting its replacement). Section 3's election rule
    // arbitrates: the lowest NID keeps the cluster; the loser steps down,
    // drops its log, and re-subscribes via F5 — its former members follow
    // once their scheduled updates go missing.
#ifndef CFDS_MUTATION_SKIP_RIVAL_ARBITRATION
    if (update->sender.value() < node_.id().value()) {
      count_revert(kRevertRivalHead);
      view_.clear();
      node_.set_marked(false);
      log_.clear();
      estimator_.clear();
      tune_level_ = 0;
      missed_updates_ = 0;
      got_scheduled_update_ = false;
      scheduled_update_.reset();
      if (hooks_.on_update_applied) {
        hooks_.on_update_applied(node_.id(), *update);
      }
    }
#endif
    return;
  }

  const bool scheduled =
      update->epoch == epoch_ &&
      (update->sender == view_.cluster()->clusterhead || update->takeover);

  if (config_.recovery_enabled && !scheduled) {
    // A same-cluster update from a head we do not follow — the other side of
    // a cluster split into disconnected components, each with its own acting
    // CH. Its failure news is not authoritative for this side (it believes
    // our whole side failed); applying it would make our log flip-flop
    // between the two heads' views every execution. Process it only if it
    // concerns us directly: an admission (that is how we join a side) or
    // failure news about ourselves (that is how a stale head steps down).
    const bool about_me =
        std::find(update->admitted.begin(), update->admitted.end(),
                  node_.id()) != update->admitted.end() ||
        std::find(update->newly_failed.begin(), update->newly_failed.end(),
                  node_.id()) != update->newly_failed.end() ||
        std::find(update->all_failed.begin(), update->all_failed.end(),
                  node_.id()) != update->all_failed.end();
    if (!about_me) return;
  }

  if (apply_failures(*update)) {
    // Stale-self step-down (crash-recovery): the cluster believes we failed
    // and has moved on. Drop the stale view and revert to unmarked; the
    // next heartbeat re-subscribes us through the F5 admission path.
    view_.clear();
    node_.set_marked(false);
    estimator_.clear();
    tune_level_ = 0;
    missed_updates_ = 0;
    got_scheduled_update_ = false;
    scheduled_update_.reset();
    if (hooks_.on_update_applied) {
      hooks_.on_update_applied(node_.id(), *update);
    }
    return;
  }
  if (!update->departed.empty()) view_.remove_members(update->departed);
  if (update->takeover) view_.apply_takeover(update->sender);
  if (!update->admitted.empty()) {
    const bool admitted_me =
        std::find(update->admitted.begin(), update->admitted.end(),
                  node_.id()) != update->admitted.end();
    if (admitted_me) {
      if (config_.recovery_enabled && view_.is_clusterhead()) {
        // Another node admitted us as a plain member: our clusterhead role
        // predates a takeover we slept through (a thawed CH whose deputy
        // replaced it). Accept the demotion and install the author's view —
        // the cluster must not end up with two acting heads.
        ClusterView fresh;
        fresh.id = update->cluster;
        fresh.clusterhead = update->sender;
        fresh.members = update->members_snapshot;
        view_.set_cluster(std::move(fresh));
        log_.clear();
      }
      node_.set_marked(true);
    }
    if (config_.recovery_enabled) {
      // The CH erased these entries when it re-admitted the nodes; mirror
      // that here so the stale-snapshot guard below cannot re-remove a
      // freshly resurrected member.
      for (NodeId n : update->admitted) log_.erase(n);
    }
    view_.admit_members(update->admitted);
    // A snapshot from a CH with a staler failure log than ours could have
    // re-introduced members we already know to be gone.
    view_.remove_members(log_.known_failed());
  }

  if (config_.recovery_enabled && scheduled && view_.affiliated() &&
      !view_.is_clusterhead()) {
    // The acting CH's cumulative failure list is authoritative for this
    // cluster: any entry of ours it no longer carries was refuted by a
    // re-admission whose update we missed.
    for (NodeId f : log_.known_failed()) {
      if (std::find(update->all_failed.begin(), update->all_failed.end(),
                    f) == update->all_failed.end()) {
        log_.erase(f);
      }
    }
    if (!update->members_snapshot.empty()) {
      const auto& roster = update->members_snapshot;
#ifndef CFDS_MUTATION_DROP_SELF_RECONCILIATION
      if (std::find(roster.begin(), roster.end(), node_.id()) ==
          roster.end()) {
        // The acting CH does not count us as a member — we were removed
        // (or replaced by a takeover) while unreachable. Re-subscribe.
        count_revert(kRevertRosterDropped);
        view_.clear();
        node_.set_marked(false);
        estimator_.clear();
        tune_level_ = 0;
        missed_updates_ = 0;
        got_scheduled_update_ = false;
        scheduled_update_.reset();
        if (hooks_.on_update_applied) {
          hooks_.on_update_applied(node_.id(), *update);
        }
        return;
      }
#endif
      view_.sync_members(roster);
    }
  }

  if (config_.adaptive_enabled && scheduled && !view_.is_clusterhead()) {
    // Adopt the CH-announced tune level directly. The CH ramps its
    // announcement one step per epoch, so even when one update is lost the
    // member's level lags the CH's by at most one.
    tune_level_ = update->tune_level;
  }

  if (scheduled && !got_scheduled_update_) {
    got_scheduled_update_ = true;
    scheduled_update_ = update;
    // Proactive post-takeover coverage (Figure 2(a)): forward to members we
    // heard in R-1 that the new CH did not hear.
    if (update->takeover && config_.proactive_takeover_forwarding) {
      FlatSet<NodeId> covered;
      covered.assign(update->sender_heard.begin(), update->sender_heard.end());
      for (NodeId heard : evidence_.heartbeats) {
        if (heard == update->sender || covered.contains(heard)) continue;
        if (!view_.cluster()->is_member(heard)) continue;
        schedule_peer_forward(heard);
      }
    }
  }
  if (hooks_.on_update_applied) {
    hooks_.on_update_applied(node_.id(), *update);
  }
}

void FdsAgent::schedule_peer_forward(NodeId target) {
  if (!config_.peer_forwarding) return;
  if (acked_requesters_.contains(target)) return;
  if (pending_forwards_.contains(target) &&
      pending_forwards_[target].pending()) {
    return;
  }
  const SimTime wait =
      peer_waiting_period(node_.id(), energy_fraction(), t_hop_);
  pending_forwards_[target] = timers_.schedule_after(wait, [this, target] {
    if (!node_.alive() || acked_requesters_.contains(target)) return;
    if (!scheduled_update_) return;
    auto forward = std::make_shared<UpdateForwardPayload>();
    forward->forwarder = node_.id();
    forward->target = target;
    forward->update = scheduled_update_;
    transport_.send(std::move(forward), target);
  });
}

// LINT-ROUND-PATH: per-epoch for every agent; allocation-free in steady
// state (tests/test_steady_state_alloc.cpp). Failure-path allocations are
// baseline burndown debt.
void FdsAgent::on_frame(const Reception& reception) {
  if (!node_.alive()) return;

  if (const auto* hb = payload_cast<HeartbeatPayload>(reception.payload)) {
    note_alive(hb->sender);
    if (!hb->marked) unmarked_heard_.insert(hb->sender);
    return;
  }

  if (const auto* leave = payload_cast<LeaveNoticePayload>(reception.payload)) {
    // The departing node is alive right now (evidence) but will be removed
    // from the membership at the next update, not reported failed.
    note_alive(leave->sender);
    leaves_heard_.insert(leave->sender);
    return;
  }

  if (const auto* notice =
          payload_cast<SleepNoticePayload>(reception.payload)) {
    // The notice itself proves the sender alive this execution.
    note_alive(notice->sender);
    notices_heard_[notice->sender] = notice->epochs;
    if (config_.honor_sleep_notices) {
      // +1: the first exemption is consumed by this very execution (the
      // sleeper has already powered down and sends no digest), leaving
      // `epochs` exemptions for the announced window itself.
      sleep_exemptions_[notice->sender] = notice->epochs + 1;
    }
    return;
  }

  if (const auto* digest = payload_cast<DigestPayload>(reception.payload)) {
    // Digests feed the CH's rule and the DCH's CH-failure rule; other
    // members don't need them, so skip the bookkeeping there.
    if (view_.affiliated() && digest->cluster == view_.cluster()->id &&
        (view_.is_clusterhead() || view_.is_deputy())) {
      evidence_.digest_from(digest->sender)
          .assign(digest->heard.begin(), digest->heard.end());
      if (config_.tolerate_epoch_skew) {
        digest_seen_[digest->sender] = timers_.now();
      }
      // Relayed sleep notices: grant (or extend) exemptions for sleepers
      // whose own notice we missed.
      if (config_.honor_sleep_notices) {
        for (const auto& [sleeper, epochs] : digest->sleeping) {
          auto& exemption = sleep_exemptions_[sleeper];
          exemption = std::max(exemption, epochs + 1);
          // The notice also proves the sleeper was alive in R-1.
          note_alive(sleeper);
        }
      }
    }
    return;
  }

  if (auto update = payload_cast_shared<HealthUpdatePayload>(reception.payload)) {
    handle_update(update);
    return;
  }

  if (const auto* request =
          payload_cast<UpdateRequestPayload>(reception.payload)) {
    if (!view_.affiliated() || request->cluster != view_.cluster()->id) return;
    if (request->epoch != epoch_ || !got_scheduled_update_) return;
    if (!scheduled_update_ || scheduled_update_->sender == node_.id()) return;
    schedule_peer_forward(request->sender);
    return;
  }

  if (const auto* forward =
          payload_cast<UpdateForwardPayload>(reception.payload)) {
    if (forward->target != node_.id()) return;
    handle_update(forward->update);
    if (forward->update->epoch == epoch_) {
      if (!config_.recovery_enabled) {
        // Under crash-recovery semantics handle_update just decided whether
        // this counts as our cluster's scheduled update; a forwarded update
        // from a CH we no longer follow must not mask a missing one, or the
        // re-affiliation counter would never fire.
        got_scheduled_update_ = true;
        if (!scheduled_update_) scheduled_update_ = forward->update;
      }
      if (got_scheduled_update_ && !sent_ack_) {
        sent_ack_ = true;
        auto ack = std::make_shared<UpdateAckPayload>();
        ack->sender = node_.id();
        ack->epoch = epoch_;
        transport_.send(std::move(ack));
      }
    }
    return;
  }

  if (const auto* ack = payload_cast<UpdateAckPayload>(reception.payload)) {
    if (ack->epoch != epoch_) return;
    acked_requesters_.insert(ack->sender);
    if (const auto it = pending_forwards_.find(ack->sender);
        it != pending_forwards_.end()) {
      it->second.cancel();
    }
    return;
  }

  if (auto cp = payload_cast_shared<CheckpointPayload>(reception.payload)) {
    handle_checkpoint(cp);
    return;
  }
}

FdsService::FdsService(Network& network, std::vector<MembershipView*> views,
                       FdsConfig config)
    : network_(network), config_(config), timers_(network.simulator()) {
  const SimTime t_hop = network_.channel().config().t_hop;
  config_.validate(t_hop);
  agents_.reserve(network_.nodes().size());
  transports_.reserve(network_.nodes().size());
  active_.reserve(network_.nodes().size());
  for (Node* node : network_.nodes()) {
    CFDS_EXPECT(node->id().value() < views.size() &&
                    views[node->id().value()] != nullptr,
                "missing membership view");
    transports_.push_back(std::make_unique<SimTransport>(*node));
    agents_.push_back(std::make_unique<FdsAgent>(
        *node, *views[node->id().value()], *transports_.back(), timers_,
        t_hop, config_, hooks_));
    if (node->alive()) active_.push_back(std::uint32_t(agents_.size() - 1));
    watch_lifecycle(*node, agents_.size() - 1);
  }
}

void FdsService::watch_lifecycle(Node& node, std::size_t idx) {
  // Crash/recover events arrive as their own simulator events, never from
  // inside a round sweep (fault injector, bench harnesses, world ops), so
  // editing active_ here cannot invalidate an in-flight sweep.
  node.add_lifecycle_handler([this, idx](bool alive) {
    const auto it = std::lower_bound(active_.begin(), active_.end(),
                                     std::uint32_t(idx));
    const bool present = it != active_.end() && *it == std::uint32_t(idx);
    if (alive && !present) {
      active_.insert(it, std::uint32_t(idx));
    } else if (!alive && present) {
      active_.erase(it);
    }
  });
}

void FdsService::install_epoch_clocks(bool install) {
  if (epoch_clocks_installed_ == install) return;
  epoch_clocks_installed_ = install;
  for (auto& a : agents_) {
    a->set_epoch_clock(install ? &current_epoch_ : nullptr);
  }
}

std::vector<FdsAgent*> FdsService::agents() {
  std::vector<FdsAgent*> out;
  out.reserve(agents_.size());
  for (auto& a : agents_) out.push_back(a.get());
  return out;
}

FdsAgent& FdsService::agent_for(NodeId id) {
  // Agents are created in NID order (construction walks network_.nodes(),
  // adoption appends freshly assigned NIDs), so the common case is a direct
  // index; the scan only backs up exotic harnesses.
  const std::size_t idx = id.value();
  if (idx < agents_.size() && agents_[idx]->id() == id) return *agents_[idx];
  for (auto& a : agents_) {
    if (a->id() == id) return *a;
  }
  CFDS_EXPECT(false, "no FDS agent for node id");
  __builtin_unreachable();
}

FdsAgent& FdsService::adopt_node(Node& node, MembershipView& view) {
  transports_.push_back(std::make_unique<SimTransport>(node));
  agents_.push_back(std::make_unique<FdsAgent>(
      node, view, *transports_.back(), timers_,
      network_.channel().config().t_hop, config_, hooks_));
  if (epoch_clocks_installed_) agents_.back()->set_epoch_clock(&current_epoch_);
  if (node.alive()) {
    active_.push_back(std::uint32_t(agents_.size() - 1));
  }
  watch_lifecycle(node, agents_.size() - 1);
  return *agents_.back();
}

void FdsService::schedule_epoch(std::uint64_t epoch, SimTime t) {
  Simulator& sim = network_.simulator();
  const SimTime t_hop = network_.channel().config().t_hop;
  if (config_.max_clock_skew == SimTime::zero() && !skew_provider_) {
    // Common case: one event per round sweeps the alive agents, in NID
    // order — identical firing order to the historical sweep over all
    // agents, because a dead agent's round actions are unconditional
    // no-ops. Idle (dead) nodes therefore cost nothing per round, which is
    // what keeps mostly-failed megascale worlds cheap. active_ is read at
    // fire time, so a node recovering between rounds rejoins mid-epoch
    // exactly as it did under the full sweep.
    install_epoch_clocks(true);
    auto all = [this](void (FdsAgent::*action)()) {
      return [this, action] {
        for (std::uint32_t idx : active_) (agents_[idx].get()->*action)();
      };
    };
    sim.schedule_at(t, [this, epoch] {
      current_epoch_ = epoch;
      for (std::uint32_t idx : active_) agents_[idx]->begin_epoch(epoch);
    });
    sim.schedule_at(t, all(&FdsAgent::round1_heartbeat));
    sim.schedule_at(t + t_hop, all(&FdsAgent::round2_digest));
    sim.schedule_at(t + 2 * t_hop, all(&FdsAgent::round3_update));
    sim.schedule_at(t + 3 * t_hop, all(&FdsAgent::deputy_check));
    sim.schedule_at(t + 4 * t_hop, all(&FdsAgent::completeness_check));
    return;
  }
  // Per-agent scheduling below reaches dead agents too (begin_epoch keeps
  // their epoch_ current), so the recovery-time epoch catch-up must not
  // also fire.
  install_epoch_clocks(false);
  // Skewed clocks: each agent runs its rounds shifted by its own fixed
  // offset in [0, max_clock_skew] — derived from its NID so the offset is
  // stable across epochs, like a real mis-set clock. A skew provider (the
  // fault injector's ClockDriftRamp) adds a per-epoch offset on top.
  for (auto& agent : agents_) {
    SimTime skew = SimTime::zero();
    if (config_.max_clock_skew != SimTime::zero()) {
      std::uint64_t sm = agent->id().value() ^ 0x5CE4;
      const double frac = double(splitmix64(sm) >> 11) * 0x1.0p-53;
      skew = SimTime::micros(
          std::int64_t(frac * double(config_.max_clock_skew.as_micros())));
    }
    if (skew_provider_) {
      const SimTime extra = skew_provider_(agent->id(), epoch);
      if (extra.as_micros() > 0) skew = skew + extra;
    }
    FdsAgent* a = agent.get();
    sim.schedule_at(t + skew, [a, epoch] { a->begin_epoch(epoch); });
    sim.schedule_at(t + skew, [a] { a->round1_heartbeat(); });
    sim.schedule_at(t + skew + t_hop, [a] { a->round2_digest(); });
    sim.schedule_at(t + skew + 2 * t_hop, [a] { a->round3_update(); });
    sim.schedule_at(t + skew + 3 * t_hop, [a] { a->deputy_check(); });
    sim.schedule_at(t + skew + 4 * t_hop, [a] { a->completeness_check(); });
  }
}

SimTime FdsService::run_epochs(std::uint64_t count, SimTime start) {
  for (std::uint64_t k = 0; k < count; ++k) {
    schedule_epoch(k, start + std::int64_t(k) * config_.heartbeat_interval);
  }
  const SimTime end =
      start + std::int64_t(count) * config_.heartbeat_interval;
  network_.simulator().run_until(end);
  return end;
}

}  // namespace cfds
