// Per-cluster link-quality estimation for the self-tuning detector.
//
// A deciding node (CH, or a DCH watching the CH) feeds the estimator one
// observation per member per FDS execution: was the member heard this
// execution (heartbeat, own digest, or digest mention — the same evidence
// the detection rule consumes), or was it silent? From that stream the
// estimator maintains, per member:
//
//   loss_pm              an EWMA estimate of the member's round-miss
//                        probability, in per-mille (0..1000). Update rule
//                        loss_pm' = (3*loss_pm + miss*1000) / 4, i.e. a
//                        decay factor of 1/4 per execution, clamped to
//                        [kMinLossPm, kMaxLossPm]. This is the congestion
//                        signal: it keeps folding misses in while a member
//                        is silent, so max_loss_pm() climbs during an
//                        interference burst and feeds the CH's announced
//                        tune level.
//   run_loss_pm          loss_pm as it stood when the current silence run
//                        began, BEFORE the run's first miss was folded in.
//                        Suspicion is computed against this snapshot: the
//                        question accrual answers is "how surprising is
//                        this much silence from a member whose link looked
//                        like THAT?", and letting the run's own misses
//                        inflate the estimate would make every long silence
//                        self-excusing (the product consecutive * surprise
//                        would plateau below any useful threshold instead
//                        of growing without bound).
//   consecutive_missed   executions in a row the member has been silent.
//
// and derives an accrual-style suspicion level (after Hayashibara's phi
// accrual detector, via "Robust Failure Detection Architecture for Large
// Scale Distributed Systems", arXiv:0910.0708):
//
//   suspicion_milli = consecutive_missed * surprise_milli(run_loss_pm)
//
// where surprise_milli(q) = -log10(q) in milli-units — the surprisal of one
// round-miss given the member's estimated loss rate. Over a clean link
// (loss_pm at the 1% floor) a single miss scores 2000 milli, crossing the
// default 1500 threshold immediately — the static detector's latency. Over
// a 30% link a miss scores ~523, so three consecutive misses are needed —
// the detector automatically trades latency for false-positive suppression
// exactly where the link is bad.
//
// Cluster-wide interference (many members silent in the SAME execution) is
// not a per-link phenomenon and is handled one level up, by the congestion
// gate in detect_failed_accrual (fds/detector.h).
//
// All arithmetic is integer/fixed-point (milli-log10 via shift-and-square
// log2): the estimator runs inside the deterministic replay core, where
// cfds-lint bans floating point (rule float-in-estimator).

#pragma once

#include <cstdint>

#include "common/flat.h"
#include "common/ids.h"

namespace cfds {

namespace check {
class StateFingerprinter;
}  // namespace check

/// log10(x) in milli-units (log10(x) * 1000, rounded down), for x >= 1.
/// Integer shift-and-square fixed-point; deterministic on every platform.
[[nodiscard]] std::uint32_t milli_log10(std::uint32_t x);

class LinkQualityEstimator {
 public:
  /// Clamp bounds for the loss estimate: 1% floor (a silent member is
  /// always at least mildly surprising) and 90% ceiling (even a terrible
  /// link eventually accrues suspicion).
  static constexpr std::uint32_t kMinLossPm = 10;
  static constexpr std::uint32_t kMaxLossPm = 900;

  /// Records one execution's observation of `member`.
  void observe(NodeId member, bool heard);

  /// Current loss estimate for `member` in per-mille; kMinLossPm when the
  /// member has never been observed.
  [[nodiscard]] std::uint32_t loss_pm(NodeId member) const;

  /// Executions in a row `member` has been silent; 0 when heard last
  /// execution or never observed.
  [[nodiscard]] std::uint32_t consecutive_missed(NodeId member) const;

  /// Surprisal of one round-miss at loss rate `loss_pm`, in milli-units:
  /// -log10(loss_pm / 1000) * 1000.
  [[nodiscard]] static std::uint32_t surprise_milli(std::uint32_t loss_pm);

  /// Accrued suspicion for `member` in milli-units: consecutive misses
  /// weighted by the surprisal of a miss at the loss rate estimated when
  /// the silence run began. 0 while the member is being heard.
  [[nodiscard]] std::uint32_t suspicion_milli(NodeId member) const;

  /// Suspicion if the current execution ALSO turns out to be a miss — what
  /// suspicion_milli will report after observe(member, false). Deciding
  /// nodes evaluate mid-execution (the deputy check fires before the next
  /// begin_epoch records the miss), so their gate must count the pending
  /// miss itself. For a never-observed member this is one miss over a clean
  /// link, so a member silent from the moment it was expected still accrues.
  [[nodiscard]] std::uint32_t pending_suspicion_milli(NodeId member) const;

  /// Worst (largest) loss estimate across all tracked members; kMinLossPm
  /// when nothing is tracked. This is the per-cluster congestion signal the
  /// CH announces on its R-3 update.
  [[nodiscard]] std::uint32_t max_loss_pm() const;

  /// Drops `member` (detected failed, departed, or no longer a member).
  void forget(NodeId member);

  /// Drops all state (step-down, view reset).
  void clear();

  [[nodiscard]] bool empty() const { return links_.empty(); }

 private:
  /// Fingerprint access for the model checker: members below must be
  /// covered (mixed or FP-EXEMPT'd) in src/check/fingerprint.cpp — rule
  /// state-outside-fingerprint.
  friend class check::StateFingerprinter;

  struct Link {
    std::uint32_t loss_pm = kMinLossPm;
    std::uint32_t run_loss_pm = kMinLossPm;
    std::uint32_t consecutive_missed = 0;
  };
  FlatMap<NodeId, Link> links_;
};

// Fingerprint tripwire (src/check/fingerprint.h): a layout change means
// estimator state was added — mix it in src/check/fingerprint.cpp (or
// FP-EXEMPT it with a reason), then update the expected size.
#if defined(__x86_64__) && defined(__linux__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(LinkQualityEstimator) == 24,
              "LinkQualityEstimator layout changed: update "
              "src/check/fingerprint.cpp, then this tripwire");
#endif

}  // namespace cfds
