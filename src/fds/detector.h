// The failure detection rules of Section 4.2, as pure functions.
//
// Keeping the rules free of protocol plumbing makes them directly
// unit-testable and lets the ablation benches swap evidence policies:
//
//   kFull          the paper's rule — heartbeat, the suspect's own digest
//                  (time redundancy), and every other member's digest
//                  (spatial + inherent message redundancy) all count as
//                  evidence of life;
//   kNoSpatial     only the suspect's own heartbeat and digest count
//                  (time redundancy alone);
//   kHeartbeatOnly a plain heartbeat detector (the strawman a flat FDS
//                  would implement): miss one heartbeat and you're suspect.

#pragma once

#include <vector>

#include "common/flat.h"
#include "common/ids.h"

namespace cfds {

/// Evidence a deciding node (CH or DCH) accumulates over one FDS execution.
/// Flat containers: filled and cleared once per execution, so the buffers are
/// reused round after round instead of re-allocating tree nodes.
struct RoundEvidence {
  /// Heartbeat senders heard during fds.R-1.
  FlatSet<NodeId> heartbeats;
  /// Digests received during fds.R-2: sender -> NIDs it reported hearing.
  FlatMap<NodeId, FlatSet<NodeId>> digests;
  /// Whether the CH's R-3 health-status update was received (DCH rule only).
  bool ch_update_heard = false;

  void clear() {
    heartbeats.clear();
    digests.clear();
    ch_update_heard = false;
  }
};

/// Evidence policy (see file comment).
enum class RuleMode { kFull, kNoSpatial, kHeartbeatOnly };

/// True if, under `mode`, the evidence contains no sign of life from `v`:
/// no heartbeat, no digest from v, and (kFull) no digest mentioning v.
[[nodiscard]] bool silent(NodeId v, const RoundEvidence& evidence,
                          RuleMode mode);

/// The CH's failure detection rule applied to every expected member:
/// returns the members judged failed, in ascending NID order.
[[nodiscard]] std::vector<NodeId> detect_failed(
    const std::vector<NodeId>& expected, const RoundEvidence& evidence,
    RuleMode mode);

/// The CH-failure detection rule evaluated by the highest-ranked DCH:
/// the CH is judged failed iff it is silent under `mode` AND its R-3
/// health-status update was not received.
[[nodiscard]] bool clusterhead_failed(NodeId ch, const RoundEvidence& evidence,
                                      RuleMode mode);

}  // namespace cfds
