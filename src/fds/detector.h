// The failure detection rules of Section 4.2, as pure functions.
//
// Keeping the rules free of protocol plumbing makes them directly
// unit-testable and lets the ablation benches swap evidence policies:
//
//   kFull          the paper's rule — heartbeat, the suspect's own digest
//                  (time redundancy), and every other member's digest
//                  (spatial + inherent message redundancy) all count as
//                  evidence of life;
//   kNoSpatial     only the suspect's own heartbeat and digest count
//                  (time redundancy alone);
//   kHeartbeatOnly a plain heartbeat detector (the strawman a flat FDS
//                  would implement): miss one heartbeat and you're suspect.

#pragma once

#include <cstdint>
#include <vector>

#include "common/flat.h"
#include "common/ids.h"
#include "fds/link_quality.h"

namespace cfds {

/// Evidence a deciding node (CH or DCH) accumulates over one FDS execution.
/// Flat containers: filled and cleared once per execution, so the buffers are
/// reused round after round instead of re-allocating tree nodes.
///
/// The per-sender digest sets live in a slot table (index + reusable slots)
/// instead of a FlatMap<NodeId, FlatSet<NodeId>>: clearing such a map
/// destroys every nested set's heap buffer, which put one allocation per
/// digest sender back on every epoch. Slots are cleared but never destroyed
/// by clear(), so steady-state executions recycle warm buffers.
struct RoundEvidence {
  /// Heartbeat senders heard during fds.R-1.
  FlatSet<NodeId> heartbeats;
  /// Whether the CH's R-3 health-status update was received (DCH rule only).
  bool ch_update_heard = false;

  /// The digest set recorded for `sender`, created empty on first use.
  [[nodiscard]] FlatSet<NodeId>& digest_from(NodeId sender) {
    if (const auto it = digest_index_.find(sender);
        it != digest_index_.end()) {
      return digest_slots_[it->second];
    }
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = used_;
      if (used_ == digest_slots_.size()) digest_slots_.emplace_back();
      ++used_;
    }
    digest_index_[sender] = slot;
    // Slots pair with a different sender every epoch (arrival order follows
    // the channel's delay draws), so without a floor a slot re-grows every
    // time it meets a larger digest than it has held — a reallocation
    // trickle that never converges. The high-water mark (maintained by
    // clear()) converges once the largest digest has been seen anywhere.
    digest_slots_[slot].reserve(slot_watermark_);
    return digest_slots_[slot];
  }

  [[nodiscard]] bool has_digest_from(NodeId sender) const {
    return digest_index_.contains(sender);
  }

  /// Sender -> slot, ascending sender order (iteration over digests is
  /// deterministic); resolve the set with digest_slot().
  [[nodiscard]] const FlatMap<NodeId, std::uint32_t>& digest_index() const {
    return digest_index_;
  }
  [[nodiscard]] const FlatSet<NodeId>& digest_slot(std::uint32_t slot) const {
    return digest_slots_[slot];
  }

  /// Drops `sender`'s digest; its slot is cleared and recycled (the skew
  /// path ages digests out one sender at a time — see prune_evidence).
  void erase_digest(NodeId sender) {
    const auto it = digest_index_.find(sender);
    if (it == digest_index_.end()) return;
    digest_slots_[it->second].clear();
    free_slots_.push_back(it->second);
    digest_index_.erase(sender);
  }

  void clear() {
    heartbeats.clear();
    for (std::uint32_t s = 0; s < used_; ++s) {
      if (digest_slots_[s].capacity() > slot_watermark_) {
        slot_watermark_ = std::uint32_t(digest_slots_[s].capacity());
      }
      digest_slots_[s].clear();
    }
    used_ = 0;
    free_slots_.clear();
    digest_index_.clear();
    ch_update_heard = false;
  }

 private:
  FlatMap<NodeId, std::uint32_t> digest_index_;
  std::vector<FlatSet<NodeId>> digest_slots_;
  /// Slots recycled by erase_digest before the epoch-end clear.
  std::vector<std::uint32_t> free_slots_;
  /// Slots handed out since the last clear(); [0, used_) are dirty.
  std::uint32_t used_ = 0;
  /// Largest slot capacity ever retired by clear(); fresh slot handouts are
  /// pre-reserved to it (see digest_from).
  std::uint32_t slot_watermark_ = 0;
};

// Fingerprint tripwire (src/check/fingerprint.h): a layout change means
// evidence state was added — mix it in src/check/fingerprint.cpp (or
// FP-EXEMPT it with a reason), then update the expected size.
#if defined(__x86_64__) && defined(__linux__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(RoundEvidence) == 112,
              "RoundEvidence layout changed: update "
              "src/check/fingerprint.cpp, then this tripwire");
#endif

/// Evidence policy (see file comment).
enum class RuleMode { kFull, kNoSpatial, kHeartbeatOnly };

/// True if, under `mode`, the evidence contains no sign of life from `v`:
/// no heartbeat, no digest from v, and (kFull) no digest mentioning v.
[[nodiscard]] bool silent(NodeId v, const RoundEvidence& evidence,
                          RuleMode mode);

/// The CH's failure detection rule applied to every expected member:
/// returns the members judged failed, in ascending NID order.
[[nodiscard]] std::vector<NodeId> detect_failed(
    const std::vector<NodeId>& expected, const RoundEvidence& evidence,
    RuleMode mode);

/// The CH-failure detection rule evaluated by the highest-ranked DCH:
/// the CH is judged failed iff it is silent under `mode` AND its R-3
/// health-status update was not received.
[[nodiscard]] bool clusterhead_failed(NodeId ch, const RoundEvidence& evidence,
                                      RuleMode mode);

/// Floor on the per-miss surprisal applied during a congestion execution
/// (see detect_failed_accrual): even a silence the cluster-wide miss
/// fraction would fully "explain" accrues at least this much per execution,
/// so a mass crash is declared within threshold/floor executions (4 at the
/// default 1500 threshold) instead of being excused forever.
inline constexpr std::uint32_t kCongestionSurpriseFloorMilli = 375;

/// The accrual variant of detect_failed (FdsConfig::adaptive_enabled):
/// orthogonal to `mode`, which still decides what counts as evidence.
/// Feeds this execution's silence observations into `estimator`, then
/// judges a member failed iff it is silent AND its accrued suspicion
/// (consecutive misses weighted by the surprisal of a miss at the link's
/// estimated loss rate — see fds/link_quality.h) reaches `threshold_milli`.
/// Over clean links this reduces to the static rule (one miss scores 2000,
/// past the default 1500); over lossy links it demands extra consecutive
/// misses before declaring, suppressing loss-induced false positives.
///
/// On top of the per-link accrual sits a cluster-level congestion gate —
/// the signal only a cluster-based detector has: when at least two members
/// and at least a quarter of the expected roster are silent in the SAME
/// execution, the silence pattern says interference, not crashes, and each
/// member's suspicion is capped at consecutive_missed times the surprisal
/// of the observed cluster-wide miss fraction (floored at
/// kCongestionSurpriseFloorMilli so genuine mass crashes still clear the
/// threshold after a few executions). Isolated crashes — one silent member,
/// or two in a big cluster — never trip the gate and keep static latency.
/// Returns the judged-failed members in ascending NID order.
[[nodiscard]] std::vector<NodeId> detect_failed_accrual(
    const std::vector<NodeId>& expected, const RoundEvidence& evidence,
    RuleMode mode, LinkQualityEstimator& estimator,
    std::uint32_t threshold_milli);

}  // namespace cfds
