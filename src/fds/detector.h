// The failure detection rules of Section 4.2, as pure functions.
//
// Keeping the rules free of protocol plumbing makes them directly
// unit-testable and lets the ablation benches swap evidence policies:
//
//   kFull          the paper's rule — heartbeat, the suspect's own digest
//                  (time redundancy), and every other member's digest
//                  (spatial + inherent message redundancy) all count as
//                  evidence of life;
//   kNoSpatial     only the suspect's own heartbeat and digest count
//                  (time redundancy alone);
//   kHeartbeatOnly a plain heartbeat detector (the strawman a flat FDS
//                  would implement): miss one heartbeat and you're suspect.

#pragma once

#include <cstdint>
#include <vector>

#include "common/flat.h"
#include "common/ids.h"
#include "fds/link_quality.h"

namespace cfds {

/// Evidence a deciding node (CH or DCH) accumulates over one FDS execution.
/// Flat containers: filled and cleared once per execution, so the buffers are
/// reused round after round instead of re-allocating tree nodes.
struct RoundEvidence {
  /// Heartbeat senders heard during fds.R-1.
  FlatSet<NodeId> heartbeats;
  /// Digests received during fds.R-2: sender -> NIDs it reported hearing.
  FlatMap<NodeId, FlatSet<NodeId>> digests;
  /// Whether the CH's R-3 health-status update was received (DCH rule only).
  bool ch_update_heard = false;

  void clear() {
    heartbeats.clear();
    digests.clear();
    ch_update_heard = false;
  }
};

// Fingerprint tripwire (src/check/fingerprint.h): a layout change means
// evidence state was added — mix it in src/check/fingerprint.cpp (or
// FP-EXEMPT it with a reason), then update the expected size.
#if defined(__x86_64__) && defined(__linux__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(RoundEvidence) == 56,
              "RoundEvidence layout changed: update "
              "src/check/fingerprint.cpp, then this tripwire");
#endif

/// Evidence policy (see file comment).
enum class RuleMode { kFull, kNoSpatial, kHeartbeatOnly };

/// True if, under `mode`, the evidence contains no sign of life from `v`:
/// no heartbeat, no digest from v, and (kFull) no digest mentioning v.
[[nodiscard]] bool silent(NodeId v, const RoundEvidence& evidence,
                          RuleMode mode);

/// The CH's failure detection rule applied to every expected member:
/// returns the members judged failed, in ascending NID order.
[[nodiscard]] std::vector<NodeId> detect_failed(
    const std::vector<NodeId>& expected, const RoundEvidence& evidence,
    RuleMode mode);

/// The CH-failure detection rule evaluated by the highest-ranked DCH:
/// the CH is judged failed iff it is silent under `mode` AND its R-3
/// health-status update was not received.
[[nodiscard]] bool clusterhead_failed(NodeId ch, const RoundEvidence& evidence,
                                      RuleMode mode);

/// Floor on the per-miss surprisal applied during a congestion execution
/// (see detect_failed_accrual): even a silence the cluster-wide miss
/// fraction would fully "explain" accrues at least this much per execution,
/// so a mass crash is declared within threshold/floor executions (4 at the
/// default 1500 threshold) instead of being excused forever.
inline constexpr std::uint32_t kCongestionSurpriseFloorMilli = 375;

/// The accrual variant of detect_failed (FdsConfig::adaptive_enabled):
/// orthogonal to `mode`, which still decides what counts as evidence.
/// Feeds this execution's silence observations into `estimator`, then
/// judges a member failed iff it is silent AND its accrued suspicion
/// (consecutive misses weighted by the surprisal of a miss at the link's
/// estimated loss rate — see fds/link_quality.h) reaches `threshold_milli`.
/// Over clean links this reduces to the static rule (one miss scores 2000,
/// past the default 1500); over lossy links it demands extra consecutive
/// misses before declaring, suppressing loss-induced false positives.
///
/// On top of the per-link accrual sits a cluster-level congestion gate —
/// the signal only a cluster-based detector has: when at least two members
/// and at least a quarter of the expected roster are silent in the SAME
/// execution, the silence pattern says interference, not crashes, and each
/// member's suspicion is capped at consecutive_missed times the surprisal
/// of the observed cluster-wide miss fraction (floored at
/// kCongestionSurpriseFloorMilli so genuine mass crashes still clear the
/// threshold after a few executions). Isolated crashes — one silent member,
/// or two in a big cluster — never trip the gate and keep static latency.
/// Returns the judged-failed members in ascending NID order.
[[nodiscard]] std::vector<NodeId> detect_failed_accrual(
    const std::vector<NodeId>& expected, const RoundEvidence& evidence,
    RuleMode mode, LinkQualityEstimator& estimator,
    std::uint32_t threshold_milli);

}  // namespace cfds
