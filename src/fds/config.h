// FDS tuning knobs.

#pragma once

#include "common/sim_time.h"
#include "fds/detector.h"

namespace cfds {

struct FdsConfig {
  /// Heartbeat interval phi: time between consecutive FDS executions.
  /// Must be at least 7 * Thop so that all rounds plus peer forwarding fit
  /// strictly inside one interval.
  SimTime heartbeat_interval = SimTime::seconds(10);

  /// Evidence policy; kFull is the paper's rule (ablations use the others).
  RuleMode rule_mode = RuleMode::kFull;

  /// Intra-cluster peer forwarding of missed health-status updates
  /// (Section 4.2, "Intra-Cluster Completeness Enhancement").
  bool peer_forwarding = true;

  /// Proactive forwarding after a DCH takeover to members the new CH did not
  /// hear (Figure 2(a): v' forwards based on the DCH's digest).
  bool proactive_takeover_forwarding = true;

  /// Treat unmarked heartbeats as membership subscriptions (feature F5).
  bool admit_unmarked = true;

  /// When true, the agent emits no bare heartbeat in fds.R-1; another layer
  /// (e.g. the aggregation service, whose measurement frames derive from
  /// HeartbeatPayload) supplies the heartbeats instead — Section 6's
  /// "message sharing" between failure detection and data aggregation.
  bool external_heartbeats = false;

  /// Honour SleepNoticePayload announcements: a node that declared a sleep
  /// window is exempt from the detection rule for that many executions
  /// (Section 6's sleep/wakeup extension). When false, sleepers are
  /// (falsely) reported failed — the hazard the paper flags.
  bool honor_sleep_notices = true;

  /// Relay overheard sleep notices inside digests, so a notice whose direct
  /// transmission to the CH is lost still arrives via any member whose
  /// digest lands — spatial redundancy for the sleep extension.
  bool relay_sleep_notices = true;

  /// After this many consecutive executions without receiving the scheduled
  /// health-status update (directly or via peers), a member concludes it has
  /// lost contact with its cluster — it drifted away (mobility), or its CH
  /// was replaced by a deputy it cannot hear — and reverts to the unmarked
  /// state so its next heartbeat re-subscribes it to whatever cluster hears
  /// it (feature F5). 0 disables re-affiliation.
  std::uint32_t reaffiliate_after_missed = 3;

  /// Per-node clock skew bound: each node's round actions are offset by a
  /// fixed draw from [-max_clock_skew, +max_clock_skew]. Zero models the
  /// paper's assumption that "the clock rate on each host is close to
  /// accurate"; raising it stress-tests that assumption.
  SimTime max_clock_skew = SimTime::zero();

  /// Crash-recovery extension (beyond the paper's fail-stop model, default
  /// off so the baseline reproduces the paper exactly). When enabled:
  ///  - a node admitted via F5 subscription has its failure-log entry erased
  ///    everywhere the admission update lands (re-admission refutes the
  ///    stale record — a resurrected node must not stay reported failed);
  ///  - a marked node that hears stale failure news about itself (it appears
  ///    in `all_failed` without being in `newly_failed`) concludes the
  ///    cluster moved on while it was silent — it drops its stale view and
  ///    reverts to unmarked so its next heartbeat re-subscribes it (the
  ///    thawed-after-freeze / zombie-CH step-down rule);
  ///  - a CH re-admits current members whose heartbeat arrives unmarked
  ///    (nodes that lost their view to a crash keep their membership slot
  ///    but need the snapshot to reinstall it).
  /// See docs/FAULTS.md.
  bool recovery_enabled = false;
};

}  // namespace cfds
