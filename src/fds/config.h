// FDS tuning knobs.

#pragma once

#include "common/ids.h"
#include "common/sim_time.h"
#include "fds/detector.h"

namespace cfds {

struct FdsConfig {
  /// Heartbeat interval phi: time between consecutive FDS executions.
  /// Must be at least 7 * Thop so that all rounds plus peer forwarding fit
  /// strictly inside one interval.
  SimTime heartbeat_interval = SimTime::seconds(10);

  /// Evidence policy; kFull is the paper's rule (ablations use the others).
  RuleMode rule_mode = RuleMode::kFull;

  /// Intra-cluster peer forwarding of missed health-status updates
  /// (Section 4.2, "Intra-Cluster Completeness Enhancement").
  bool peer_forwarding = true;

  /// Proactive forwarding after a DCH takeover to members the new CH did not
  /// hear (Figure 2(a): v' forwards based on the DCH's digest).
  bool proactive_takeover_forwarding = true;

  /// Treat unmarked heartbeats as membership subscriptions (feature F5).
  bool admit_unmarked = true;

  /// Scopes F5 admission: when set, a clusterhead admits an unmarked
  /// subscriber only if the predicate accepts it. In simulation the radio
  /// range already scopes who hears a subscription heartbeat; service mode
  /// runs in one broadcast domain where every clusterhead hears every
  /// re-subscription, and without this filter they would all admit the
  /// node at once (the service layer restricts admission to the directory
  /// block instead). Null admits anyone heard.
  bool (*admit_filter)(void* ctx, NodeId subscriber) = nullptr;
  void* admit_filter_ctx = nullptr;

  /// Treat epoch boundaries as soft, for real clocks. The protocol's
  /// per-execution state (round evidence, subscription heartbeats) is
  /// normally wiped by begin_epoch, which assumes no frame of execution k
  /// ever arrives before the receiver's own begin_epoch(k) — true in the
  /// simulator (synchronized clocks, in-window delivery), false on a real
  /// transport where clock skew or scheduler lateness lets a neighbour's
  /// R-1 heartbeat land first. The phase error is persistent, so a wiped
  /// neighbour is wiped EVERY epoch: it is declared failed each execution,
  /// steps down, re-subscribes, and oscillates forever. When set:
  ///  - begin_epoch prunes round evidence by age (entries older than
  ///    phi + Thop are dropped) instead of clearing it. Early arrivals
  ///    survive the boundary, and so does the previous execution's
  ///    evidence: a node is judged silent only after missing two
  ///    executions in a row, which quadratically suppresses the false
  ///    detections that single lost or stall-delayed datagrams would
  ///    otherwise cause — at the price of one extra execution of
  ///    detection latency.
  ///  - an acting clusterhead carries unheard subscription heartbeats
  ///    across the boundary and consumes them at R-3 instead: each
  ///    subscription is honoured exactly once, at most one epoch late
  ///    (subscriptions have no digest cover, so unlike member liveness
  ///    there is no second chance).
  ///  - fresh failure news about this node steps it down fully (view
  ///    dropped) instead of only unmarking it. The author has already
  ///    removed the node from its roster; keeping the view would pin the
  ///    node to that cluster and make it discard re-admission offers from
  ///    every other head as foreign — a permanent subscribe-forever limbo
  ///    when several clusters share one broadcast domain.
  ///  - installing a fresh view on admission resets the failure log: old
  ///    records are scoped to clusters this node no longer watches and may
  ///    name nodes alive elsewhere in the shared domain; the new head's
  ///    cumulative list is relearned from the same update.
  /// Tolerates relative phase error up to phi/2.
  bool tolerate_epoch_skew = false;

  /// When true, the agent emits no bare heartbeat in fds.R-1; another layer
  /// (e.g. the aggregation service, whose measurement frames derive from
  /// HeartbeatPayload) supplies the heartbeats instead — Section 6's
  /// "message sharing" between failure detection and data aggregation.
  bool external_heartbeats = false;

  /// Honour SleepNoticePayload announcements: a node that declared a sleep
  /// window is exempt from the detection rule for that many executions
  /// (Section 6's sleep/wakeup extension). When false, sleepers are
  /// (falsely) reported failed — the hazard the paper flags.
  bool honor_sleep_notices = true;

  /// Relay overheard sleep notices inside digests, so a notice whose direct
  /// transmission to the CH is lost still arrives via any member whose
  /// digest lands — spatial redundancy for the sleep extension.
  bool relay_sleep_notices = true;

  /// After this many consecutive executions without receiving the scheduled
  /// health-status update (directly or via peers), a member concludes it has
  /// lost contact with its cluster — it drifted away (mobility), or its CH
  /// was replaced by a deputy it cannot hear — and reverts to the unmarked
  /// state so its next heartbeat re-subscribes it to whatever cluster hears
  /// it (feature F5). 0 disables re-affiliation.
  std::uint32_t reaffiliate_after_missed = 3;

  /// Per-node clock skew bound: each node's round actions are offset by a
  /// fixed draw from [-max_clock_skew, +max_clock_skew]. Zero models the
  /// paper's assumption that "the clock rate on each host is close to
  /// accurate"; raising it stress-tests that assumption.
  SimTime max_clock_skew = SimTime::zero();

  /// Crash-recovery extension (beyond the paper's fail-stop model, default
  /// off so the baseline reproduces the paper exactly). When enabled:
  ///  - a node admitted via F5 subscription has its failure-log entry erased
  ///    everywhere the admission update lands (re-admission refutes the
  ///    stale record — a resurrected node must not stay reported failed);
  ///  - a marked node that hears stale failure news about itself (it appears
  ///    in `all_failed` without being in `newly_failed`) concludes the
  ///    cluster moved on while it was silent — it drops its stale view and
  ///    reverts to unmarked so its next heartbeat re-subscribes it (the
  ///    thawed-after-freeze / zombie-CH step-down rule);
  ///  - a CH re-admits current members whose heartbeat arrives unmarked
  ///    (nodes that lost their view to a crash keep their membership slot
  ///    but need the snapshot to reinstall it).
  /// See docs/FAULTS.md.
  bool recovery_enabled = false;

  /// Self-tuning (accrual) detection, default off so the baseline
  /// reproduces the paper's static rule exactly. When enabled:
  ///  - deciding nodes maintain a per-member LinkQualityEstimator from the
  ///    same evidence the detection rule consumes, and judge a silent
  ///    member failed only once its accrued suspicion (consecutive misses
  ///    weighted by estimated loss rate) reaches accrual_threshold_milli —
  ///    identical latency over clean links, extra patience over lossy ones;
  ///  - the CH announces its worst per-member loss estimate and a derived
  ///    tune level (0..4) on every scheduled R-3 update. The announced
  ///    level ramps by at most one step per epoch, so members and CH never
  ///    disagree by more than one level even across a lost update;
  ///  - members scale their re-affiliation patience by the announced tune
  ///    level (reaffiliate_after_missed + level missed updates), so a
  ///    congested cluster does not shed members over transient loss.
  /// See docs/ADAPTIVE.md.
  bool adaptive_enabled = false;

  /// Suspicion level at which a silent member is declared failed, in
  /// milli-units of accrued surprisal (-log10 of the probability that an
  /// alive member with the estimated loss rate stayed silent this long).
  /// 1500 declares after one miss on a clean link (1% floor: 2000 milli)
  /// and after three on a 30% link (523 milli each).
  std::uint32_t accrual_threshold_milli = 1500;

  /// Checkpointed CH/DCH recovery (minimum-process coordinated
  /// checkpointing, after arXiv:1111.2208), default off. When enabled, an
  /// acting CH broadcasts a CheckpointPayload — roster, deputies, failure
  /// log — every checkpoint_interval_epochs; only the CH and its DCHs
  /// retain the freshest checkpoint (stable storage survives the crash).
  /// A recovering CH/DCH named by its stored checkpoint restores the view
  /// and failure log from it and reconciles via the recovery_enabled rules
  /// instead of cold-rejoining as an unmarked subscriber. Requires
  /// recovery_enabled for the reconciliation rules. See docs/ADAPTIVE.md.
  bool checkpoint_enabled = false;

  /// Epochs between checkpoint broadcasts by an acting CH.
  std::uint32_t checkpoint_interval_epochs = 2;

  /// Aborts (CFDS_EXPECT) unless the configuration satisfies the documented
  /// constraints against one-hop bound `t_hop`:
  ///   - heartbeat_interval (phi) >= 7 * t_hop, so all rounds plus peer
  ///     forwarding fit strictly inside one interval;
  ///   - max_clock_skew <= phi / 2, the bound tolerate_epoch_skew absorbs;
  ///   - adaptive_enabled => accrual_threshold_milli > 0;
  ///   - checkpoint_enabled => checkpoint_interval_epochs > 0 and
  ///     recovery_enabled.
  /// Every bench/tool entry point calls this before running.
  void validate(SimTime t_hop) const;
};

}  // namespace cfds
