// Frame payloads of the three-round failure detection service (Section 4.2)
// and its intra-cluster completeness enhancement.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "radio/payload.h"

namespace cfds {

/// fds.R-1: heartbeat — the sender's NID plus the one-bit mark indicator.
/// Unmarked heartbeats double as membership subscriptions (feature F5).
///
/// Deliberately non-final: the aggregation layer's MeasurementPayload
/// derives from it, so a sensor reading IS a heartbeat ("message sharing"
/// between failure detection and data aggregation, Section 6) and the FDS
/// evidence collection needs no special case.
struct HeartbeatPayload : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kHeartbeat;
  /// A measurement frame IS a heartbeat, so the tag check admits both.
  static constexpr bool matches(PayloadKind k) {
    return k == kTag || k == PayloadKind::kMeasurement;
  }
  HeartbeatPayload() : Payload(kTag) {}

  NodeId sender;
  bool marked = true;
  /// Times the sender has recovered from a crash (crash-recovery extension;
  /// always 0 under the paper's fail-stop model). Wire format packs this
  /// small counter into the flags byte, so size_bytes is unchanged — the
  /// energy accounting of fault-free runs is identical to the baseline.
  std::uint32_t incarnation = 0;

  [[nodiscard]] std::string_view kind() const override { return "heartbeat"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 6; }

 protected:
  explicit HeartbeatPayload(PayloadKind tag) : Payload(tag) {}
};

/// Voluntary departure notice. The paper intends the FDS "to support group
/// membership management" (Section 2.4); unsubscription is the complement
/// of the unmarked-heartbeat subscription of F5: a leaving node announces
/// itself so its disappearance is bookkept as a departure, not reported as
/// a failure.
struct LeaveNoticePayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kLeaveNotice;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  LeaveNoticePayload() : Payload(kTag) {}

  NodeId sender;

  [[nodiscard]] std::string_view kind() const override { return "leave"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 5; }
};

/// Sleep notice (Section 6's future-work extension): a node about to enter
/// a sleep/wakeup power-management cycle announces how many FDS executions
/// it will sit out, so the CH and DCH exempt it from the detection rule
/// instead of falsely reporting it failed.
struct SleepNoticePayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kSleepNotice;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  SleepNoticePayload() : Payload(kTag) {}

  NodeId sender;
  /// Executions the node will miss, starting with the next one.
  std::uint32_t epochs = 1;

  [[nodiscard]] std::string_view kind() const override { return "sleep"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 9; }
};

/// fds.R-2: digest — the cluster members whose heartbeats the sender heard
/// or overheard during R-1 (inherent message redundancy made explicit).
struct DigestPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kDigest;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  DigestPayload() : Payload(kTag) {}

  NodeId sender;
  ClusterId cluster;
  std::vector<NodeId> heard;
  /// Sleep notices overheard this execution, relayed so a notice lost on
  /// the direct path to the CH still registers (the same spatial redundancy
  /// the detection rule exploits, applied to the Section 6 extension).
  std::vector<std::pair<NodeId, std::uint32_t>> sleeping;

  [[nodiscard]] std::string_view kind() const override { return "digest"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 9 + 4 * heard.size() + 8 * sleeping.size();
  }
};

/// fds.R-3: health-status update, broadcast by the CH every execution
/// (and by the highest-ranked DCH on takeover). Also reused as the
/// inter-cluster relay a CH emits when it learns failures from a report —
/// the emission doubles as the implicit acknowledgement of Section 4.3.
struct HealthUpdatePayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kHealthUpdate;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  HealthUpdatePayload() : Payload(kTag) {}

  ClusterId cluster;
  NodeId sender;
  std::uint64_t epoch = 0;

  /// Failures detected (or learned) since the last update from this node.
  std::vector<NodeId> newly_failed;
  /// Cumulative failure knowledge ("a failure report may also include the
  /// NIDs of the previously detected failed nodes", Section 4.3).
  std::vector<NodeId> all_failed;

  /// Members admitted this epoch via unmarked-heartbeat subscription (F5).
  std::vector<NodeId> admitted;
  /// Members that announced voluntary departure this epoch: removed from
  /// the membership without being reported failed.
  std::vector<NodeId> departed;
  /// Full member list; populated only when `admitted` is non-empty so the
  /// newcomers can install a complete view.
  std::vector<NodeId> members_snapshot;

  /// True when this update announces a DCH takeover of a failed CH.
  bool takeover = false;
  /// On takeover: the heartbeats the new CH heard in R-1, so members can
  /// proactively forward to nodes the new CH may not reach (Figure 2(a)).
  std::vector<NodeId> sender_heard;

  /// Fresh report id when newly_failed is non-empty (for implicit-ack
  /// matching by GWs/BGWs downstream); invalid otherwise.
  ReportId report;
  /// Report ids this update implicitly acknowledges (reports whose content
  /// this CH just relayed or already knew).
  std::vector<ReportId> acks;
  /// For relays: the cluster whose report triggered this relay, so gateways
  /// on that link suppress forwarding it straight back.
  ClusterId learned_from;

  /// Self-tuning piggyback (FdsConfig::adaptive_enabled): the CH's worst
  /// per-member loss estimate in per-mille and the announced tune level
  /// (0..4) members scale their patience by. Zero when adaptive detection
  /// is off; the wire encoding and size_bytes add bytes only when the
  /// loss estimate is non-zero, so static runs are byte-identical.
  std::uint16_t cluster_loss_pm = 0;
  std::uint8_t tune_level = 0;

  [[nodiscard]] std::string_view kind() const override { return "update"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 24 +
           4 * (newly_failed.size() + all_failed.size() + admitted.size() +
                members_snapshot.size() + sender_heard.size()) +
           8 * acks.size() + (cluster_loss_pm != 0 ? 3 : 0);
  }
};

/// End of fds.R-3: a member that received no health-status update asks its
/// in-cluster neighbours to forward it (intra-cluster peer forwarding).
struct UpdateRequestPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kUpdateRequest;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  UpdateRequestPayload() : Payload(kTag) {}

  NodeId sender;
  ClusterId cluster;
  std::uint64_t epoch = 0;

  [[nodiscard]] std::string_view kind() const override { return "upd-req"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 17; }
};

/// A peer forwarding the health-status update to a specific requester.
struct UpdateForwardPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kUpdateForward;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  UpdateForwardPayload() : Payload(kTag) {}

  NodeId forwarder;
  NodeId target;
  std::shared_ptr<const HealthUpdatePayload> update;

  [[nodiscard]] std::string_view kind() const override { return "upd-fwd"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 9 + update->size_bytes();
  }
};

/// Minimum-process cluster-state checkpoint (FdsConfig::checkpoint_enabled,
/// after arXiv:1111.2208): broadcast by the acting CH every
/// checkpoint_interval_epochs, retained only by the CH itself and its
/// deputies. A recovering CH/DCH that finds itself named in its freshest
/// stored checkpoint restores the roster and failure log from it and
/// reconciles with the live cluster instead of cold-rejoining.
struct CheckpointPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kCheckpoint;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  CheckpointPayload() : Payload(kTag) {}

  ClusterId cluster;
  NodeId sender;
  std::uint64_t epoch = 0;
  /// Monotonic checkpoint sequence number; receivers keep the largest.
  std::uint64_t seq = 0;

  NodeId clusterhead;
  std::vector<NodeId> members;   ///< non-CH roster at checkpoint time
  std::vector<NodeId> deputies;  ///< DCH chain, rank order
  std::vector<NodeId> failed;    ///< failure-log contents

  [[nodiscard]] std::string_view kind() const override { return "checkpoint"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 29 + 4 * (members.size() + deputies.size() + failed.size());
  }
};

/// Acknowledgement broadcast by a requester once any forward arrives;
/// overhearing peers stand down ("the other neighbors will quit upon
/// overhearing an acknowledgment", Section 4.2).
struct UpdateAckPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kUpdateAck;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  UpdateAckPayload() : Payload(kTag) {}

  NodeId sender;
  std::uint64_t epoch = 0;

  [[nodiscard]] std::string_view kind() const override { return "upd-ack"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 13; }
};

}  // namespace cfds
