// Flat-flooding dissemination baseline.
//
// The scalability claim of Section 3 — "system-wide information
// dissemination can be done far more efficiently than with flat flooding" —
// needs flat flooding to compare against: every node rebroadcasts every new
// report exactly once (classic blind flooding with duplicate suppression).

#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/ids.h"
#include "fds/failure_log.h"
#include "net/network.h"
#include "radio/payload.h"

namespace cfds {

struct FloodPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kFlood;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  FloodPayload() : Payload(kTag) {}

  ReportId id;
  NodeId origin;
  NodeId forwarder;
  std::vector<NodeId> failed;

  [[nodiscard]] std::string_view kind() const override { return "flood"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 17 + 4 * failed.size();
  }
};

class FloodAgent {
 public:
  FloodAgent(Node& node, Simulator& sim);

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] const FailureLog& log() const { return log_; }

  /// Originates a new flood carrying `failed` from this node.
  void originate(const std::vector<NodeId>& failed);

  /// Frames this agent rebroadcast (the flooding cost metric).
  [[nodiscard]] std::uint64_t rebroadcasts() const { return rebroadcasts_; }

 private:
  void on_frame(const Reception& reception);

  Node& node_;
  Simulator& sim_;
  FailureLog log_;
  std::set<ReportId> seen_;
  std::uint64_t next_report_ = 0;
  std::uint64_t rebroadcasts_ = 0;
};

/// Convenience owner for one agent per node.
class FloodService {
 public:
  explicit FloodService(Network& network);

  [[nodiscard]] std::vector<FloodAgent*> agents();
  [[nodiscard]] FloodAgent& agent_for(NodeId id);

  /// Total rebroadcasts across all agents.
  [[nodiscard]] std::uint64_t total_rebroadcasts() const;

 private:
  std::vector<std::unique_ptr<FloodAgent>> agents_;
};

}  // namespace cfds
