// Gossip-style failure detection baseline (van Renesse, Minsky & Hayden —
// the paper's reference [11]), adapted to a broadcast wireless medium.
//
// Each node keeps a heartbeat counter per known node. Every gossip interval
// it increments its own counter and broadcasts its table; receivers merge by
// taking the counter-wise maximum and timestamping increases. A node whose
// counter has not advanced for `fail_timeout` is suspected.
//
// This is the "flat" competitor the cluster-based FDS is judged against:
// tables grow with the full network population (O(n) bytes per frame versus
// the FDS's constant-size heartbeats and per-cluster digests), and every
// node gossips every interval.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "net/network.h"
#include "radio/payload.h"

namespace cfds {

struct GossipConfig {
  /// Interval between gossip emissions.
  SimTime gossip_interval = SimTime::seconds(1);
  /// A counter silent for this long marks its node suspected.
  SimTime fail_timeout = SimTime::seconds(10);
};

/// The gossiped table: (nid, heartbeat counter) pairs.
struct GossipPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kGossip;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  GossipPayload() : Payload(kTag) {}

  NodeId sender;
  std::vector<std::pair<NodeId, std::uint64_t>> entries;

  [[nodiscard]] std::string_view kind() const override { return "gossip"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 5 + 12 * entries.size();
  }
};

class GossipAgent {
 public:
  GossipAgent(Node& node, Simulator& sim, const GossipConfig& config);

  [[nodiscard]] NodeId id() const { return node_.id(); }

  /// Increment own counter and broadcast the table.
  void gossip_round();

  /// Nodes whose counters have been silent for at least fail_timeout at
  /// time `now`, among nodes this agent has ever heard of.
  [[nodiscard]] std::vector<NodeId> suspected(SimTime now) const;

  /// True if `v`'s counter is currently considered live at time `now`.
  [[nodiscard]] bool considers_alive(NodeId v, SimTime now) const;

  /// Number of nodes this agent has entries for (table growth metric).
  [[nodiscard]] std::size_t table_size() const { return table_.size(); }

 private:
  struct Entry {
    std::uint64_t counter = 0;
    SimTime last_advance;
  };

  void on_frame(const Reception& reception);

  Node& node_;
  Simulator& sim_;
  const GossipConfig& config_;
  std::map<NodeId, Entry> table_;
  std::uint64_t own_counter_ = 0;
};

/// Owns the agents and drives synchronized gossip rounds.
class GossipService {
 public:
  GossipService(Network& network, GossipConfig config);

  [[nodiscard]] std::vector<GossipAgent*> agents();
  [[nodiscard]] GossipAgent& agent_for(NodeId id);
  [[nodiscard]] const GossipConfig& config() const { return config_; }

  /// Schedules `count` rounds starting at `start` and runs past them.
  SimTime run_rounds(std::uint64_t count, SimTime start);

 private:
  Network& network_;
  GossipConfig config_;
  std::vector<std::unique_ptr<GossipAgent>> agents_;
};

}  // namespace cfds
