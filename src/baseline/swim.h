// SWIM-style failure detector baseline (Das, Gupta & Motivala, DSN 2002),
// adapted to a broadcast wireless medium.
//
// SWIM replaced all-to-all heartbeating in datacenter overlays with
// randomized ping / ping-req probing and infection-style dissemination. It
// postdates heartbeat-diffusion designs like the paper's and is the natural
// modern comparator. A faithful port to multihop ad hoc radio must restrict
// probe targets to one-hop neighbours (there is no routable overlay), which
// is the same adaptation the paper's reference [6] studies:
//
//   * each protocol period, every node pings one random one-hop neighbour
//     it believes alive; the target acks;
//   * on ack timeout, the node asks k other neighbours to ping the target
//     on its behalf (ping-req); any relayed ack clears the suspicion;
//   * a target that stays silent becomes *suspected*; after
//     `suspicion_periods` with no sign of life it is declared failed;
//   * declared failures ride subsequent pings/acks as piggyback, spreading
//     infection-style.
//
// The CFDS paper's bet is that in a dense broadcast medium, *overhearing*
// (digests) buys far more evidence per frame than SWIM's point-to-point
// probes; the baseline bench quantifies exactly that.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "net/network.h"
#include "radio/payload.h"

namespace cfds {

struct SwimConfig {
  /// Protocol period T' (one probe per node per period).
  SimTime period = SimTime::seconds(1);
  /// Direct-ack timeout before indirect probing starts.
  SimTime ack_timeout = SimTime::millis(300);
  /// Neighbours asked to probe indirectly.
  std::size_t k_indirect = 3;
  /// Probe-less periods before a suspected node is declared failed.
  std::uint32_t suspicion_periods = 3;
  /// Declared-failure entries piggybacked per frame.
  std::size_t piggyback_limit = 6;
};

struct SwimPingPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kSwimPing;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  SwimPingPayload() : Payload(kTag) {}

  NodeId origin;
  NodeId target;
  std::uint64_t sequence = 0;
  /// Indirect probe: set when pinging on behalf of `requester`.
  NodeId requester;
  std::vector<NodeId> dead_piggyback;

  [[nodiscard]] std::string_view kind() const override { return "swim-ping"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 17 + 4 * dead_piggyback.size();
  }
};

struct SwimAckPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kSwimAck;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  SwimAckPayload() : Payload(kTag) {}

  NodeId origin;  ///< the acking node
  NodeId target;  ///< who the ack is for (the pinger or the requester)
  std::uint64_t sequence = 0;
  std::vector<NodeId> dead_piggyback;

  [[nodiscard]] std::string_view kind() const override { return "swim-ack"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 13 + 4 * dead_piggyback.size();
  }
};

struct SwimPingReqPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kSwimPingReq;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  SwimPingReqPayload() : Payload(kTag) {}

  NodeId origin;  ///< the suspicious node
  NodeId helper;  ///< neighbour asked to probe
  NodeId target;  ///< the silent node
  std::uint64_t sequence = 0;

  [[nodiscard]] std::string_view kind() const override { return "swim-preq"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 17; }
};

class SwimService;

class SwimAgent {
 public:
  SwimAgent(Node& node, SwimService& service, Rng rng);

  [[nodiscard]] NodeId id() const { return node_.id(); }

  /// Runs one protocol period: probe a random live neighbour.
  void period();

  /// Nodes this agent has declared failed.
  [[nodiscard]] const std::set<NodeId>& declared_failed() const {
    return declared_failed_;
  }
  [[nodiscard]] bool considers_failed(NodeId v) const {
    return declared_failed_.contains(v);
  }
  /// Declarations of nodes that were actually alive at declaration time
  /// (filled by the service's ground-truth check).
  [[nodiscard]] std::uint64_t false_declarations() const {
    return false_declarations_;
  }

 private:
  friend class SwimService;

  void on_frame(const Reception& reception);
  void note_alive(NodeId n);
  void declare(NodeId n);
  void absorb_piggyback(const std::vector<NodeId>& dead);
  [[nodiscard]] std::vector<NodeId> piggyback();
  void send_ping(NodeId target, NodeId requester);

  Node& node_;
  SwimService& service_;
  Rng rng_;

  std::uint64_t next_sequence_ = 0;
  /// Known one-hop neighbours (learned from any overheard frame).
  std::set<NodeId> neighbors_;
  /// Suspected nodes -> periods remaining before declaration.
  std::map<NodeId, std::uint32_t> suspicion_;
  std::set<NodeId> declared_failed_;
  std::uint64_t false_declarations_ = 0;

  /// The probe in flight this period, if any.
  NodeId probing_ = NodeId::invalid();
  std::uint64_t probing_sequence_ = 0;
  bool got_ack_ = false;
};

class SwimService {
 public:
  SwimService(Network& network, SwimConfig config);

  [[nodiscard]] std::vector<SwimAgent*> agents();
  [[nodiscard]] SwimAgent& agent_for(NodeId id);
  [[nodiscard]] const SwimConfig& config() const { return config_; }
  [[nodiscard]] Network& network() { return network_; }

  /// Schedules `count` protocol periods from `start` and runs past them.
  SimTime run_periods(std::uint64_t count, SimTime start);

  /// Fraction of alive agents that have declared `victim` failed.
  [[nodiscard]] double declaration_coverage(NodeId victim);

 private:
  Network& network_;
  SwimConfig config_;
  std::vector<std::unique_ptr<SwimAgent>> agents_;
};

}  // namespace cfds
