#include "baseline/gossip_fd.h"

#include "common/expect.h"

namespace cfds {

GossipAgent::GossipAgent(Node& node, Simulator& sim,
                         const GossipConfig& config)
    : node_(node), sim_(sim), config_(config) {
  node_.add_frame_handler(
      [](void* self, const Reception& reception) {
        static_cast<GossipAgent*>(self)->on_frame(reception);
      },
      this);
}

void GossipAgent::gossip_round() {
  if (!node_.alive()) return;
  ++own_counter_;
  Entry& self = table_[node_.id()];
  self.counter = own_counter_;
  self.last_advance = sim_.now();

  auto payload = std::make_shared<GossipPayload>();
  payload->sender = node_.id();
  payload->entries.reserve(table_.size());
  for (const auto& [nid, entry] : table_) {
    payload->entries.emplace_back(nid, entry.counter);
  }
  node_.radio().send(std::move(payload));
}

void GossipAgent::on_frame(const Reception& reception) {
  if (!node_.alive()) return;
  const auto* gossip = payload_cast<GossipPayload>(reception.payload);
  if (gossip == nullptr) return;
  for (const auto& [nid, counter] : gossip->entries) {
    if (nid == node_.id()) continue;
    Entry& entry = table_[nid];
    if (counter > entry.counter) {
      entry.counter = counter;
      entry.last_advance = sim_.now();
    }
  }
}

std::vector<NodeId> GossipAgent::suspected(SimTime now) const {
  std::vector<NodeId> out;
  for (const auto& [nid, entry] : table_) {
    if (nid == node_.id()) continue;
    if (now - entry.last_advance >= config_.fail_timeout) out.push_back(nid);
  }
  return out;
}

bool GossipAgent::considers_alive(NodeId v, SimTime now) const {
  const auto it = table_.find(v);
  if (it == table_.end()) return false;  // never heard of it
  return now - it->second.last_advance < config_.fail_timeout;
}

GossipService::GossipService(Network& network, GossipConfig config)
    : network_(network), config_(config) {
  CFDS_EXPECT(config_.fail_timeout > config_.gossip_interval,
              "timeout must exceed the gossip interval");
  for (Node* node : network_.nodes()) {
    agents_.push_back(std::make_unique<GossipAgent>(
        *node, network_.simulator(), config_));
  }
}

std::vector<GossipAgent*> GossipService::agents() {
  std::vector<GossipAgent*> out;
  out.reserve(agents_.size());
  for (auto& a : agents_) out.push_back(a.get());
  return out;
}

GossipAgent& GossipService::agent_for(NodeId id) {
  for (auto& a : agents_) {
    if (a->id() == id) return *a;
  }
  CFDS_EXPECT(false, "no gossip agent for node id");
  __builtin_unreachable();
}

SimTime GossipService::run_rounds(std::uint64_t count, SimTime start) {
  Simulator& sim = network_.simulator();
  for (std::uint64_t k = 0; k < count; ++k) {
    sim.schedule_at(start + std::int64_t(k) * config_.gossip_interval, [this] {
      for (auto& agent : agents_) agent->gossip_round();
    });
  }
  const SimTime end = start + std::int64_t(count) * config_.gossip_interval;
  sim.run_until(end);
  return end;
}

}  // namespace cfds
