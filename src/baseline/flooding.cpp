#include "baseline/flooding.h"

#include "common/expect.h"

namespace cfds {

FloodAgent::FloodAgent(Node& node, Simulator& sim) : node_(node), sim_(sim) {
  node_.add_frame_handler(
      [](void* self, const Reception& reception) {
        static_cast<FloodAgent*>(self)->on_frame(reception);
      },
      this);
}

void FloodAgent::originate(const std::vector<NodeId>& failed) {
  if (!node_.alive()) return;
  auto payload = std::make_shared<FloodPayload>();
  payload->id = ReportId{(std::uint64_t(node_.id().value()) << 32) |
                         ++next_report_};
  payload->origin = node_.id();
  payload->forwarder = node_.id();
  payload->failed = failed;
  seen_.insert(payload->id);
  for (NodeId f : failed) log_.record(f, {sim_.now(), 0, node_.id()});
  node_.radio().send(std::move(payload));
}

void FloodAgent::on_frame(const Reception& reception) {
  if (!node_.alive()) return;
  const auto* flood = payload_cast<FloodPayload>(reception.payload);
  if (flood == nullptr) return;
  if (!seen_.insert(flood->id).second) return;  // duplicate: suppress
  for (NodeId f : flood->failed) {
    log_.record(f, {sim_.now(), 0, flood->origin});
  }
  auto copy = std::make_shared<FloodPayload>(*flood);
  copy->forwarder = node_.id();
  ++rebroadcasts_;
  node_.radio().send(std::move(copy));
}

FloodService::FloodService(Network& network) {
  for (Node* node : network.nodes()) {
    agents_.push_back(
        std::make_unique<FloodAgent>(*node, network.simulator()));
  }
}

std::vector<FloodAgent*> FloodService::agents() {
  std::vector<FloodAgent*> out;
  out.reserve(agents_.size());
  for (auto& a : agents_) out.push_back(a.get());
  return out;
}

FloodAgent& FloodService::agent_for(NodeId id) {
  for (auto& a : agents_) {
    if (a->id() == id) return *a;
  }
  CFDS_EXPECT(false, "no flood agent for node id");
  __builtin_unreachable();
}

std::uint64_t FloodService::total_rebroadcasts() const {
  std::uint64_t total = 0;
  for (const auto& a : agents_) total += a->rebroadcasts();
  return total;
}

}  // namespace cfds
