#include "baseline/swim.h"

#include <algorithm>

#include "common/expect.h"

namespace cfds {

SwimAgent::SwimAgent(Node& node, SwimService& service, Rng rng)
    : node_(node), service_(service), rng_(rng) {
  node_.add_frame_handler(
      [](void* self, const Reception& reception) {
        static_cast<SwimAgent*>(self)->on_frame(reception);
      },
      this);
}

void SwimAgent::note_alive(NodeId n) {
  if (n == node_.id()) return;
  neighbors_.insert(n);
  suspicion_.erase(n);
  // SWIM has an "alive refutes suspect/dead" rule; hearing a node directly
  // is the strongest possible refutation.
  declared_failed_.erase(n);
}

std::vector<NodeId> SwimAgent::piggyback() {
  std::vector<NodeId> out;
  for (NodeId dead : declared_failed_) {
    if (out.size() >= service_.config().piggyback_limit) break;
    out.push_back(dead);
  }
  return out;
}

void SwimAgent::absorb_piggyback(const std::vector<NodeId>& dead) {
  for (NodeId d : dead) {
    if (d == node_.id()) continue;  // rumours of my death are exaggerated
    if (declared_failed_.insert(d).second) {
      neighbors_.erase(d);
      suspicion_.erase(d);
      if (service_.network().has_node(d) &&
          service_.network().node(d).alive()) {
        ++false_declarations_;
      }
    }
  }
}

void SwimAgent::send_ping(NodeId target, NodeId requester) {
  auto ping = std::make_shared<SwimPingPayload>();
  ping->origin = node_.id();
  ping->target = target;
  ping->sequence = ++next_sequence_;
  ping->requester = requester;
  ping->dead_piggyback = piggyback();
  node_.radio().send(std::move(ping), target);
}

void SwimAgent::period() {
  if (!node_.alive()) return;

  // Close out the previous period's probe.
  if (probing_.is_valid() && !got_ack_) {
    // Direct and indirect probes both stayed silent: suspect (or advance an
    // existing suspicion toward declaration).
    auto [it, fresh] = suspicion_.try_emplace(
        probing_, service_.config().suspicion_periods);
    if (!fresh && it->second > 0) --it->second;
    if (it->second == 0) declare(probing_);
  }
  probing_ = NodeId::invalid();
  got_ack_ = false;

  // Advance standing suspicions even when the random probe lands elsewhere:
  // a suspected neighbour that stays silent drifts toward declaration.
  for (auto it = suspicion_.begin(); it != suspicion_.end();) {
    if (it->second == 0) {
      const NodeId victim = it->first;
      it = suspicion_.erase(it);
      declare(victim);
    } else {
      --it->second;
      ++it;
    }
  }

  // Pick a random neighbour believed alive.
  std::vector<NodeId> candidates;
  for (NodeId n : neighbors_) {
    if (!declared_failed_.contains(n)) candidates.push_back(n);
  }
  if (candidates.empty()) return;
  const NodeId target = candidates[rng_.below(candidates.size())];
  probing_ = target;
  probing_sequence_ = next_sequence_ + 1;
  send_ping(target, NodeId::invalid());

  // Arm the indirect stage.
  service_.network().simulator().schedule_after(
      service_.config().ack_timeout, [this, target] {
        if (!node_.alive() || got_ack_ || probing_ != target) return;
        std::vector<NodeId> helpers;
        for (NodeId n : neighbors_) {
          if (n != target && !declared_failed_.contains(n)) helpers.push_back(n);
        }
        for (std::size_t k = 0;
             k < service_.config().k_indirect && !helpers.empty(); ++k) {
          const std::size_t pick = rng_.below(helpers.size());
          auto request = std::make_shared<SwimPingReqPayload>();
          request->origin = node_.id();
          request->helper = helpers[pick];
          request->target = target;
          request->sequence = probing_sequence_;
          node_.radio().send(std::move(request), helpers[pick]);
          helpers.erase(helpers.begin() + std::ptrdiff_t(pick));
        }
      });
}

void SwimAgent::declare(NodeId n) {
  if (!declared_failed_.insert(n).second) return;
  neighbors_.erase(n);
  suspicion_.erase(n);
  if (service_.network().has_node(n) && service_.network().node(n).alive()) {
    ++false_declarations_;
  }
}

void SwimAgent::on_frame(const Reception& reception) {
  if (!node_.alive()) return;
  note_alive(reception.sender);

  if (const auto* ping = payload_cast<SwimPingPayload>(reception.payload)) {
    absorb_piggyback(ping->dead_piggyback);
    if (ping->target != node_.id()) return;
    auto ack = std::make_shared<SwimAckPayload>();
    ack->origin = node_.id();
    // Ack goes to whoever needs convincing: the requester of an indirect
    // probe, else the pinger.
    ack->target = ping->requester.is_valid() ? ping->requester : ping->origin;
    ack->sequence = ping->sequence;
    ack->dead_piggyback = piggyback();
    node_.radio().send(std::move(ack), ack->target);
    return;
  }

  if (const auto* ack = payload_cast<SwimAckPayload>(reception.payload)) {
    absorb_piggyback(ack->dead_piggyback);
    // Promiscuous bonus: ANY overheard ack from the node we are probing
    // proves it alive; addressed acks are just the common case.
    if (ack->origin == probing_ ||
        (ack->target == node_.id() && ack->origin == probing_)) {
      got_ack_ = true;
    }
    return;
  }

  if (const auto* request =
          payload_cast<SwimPingReqPayload>(reception.payload)) {
    if (request->helper != node_.id()) return;
    send_ping(request->target, request->origin);
    return;
  }
}

SwimService::SwimService(Network& network, SwimConfig config)
    : network_(network), config_(config) {
  CFDS_EXPECT(config_.ack_timeout < config_.period,
              "indirect probing must fit inside one period");
  Rng seeder = network_.fork_rng();
  for (Node* node : network_.nodes()) {
    agents_.push_back(
        std::make_unique<SwimAgent>(*node, *this, seeder.fork()));
  }
  // SWIM assumes members join with a known contact list; seed each agent's
  // membership with its one-hop neighbourhood (the join/discovery phase the
  // original protocol runs over its overlay).
  for (auto& agent : agents_) {
    for (NodeId n : network_.channel().neighbors_of(agent->id())) {
      agent->neighbors_.insert(n);
    }
  }
}

std::vector<SwimAgent*> SwimService::agents() {
  std::vector<SwimAgent*> out;
  out.reserve(agents_.size());
  for (auto& a : agents_) out.push_back(a.get());
  return out;
}

SwimAgent& SwimService::agent_for(NodeId id) {
  for (auto& a : agents_) {
    if (a->id() == id) return *a;
  }
  CFDS_EXPECT(false, "no SWIM agent for node id");
  __builtin_unreachable();
}

SimTime SwimService::run_periods(std::uint64_t count, SimTime start) {
  Simulator& sim = network_.simulator();
  for (std::uint64_t k = 0; k < count; ++k) {
    sim.schedule_at(start + std::int64_t(k) * config_.period, [this] {
      for (auto& agent : agents_) agent->period();
    });
  }
  const SimTime end = start + std::int64_t(count) * config_.period;
  sim.run_until(end);
  return end;
}

double SwimService::declaration_coverage(NodeId victim) {
  std::size_t alive = 0, declared = 0;
  for (auto& agent : agents_) {
    if (agent->id() == victim || !network_.node(agent->id()).alive()) continue;
    ++alive;
    if (agent->considers_failed(victim)) ++declared;
  }
  return alive == 0 ? 0.0 : double(declared) / double(alive);
}

}  // namespace cfds
