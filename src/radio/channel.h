// Broadcast wireless channel with promiscuous delivery.
//
// Models the paper's medium (Sections 2.2-2.3): unit-disk connectivity with a
// common transmission range R; every frame a node emits is heard by each
// in-range, powered-on neighbour independently with probability 1-p
// (promiscuous receiving mode — "send" and "broadcast" coincide); frames are
// delivered within the one-hop bound Thop; frames are never created or
// altered in flight, only dropped. Collisions are not modelled (masked by
// CSMA per the paper's footnote 4).

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/flat.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "event/simulator.h"
#include "radio/loss_model.h"
#include "radio/payload.h"

namespace cfds {

class Channel;

/// A frame as seen by a receiver.
struct Reception {
  NodeId sender;
  /// Addressed recipient, or NodeId::invalid() for a broadcast. Receivers
  /// other than `intended` are overhearing — the inherent message redundancy
  /// the FDS exploits.
  NodeId intended;
  PayloadPtr payload;
  SimTime sent_at;
};

/// Per-radio traffic counters (basis of the energy model).
struct RadioCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// A node's attachment point to the channel. Owned by the node; registered
/// with exactly one Channel for the lifetime of the simulation.
class Radio {
 public:
  using ReceiveHandler = std::function<void(const Reception&)>;

  Radio(NodeId id, Vec2 position) : id_(id), position_(position) {}

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Vec2 position() const { return position_; }
  /// Moves the radio; keeps the channel's spatial index in sync.
  void set_position(Vec2 p);

  /// A powered-off radio neither transmits nor receives (fail-stop crash).
  [[nodiscard]] bool powered() const { return powered_; }
  void set_powered(bool on) { powered_ = on; }

  /// Handler invoked on every frame this radio hears (addressed or overheard).
  void set_receive_handler(ReceiveHandler handler) {
    on_receive_ = std::move(handler);
  }

  /// Emits a frame. All in-range powered radios are candidates to hear it.
  /// `intended` marks the addressed recipient (invalid() = broadcast); it
  /// does not affect propagation, only what receivers see in Reception.
  void send(PayloadPtr payload, NodeId intended = NodeId::invalid());

  [[nodiscard]] const RadioCounters& counters() const { return counters_; }

 private:
  friend class Channel;

  void deliver(const Reception& reception);

  NodeId id_;
  Vec2 position_;
  bool powered_ = true;
  Channel* channel_ = nullptr;
  ReceiveHandler on_receive_;
  RadioCounters counters_;
};

/// Channel-wide totals for scalability/energy comparisons.
struct ChannelStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t losses = 0;  ///< in-range candidates that drew a loss
};

/// Channel configuration.
struct ChannelConfig {
  /// Common transmission range R in metres (paper: 100 m).
  double range = 100.0;
  /// One-hop delivery bound Thop; frames arrive strictly within it.
  SimTime t_hop = SimTime::millis(100);
  /// Delivery latency is uniform in [min_delay_frac, max_delay_frac]*Thop.
  double min_delay_frac = 0.1;
  double max_delay_frac = 0.9;
};

/// The shared medium. Does not own radios; the Network keeps radios alive for
/// the channel's lifetime.
class Channel {
 public:
  /// Observer invoked once per transmission (not per delivery).
  using Tap = std::function<void(NodeId sender, NodeId intended,
                                 const Payload& payload, SimTime when)>;

  Channel(Simulator& sim, LossModel& loss, ChannelConfig config, Rng rng);

  /// Registers a radio. A radio may be attached to at most one channel.
  void attach(Radio& radio);

  /// Installs a transmission observer (tracing/diagnostics). Replaces any
  /// previous tap; pass nullptr to remove.
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const ChannelConfig& config() const { return config_; }

  /// Radios currently within range of `position` (excluding `self`),
  /// regardless of power state. Used by topology diagnostics.
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId self) const;

  // --- Fault-injection hooks (src/fault/). All state defaults to empty and
  // each costs one empty()-branch on the transmit path when unused, so the
  // channel's RNG draw sequence is untouched by a fault-free run. -----------

  /// A muted radio's frames vanish in the air and it hears nothing, but the
  /// node itself keeps running (and paying tx energy) — an omission fault,
  /// distinct from a crash (Freeze in the fault taxonomy).
  void set_muted(NodeId id, bool muted);
  [[nodiscard]] bool is_muted(NodeId id) const { return muted_.contains(id); }

  /// Blocks/unblocks the (symmetric) link between two nodes; blocked frames
  /// count as losses (LinkDown / partition faults).
  void set_link_blocked(NodeId a, NodeId b, bool blocked);

  /// Forces loss probability to 1 for any frame whose sender or receiver
  /// lies inside `area` (regional jamming). Returns a token for removal.
  int add_jam_region(Disk area);
  void remove_jam_region(int token);
  [[nodiscard]] bool is_jammed(Vec2 p) const;

 private:
  friend class Radio;

  void transmit(Radio& sender, PayloadPtr payload, NodeId intended);

  // --- Spatial index: uniform grid with cell size = range. Reach from any
  // point spans at most the 3x3 cell block around it, so transmissions and
  // neighbour queries touch O(local density) radios instead of O(n). ------
  [[nodiscard]] std::int64_t cell_key(Vec2 p) const;
  void index_insert(Radio* radio);
  void index_remove(Radio* radio);
  void reindex(Radio* radio, Vec2 old_position, Vec2 new_position);
  /// Invokes fn(radio) for every indexed radio within `range` of `center`
  /// (excluding `exclude`).
  template <typename Fn>
  void for_each_in_range(Vec2 center, const Radio* exclude, Fn&& fn) const;

  /// Order-independent key for the undirected link {a, b}.
  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b);

  Simulator& sim_;
  LossModel& loss_;
  ChannelConfig config_;
  Rng rng_;
  std::vector<Radio*> radios_;
  std::unordered_map<std::int64_t, std::vector<Radio*>> grid_;
  ChannelStats stats_;
  Tap tap_;
  // Fault-injection state (empty in fault-free runs; see the hooks above).
  FlatSet<NodeId> muted_;
  FlatSet<std::uint64_t> blocked_links_;
  std::vector<std::pair<int, Disk>> jam_regions_;
  int next_jam_token_ = 0;
};

}  // namespace cfds
