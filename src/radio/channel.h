// Broadcast wireless channel with promiscuous delivery.
//
// Models the paper's medium (Sections 2.2-2.3): unit-disk connectivity with a
// common transmission range R; every frame a node emits is heard by each
// in-range, powered-on neighbour independently with probability 1-p
// (promiscuous receiving mode — "send" and "broadcast" coincide); frames are
// delivered within the one-hop bound Thop; frames are never created or
// altered in flight, only dropped. Collisions are not modelled (masked by
// CSMA per the paper's footnote 4).

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "event/simulator.h"
#include "net/node_store.h"
#include "radio/loss_model.h"
#include "radio/payload.h"
#include "transport/drop_filter.h"
#include "transport/reception.h"

namespace cfds {

class Channel;

/// A node's attachment point to the channel. A thin view: the radio's state
/// (position, power, traffic counters) lives in the world's struct-of-arrays
/// NodeStore; the view holds the (store, slot) pair plus the delivery
/// handler. Registered with at most one Channel for the simulation's
/// lifetime.
class Radio {
 public:
  using ReceiveHandler = std::function<void(const Reception&)>;
  /// Allocation-free handler variant for the per-delivery hot path: a raw
  /// function pointer plus an opaque context (the node runtime uses this;
  /// tests keep the std::function convenience setter).
  using RawReceiveHandler = void (*)(void* ctx, const Reception& reception);

  Radio(NodeStore& store, std::uint32_t slot, NodeId id)
      : store_(&store), slot_(slot), id_(id) {}

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Vec2 position() const { return store_->position(slot_); }
  /// Moves the radio; keeps the channel's spatial index in sync.
  void set_position(Vec2 p);

  /// A powered-off radio neither transmits nor receives (fail-stop crash).
  [[nodiscard]] bool powered() const { return store_->powered(slot_); }
  void set_powered(bool on) { store_->set_powered(slot_, on); }

  /// Handler invoked on every frame this radio hears (addressed or overheard).
  /// Replaces any raw handler.
  void set_receive_handler(ReceiveHandler handler) {
    on_receive_ = std::move(handler);
    raw_receive_ = nullptr;
    raw_ctx_ = nullptr;
  }

  /// Raw-pointer variant of set_receive_handler; replaces any std::function
  /// handler. One predictable indirect call per delivery, no wrapper.
  void set_receive_handler(RawReceiveHandler handler, void* ctx) {
    raw_receive_ = handler;
    raw_ctx_ = ctx;
    on_receive_ = nullptr;
  }

  /// Emits a frame. All in-range powered radios are candidates to hear it.
  /// `intended` marks the addressed recipient (invalid() = broadcast); it
  /// does not affect propagation, only what receivers see in Reception.
  void send(PayloadPtr payload, NodeId intended = NodeId::invalid());

  [[nodiscard]] const RadioCounters& counters() const {
    return store_->counters(slot_);
  }

  [[nodiscard]] NodeStore& store() { return *store_; }
  [[nodiscard]] std::uint32_t slot() const { return slot_; }

 private:
  friend class Channel;

  /// `payload_bytes` is reception.payload->size_bytes(), precomputed once
  /// per broadcast by the channel (see Transmission::payload_bytes).
  void deliver(const Reception& reception, std::uint64_t payload_bytes);

  NodeStore* store_;
  std::uint32_t slot_;
  NodeId id_;
  Channel* channel_ = nullptr;
  ReceiveHandler on_receive_;
  RawReceiveHandler raw_receive_ = nullptr;
  void* raw_ctx_ = nullptr;
};

/// Channel-wide totals for scalability/energy comparisons.
struct ChannelStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t losses = 0;  ///< in-range candidates that drew a loss
  /// Widest single-broadcast fan-out seen (receivers of one transmission);
  /// diagnostics for the batched-delivery path and the fan-out benches.
  std::uint64_t max_fanout = 0;
};

/// One broadcast in flight: the shared frame every receiver hears plus the
/// per-receiver delivery schedule. The channel builds one Transmission per
/// transmit() — not one closure per receiver — and every delivery event
/// hands the same embedded Reception to its receiver by const reference, so
/// a fan-out of k costs one payload refcount bump, not k. Records are
/// recycled through a slab pool (receiver-list capacity included), so a
/// broadcast performs O(1) allocations regardless of fan-out.
struct Transmission {
  Reception reception;
  /// Owning channel, for the batch-delivery callback (the simulator hands
  /// it back only this record as context).
  Channel* channel = nullptr;
  /// reception.payload->size_bytes(), computed once per broadcast so the
  /// per-receiver accounting skips the virtual call.
  std::uint64_t payload_bytes = 0;
  /// Deliveries scheduled but not yet fired; the record returns to the pool
  /// when it reaches zero.
  std::uint32_t remaining = 0;
  /// Receivers in the channel's deterministic order — the same order the
  /// per-receiver RNG draws are made in. The matching delivery delays are
  /// consumed at scheduling time (the queue entries carry the fire times),
  /// so only the bare pointers stay resident while deliveries are in
  /// flight.
  std::vector<Radio*> receivers;
};

/// Channel configuration.
struct ChannelConfig {
  /// Common transmission range R in metres (paper: 100 m).
  double range = 100.0;
  /// One-hop delivery bound Thop; frames arrive strictly within it.
  SimTime t_hop = SimTime::millis(100);
  /// Delivery latency is uniform in [min_delay_frac, max_delay_frac]*Thop.
  double min_delay_frac = 0.1;
  double max_delay_frac = 0.9;
};

/// The shared medium. Does not own radios; the Network keeps radios alive for
/// the channel's lifetime.
class Channel {
 public:
  /// Observer invoked once per transmission (not per delivery).
  using Tap = std::function<void(NodeId sender, NodeId intended,
                                 const Payload& payload, SimTime when)>;

  Channel(Simulator& sim, LossModel& loss, ChannelConfig config, Rng rng);

  /// Registers a radio. A radio may be attached to at most one channel.
  void attach(Radio& radio);

  /// Installs a transmission observer (tracing/diagnostics). Replaces any
  /// previous tap; pass nullptr to remove.
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const ChannelConfig& config() const { return config_; }

  /// Radios currently within range of `position` (excluding `self`),
  /// regardless of power state. Used by topology diagnostics.
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId self) const;

  // --- Fault-injection hooks (src/fault/). The drop state lives in a
  // transport-agnostic DropFilter (src/transport/drop_filter.h) so the same
  // seeded FaultPlan drives simulated and service-mode runs; these methods
  // delegate. All state defaults to empty and each costs one has_*()-branch
  // on the transmit path when unused, so the channel's RNG draw sequence is
  // untouched by a fault-free run. ------------------------------------------

  /// A muted radio's frames vanish in the air and it hears nothing, but the
  /// node itself keeps running (and paying tx energy) — an omission fault,
  /// distinct from a crash (Freeze in the fault taxonomy).
  void set_muted(NodeId id, bool muted) { drop_filter_.set_muted(id, muted); }
  [[nodiscard]] bool is_muted(NodeId id) const {
    return drop_filter_.is_muted(id);
  }

  /// Blocks/unblocks the (symmetric) link between two nodes; blocked frames
  /// count as losses (LinkDown / partition faults).
  void set_link_blocked(NodeId a, NodeId b, bool blocked) {
    drop_filter_.set_link_blocked(a, b, blocked);
  }

  /// Forces loss probability to 1 for any frame whose sender or receiver
  /// lies inside `area` (regional jamming). Returns a token for removal.
  int add_jam_region(Disk area) { return drop_filter_.add_jam_region(area); }
  void remove_jam_region(int token) { drop_filter_.remove_jam_region(token); }
  [[nodiscard]] bool is_jammed(Vec2 p) const { return drop_filter_.jammed(p); }

  /// Overrides the configured loss model's per-frame loss probability for
  /// every in-range candidate (time-varying interference: loss bursts /
  /// storms from FaultKind::kLoss plans). While active each candidate draws
  /// one uniform against `p` — the same single draw the normal path makes —
  /// so engaging or clearing the override never shifts the RNG sequence of
  /// subsequent draws, and a plan with no loss events is bit-identical to a
  /// fault-free run.
  void set_loss_override(double p) {
    loss_override_active_ = true;
    loss_override_p_ = p;
  }
  void clear_loss_override() {
    loss_override_active_ = false;
    loss_override_p_ = 0.0;
  }
  [[nodiscard]] bool loss_override_active() const {
    return loss_override_active_;
  }

  /// The embedded fault-drop state (diagnostics and the fault injector).
  [[nodiscard]] const DropFilter& drop_filter() const { return drop_filter_; }

 private:
  friend class Radio;

  void transmit(Radio& sender, PayloadPtr payload, NodeId intended);
  /// Fires one scheduled delivery of `tx` to `receiver`; releases the
  /// record back to the pool after its last delivery.
  void deliver_one(Transmission* tx, Radio* receiver);
  /// Simulator::BatchFn trampoline: `ctx` is the Transmission, `index` its
  /// receiver-list position.
  static void batch_deliver(void* ctx, std::uint32_t index);

  [[nodiscard]] Transmission* acquire_transmission();
  void release_transmission(Transmission* tx);

  // --- Spatial index: uniform grid with cell size = range. Reach from any
  // point spans at most the 3x3 cell block around it, so transmissions and
  // neighbour queries touch O(local density) radios instead of O(n). ------
  /// Grid coordinate of one axis value (cell size = range).
  [[nodiscard]] std::int64_t cell_coord(double v) const;
  /// Packs grid coordinates into one 64-bit key. The bias keeps negative
  /// coordinates well-defined; the single definition keeps cell_key and the
  /// 3x3 probe loop from drifting apart.
  [[nodiscard]] static std::int64_t pack_cell(std::int64_t cx, std::int64_t cy);
  [[nodiscard]] std::int64_t cell_key(Vec2 p) const;
  void index_insert(Radio* radio);
  void index_remove(Radio* radio);
  void reindex(Radio* radio, Vec2 old_position, Vec2 new_position);
  /// One indexed radio with its position cached inline. The range test per
  /// candidate reads 24 contiguous bytes instead of chasing the Radio
  /// object (most of a cell block is out of range, so the chase would be a
  /// cache miss that buys nothing). reindex() keeps `pos` in sync with
  /// every Radio::set_position call, including moves within one cell.
  struct CellEntry {
    Vec2 pos;
    Radio* radio;
  };

  /// Invokes fn(radio, pos) for every indexed radio within `range` of
  /// `center` (excluding `exclude`); `pos` is the radio's (cached) position.
  template <typename Fn>
  void for_each_in_range(Vec2 center, const Radio* exclude, Fn&& fn) const;

  /// Cached 3x3 cell block around one centre cell: pointers to the grid's
  /// cell vectors (stable — cells are never erased, and unordered_map
  /// mapped values don't move on rehash), so a broadcast resolves its
  /// neighbourhood with one cache lookup instead of nine hash probes. The
  /// pointers see cell contents live; only the APPEARANCE of a brand-new
  /// cell can stale a block, so grid_cells_version_ bumps exactly when
  /// grid_ gains a key.
  struct CellBlock {
    std::uint64_t version = 0;
    std::uint32_t count = 0;
    std::array<const std::vector<CellEntry>*, 9> cells{};
  };
  /// The grid cell vector for `key`, creating it (and bumping
  /// grid_cells_version_) on first use.
  [[nodiscard]] std::vector<CellEntry>& grid_cell(std::int64_t key);
  /// The up-to-date CellBlock for the cell containing `center`.
  [[nodiscard]] const CellBlock& cell_block(Vec2 center) const;

  Simulator& sim_;
  LossModel& loss_;
  /// Cached loss_.as_bernoulli(): non-null lets transmit() inline the
  /// single-uniform loss draw instead of a virtual call per candidate.
  const BernoulliLoss* bernoulli_loss_ = nullptr;
  ChannelConfig config_;
  Rng rng_;
  std::vector<Radio*> radios_;
  /// id -> radio, maintained by attach(); makes neighbors_of O(log n)
  /// instead of a linear scan and enforces id uniqueness.
  FlatMap<NodeId, Radio*> radios_by_id_;
  std::unordered_map<std::int64_t, std::vector<CellEntry>> grid_;
  /// Bumped whenever grid_ gains a new cell key; stamps CellBlock caches.
  std::uint64_t grid_cells_version_ = 1;
  mutable std::unordered_map<std::int64_t, CellBlock> cell_blocks_;
  ChannelStats stats_;
  Tap tap_;
  /// Transmission slab + freelist. Records are raw-pointer-stable (the
  /// delivery events hold Transmission*), owned by the slab for the
  /// channel's lifetime, and recycled with their receiver-list capacity.
  std::vector<std::unique_ptr<Transmission>> transmission_slab_;
  std::vector<Transmission*> transmission_free_;
  /// Per-receiver delivery delays of the broadcast being scheduled, index-
  /// aligned with its receiver list; reused scratch (delays are consumed by
  /// the scheduling loop within transmit()).
  std::vector<SimTime> scratch_delays_;
  // Fault-injection state (empty in fault-free runs; see the hooks above).
  DropFilter drop_filter_;
  bool loss_override_active_ = false;
  double loss_override_p_ = 0.0;
};

}  // namespace cfds
