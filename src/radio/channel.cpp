#include "radio/channel.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expect.h"

namespace cfds {

void Radio::send(PayloadPtr payload, NodeId intended) {
  CFDS_EXPECT(channel_ != nullptr, "radio not attached to a channel");
  if (!powered_) return;  // a crashed node emits nothing (fail-stop)
  counters_.frames_sent++;
  counters_.bytes_sent += payload->size_bytes();
  channel_->transmit(*this, std::move(payload), intended);
}

void Radio::set_position(Vec2 p) {
  const Vec2 old_position = position_;
  position_ = p;
  if (channel_ != nullptr) channel_->reindex(this, old_position, p);
}

void Radio::deliver(const Reception& reception) {
  if (!powered_) return;  // crashed between emission and arrival
  counters_.frames_received++;
  counters_.bytes_received += reception.payload->size_bytes();
  if (on_receive_) on_receive_(reception);
}

Channel::Channel(Simulator& sim, LossModel& loss, ChannelConfig config, Rng rng)
    : sim_(sim), loss_(loss), config_(config), rng_(rng) {
  CFDS_EXPECT(config_.range > 0.0, "range must be positive");
  CFDS_EXPECT(config_.min_delay_frac >= 0.0 &&
                  config_.max_delay_frac <= 1.0 &&
                  config_.min_delay_frac <= config_.max_delay_frac,
              "delay fractions must satisfy 0 <= min <= max <= 1");
}

std::int64_t Channel::cell_key(Vec2 p) const {
  // Cell size = transmission range: any receiver lies within the 3x3 cell
  // block around the sender. Coordinates are packed into one 64-bit key
  // (biased to keep negative positions well-defined).
  const auto cx = std::int64_t(std::floor(p.x / config_.range));
  const auto cy = std::int64_t(std::floor(p.y / config_.range));
  return ((cx + 0x40000000) << 32) | std::int64_t(std::uint32_t(cy + 0x40000000));
}

void Channel::index_insert(Radio* radio) {
  grid_[cell_key(radio->position())].push_back(radio);
}

void Channel::index_remove(Radio* radio) {
  auto& cell = grid_[cell_key(radio->position())];
  cell.erase(std::remove(cell.begin(), cell.end(), radio), cell.end());
}

void Channel::reindex(Radio* radio, Vec2 old_position, Vec2 new_position) {
  const std::int64_t old_key = cell_key(old_position);
  const std::int64_t new_key = cell_key(new_position);
  if (old_key == new_key) return;
  auto& old_cell = grid_[old_key];
  old_cell.erase(std::remove(old_cell.begin(), old_cell.end(), radio),
                 old_cell.end());
  grid_[new_key].push_back(radio);
}

template <typename Fn>
void Channel::for_each_in_range(Vec2 center, const Radio* exclude,
                                Fn&& fn) const {
  const auto ccx = std::int64_t(std::floor(center.x / config_.range));
  const auto ccy = std::int64_t(std::floor(center.y / config_.range));
  for (std::int64_t cx = ccx - 1; cx <= ccx + 1; ++cx) {
    for (std::int64_t cy = ccy - 1; cy <= ccy + 1; ++cy) {
      const std::int64_t key = ((cx + 0x40000000) << 32) |
                               std::int64_t(std::uint32_t(cy + 0x40000000));
      const auto it = grid_.find(key);
      if (it == grid_.end()) continue;
      for (Radio* radio : it->second) {
        if (radio == exclude) continue;
        if (!within_range(center, radio->position(), config_.range)) continue;
        fn(radio);
      }
    }
  }
}

void Channel::attach(Radio& radio) {
  CFDS_EXPECT(radio.channel_ == nullptr, "radio already attached");
  radio.channel_ = this;
  radios_.push_back(&radio);
  index_insert(&radio);
}

std::vector<NodeId> Channel::neighbors_of(NodeId self) const {
  const Radio* me = nullptr;
  for (const Radio* r : radios_) {
    if (r->id() == self) {
      me = r;
      break;
    }
  }
  CFDS_EXPECT(me != nullptr, "unknown radio id");
  std::vector<NodeId> out;
  for_each_in_range(me->position(), me,
                    [&](Radio* radio) { out.push_back(radio->id()); });
  std::sort(out.begin(), out.end());
  return out;
}

void Channel::set_muted(NodeId id, bool muted) {
  if (muted) {
    muted_.insert(id);
  } else {
    muted_.erase(id);
  }
}

void Channel::set_link_blocked(NodeId a, NodeId b, bool blocked) {
  if (blocked) {
    blocked_links_.insert(link_key(a, b));
  } else {
    blocked_links_.erase(link_key(a, b));
  }
}

int Channel::add_jam_region(Disk area) {
  const int token = next_jam_token_++;
  jam_regions_.emplace_back(token, area);
  return token;
}

void Channel::remove_jam_region(int token) {
  jam_regions_.erase(
      std::remove_if(jam_regions_.begin(), jam_regions_.end(),
                     [token](const auto& jr) { return jr.first == token; }),
      jam_regions_.end());
}

bool Channel::is_jammed(Vec2 p) const {
  for (const auto& [token, disk] : jam_regions_) {
    if (disk.contains(p)) return true;
  }
  return false;
}

std::uint64_t Channel::link_key(NodeId a, NodeId b) {
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  return (hi << 32) | lo;
}

void Channel::transmit(Radio& sender, PayloadPtr payload, NodeId intended) {
  stats_.transmissions++;
  if (tap_) tap_(sender.id(), intended, *payload, sim_.now());
  // A muted (frozen) sender still pays tx energy and advances its protocol
  // state — the frame just never reaches the air (omission fault).
  if (!muted_.empty() && muted_.contains(sender.id())) return;
  const Vec2 from = sender.position();
  const bool sender_jammed = !jam_regions_.empty() && is_jammed(from);
  const SimTime sent_at = sim_.now();
  for_each_in_range(from, &sender, [&](Radio* receiver) {
    if (!receiver->powered()) return;
    // Deterministic fault drops happen before the loss/delay RNG draws: a
    // frame that cannot arrive must not consume channel randomness.
    if (!muted_.empty() && muted_.contains(receiver->id())) return;
    if (!blocked_links_.empty() &&
        blocked_links_.contains(link_key(sender.id(), receiver->id()))) {
      stats_.losses++;
      return;
    }
    if (sender_jammed ||
        (!jam_regions_.empty() && is_jammed(receiver->position()))) {
      stats_.losses++;  // jam region: loss probability forced to 1
      return;
    }
    if (loss_.lost(sender.id(), from, receiver->id(), receiver->position(),
                   rng_)) {
      stats_.losses++;
      return;
    }
    stats_.deliveries++;
    const double frac =
        rng_.uniform(config_.min_delay_frac, config_.max_delay_frac);
    const auto delay =
        SimTime::micros(std::int64_t(frac * double(config_.t_hop.as_micros())));
    sim_.schedule_after(
        delay, [receiver, reception = Reception{sender.id(), intended, payload,
                                                sent_at}] {
          receiver->deliver(reception);
        });
  });
}

}  // namespace cfds
