#include "radio/channel.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/expect.h"

namespace cfds {

void Radio::send(PayloadPtr payload, NodeId intended) {
  CFDS_EXPECT(channel_ != nullptr, "radio not attached to a channel");
  if (!powered()) return;  // a crashed node emits nothing (fail-stop)
  RadioCounters& counters = store_->counters(slot_);
  counters.frames_sent++;
  counters.bytes_sent += payload->size_bytes();
  channel_->transmit(*this, std::move(payload), intended);
}

void Radio::set_position(Vec2 p) {
  const Vec2 old_position = store_->position(slot_);
  store_->set_position(slot_, p);
  if (channel_ != nullptr) channel_->reindex(this, old_position, p);
}

void Radio::deliver(const Reception& reception, std::uint64_t payload_bytes) {
  if (!powered()) return;  // crashed between emission and arrival
  RadioCounters& counters = store_->counters(slot_);
  counters.frames_received++;
  counters.bytes_received += payload_bytes;
  if (raw_receive_ != nullptr) {
    raw_receive_(raw_ctx_, reception);
  } else if (on_receive_) {
    on_receive_(reception);
  }
}

Channel::Channel(Simulator& sim, LossModel& loss, ChannelConfig config, Rng rng)
    : sim_(sim),
      loss_(loss),
      bernoulli_loss_(loss.as_bernoulli()),
      config_(config),
      rng_(rng) {
  CFDS_EXPECT(config_.range > 0.0, "range must be positive");
  CFDS_EXPECT(config_.min_delay_frac >= 0.0 &&
                  config_.max_delay_frac <= 1.0 &&
                  config_.min_delay_frac <= config_.max_delay_frac,
              "delay fractions must satisfy 0 <= min <= max <= 1");
}

std::int64_t Channel::cell_coord(double v) const {
  return std::int64_t(std::floor(v / config_.range));
}

std::int64_t Channel::pack_cell(std::int64_t cx, std::int64_t cy) {
  return ((cx + 0x40000000) << 32) |
         std::int64_t(std::uint32_t(cy + 0x40000000));
}

std::int64_t Channel::cell_key(Vec2 p) const {
  // Cell size = transmission range: any receiver lies within the 3x3 cell
  // block around the sender. Coordinates are packed into one 64-bit key
  // (biased to keep negative positions well-defined).
  return pack_cell(cell_coord(p.x), cell_coord(p.y));
}

std::vector<Channel::CellEntry>& Channel::grid_cell(std::int64_t key) {
  const auto [it, inserted] = grid_.try_emplace(key);
  if (inserted) ++grid_cells_version_;  // stales every cached CellBlock
  return it->second;
}

void Channel::index_insert(Radio* radio) {
  grid_cell(cell_key(radio->position()))
      .push_back(CellEntry{radio->position(), radio});
}

void Channel::index_remove(Radio* radio) {
  auto& cell = grid_cell(cell_key(radio->position()));
  cell.erase(std::remove_if(cell.begin(), cell.end(),
                            [radio](const CellEntry& e) {
                              return e.radio == radio;
                            }),
             cell.end());
}

void Channel::reindex(Radio* radio, Vec2 old_position, Vec2 new_position) {
  const std::int64_t old_key = cell_key(old_position);
  const std::int64_t new_key = cell_key(new_position);
  if (old_key == new_key) {
    // Same cell: only the cached position needs refreshing.
    for (CellEntry& entry : grid_cell(old_key)) {
      if (entry.radio == radio) {
        entry.pos = new_position;
        return;
      }
    }
    return;
  }
  auto& old_cell = grid_cell(old_key);
  old_cell.erase(std::remove_if(old_cell.begin(), old_cell.end(),
                                [radio](const CellEntry& e) {
                                  return e.radio == radio;
                                }),
                 old_cell.end());
  grid_cell(new_key).push_back(CellEntry{new_position, radio});
}

const Channel::CellBlock& Channel::cell_block(Vec2 center) const {
  CellBlock& block = cell_blocks_[cell_key(center)];
  if (block.version != grid_cells_version_) {
    block.count = 0;
    const std::int64_t ccx = cell_coord(center.x);
    const std::int64_t ccy = cell_coord(center.y);
    for (std::int64_t cx = ccx - 1; cx <= ccx + 1; ++cx) {
      for (std::int64_t cy = ccy - 1; cy <= ccy + 1; ++cy) {
        const auto it = grid_.find(pack_cell(cx, cy));
        if (it == grid_.end()) continue;
        block.cells[block.count++] = &it->second;
      }
    }
    block.version = grid_cells_version_;
  }
  return block;
}

template <typename Fn>
void Channel::for_each_in_range(Vec2 center, const Radio* exclude,
                                Fn&& fn) const {
  const CellBlock& block = cell_block(center);
  for (std::uint32_t c = 0; c < block.count; ++c) {
    for (const CellEntry& entry : *block.cells[c]) {
      if (entry.radio == exclude) continue;
      if (!within_range(center, entry.pos, config_.range)) continue;
      fn(entry.radio, entry.pos);
    }
  }
}

void Channel::attach(Radio& radio) {
  CFDS_EXPECT(radio.channel_ == nullptr, "radio already attached");
  CFDS_EXPECT(radios_by_id_.find(radio.id()) == radios_by_id_.end(),
              "duplicate radio id attached to channel");
  radio.channel_ = this;
  radios_.push_back(&radio);
  radios_by_id_[radio.id()] = &radio;
  index_insert(&radio);
}

std::vector<NodeId> Channel::neighbors_of(NodeId self) const {
  const auto it = radios_by_id_.find(self);
  CFDS_EXPECT(it != radios_by_id_.end(), "unknown radio id");
  const Radio* me = it->second;
  std::vector<NodeId> out;
  for_each_in_range(me->position(), me,
                    [&](Radio* radio, Vec2) { out.push_back(radio->id()); });
  std::sort(out.begin(), out.end());
  return out;
}

// LINT-ROUND-PATH: per-broadcast hot path (see docs/PERF.md).
Transmission* Channel::acquire_transmission() {
  Transmission* tx = nullptr;
  if (!transmission_free_.empty()) {
    tx = transmission_free_.back();
    transmission_free_.pop_back();
  } else {
    transmission_slab_.push_back(std::make_unique<Transmission>());
    transmission_slab_.back()->channel = this;
    tx = transmission_slab_.back().get();
  }
  // Records pair with a different sender every reuse (the free list reorders
  // by delivery completion), so without a floor each record's receiver list
  // re-grows whenever it meets a wider fan-out than it has seen — a trickle
  // of reallocation that never converges. The high-water mark converges
  // after the widest broadcast has happened once.
  if (tx->receivers.capacity() < stats_.max_fanout) {
    tx->receivers.reserve(stats_.max_fanout);
  }
  return tx;
}

void Channel::release_transmission(Transmission* tx) {
  tx->reception.payload.reset();  // drop the shared frame eagerly
  tx->receivers.clear();          // keeps capacity for the next broadcast
  tx->remaining = 0;
  transmission_free_.push_back(tx);
}

// LINT-ROUND-PATH: per-broadcast hot path (see docs/PERF.md).
void Channel::deliver_one(Transmission* tx, Radio* receiver) {
  // Every receiver reads the one Reception embedded in the shared record;
  // no per-receiver payload refcount traffic.
  receiver->deliver(tx->reception, tx->payload_bytes);
  if (--tx->remaining == 0) release_transmission(tx);
}

// LINT-ROUND-PATH: per-broadcast hot path (see docs/PERF.md).
void Channel::batch_deliver(void* ctx, std::uint32_t index) {
  auto* tx = static_cast<Transmission*>(ctx);
  tx->channel->deliver_one(tx, tx->receivers[index]);
}

// LINT-ROUND-PATH: per-broadcast hot path (see docs/PERF.md).
void Channel::transmit(Radio& sender, PayloadPtr payload, NodeId intended) {
  stats_.transmissions++;
  if (tap_) tap_(sender.id(), intended, *payload, sim_.now());
  // A muted (frozen) sender still pays tx energy and advances its protocol
  // state — the frame just never reaches the air (omission fault).
  if (drop_filter_.has_muted() && drop_filter_.is_muted(sender.id())) return;
  const Vec2 from = sender.position();
  const bool sender_jammed =
      drop_filter_.has_jam_regions() && drop_filter_.jammed(from);

  // One record per broadcast. The receiver list and its per-receiver delay
  // draws happen in the same deterministic receiver order (and interleaved
  // with the same loss-model draws) as the old per-receiver scheduling, so
  // the RNG sequence is untouched.
  Transmission* tx = acquire_transmission();
  tx->reception = Reception{sender.id(), intended, std::move(payload),
                            sim_.now()};
  tx->payload_bytes = tx->reception.payload->size_bytes();
  scratch_delays_.clear();
  for_each_in_range(from, &sender, [&](Radio* receiver, Vec2 receiver_pos) {
    if (!receiver->powered()) return;
    // Deterministic fault drops happen before the loss/delay RNG draws: a
    // frame that cannot arrive must not consume channel randomness.
    if (drop_filter_.has_muted() && drop_filter_.is_muted(receiver->id())) {
      return;
    }
    if (drop_filter_.has_blocked_links() &&
        drop_filter_.link_blocked(sender.id(), receiver->id())) {
      stats_.losses++;
      return;
    }
    if (sender_jammed ||
        (drop_filter_.has_jam_regions() &&
         drop_filter_.jammed(receiver_pos))) {
      stats_.losses++;  // jam region: loss probability forced to 1
      return;
    }
    // Inlined draw for the common BernoulliLoss (bit-identical to calling
    // lost(): one uniform per candidate); other models go virtual. An
    // active loss override (kLoss fault burst) substitutes its probability
    // but still makes exactly one draw, so the RNG sequence seen by later
    // transmissions is independent of whether a burst was in effect.
    const bool frame_lost =
        loss_override_active_
            ? rng_.bernoulli(loss_override_p_)
        : bernoulli_loss_ != nullptr
            ? rng_.bernoulli(bernoulli_loss_->probability())
            : loss_.lost(sender.id(), from, receiver->id(), receiver_pos,
                         rng_);
    if (frame_lost) {
      stats_.losses++;
      return;
    }
    stats_.deliveries++;
    const double frac =
        rng_.uniform(config_.min_delay_frac, config_.max_delay_frac);
    const auto delay =
        SimTime::micros(std::int64_t(frac * double(config_.t_hop.as_micros())));
    tx->receivers.push_back(receiver);
    scratch_delays_.push_back(delay);
  });

  if (tx->receivers.empty()) {
    release_transmission(tx);
    return;
  }
  stats_.max_fanout =
      std::max<std::uint64_t>(stats_.max_fanout, tx->receivers.size());
  // Scheduling after the fan-out loop assigns the same sequence numbers as
  // scheduling inside it (nothing else schedules during the loop), so the
  // firing order is bit-identical to the unbatched path. One batch = one
  // timer slot for the whole broadcast; each firing carries its receiver
  // index in the queue entry itself.
  tx->remaining = std::uint32_t(tx->receivers.size());
  const Simulator::BatchRef batch =
      sim_.begin_batch(&Channel::batch_deliver, tx);
  for (std::uint32_t i = 0; i < tx->remaining; ++i) {
    sim_.add_batch_event(batch, scratch_delays_[i], i);
  }
}

}  // namespace cfds
