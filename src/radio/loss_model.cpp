#include "radio/loss_model.h"

#include <cmath>

#include "common/expect.h"

namespace cfds {

BernoulliLoss::BernoulliLoss(double loss_probability) : p_(loss_probability) {
  CFDS_EXPECT(p_ >= 0.0 && p_ <= 1.0, "loss probability outside [0,1]");
}

bool BernoulliLoss::lost(NodeId, Vec2, NodeId, Vec2, Rng& rng) {
  return rng.bernoulli(p_);
}

GilbertElliottLoss::GilbertElliottLoss(Params params) : params_(params) {
  CFDS_EXPECT(params_.p_gb > 0.0 && params_.p_bg > 0.0,
              "degenerate Gilbert-Elliott chain");
}

bool GilbertElliottLoss::lost(NodeId sender, Vec2, NodeId receiver, Vec2,
                              Rng& rng) {
  const std::uint64_t key =
      (std::uint64_t(sender.value()) << 32) | receiver.value();
  bool& bad = link_bad_[key];
  // Step the chain, then sample loss in the new state.
  bad = bad ? !rng.bernoulli(params_.p_bg) : rng.bernoulli(params_.p_gb);
  return rng.bernoulli(bad ? params_.p_bad : params_.p_good);
}

double GilbertElliottLoss::stationary_loss() const {
  const double frac_bad = params_.p_gb / (params_.p_gb + params_.p_bg);
  return frac_bad * params_.p_bad + (1.0 - frac_bad) * params_.p_good;
}

DistanceLoss::DistanceLoss(double floor, double ceiling, double range,
                           double gamma)
    : floor_(floor), ceiling_(ceiling), range_(range), gamma_(gamma) {
  CFDS_EXPECT(floor_ >= 0.0 && ceiling_ <= 1.0 && floor_ <= ceiling_,
              "invalid distance-loss bounds");
  CFDS_EXPECT(range_ > 0.0, "range must be positive");
}

double DistanceLoss::probability_at(double dist) const {
  const double t = std::min(dist / range_, 1.0);
  return floor_ + (ceiling_ - floor_) * std::pow(t, gamma_);
}

bool DistanceLoss::lost(NodeId, Vec2 from, NodeId, Vec2 to, Rng& rng) {
  return rng.bernoulli(probability_at(distance(from, to)));
}

}  // namespace cfds
