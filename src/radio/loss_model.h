// Message-loss models.
//
// The paper's analysis assumes each transmission reaches each in-range
// neighbour independently with probability 1-p (Section 5, with p in
// [0.05, 0.5]); BernoulliLoss implements exactly that. Gilbert-Elliott and
// distance-dependent variants are provided for robustness studies beyond the
// paper's model (bursty links and fading edges change the value of the
// redundancy the FDS exploits).

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/geometry.h"
#include "common/ids.h"
#include "common/rng.h"

namespace cfds {

/// Decides, per (transmission, receiver) pair, whether the frame is lost.
class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Returns true if the frame from `sender` at `from` fails to reach
  /// `receiver` at `to`. Called once per in-range receiver per transmission;
  /// outcomes must be independent across calls for the iid model.
  [[nodiscard]] virtual bool lost(NodeId sender, Vec2 from, NodeId receiver,
                                  Vec2 to, Rng& rng) = 0;

  /// Non-null when this model is the paper's iid BernoulliLoss. The channel
  /// caches this once and inlines the single-uniform draw on its per-
  /// receiver hot path instead of a virtual call; the draw sequence is
  /// identical to calling lost().
  [[nodiscard]] virtual const class BernoulliLoss* as_bernoulli() const {
    return nullptr;
  }
};

/// The paper's model: iid loss with fixed probability p per receiver.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double loss_probability);

  [[nodiscard]] bool lost(NodeId, Vec2, NodeId, Vec2, Rng& rng) override;

  [[nodiscard]] const BernoulliLoss* as_bernoulli() const override {
    return this;
  }

  [[nodiscard]] double probability() const { return p_; }

 private:
  double p_;
};

/// Two-state bursty link model. Each directed link is an independent
/// Gilbert-Elliott chain stepped once per transmission over that link:
/// in the Good state frames are lost with p_good, in the Bad state with
/// p_bad; transitions occur with p_gb / p_bg.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good = 0.01;  ///< loss probability in the Good state
    double p_bad = 0.8;    ///< loss probability in the Bad state
    double p_gb = 0.05;    ///< Good -> Bad transition probability
    double p_bg = 0.3;     ///< Bad -> Good transition probability
  };

  explicit GilbertElliottLoss(Params params);

  [[nodiscard]] bool lost(NodeId sender, Vec2, NodeId receiver, Vec2,
                          Rng& rng) override;

  /// Stationary loss probability implied by the chain; used to pick
  /// parameters comparable to a Bernoulli p.
  [[nodiscard]] double stationary_loss() const;

 private:
  Params params_;
  std::unordered_map<std::uint64_t, bool> link_bad_;  // keyed by (src,dst)
};

/// Loss grows with distance: p(d) = floor + (ceiling-floor) * (d/range)^gamma.
/// Models the soft edge of real radios; the unit-disk range still caps reach.
class DistanceLoss final : public LossModel {
 public:
  DistanceLoss(double floor, double ceiling, double range, double gamma = 2.0);

  [[nodiscard]] bool lost(NodeId, Vec2 from, NodeId, Vec2 to, Rng& rng) override;

  /// Loss probability at the given distance (exposed for tests/analysis).
  [[nodiscard]] double probability_at(double dist) const;

 private:
  double floor_;
  double ceiling_;
  double range_;
  double gamma_;
};

/// Never loses anything. Used by invariant tests (p = 0 => deterministic
/// completeness and accuracy).
class PerfectLinks final : public LossModel {
 public:
  [[nodiscard]] bool lost(NodeId, Vec2, NodeId, Vec2, Rng&) override {
    return false;
  }
};

}  // namespace cfds
