// Payload abstraction for simulated radio frames.
//
// The radio substrate is protocol-agnostic: upper layers (clustering, FDS,
// inter-cluster forwarding, baselines) define payload types derived from
// Payload, and receivers dispatch on the concrete type. Payloads are
// immutable and shared between all receivers of a broadcast — the channel
// never copies them, mirroring the fact that a radio transmission is a single
// emission heard by many.
//
// Dispatch is tag-based: every concrete payload carries a PayloadKind set at
// construction, and payload_cast is a tag compare + static_cast rather than a
// dynamic_cast. Receivers run a payload_cast chain per frame, so this check
// sits on the per-frame hot path of every protocol layer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace cfds {

/// Closed enumeration of every frame type in the simulator. A new payload
/// struct must add its tag here and pass it to the Payload base constructor.
enum class PayloadKind : std::uint8_t {
  // fds
  kHeartbeat,
  kLeaveNotice,
  kSleepNotice,
  kDigest,
  kHealthUpdate,
  kUpdateRequest,
  kUpdateForward,
  kUpdateAck,
  // cluster formation
  kProbe,
  kChClaim,
  kJoin,
  kAnnounce,
  kGatewayCandidacy,
  kGatewayAssignment,
  // aggregation (kMeasurement is heartbeat-compatible; see matches()).
  kMeasurement,
  kClusterAggregate,
  // inter-cluster forwarding
  kFailureReport,
  kExplicitAck,
  // baselines
  kFlood,
  kGossip,
  kSwimPing,
  kSwimAck,
  kSwimPingReq,
  // checkpointed recovery (appended to keep earlier kind bytes stable
  // across the wire-format version bump)
  kCheckpoint,
  // reserved for test-local payload types
  kTest,
};

/// Base class for everything carried over the simulated radio.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Frame-type tag for dispatch; fixed at construction.
  [[nodiscard]] PayloadKind tag() const { return tag_; }

  /// Human-readable frame type for traces ("heartbeat", "digest", ...).
  [[nodiscard]] virtual std::string_view kind() const = 0;

  /// Nominal over-the-air size in bytes; feeds the energy model. The paper's
  /// frames are tiny (a heartbeat is an NID plus a one-bit mark indicator).
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;

 protected:
  explicit Payload(PayloadKind tag) : tag_(tag) {}

 private:
  PayloadKind tag_;  // non-const so payload values stay copy-assignable
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Downcast helper; returns nullptr when the payload is of a different type.
/// Each payload type T declares `kTag` and (when other kinds are layout-
/// compatible subtypes, like measurement-as-heartbeat) a `matches(kind)`
/// predicate; the cast is a tag check plus static_cast — no RTTI.
template <typename T>
[[nodiscard]] const T* payload_cast(const PayloadPtr& p) {
  if (p != nullptr && T::matches(p->tag())) return static_cast<const T*>(p.get());
  return nullptr;
}

/// As payload_cast, but preserves shared ownership (for receivers that stash
/// the payload beyond the handler, e.g. peer-forwarded health updates).
template <typename T>
[[nodiscard]] std::shared_ptr<const T> payload_cast_shared(const PayloadPtr& p) {
  if (p != nullptr && T::matches(p->tag())) {
    return std::static_pointer_cast<const T>(p);
  }
  return nullptr;
}

}  // namespace cfds
