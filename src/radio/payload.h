// Payload abstraction for simulated radio frames.
//
// The radio substrate is protocol-agnostic: upper layers (clustering, FDS,
// inter-cluster forwarding, baselines) define payload types derived from
// Payload, and receivers dispatch on the concrete type. Payloads are
// immutable and shared between all receivers of a broadcast — the channel
// never copies them, mirroring the fact that a radio transmission is a single
// emission heard by many.

#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

namespace cfds {

/// Base class for everything carried over the simulated radio.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Human-readable frame type for traces ("heartbeat", "digest", ...).
  [[nodiscard]] virtual std::string_view kind() const = 0;

  /// Nominal over-the-air size in bytes; feeds the energy model. The paper's
  /// frames are tiny (a heartbeat is an NID plus a one-bit mark indicator).
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Downcast helper; returns nullptr when the payload is of a different type.
template <typename T>
[[nodiscard]] const T* payload_cast(const PayloadPtr& p) {
  return dynamic_cast<const T*>(p.get());
}

}  // namespace cfds
