// Frame tracer: per-kind transmission accounting and an optional rolling
// frame log. Attach to a Channel's tap to see exactly what a protocol puts
// on the air — used by the traffic-mix tests, the CLI tool's --trace mode,
// and when debugging protocol schedules.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/ids.h"
#include "common/sim_time.h"
#include "radio/channel.h"

namespace cfds {

class FrameTracer {
 public:
  struct KindStats {
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
  };

  struct LoggedFrame {
    SimTime when;
    NodeId sender;
    NodeId intended;
    std::string kind;
    std::size_t bytes = 0;
  };

  /// Installs this tracer as the channel's tap. `log_depth` > 0 keeps the
  /// most recent frames for dumping.
  void attach(Channel& channel, std::size_t log_depth = 0) {
    log_depth_ = log_depth;
    channel.set_tap([this](NodeId sender, NodeId intended,
                           const Payload& payload, SimTime when) {
      KindStats& stats = by_kind_[std::string(payload.kind())];
      stats.frames++;
      stats.bytes += payload.size_bytes();
      ++total_frames_;
      if (log_depth_ > 0) {
        log_.push_back({when, sender, intended, std::string(payload.kind()),
                        payload.size_bytes()});
        if (log_.size() > log_depth_) log_.pop_front();
      }
    });
  }

  [[nodiscard]] const std::map<std::string, KindStats>& by_kind() const {
    return by_kind_;
  }
  [[nodiscard]] std::uint64_t total_frames() const { return total_frames_; }
  [[nodiscard]] std::uint64_t frames_of(const std::string& kind) const {
    const auto it = by_kind_.find(kind);
    return it == by_kind_.end() ? 0 : it->second.frames;
  }
  [[nodiscard]] const std::deque<LoggedFrame>& log() const { return log_; }

  void reset() {
    by_kind_.clear();
    log_.clear();
    total_frames_ = 0;
  }

 private:
  std::map<std::string, KindStats> by_kind_;
  std::deque<LoggedFrame> log_;
  std::size_t log_depth_ = 0;
  std::uint64_t total_frames_ = 0;
};

}  // namespace cfds
