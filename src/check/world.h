// Bounded protocol worlds for the exhaustive state-space checker.
//
// A CheckWorld is a small cluster (3-6 nodes, one pre-formed cluster with
// CH = NID 0) whose FdsAgents run the REAL protocol code against
// check-owned Transport/TimerService implementations. Instead of a
// stochastic channel, every frame an agent sends is parked in an in-flight
// pool and resolved at the next barrier: a crossing happens every Thop
// (six per FDS execution, one per round offset), and at each crossing the
// world asks its ChoiceSink to decide every open nondeterministic point —
// which in-flight frames are dropped, in what order survivors are
// delivered, and whether a node crashes or recovers. The explorer
// (src/check/explorer.h) enumerates those choice sequences exhaustively
// within budgets; a replay sink pins them to reproduce a counterexample.
//
// Between choices the world checks safety properties:
//
//   I-V1  structural sanity of every alive agent's view (marked implies
//         affiliated, CH not in its own member/deputy lists, deputies are
//         members, no duplicate members, an affiliated node appears in its
//         own roster)
//   I-V2  rival-head arbitration: an acting head that hears a direct
//         same-cluster update from a lower-NID head must not still be head
//         afterwards (delivery obligation)
//   I-V3  no false kill: a decider must not declare a node failed in an
//         epoch in which that node's evidence reached the decider (checked
//         via FdsHooks::on_detection against a world-side delivery log)
//   I-V4  incarnation freshness: a delivered heartbeat carries exactly the
//         sender's world-side recovery count
//   I-V5  checkpoint monotonicity: handling a checkpoint frame never
//         regresses the holder's stored (epoch, seq) (delivery obligation)
//   I-V6  an acting CH's roster and failure log are disjoint
//   I-V7  no node's failure log lists the node itself
//
// plus, at the end of the bounded schedule, a quiescence probe: with all
// nondeterminism forced benign (no faults, no drops, canonical order) the
// cluster must reach a self-consistent steady state — one acting head,
// every alive node marked and in the head's roster, every dead node in the
// head's log and in nobody's roster — within `quiesce_max` executions.
// The probe is what catches "zombie" states where a node believes it is a
// member of a cluster that has moved on without it. Two terminal shapes
// count as quiescent: one acting head with consistent rosters/logs, or a
// COMPLETE dissolution (no head, every alive node unmarked and
// unaffiliated) — the state that hands the cluster back to the formation
// protocol, reachable when the CH crashes and recovers without a
// checkpoint.
//
// After every crossing the world hands the sink a canonical fingerprint of
// the ENTIRE configuration (agents via check/fingerprint.h, in-flight
// pool, pending timers, remaining fault/drop budgets); the sink returns
// false to prune the run when the state was already explored. Budgets are
// part of the fingerprint, so pruning is sound: equal fingerprints have
// identical future choice trees.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "event/simulator.h"
#include "fds/agent.h"
#include "fds/config.h"
#include "net/node.h"
#include "transport/transport.h"

namespace cfds::check {

/// World size and the choice budgets that keep the schedule tree finite.
struct CheckOptions {
  std::uint32_t nodes = 3;     ///< cluster population including the CH
  std::uint32_t deputies = 2;  ///< ranked DCHs (NIDs 1..deputies)
  std::uint64_t epochs = 2;    ///< FDS executions driven with open choices
  std::uint32_t max_crashes = 0;
  std::uint32_t max_recoveries = 0;
  std::uint32_t max_drops = 0;
  /// Delivery batches up to this size get a full permutation choice;
  /// larger batches are delivered in canonical (send) order.
  std::uint32_t perm_max = 3;
  bool adaptive = false;    ///< FdsConfig::adaptive_enabled
  bool checkpoint = false;  ///< FdsConfig::checkpoint_enabled
  std::uint32_t checkpoint_interval = 2;
  /// Receiver-major delivery (one interleaving per receiver, never across
  /// receivers). Receivers share no state, so cross-receiver orders are
  /// equivalent up to the next crossing — the checker's partial-order
  /// reduction. Turned off by the DPOR soundness test, which verifies the
  /// reduced and unreduced explorations find the same violations.
  bool reduction = true;
  /// Forced-benign executions granted to reach quiescence after the
  /// bounded schedule; 0 disables the probe.
  std::uint32_t quiesce_max = 8;
  SimTime t_hop = SimTime::millis(100);
};

/// What a choice point decides. The context words (a, b) carried with each
/// choice identify the decision for traces; replay needs only the order.
enum class ChoiceKind : std::uint8_t {
  kFault = 0,  ///< a = crossing ordinal; menu: none | recover(n) | crash(n)
  kDrop = 1,   ///< a = in-flight frame index, b = receiver NID
  kOrder = 2,  ///< a = receiver NID, b = batch size; value = Lehmer rank
};

[[nodiscard]] const char* choice_kind_name(ChoiceKind kind);

/// One resolved decision, as recorded on a counterexample trace.
struct ChoiceRec {
  ChoiceKind kind = ChoiceKind::kFault;
  std::uint32_t count = 0;   ///< branching factor offered
  std::uint32_t chosen = 0;  ///< branch taken, < count
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// A crash/recover the schedule injected. Counterexample traces emit these
/// in FaultPlan JSONL schema so bench_chaos --replay-plan replays them.
struct FaultEvent {
  bool recover = false;  ///< false = crash
  NodeId node;
  std::int64_t at_us = 0;
};

/// A safety-property violation, with enough context to locate the failing
/// crossing in the trace.
struct Violation {
  std::string invariant;  ///< "I-V1".."I-V7", "quiescence"
  std::string detail;
  std::uint64_t epoch = 0;
  std::uint32_t barrier = 0;  ///< crossing index within the epoch, 0..5
};

/// The explorer side of a run: resolves every choice point and learns
/// every crossing's canonical fingerprint.
class ChoiceSink {
 public:
  virtual ~ChoiceSink() = default;

  ChoiceSink(const ChoiceSink&) = delete;
  ChoiceSink& operator=(const ChoiceSink&) = delete;

  /// Resolves a choice point with `count` >= 2 branches; returns < count.
  /// (Single-branch points are taken silently and never recorded.)
  virtual std::uint32_t choose(std::uint32_t count, ChoiceKind kind,
                               std::uint64_t a, std::uint64_t b) = 0;

  /// A crossing completed with canonical fingerprint `fp`. Returning false
  /// prunes the run: the state (budgets included) was fully explored.
  virtual bool note_state(std::uint64_t fp) = 0;

 protected:
  ChoiceSink() = default;
};

class CheckWorld;

/// Transport for checked worlds: send() parks the frame in the world's
/// in-flight pool (resolved at the next barrier crossing); deliveries
/// invoke the registered handlers directly. Powered tracks the node's
/// liveness, mirroring Radio::set_powered under crash().
class CheckTransport final : public Transport {
 public:
  CheckTransport(CheckWorld& world, Node& node) : world_(world), node_(node) {}

  void send(PayloadPtr payload, NodeId intended) override;
  void add_receive_handler(RawReceiveHandler handler, void* ctx) override {
    handlers_.push_back({handler, ctx});
  }
  void set_powered(bool on) override { powered_ = on; }
  [[nodiscard]] bool powered() const override {
    return powered_ && node_.alive();
  }

  /// Hands one frame to every registered handler (no-op when unpowered).
  void deliver(const Reception& reception);

 private:
  struct HandlerRef {
    RawReceiveHandler fn;
    void* ctx;
  };

  CheckWorld& world_;
  Node& node_;
  bool powered_ = true;
  std::vector<HandlerRef> handlers_;
};

/// TimerService over a private Simulator (the RealTimeScheduler pattern):
/// agents arm real TimerHandles, the world advances the clock barrier to
/// barrier, and the service tracks its handles so pending deadlines can be
/// folded into the state fingerprint.
class CheckTimerService final : public TimerService {
 public:
  [[nodiscard]] SimTime now() const override { return sim_.now(); }

  TimerHandle schedule_at(SimTime when, EventFn action) override {
    TimerHandle handle = sim_.schedule_at(when, std::move(action));
    tracked_.push_back({when, handle});
    return handle;
  }
  TimerHandle schedule_after(SimTime delay, EventFn action) override {
    return schedule_at(sim_.now() + delay, std::move(action));
  }

  [[nodiscard]] Simulator& sim() { return sim_; }

  /// Deadlines of still-pending timers relative to now, ascending — the
  /// timer wheel's contribution to the fingerprint. Fired and cancelled
  /// entries are pruned as a side effect, so a long run's tracking list
  /// stays proportional to the genuinely pending timers.
  [[nodiscard]] std::vector<std::int64_t> pending_deltas();

 private:
  struct Tracked {
    SimTime when;
    TimerHandle handle;
  };

  Simulator sim_;
  std::vector<Tracked> tracked_;
};

/// One bounded world: real agents, check-owned seams, choice-driven
/// schedule. Construct fresh per run (agents hold references and are not
/// resettable); run() drives the full schedule once.
class CheckWorld {
 public:
  CheckWorld(const CheckOptions& opts, ChoiceSink& sink);

  /// Drives the bounded schedule plus the quiescence probe. Returns the
  /// first violation found, or nullopt when the run completed clean or was
  /// pruned (see pruned()).
  std::optional<Violation> run();

  /// True when the last run() ended early because the sink declined a
  /// visited state.
  [[nodiscard]] bool pruned() const { return pruned_; }

  /// Crash/recover events the schedule injected, in order.
  [[nodiscard]] const std::vector<FaultEvent>& fault_events() const {
    return fault_events_;
  }

  [[nodiscard]] const CheckOptions& options() const { return opts_; }

 private:
  friend class CheckTransport;  // send() appends to pool_

  /// One in-flight frame awaiting barrier resolution.
  struct PoolMsg {
    NodeId sender;
    NodeId intended;
    PayloadPtr payload;
    SimTime sent_at;
  };

  /// Runs crossings 0..5 of execution `epoch`; false = stop (violation or
  /// prune).
  bool run_epoch(std::uint64_t epoch);
  bool crossing(std::uint64_t epoch, std::uint32_t barrier);
  void resolve_pool(std::uint64_t epoch, std::uint32_t barrier);
  void fault_point(std::uint64_t epoch, std::uint32_t barrier);
  void round_actions(std::uint64_t epoch, std::uint32_t barrier);
  void check_invariants(std::uint64_t epoch, std::uint32_t barrier);
  [[nodiscard]] std::uint64_t fingerprint(std::uint64_t epoch,
                                          std::uint32_t barrier);

  /// Delivers one pooled frame to one receiver, enforcing the delivery
  /// obligations (I-V2/I-V4/I-V5) and updating the world evidence log.
  void deliver_to(const PoolMsg& msg, std::uint32_t receiver);
  void note_evidence(std::uint32_t receiver, const PoolMsg& msg);
  /// Delivers `batch[index]` for each index in `order` to `receiver`,
  /// permuted by a kOrder choice when the batch is small enough.
  void deliver_batch(const std::vector<PoolMsg>& batch,
                     std::vector<std::uint32_t> indices,
                     std::uint32_t receiver);

  /// Forced-aware choice wrapper: trivial and probe-phase choices resolve
  /// to branch 0 without consulting the sink.
  std::uint32_t choose(std::uint32_t count, ChoiceKind kind, std::uint64_t a,
                       std::uint64_t b);

  /// Records the first violation; later ones are ignored.
  void flag(const char* invariant, std::string detail);

  /// First quiescence defect in the current configuration, or nullopt when
  /// the cluster is quiescent.
  [[nodiscard]] std::optional<std::string> quiescence_defect() const;

  CheckOptions opts_;
  ChoiceSink& sink_;
  SimTime phi_;  ///< execution period, 7 * t_hop
  FdsConfig config_;
  FdsHooks hooks_;
  CheckTimerService timers_;
  /// Backing store for the barrier world's Node views (slot i == NID i).
  NodeStore store_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<MembershipView>> views_;
  std::vector<std::unique_ptr<CheckTransport>> transports_;
  std::vector<std::unique_ptr<FdsAgent>> agents_;

  std::vector<PoolMsg> pool_;
  std::vector<FaultEvent> fault_events_;
  /// World-side recovery counts; the oracle for I-V4.
  std::vector<std::uint32_t> recover_count_;
  /// evid_[receiver][sender] = (epoch at delivery) + 1 of the last
  /// evidence-of-life frame delivered receiver <- sender; 0 = never. The
  /// oracle for I-V3. Stamped only for frame kinds the detection rules
  /// actually consume (see note_evidence).
  std::vector<std::vector<std::uint64_t>> evid_;
  /// sched_upd_[receiver] = (epoch at delivery) + 1 of the last scheduled
  /// update delivered to receiver — the deputy-rule side of the I-V3
  /// oracle (a deputy that heard its CH's update must not declare it).
  std::vector<std::uint64_t> sched_upd_;

  std::uint32_t drops_left_ = 0;
  std::uint32_t crashes_left_ = 0;
  std::uint32_t recoveries_left_ = 0;

  /// Quiescence probe: resolve every choice to its benign default and stop
  /// fingerprinting (probe states have a different — empty — future choice
  /// tree, so recording them would make pruning unsound).
  bool forced_ = false;
  bool pruned_ = false;
  std::optional<Violation> violation_;
  std::uint64_t cur_epoch_ = 0;
  std::uint32_t cur_barrier_ = 0;
};

}  // namespace cfds::check
