#include "check/world.h"

#include <algorithm>
#include <string>
#include <utility>

#include "check/fingerprint.h"
#include "common/expect.h"
#include "common/geometry.h"
#include "fds/messages.h"
#include "radio/payload.h"
#include "transport/reception.h"

namespace cfds::check {
namespace {

[[nodiscard]] bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

/// n! for the tiny batch sizes the permutation choice covers.
[[nodiscard]] std::uint32_t factorial(std::uint32_t n) {
  std::uint32_t f = 1;
  for (std::uint32_t i = 2; i <= n; ++i) f *= i;
  return f;
}

/// The rank-th permutation of `items` in lexicographic order (Lehmer code):
/// rank 0 is the identity, matching the canonical no-choice order.
[[nodiscard]] std::vector<std::uint32_t> nth_permutation(
    std::vector<std::uint32_t> items, std::uint32_t rank) {
  std::vector<std::uint32_t> out;
  out.reserve(items.size());
  for (std::uint32_t k = std::uint32_t(items.size()); k > 0; --k) {
    const std::uint32_t f = factorial(k - 1);
    const std::uint32_t pick = rank / f;
    rank %= f;
    out.push_back(items[pick]);
    items.erase(items.begin() + pick);
  }
  return out;
}

[[nodiscard]] std::string nid(NodeId id) { return std::to_string(id.value()); }

}  // namespace

const char* choice_kind_name(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kFault: return "fault";
    case ChoiceKind::kDrop: return "drop";
    case ChoiceKind::kOrder: return "order";
  }
  return "?";
}

void CheckTransport::send(PayloadPtr payload, NodeId intended) {
  if (!powered()) return;
  world_.pool_.push_back(
      {node_.id(), intended, std::move(payload), world_.timers_.now()});
}

void CheckTransport::deliver(const Reception& reception) {
  if (!powered()) return;
  for (const HandlerRef& h : handlers_) h.fn(h.ctx, reception);
}

std::vector<std::int64_t> CheckTimerService::pending_deltas() {
  std::erase_if(tracked_, [](const Tracked& t) { return !t.handle.pending(); });
  std::vector<std::int64_t> out;
  out.reserve(tracked_.size());
  const SimTime at = sim_.now();
  for (const Tracked& t : tracked_) out.push_back((t.when - at).as_micros());
  std::sort(out.begin(), out.end());
  return out;
}

CheckWorld::CheckWorld(const CheckOptions& opts, ChoiceSink& sink)
    : opts_(opts), sink_(sink), phi_(opts.t_hop * 7) {
  CFDS_EXPECT(opts_.nodes >= 2 && opts_.nodes <= 16,
              "check world population out of range");
  CFDS_EXPECT(opts_.deputies >= 1 && opts_.deputies < opts_.nodes,
              "deputy count out of range");
  CFDS_EXPECT(opts_.perm_max >= 1 && opts_.perm_max <= 5,
              "perm_max out of range (permutation ranks explode)");

  config_.heartbeat_interval = phi_;
  config_.rule_mode = RuleMode::kFull;
  config_.recovery_enabled = true;
  config_.adaptive_enabled = opts_.adaptive;
  config_.checkpoint_enabled = opts_.checkpoint;
  config_.checkpoint_interval_epochs = opts_.checkpoint_interval;
  config_.validate(opts_.t_hop);

  // I-V3: a decider must not declare a node whose rule-countable evidence
  // of life was delivered to it in the very epoch it decided over. For the
  // deputy rule the CH's scheduled update is itself such evidence.
  hooks_.on_detection = [this](NodeId decider, std::uint64_t epoch,
                               const std::vector<NodeId>& failed,
                               bool by_deputy) {
    if (decider.value() >= opts_.nodes) return;
    const bool heard_update =
        by_deputy && sched_upd_[decider.value()] == epoch + 1;
    for (NodeId f : failed) {
      if (f.value() >= opts_.nodes) continue;
      if (evid_[decider.value()][f.value()] == epoch + 1 || heard_update) {
        flag("I-V3", "node " + nid(decider) + " declared node " + nid(f) +
                         " failed in epoch " + std::to_string(epoch) +
                         " despite evidence delivered that epoch" +
                         (by_deputy ? " (deputy rule)" : ""));
      }
    }
  };

  const std::uint32_t n = opts_.nodes;
  recover_count_.assign(n, 0);
  evid_.assign(n, std::vector<std::uint64_t>(n, 0));
  sched_upd_.assign(n, 0);

  // The pre-formed cluster every run starts from: CH = NID 0, everyone
  // else a member, the lowest member NIDs ranked as deputies.
  ClusterView cluster;
  cluster.id = ClusterId{0};
  cluster.clusterhead = NodeId{0};
  for (std::uint32_t i = 1; i < n; ++i) cluster.members.push_back(NodeId{i});
  for (std::uint32_t i = 1; i <= opts_.deputies; ++i) {
    cluster.deputies.push_back(NodeId{i});
  }

  nodes_.reserve(n);
  views_.reserve(n);
  transports_.reserve(n);
  agents_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(store_, NodeId{i}, Vec2{},
                                            /*initial_energy_uj=*/1e9));
    nodes_.back()->set_marked(true);
    views_.push_back(std::make_unique<MembershipView>(NodeId{i}));
    views_.back()->set_cluster(cluster);
    transports_.push_back(std::make_unique<CheckTransport>(*this, *nodes_[i]));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    agents_.push_back(std::make_unique<FdsAgent>(*nodes_[i], *views_[i],
                                                 *transports_[i], timers_,
                                                 opts_.t_hop, config_, hooks_));
  }

  drops_left_ = opts_.max_drops;
  crashes_left_ = opts_.max_crashes;
  recoveries_left_ = opts_.max_recoveries;
}

std::optional<Violation> CheckWorld::run() {
  for (std::uint64_t e = 0; e < opts_.epochs; ++e) {
    if (!run_epoch(e)) return violation_;  // nullopt when pruned
  }
  if (opts_.quiesce_max == 0) return violation_;

  // Quiescence probe: grant the cluster forced-benign executions and
  // require it to reach a self-consistent steady state.
  forced_ = true;
  if (!quiescence_defect()) return violation_;
  for (std::uint32_t q = 0; q < opts_.quiesce_max; ++q) {
    if (!run_epoch(opts_.epochs + q)) return violation_;
    if (!quiescence_defect()) return violation_;
  }
  std::optional<std::string> defect = quiescence_defect();
  CFDS_EXPECT(defect.has_value(), "probe loop exited without a defect");
  cur_epoch_ = opts_.epochs + opts_.quiesce_max - 1;
  cur_barrier_ = 5;
  flag("quiescence", "not quiescent after " +
                         std::to_string(opts_.quiesce_max) +
                         " benign executions: " + *defect);
  return violation_;
}

bool CheckWorld::run_epoch(std::uint64_t epoch) {
  for (std::uint32_t k = 0; k < 6; ++k) {
    if (!crossing(epoch, k)) return false;
  }
  return true;
}

bool CheckWorld::crossing(std::uint64_t epoch, std::uint32_t barrier) {
  cur_epoch_ = epoch;
  cur_barrier_ = barrier;
  // Advance the clock to the barrier; agent timers armed earlier (deputy
  // rank timers, peer-forward waits) fire here and park their frames in
  // the pool.
  const SimTime at =
      phi_ * std::int64_t(epoch) + opts_.t_hop * std::int64_t(barrier);
  timers_.sim().run_until(at);
  if (violation_) return false;  // a timer-driven detection tripped I-V3
  resolve_pool(epoch, barrier);
  if (violation_) return false;
  fault_point(epoch, barrier);
  if (violation_) return false;
  round_actions(epoch, barrier);
  if (violation_) return false;
  check_invariants(epoch, barrier);
  if (violation_) return false;
  if (!forced_ && !sink_.note_state(fingerprint(epoch, barrier))) {
    pruned_ = true;
    return false;
  }
  return true;
}

void CheckWorld::resolve_pool(std::uint64_t epoch, std::uint32_t barrier) {
  (void)epoch;
  (void)barrier;
  std::vector<PoolMsg> batch;
  batch.swap(pool_);  // reactions to deliveries pool for the NEXT barrier
  if (batch.empty()) return;

  if (opts_.reduction) {
    // Receiver-major resolution: each alive receiver's batch is dropped
    // and ordered independently; cross-receiver interleavings are never
    // enumerated (receivers share no state between crossings).
    for (std::uint32_t r = 0; r < opts_.nodes; ++r) {
      if (!transports_[r]->powered()) continue;
      std::vector<std::uint32_t> deliver;
      for (std::uint32_t i = 0; i < std::uint32_t(batch.size()); ++i) {
        if (batch[i].sender.value() == r) continue;  // own broadcast
        if (drops_left_ > 0 && choose(2, ChoiceKind::kDrop, i, r) == 1) {
          --drops_left_;
          continue;
        }
        deliver.push_back(i);
      }
      deliver_batch(batch, std::move(deliver), r);
      if (violation_) return;
    }
    return;
  }

  // Unreduced: one global interleaving over (frame, receiver) pairs. Only
  // the DPOR soundness test runs this; the state space is much larger.
  struct Pair {
    std::uint32_t msg;
    std::uint32_t receiver;
  };
  std::vector<Pair> pairs;
  for (std::uint32_t i = 0; i < std::uint32_t(batch.size()); ++i) {
    for (std::uint32_t r = 0; r < opts_.nodes; ++r) {
      if (batch[i].sender.value() == r || !transports_[r]->powered()) continue;
      if (drops_left_ > 0 && choose(2, ChoiceKind::kDrop, i, r) == 1) {
        --drops_left_;
        continue;
      }
      pairs.push_back({i, r});
    }
  }
  std::vector<std::uint32_t> order(pairs.size());
  for (std::uint32_t i = 0; i < std::uint32_t(order.size()); ++i) order[i] = i;
  if (pairs.size() >= 2 && pairs.size() <= opts_.perm_max) {
    const std::uint32_t rank =
        choose(factorial(std::uint32_t(pairs.size())), ChoiceKind::kOrder,
               /*a=*/~std::uint64_t{0}, pairs.size());
    order = nth_permutation(std::move(order), rank);
  }
  for (std::uint32_t idx : order) {
    deliver_to(batch[pairs[idx].msg], pairs[idx].receiver);
    if (violation_) return;
  }
}

void CheckWorld::deliver_batch(const std::vector<PoolMsg>& batch,
                               std::vector<std::uint32_t> indices,
                               std::uint32_t receiver) {
  if (indices.size() >= 2 && indices.size() <= opts_.perm_max) {
    const std::uint32_t rank =
        choose(factorial(std::uint32_t(indices.size())), ChoiceKind::kOrder,
               receiver, indices.size());
    indices = nth_permutation(std::move(indices), rank);
  }
  for (std::uint32_t i : indices) {
    deliver_to(batch[i], receiver);
    if (violation_) return;
  }
}

void CheckWorld::deliver_to(const PoolMsg& msg, std::uint32_t receiver) {
  CheckTransport& transport = *transports_[receiver];
  if (!transport.powered()) return;  // crashed between resolution and here
  FdsAgent& agent = *agents_[receiver];

  // I-V4: a heartbeat on the air carries exactly the incarnation the world
  // has granted its sender (recover() bumps both).
  if (msg.payload->tag() == PayloadKind::kHeartbeat) {
    const auto* hb = payload_cast<HeartbeatPayload>(msg.payload);
    if (hb != nullptr && hb->incarnation != recover_count_[msg.sender.value()]) {
      flag("I-V4", "heartbeat from node " + nid(msg.sender) +
                       " carries incarnation " +
                       std::to_string(hb->incarnation) + ", world count is " +
                       std::to_string(recover_count_[msg.sender.value()]));
    }
  }

  // I-V2 precondition: an acting head about to hear a direct same-cluster
  // update from a lower-NID rival must lose the arbitration.
  bool rival_obligation = false;
  if (const auto* up = payload_cast<HealthUpdatePayload>(msg.payload)) {
    rival_obligation = config_.recovery_enabled &&
                       agent.view().is_clusterhead() &&
                       up->cluster == agent.view().cluster()->id &&
                       up->sender != agent.id() &&
                       up->sender.value() < agent.id().value();
  }

  // I-V5 precondition: snapshot the stored checkpoint before delivery.
  std::shared_ptr<const CheckpointPayload> before;
  if (msg.payload->tag() == PayloadKind::kCheckpoint) {
    before = agent.stable_checkpoint();
  }

  transport.deliver(Reception{msg.sender, msg.intended, msg.payload,
                              msg.sent_at});

  if (rival_obligation && agent.view().is_clusterhead()) {
    flag("I-V2", "node " + nid(agent.id()) +
                     " still acting head after a direct update from rival " +
                     "head with lower NID");
  }
  if (before) {
    const std::shared_ptr<const CheckpointPayload>& after =
        agent.stable_checkpoint();
    if (after && (after->epoch < before->epoch ||
                  (after->epoch == before->epoch && after->seq < before->seq))) {
      flag("I-V5", "node " + nid(agent.id()) + " regressed its checkpoint (" +
                       std::to_string(before->epoch) + "," +
                       std::to_string(before->seq) + ") -> (" +
                       std::to_string(after->epoch) + "," +
                       std::to_string(after->seq) + ")");
    }
  }

  note_evidence(receiver, msg);
}

void CheckWorld::note_evidence(std::uint32_t receiver, const PoolMsg& msg) {
  // Stamps are (epoch at delivery) + 1 so 0 can mean "never". Frames
  // delivered at the next execution's first barrier land before
  // begin_epoch and are stamped with the old epoch — correctly: that
  // epoch's decisions are already made, and the receiving agent's own
  // evidence buffer discards them at the boundary too.
  //
  // Stamps mirror EXACTLY the evidence the protocol's rules consume
  // (agent.cpp): heartbeats and notices feed note_alive; a digest vouches
  // for its sender and everyone it reports hearing, but only to an
  // affiliated CH/deputy of the digest's cluster; a scheduled update
  // vouches for the CH to the deputy rule (sched_upd_). Frames the rules
  // ignore — requests, acks, checkpoints — must NOT stamp: an ack sent
  // just before its sender crashes is still in flight when the crash
  // lands, and stamping it would mark the genuinely dead sender as
  // "evidence delivered this epoch", flagging a CORRECT detection.
  const FdsAgent& agent = *agents_[receiver];
  const std::uint64_t stamp = agent.current_epoch() + 1;
  switch (msg.payload->tag()) {
    case PayloadKind::kHeartbeat:
    case PayloadKind::kLeaveNotice:
    case PayloadKind::kSleepNotice:
      evid_[receiver][msg.sender.value()] = stamp;
      break;
    case PayloadKind::kDigest: {
      const auto* digest = payload_cast<DigestPayload>(msg.payload);
      const ClusterRef c = agent.view().cluster();
      if (digest == nullptr || !c || digest->cluster != c->id ||
          (!agent.view().is_clusterhead() && !agent.view().is_deputy())) {
        break;
      }
      evid_[receiver][msg.sender.value()] = stamp;
      for (NodeId heard : digest->heard) {
        if (heard.value() < opts_.nodes) evid_[receiver][heard.value()] = stamp;
      }
      break;
    }
    case PayloadKind::kHealthUpdate:
    case PayloadKind::kUpdateForward: {
      std::shared_ptr<const HealthUpdatePayload> up;
      if (const auto* fwd = payload_cast<UpdateForwardPayload>(msg.payload)) {
        if (fwd->target != agent.id()) break;
        up = fwd->update;
      } else {
        up = payload_cast_shared<HealthUpdatePayload>(msg.payload);
      }
      const ClusterRef c = agent.view().cluster();
      // Mirrors handle_update's `scheduled`: this is the update the deputy
      // rule early-returns on, so hearing it forbids declaring the CH.
      if (up && c && up->cluster == c->id &&
          up->epoch == agent.current_epoch() &&
          (up->sender == c->clusterhead || up->takeover)) {
        sched_upd_[receiver] = stamp;
      }
      break;
    }
    default:
      break;
  }
}

void CheckWorld::fault_point(std::uint64_t epoch, std::uint32_t barrier) {
  // Crash menus open where they hit distinct protocol windows: before the
  // execution (barrier 0: silent all epoch), between digests and the
  // update (barrier 2: CH dies without sending), and after update
  // delivery (barrier 3: CH dies having spoken). Recoveries only at the
  // execution boundary.
  if (barrier != 0 && barrier != 2 && barrier != 3) return;
  struct Option {
    bool recover;
    std::uint32_t idx;
  };
  std::vector<Option> menu;
  if (barrier == 0 && recoveries_left_ > 0) {
    for (std::uint32_t i = 0; i < opts_.nodes; ++i) {
      if (!nodes_[i]->alive()) menu.push_back({true, i});
    }
  }
  if (crashes_left_ > 0) {
    for (std::uint32_t i = 0; i < opts_.nodes; ++i) {
      if (nodes_[i]->alive()) menu.push_back({false, i});
    }
  }
  if (menu.empty()) return;
  const std::uint32_t c =
      choose(std::uint32_t(menu.size()) + 1, ChoiceKind::kFault,
             epoch * 6 + barrier, 0);
  if (c == 0) return;
  const Option& op = menu[c - 1];
  if (op.recover) {
    nodes_[op.idx]->recover();
    ++recover_count_[op.idx];
    --recoveries_left_;
  } else {
    nodes_[op.idx]->crash();
    --crashes_left_;
  }
  fault_events_.push_back(
      {op.recover, NodeId{op.idx}, timers_.now().as_micros()});
}

void CheckWorld::round_actions(std::uint64_t epoch, std::uint32_t barrier) {
  // Ascending-NID order, matching FdsService's per-agent scheduling (ties
  // at one instant execute in schedule order). Agents guard on their own
  // liveness internally.
  switch (barrier) {
    case 0:
      for (auto& a : agents_) a->begin_epoch(epoch);
      for (auto& a : agents_) a->round1_heartbeat();
      break;
    case 1:
      for (auto& a : agents_) a->round2_digest();
      break;
    case 2:
      for (auto& a : agents_) a->round3_update();
      break;
    case 3:
      for (auto& a : agents_) a->deputy_check();
      break;
    case 4:
      for (auto& a : agents_) a->completeness_check();
      break;
    default:
      break;  // barrier 5 only resolves deliveries (requests, forwards)
  }
}

void CheckWorld::check_invariants(std::uint64_t epoch, std::uint32_t barrier) {
  (void)epoch;
  (void)barrier;
  for (std::uint32_t i = 0; i < opts_.nodes; ++i) {
    if (!nodes_[i]->alive()) continue;
    const FdsAgent& a = *agents_[i];
    const std::string who = "node " + std::to_string(i);

    if (a.log().knows(NodeId{i})) {
      flag("I-V7", who + " lists itself in its own failure log");
    }

    const ClusterRef cl = a.view().cluster();
    if (!cl) {
      if (nodes_[i]->marked()) flag("I-V1", who + ": marked but unaffiliated");
      continue;
    }
    const ClusterView& c = *cl;
    if (a.view().is_clusterhead() && !nodes_[i]->marked()) {
      flag("I-V1", who + ": acting clusterhead but unmarked");
    }
    if (contains(c.members, c.clusterhead)) {
      flag("I-V1", who + ": clusterhead listed as a member");
    }
    if (contains(c.deputies, c.clusterhead)) {
      flag("I-V1", who + ": clusterhead listed as a deputy");
    }
    for (NodeId d : c.deputies) {
      if (!contains(c.members, d)) {
        flag("I-V1", who + ": deputy " + nid(d) + " is not a member");
      }
    }
    for (std::size_t x = 0; x < c.members.size(); ++x) {
      for (std::size_t y = x + 1; y < c.members.size(); ++y) {
        if (c.members[x] == c.members[y]) {
          flag("I-V1", who + ": duplicate member " + nid(c.members[x]));
        }
      }
    }
    if (c.clusterhead != NodeId{i} && !contains(c.members, NodeId{i})) {
      flag("I-V1", who + ": affiliated but missing from its own roster");
    }
    if (a.view().is_clusterhead()) {
      for (NodeId m : c.members) {
        if (a.log().knows(m)) {
          flag("I-V6", who + ": expects member " + nid(m) +
                           " it also records as failed");
        }
      }
    }
  }
}

std::uint64_t CheckWorld::fingerprint(std::uint64_t epoch,
                                      std::uint32_t barrier) {
  Hasher h;
  h.mix(epoch);
  h.mix(barrier);
  // Remaining budgets are future-behaviour state: equal protocol states
  // with different budgets have different choice trees ahead.
  h.mix(drops_left_);
  h.mix(crashes_left_);
  h.mix(recoveries_left_);
  for (std::uint32_t i = 0; i < opts_.nodes; ++i) {
    h.mix(recover_count_[i]);
    StateFingerprinter::mix_agent(h, *agents_[i]);
  }
  // In-flight pool, in send order (the canonical delivery order).
  h.mix(pool_.size());
  for (const PoolMsg& m : pool_) {
    h.mix(m.sender.value());
    h.mix(m.intended.value());
    StateFingerprinter::mix_payload(h, *m.payload);
  }
  // Pending timer deadlines relative to now. Equal-deadline firing order
  // is unobservable here: same-time timers either belong to different
  // nodes or only emit frames, and frame order is canonicalized by the
  // pool.
  const std::vector<std::int64_t> deltas = timers_.pending_deltas();
  h.mix(deltas.size());
  for (std::int64_t d : deltas) h.mix(std::uint64_t(d));
  // World evidence entries matter only while current (I-V3 compares by
  // equality with the decider's epoch); stale entries are normalized out
  // so equal protocol states merge.
  for (std::uint32_t r = 0; r < opts_.nodes; ++r) {
    const std::uint64_t stamp = agents_[r]->current_epoch() + 1;
    for (std::uint32_t s = 0; s < opts_.nodes; ++s) {
      h.mix(evid_[r][s] == stamp ? 1U : 0U);
    }
    h.mix(sched_upd_[r] == stamp ? 1U : 0U);
  }
  return h.digest();
}

std::uint32_t CheckWorld::choose(std::uint32_t count, ChoiceKind kind,
                                 std::uint64_t a, std::uint64_t b) {
  if (count <= 1 || forced_) return 0;  // 0 is always the benign default
  const std::uint32_t c = sink_.choose(count, kind, a, b);
  CFDS_EXPECT(c < count, "ChoiceSink returned an out-of-range branch");
  return c;
}

void CheckWorld::flag(const char* invariant, std::string detail) {
  if (violation_) return;  // first violation wins; the rest are downstream
  violation_ = Violation{invariant, std::move(detail), cur_epoch_, cur_barrier_};
}

std::optional<std::string> CheckWorld::quiescence_defect() const {
  std::vector<std::uint32_t> alive;
  for (std::uint32_t i = 0; i < opts_.nodes; ++i) {
    if (nodes_[i]->alive()) alive.push_back(i);
  }
  if (alive.empty()) return std::nullopt;  // vacuously quiescent

  std::vector<std::uint32_t> heads;
  for (std::uint32_t i : alive) {
    if (agents_[i]->view().is_clusterhead()) heads.push_back(i);
  }
  if (heads.empty()) {
    // Full dissolution is a legitimate FDS-layer terminal state: when the
    // CH crashes and recovers amnesiac (no checkpoint), the deputies keep
    // hearing it alive — so never take over — and every member's
    // re-affiliation patience eventually reverts it to the unmarked,
    // unaffiliated state that hands the cluster back to the formation
    // protocol (which checked worlds exclude). Quiescent only if the
    // dissolution is COMPLETE: a node still marked or affiliated while no
    // head exists is a zombie.
    for (std::uint32_t i : alive) {
      if (nodes_[i]->marked()) {
        return "no acting clusterhead but node " + std::to_string(i) +
               " is still marked";
      }
      if (agents_[i]->view().affiliated()) {
        return "no acting clusterhead but node " + std::to_string(i) +
               " is still affiliated";
      }
    }
    return std::nullopt;
  }
  if (heads.size() != 1) {
    return std::to_string(heads.size()) + " acting clusterheads among " +
           std::to_string(alive.size()) + " alive nodes";
  }
  const FdsAgent& head = *agents_[heads.front()];
  const ClusterView& c = *head.view().cluster();

  for (std::uint32_t i : alive) {
    const std::string who = "node " + std::to_string(i);
    if (!nodes_[i]->marked()) return who + " unmarked";
    if (!agents_[i]->view().affiliated()) return who + " unaffiliated";
    if (i != heads.front() && !contains(c.members, NodeId{i})) {
      return who + " missing from the head's roster";
    }
    for (std::uint32_t j : alive) {
      if (agents_[i]->log().knows(NodeId{j})) {
        return who + " still records alive node " + std::to_string(j) +
               " as failed";
      }
    }
  }
  for (std::uint32_t i = 0; i < opts_.nodes; ++i) {
    if (nodes_[i]->alive()) continue;
    if (!head.log().knows(NodeId{i})) {
      return "dead node " + std::to_string(i) + " missing from the head's log";
    }
    for (std::uint32_t j : alive) {
      const ClusterRef jc = agents_[j]->view().cluster();
      if (jc && (contains(jc->members, NodeId{i}) ||
                 contains(jc->deputies, NodeId{i}))) {
        return "dead node " + std::to_string(i) + " still in node " +
               std::to_string(j) + "'s roster";
      }
    }
  }
  return std::nullopt;
}

}  // namespace cfds::check
