// Counterexample traces: JSONL serialization for cfds_check.
//
// A trace file pins everything needed to re-execute a violating schedule
// byte for byte:
//
//   {"cfds_check":1, ...options..., "mutation":"..."}     header
//   {"choice":{"kind":"drop","count":2,"chosen":1,...}}   one per choice
//   {"violation":{"invariant":"I-V4","epoch":1,...}}      when found
//   {"fault_plan":1,"seed":0,"events":2}                  FaultPlan header
//   {"fault":"crash","node":0,"at_us":300000}             one per fault
//
// The tail (from the fault_plan header on) is exactly the FaultPlan JSONL
// schema (src/fault/fault_plan.cpp), so `cfds_check --plan` can split it
// out for bench_chaos --replay-plan, which re-injects the same crashes and
// recoveries through the stochastic stack. The choice lines are the
// event-order pin: `cfds_check --replay` feeds them back through a
// ReplaySink, reproducing the violation deterministically.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/world.h"

namespace cfds::check {

/// Everything a trace file round-trips.
struct CheckTrace {
  CheckOptions options;
  std::string mutation;  ///< build's CFDS_MUTATION_NAME; "" = clean tree
  std::vector<ChoiceRec> choices;
  std::optional<Violation> violation;
  std::vector<FaultEvent> fault_events;
};

/// Serializes the full trace (header, choices, violation, fault plan).
[[nodiscard]] std::string to_jsonl(const CheckTrace& trace);

/// Just the FaultPlan-schema tail, loadable by fault::FaultPlan::load.
[[nodiscard]] std::string fault_plan_jsonl(const CheckTrace& trace);

/// Parses to_jsonl() output. Returns nullopt with *error set on malformed
/// input; unknown keys are ignored, unknown line shapes are errors.
[[nodiscard]] std::optional<CheckTrace> parse_jsonl(const std::string& text,
                                                    std::string* error);

/// Reads and parses a trace file.
[[nodiscard]] std::optional<CheckTrace> load_trace(const std::string& path,
                                                   std::string* error);

}  // namespace cfds::check
