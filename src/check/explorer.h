// Exhaustive schedule enumeration over CheckWorld.
//
// The explorer is a depth-first odometer over choice sequences. Worlds are
// not resettable (agents hold references into nodes/views/transports), so
// instead of backtracking in place the explorer re-executes: each run
// replays a forced prefix of choices, then extends it with branch 0 at
// every new choice point. When the run ends, the odometer finds the last
// recorded choice with an untaken sibling, truncates there, increments,
// and replays. Replay is cheap relative to the state space because the
// visited-fingerprint set prunes any run that leaves the prefix into an
// already-explored state: budgets are part of the fingerprint, so two
// visits to the same fingerprint have identical future choice trees, and
// the first visit's subtree is fully enumerated by prefix extension.
//
// Pruning is suspended while a run is still consuming its forced prefix
// (those states were necessarily visited by the parent run; pruning there
// would cut off the sibling branches the odometer is trying to reach).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/world.h"

namespace cfds::check {

/// Exploration budgets. Exceeding either stops the search with
/// `budget_exhausted` set; everything enumerated so far has been checked.
struct ExploreLimits {
  std::uint64_t max_states = 1'000'000;  ///< unique fingerprints
  std::uint64_t max_runs = 10'000'000;   ///< schedules executed
};

/// A violating schedule: the violation, the full choice sequence that
/// reaches it, and the crash/recover events that sequence injected.
struct Counterexample {
  Violation violation;
  std::vector<ChoiceRec> choices;
  std::vector<FaultEvent> fault_events;
};

struct ExploreResult {
  std::uint64_t runs = 0;           ///< schedules executed (incl. pruned)
  std::uint64_t pruned_runs = 0;    ///< runs cut short at a visited state
  std::uint64_t unique_states = 0;  ///< distinct crossing fingerprints
  bool budget_exhausted = false;
  std::optional<Counterexample> counterexample;
};

/// Enumerates every choice sequence of worlds built from `opts`, within
/// `limits`. Stops at the first violation.
[[nodiscard]] ExploreResult explore(const CheckOptions& opts,
                                    const ExploreLimits& limits);

/// One pinned re-execution of a recorded choice sequence.
struct ReplayOutcome {
  std::optional<Violation> violation;
  std::vector<FaultEvent> fault_events;
  /// Non-empty when the trace did not apply cleanly (a choice point's
  /// branching factor differed from the recording — options or build
  /// mismatch), or when the trace ran out before any violation.
  std::string error;
};

/// Replays `choices` against a fresh world built from `opts`.
[[nodiscard]] ReplayOutcome replay(const CheckOptions& opts,
                                   const std::vector<ChoiceRec>& choices);

}  // namespace cfds::check
