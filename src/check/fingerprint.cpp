// Canonical serialization of protocol state (see fingerprint.h for the
// contract). This TU is the single source of truth the
// `state-outside-fingerprint` lint rule checks member coverage against:
// reference every member of a fingerprinted class here, in code or in an
// FP-EXEMPT comment.

#include "check/fingerprint.h"

#include <cstdint>
#include <vector>

#include "cluster/membership.h"
#include "cluster/roles.h"
#include "common/expect.h"
#include "fds/agent.h"
#include "fds/detector.h"
#include "fds/failure_log.h"
#include "fds/link_quality.h"
#include "net/node.h"
#include "radio/payload.h"
#include "transport/wire.h"

namespace cfds::check {

namespace {

// Field tags keep adjacent empty sequences from canceling: every section
// of the serialization opens with a distinct constant.
enum Tag : std::uint64_t {
  kTagNode = 0x01,
  kTagView = 0x02,
  kTagLog = 0x03,
  kTagCounters = 0x04,
  kTagRoundState = 0x05,
  kTagEvidence = 0x06,
  kTagSeen = 0x07,
  kTagForwards = 0x08,
  kTagEstimator = 0x09,
  kTagCheckpoint = 0x0a,
  kTagCluster = 0x0b,
  kTagPayload = 0x0c,
  kTagAbsent = 0x0d,
};

void mix_ids(Hasher& h, const std::vector<NodeId>& ids) {
  h.mix(ids.size());
  for (NodeId n : ids) h.mix(n.value());
}

template <typename Set>
void mix_id_set(Hasher& h, const Set& set) {
  h.mix(set.size());
  for (NodeId n : set) h.mix(n.value());
}

}  // namespace

void StateFingerprinter::mix_cluster(Hasher& h, const ClusterView& view) {
  h.mix(kTagCluster);
  h.mix(view.id.value());
  h.mix(view.clusterhead.value());
  mix_ids(h, view.members);
  mix_ids(h, view.deputies);
  h.mix(view.links.size());
  for (const GatewayLink& link : view.links) {
    h.mix(link.neighbor_cluster.value());
    h.mix(link.neighbor_clusterhead.value());
    h.mix(link.gateway.value());
    mix_ids(h, link.backups);
  }
}

void StateFingerprinter::mix_membership(Hasher& h, const MembershipView& view) {
  // MembershipView: self_ is mixed via self(); cluster_ via cluster().
  h.mix(kTagView);
  h.mix(view.self().value());
  if (view.cluster().has_value()) {
    mix_cluster(h, *view.cluster());
  } else {
    h.mix(kTagAbsent);
  }
}

void StateFingerprinter::mix_failure_log(Hasher& h, const FailureLog& log) {
  // FailureLog: entries_ is mixed through known_failed()/entry().
  // FP-EXEMPT(Entry::learned_at) / FP-EXEMPT(Entry::epoch): bookkeeping of
  // WHEN the news arrived; no protocol decision reads them back (reports
  // and refutations compare NIDs and incarnations, never log timestamps).
  h.mix(kTagLog);
  const std::vector<NodeId> failed = log.known_failed();
  h.mix(failed.size());
  for (NodeId n : failed) {
    h.mix(n.value());
    const FailureLog::Entry* entry = log.entry(n);
    CFDS_EXPECT(entry != nullptr, "known_failed entry vanished");
    h.mix(entry->reported_by.value());
  }
}

void StateFingerprinter::mix_evidence(Hasher& h, const RoundEvidence& ev) {
  h.mix(kTagEvidence);
  mix_id_set(h, ev.heartbeats);
  // RoundEvidence's slot table: digest_index_ is mixed sender-by-sender in
  // ascending order with each sender's resolved set, which covers
  // digest_slots_ too. FP-EXEMPT(free_slots_) / FP-EXEMPT(used_) /
  // FP-EXEMPT(slot_watermark_): slot recycling bookkeeping — which physical
  // slot holds a sender's set (and how much capacity it carries) is
  // invisible to the protocol (only the sender -> set mapping is read).
  h.mix(ev.digest_index().size());
  for (const auto& [sender, slot] : ev.digest_index()) {
    h.mix(sender.value());
    mix_id_set(h, ev.digest_slot(slot));
  }
  h.mix(std::uint64_t{ev.ch_update_heard});
}

void StateFingerprinter::mix_estimator(Hasher& h,
                                       const LinkQualityEstimator& est) {
  h.mix(kTagEstimator);
  h.mix(est.links_.size());
  for (const auto& [member, link] : est.links_) {
    h.mix(member.value());
    h.mix(link.loss_pm);
    h.mix(link.run_loss_pm);
    h.mix(link.consecutive_missed);
  }
}

void StateFingerprinter::mix_payload(Hasher& h, const Payload& payload) {
  h.mix(kTagPayload);
  std::vector<std::uint8_t> bytes;
  const bool encoded =
      wire::encode_frame(NodeId::invalid(), NodeId::invalid(), payload, &bytes);
  CFDS_EXPECT(encoded, "fingerprinted payload has no wire encoding");
  h.mix_bytes(bytes.data(), bytes.size());
}

void StateFingerprinter::mix_agent(Hasher& h, const FdsAgent& a) {
  // --- Identity and node liveness ---------------------------------------
  // FP-EXEMPT(transport_) / FP-EXEMPT(timers_): infrastructure references;
  // their state is the harness's, not the agent's (pending timers are
  // mixed by the world via CheckTimerService). The hook block reference is
  // carried in the lint baseline (docs/MODEL_CHECKING.md) as the worked
  // example of the rule's burndown workflow.
  // FP-EXEMPT(t_hop_) / FP-EXEMPT(config_): run constants, identical in
  // every state of one exploration.
  h.mix(kTagNode);
  h.mix(a.node_.id().value());
  h.mix(std::uint64_t{a.node_.alive()});
  h.mix(std::uint64_t{a.node_.marked()});
  h.mix(a.node_.incarnation());
  // FP-EXEMPT(Node::energy): CheckTransport bypasses the Radio, so its
  // traffic counters stay zero and remaining energy is a run constant
  // (this also pins peer_waiting_period to a pure function of the NID).

  mix_membership(h, a.view_);
  mix_failure_log(h, a.log_);

  // --- Epoch counters and per-epoch collections -------------------------
  h.mix(kTagCounters);
  h.mix(a.epoch_);
  h.mix(a.report_counter_);
  h.mix(a.missed_updates_);
  h.mix(std::uint64_t{a.left_});
  h.mix(a.sleep_exemptions_.size());
  for (const auto& [node, epochs] : a.sleep_exemptions_) {
    h.mix(node.value());
    h.mix(epochs);
  }
  mix_id_set(h, a.leaves_heard_);
  h.mix(a.notices_heard_.size());
  for (const auto& [node, epochs] : a.notices_heard_) {
    h.mix(node.value());
    h.mix(epochs);
  }
  // FP-EXEMPT(heartbeats_sent_) FP-EXEMPT(unmarked_sent_)
  // FP-EXEMPT(last_unmarked_epoch_) FP-EXEMPT(reverts_)
  // FP-EXEMPT(last_revert_epoch_) FP-EXEMPT(last_revert_cause_):
  // lifetime diagnostics for service-mode post-mortems; the header
  // documents them as "never protocol inputs" and no round logic reads
  // them.

  // --- Round evidence and completeness state ----------------------------
  h.mix(kTagRoundState);
  mix_evidence(h, a.evidence_);
  h.mix(kTagSeen);
  h.mix(a.heartbeat_seen_.size());
  for (const auto& [node, when] : a.heartbeat_seen_) {
    h.mix(node.value());
    h.mix(std::uint64_t(when.as_micros()));
  }
  h.mix(a.digest_seen_.size());
  for (const auto& [node, when] : a.digest_seen_) {
    h.mix(node.value());
    h.mix(std::uint64_t(when.as_micros()));
  }
  mix_id_set(h, a.unmarked_heard_);
  h.mix(std::uint64_t{a.got_scheduled_update_});
  if (a.scheduled_update_) {
    mix_payload(h, *a.scheduled_update_);
  } else {
    h.mix(kTagAbsent);
  }
  h.mix(kTagForwards);
  mix_id_set(h, a.acked_requesters_);
  h.mix(a.pending_forwards_.size());
  for (const auto& [target, handle] : a.pending_forwards_) {
    h.mix(target.value());
    h.mix(std::uint64_t{handle.pending()});
  }
  h.mix(std::uint64_t{a.deputy_timer_.pending()});
  h.mix(std::uint64_t{a.sent_ack_});

  // --- Extensions: self-tuning and checkpointed recovery ----------------
  mix_estimator(h, a.estimator_);
  h.mix(std::uint64_t{a.tune_level_});
  h.mix(kTagCheckpoint);
  if (a.stable_checkpoint_) {
    mix_payload(h, *a.stable_checkpoint_);
  } else {
    h.mix(kTagAbsent);
  }
  h.mix(a.checkpoint_seq_);
  h.mix(std::uint64_t{a.restored_from_checkpoint_});
  // FP-EXEMPT(epoch_clock_): scheduling-seam pointer, null in the checker's
  // worlds (they drive agents per-node, never through FdsService's batched
  // path); the value it exposes is the epoch counter, which is mixed above.
  // FP-EXEMPT(heartbeat_pool_) / FP-EXEMPT(digest_pool_) /
  // FP-EXEMPT(update_pool_) / FP-EXEMPT(expected_scratch_): send-side
  // buffers, fully overwritten before every emission and never read as
  // protocol inputs (the header documents the reuse contract).
}

}  // namespace cfds::check
