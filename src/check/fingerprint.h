// Canonical 64-bit state fingerprints for the model checker.
//
// The explorer (src/check/explorer.h) prunes a run when it reaches a state
// whose fingerprint it has already visited, so the fingerprint must cover
// EVERY bit of protocol-relevant state: two worlds with equal fingerprints
// must behave identically under identical future choice sequences. The
// conventions that keep that true as the protocol grows:
//
//   * Every member of a fingerprinted class (FdsAgent, LinkQualityEstimator,
//     MembershipView, FailureLog — plus the aggregate structs RoundEvidence
//     and ClusterView) is either mixed in fingerprint.cpp or explicitly
//     exempted there with an `FP-EXEMPT(<member>): reason` comment arguing
//     why it cannot influence future protocol behaviour.
//   * cfds-lint rule `state-outside-fingerprint` (tools/lint/lint.h)
//     enforces the convention for private `name_` members of marked
//     classes: a member neither referenced nor FP-EXEMPT'd in
//     fingerprint.cpp fails the lint gate.
//   * `static_assert` sizeof-tripwires at the bottom of the class headers
//     catch layout changes (a new member of any visibility) at compile
//     time, pointing the author here.
//
// Determinism: the hash is a fixed splitmix-style 64-bit mix over values
// and encoded bytes — no pointers, no addresses, no unordered iteration —
// so fingerprints are stable across runs, thread counts, and ASLR, and a
// visited-set hit means the same protocol state, not the same heap layout.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/ids.h"

namespace cfds {
class FdsAgent;
class LinkQualityEstimator;
class MembershipView;
class FailureLog;
class Payload;
struct RoundEvidence;
struct ClusterView;
}  // namespace cfds

namespace cfds::check {

/// Order-sensitive 64-bit mixer. Each mixed word is diffused through the
/// splitmix64 finalizer, so single-bit input differences avalanche across
/// the whole digest and field boundaries cannot cancel.
class Hasher {
 public:
  void mix(std::uint64_t value) {
    state_ = diffuse(state_ ^ value);
  }

  void mix_bytes(const std::uint8_t* data, std::size_t len) {
    std::uint64_t word = 0;
    std::size_t filled = 0;
    for (std::size_t i = 0; i < len; ++i) {
      word |= std::uint64_t{data[i]} << (8 * filled);
      if (++filled == 8) {
        mix(word);
        word = 0;
        filled = 0;
      }
    }
    // The trailing partial word and the length make "ab","c" != "a","bc".
    mix(word);
    mix(std::uint64_t{len});
  }

  [[nodiscard]] std::uint64_t digest() const { return diffuse(state_); }

 private:
  [[nodiscard]] static std::uint64_t diffuse(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t state_ = 0x6366647320763955ULL;  // arbitrary fixed seed
};

/// Serializes protocol state into a Hasher. Friend of the classes whose
/// private members it must read; everything else goes through public API.
/// All methods are order-sensitive and prefix every variable-length
/// sequence with its size, so distinct states cannot collide by
/// concatenation.
class StateFingerprinter {
 public:
  /// Complete protocol-relevant state of one agent, including its Node's
  /// liveness/marked/incarnation and its MembershipView. Diagnostics-only
  /// members are exempted in the implementation (see FP-EXEMPT comments).
  static void mix_agent(Hasher& h, const FdsAgent& agent);

  static void mix_membership(Hasher& h, const MembershipView& view);
  static void mix_cluster(Hasher& h, const ClusterView& view);
  static void mix_failure_log(Hasher& h, const FailureLog& log);
  static void mix_evidence(Hasher& h, const RoundEvidence& evidence);
  static void mix_estimator(Hasher& h, const LinkQualityEstimator& estimator);

  /// Payload content via the canonical wire encoding (transport/wire.h):
  /// the same bytes service mode puts on the wire, so two payloads hash
  /// equal iff they are protocol-indistinguishable.
  static void mix_payload(Hasher& h, const Payload& payload);

  static void mix_id(Hasher& h, NodeId id) { h.mix(id.value()); }
};

}  // namespace cfds::check
