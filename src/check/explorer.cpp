#include "check/explorer.h"

#include <unordered_set>
#include <utility>

#include "common/expect.h"

namespace cfds::check {

namespace {

/// DFS sink: replays a forced prefix, defaults to branch 0 beyond it, and
/// records every choice point offered. Prunes on visited fingerprints only
/// once the prefix is exhausted.
class DfsSink final : public ChoiceSink {
 public:
  explicit DfsSink(std::unordered_set<std::uint64_t>& visited)
      : visited_(visited) {}

  void start_run(std::vector<std::uint32_t> prefix) {
    prefix_ = std::move(prefix);
    cursor_ = 0;
    recs_.clear();
  }

  std::uint32_t choose(std::uint32_t count, ChoiceKind kind, std::uint64_t a,
                       std::uint64_t b) override {
    std::uint32_t branch = 0;
    if (cursor_ < prefix_.size()) {
      branch = prefix_[cursor_];
      CFDS_EXPECT(branch < count, "odometer prefix out of range: the world "
                                  "diverged from its recording");
    }
    ++cursor_;
    recs_.push_back({kind, count, branch, a, b});
    return branch;
  }

  bool note_state(std::uint64_t fp) override {
    const bool fresh = visited_.insert(fp).second;
    // Prefix states were visited by the run that recorded the prefix;
    // pruning on them would cut off the sibling branch this run exists to
    // reach.
    if (cursor_ < prefix_.size()) return true;
    return fresh;
  }

  [[nodiscard]] const std::vector<ChoiceRec>& recs() const { return recs_; }

 private:
  std::unordered_set<std::uint64_t>& visited_;
  std::vector<std::uint32_t> prefix_;
  std::size_t cursor_ = 0;
  std::vector<ChoiceRec> recs_;
};

/// Replay sink: pins every choice to the recording and never prunes.
class ReplaySink final : public ChoiceSink {
 public:
  explicit ReplaySink(const std::vector<ChoiceRec>& choices)
      : choices_(choices) {}

  std::uint32_t choose(std::uint32_t count, ChoiceKind kind, std::uint64_t a,
                       std::uint64_t b) override {
    (void)kind;
    (void)a;
    (void)b;
    if (cursor_ >= choices_.size()) {
      exhausted_ = true;
      return 0;
    }
    const ChoiceRec& rec = choices_[cursor_++];
    if (rec.count != count || rec.chosen >= count) {
      mismatch_ = true;
      return 0;
    }
    return rec.chosen;
  }

  bool note_state(std::uint64_t) override { return true; }

  [[nodiscard]] bool mismatch() const { return mismatch_; }
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 private:
  const std::vector<ChoiceRec>& choices_;
  std::size_t cursor_ = 0;
  bool mismatch_ = false;
  bool exhausted_ = false;
};

}  // namespace

ExploreResult explore(const CheckOptions& opts, const ExploreLimits& limits) {
  ExploreResult result;
  std::unordered_set<std::uint64_t> visited;
  DfsSink sink(visited);
  std::vector<std::uint32_t> prefix;

  for (;;) {
    if (result.runs >= limits.max_runs ||
        visited.size() >= limits.max_states) {
      result.budget_exhausted = true;
      break;
    }

    sink.start_run(std::move(prefix));
    prefix.clear();
    CheckWorld world(opts, sink);
    std::optional<Violation> violation = world.run();
    ++result.runs;
    if (world.pruned()) ++result.pruned_runs;
    if (violation) {
      result.counterexample =
          Counterexample{std::move(*violation), sink.recs(),
                         world.fault_events()};
      break;
    }

    // Odometer: last recorded choice with an untaken sibling becomes the
    // next prefix's final (incremented) entry.
    const std::vector<ChoiceRec>& recs = sink.recs();
    std::size_t keep = recs.size();
    while (keep > 0 && recs[keep - 1].chosen + 1 >= recs[keep - 1].count) {
      --keep;
    }
    if (keep == 0) break;  // tree exhausted
    prefix.reserve(keep);
    for (std::size_t i = 0; i + 1 < keep; ++i) {
      prefix.push_back(recs[i].chosen);
    }
    prefix.push_back(recs[keep - 1].chosen + 1);
  }

  result.unique_states = visited.size();
  return result;
}

ReplayOutcome replay(const CheckOptions& opts,
                     const std::vector<ChoiceRec>& choices) {
  ReplaySink sink(choices);
  CheckWorld world(opts, sink);
  ReplayOutcome outcome;
  outcome.violation = world.run();
  outcome.fault_events = world.fault_events();
  if (sink.mismatch()) {
    outcome.error =
        "choice trace does not match this world: branching factor diverged "
        "(different options or build?)";
  } else if (!outcome.violation && sink.exhausted()) {
    outcome.error = "choice trace exhausted without reproducing a violation";
  }
  return outcome;
}

}  // namespace cfds::check
