#include "check/trace.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cfds::check {

namespace {

// fmt is always a literal at the call sites in this file; the variadic
// template hides that from -Wformat-nonliteral.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
void append(std::string& out, const char* fmt, auto... args) {
  char buffer[512];
  std::snprintf(buffer, sizeof buffer, fmt, args...);
  out += buffer;
}
#pragma GCC diagnostic pop

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append(out, "\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
}

/// Locates `"key":` in `line`; returns the value start or npos.
std::size_t value_pos(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

/// Exact unsigned integer: no strtod detour, so 64-bit values survive.
bool find_u64(const std::string& line, const char* key, std::uint64_t* out) {
  const auto pos = value_pos(line, key);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos;
  if (*start == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(start, &end, 10);
  if (end == start || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool find_i64(const std::string& line, const char* key, std::int64_t* out) {
  const auto pos = value_pos(line, key);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(start, &end, 10);
  if (end == start || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool find_u32(const std::string& line, const char* key, std::uint32_t* out) {
  std::uint64_t value = 0;
  if (!find_u64(line, key, &value)) return false;
  if (value > 0xFFFFFFFFu) return false;
  *out = static_cast<std::uint32_t>(value);
  return true;
}

/// Extracts and unescapes the string value of `"key":"..."`.
bool find_string(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  out->clear();
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      *out += c;
      continue;
    }
    if (++i >= line.size()) return false;
    switch (line[i]) {
      case '"': *out += '"'; break;
      case '\\': *out += '\\'; break;
      case 'n': *out += '\n'; break;
      case 't': *out += '\t'; break;
      case 'u': {
        if (i + 4 >= line.size()) return false;
        char* end = nullptr;
        const std::string hex = line.substr(i + 1, 4);
        const unsigned long cp = std::strtoul(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 4 || cp > 0x7F) return false;
        *out += static_cast<char>(cp);
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

std::optional<ChoiceKind> kind_from(const std::string& name) {
  for (ChoiceKind k :
       {ChoiceKind::kFault, ChoiceKind::kDrop, ChoiceKind::kOrder}) {
    if (name == choice_kind_name(k)) return k;
  }
  return std::nullopt;
}

}  // namespace

std::string fault_plan_jsonl(const CheckTrace& trace) {
  std::string out;
  append(out, "{\"fault_plan\":1,\"seed\":0,\"events\":%zu}\n",
         trace.fault_events.size());
  for (const FaultEvent& e : trace.fault_events) {
    append(out, "{\"fault\":\"%s\",\"node\":%u,\"at_us\":%lld}\n",
           e.recover ? "recover" : "crash", e.node.value(),
           static_cast<long long>(e.at_us));
  }
  return out;
}

std::string to_jsonl(const CheckTrace& trace) {
  const CheckOptions& o = trace.options;
  std::string out;
  append(out,
         "{\"cfds_check\":1,\"nodes\":%u,\"deputies\":%u,\"epochs\":%llu,"
         "\"crashes\":%u,\"recoveries\":%u,\"drops\":%u,\"perm_max\":%u,"
         "\"adaptive\":%d,\"checkpoint\":%d,\"checkpoint_interval\":%u,"
         "\"reduction\":%d,\"quiesce_max\":%u,\"t_hop_us\":%lld,"
         "\"mutation\":\"",
         o.nodes, o.deputies, static_cast<unsigned long long>(o.epochs),
         o.max_crashes, o.max_recoveries, o.max_drops, o.perm_max,
         o.adaptive ? 1 : 0, o.checkpoint ? 1 : 0, o.checkpoint_interval,
         o.reduction ? 1 : 0, o.quiesce_max,
         static_cast<long long>(o.t_hop.as_micros()));
  append_escaped(out, trace.mutation);
  out += "\"}\n";
  for (const ChoiceRec& c : trace.choices) {
    append(out,
           "{\"choice\":{\"kind\":\"%s\",\"count\":%u,\"chosen\":%u,"
           "\"a\":%llu,\"b\":%llu}}\n",
           choice_kind_name(c.kind), c.count, c.chosen,
           static_cast<unsigned long long>(c.a),
           static_cast<unsigned long long>(c.b));
  }
  if (trace.violation) {
    const Violation& v = *trace.violation;
    append(out, "{\"violation\":{\"invariant\":\"%s\",\"epoch\":%llu,"
                "\"barrier\":%u,\"detail\":\"",
           v.invariant.c_str(), static_cast<unsigned long long>(v.epoch),
           v.barrier);
    append_escaped(out, v.detail);
    out += "\"}}\n";
  }
  out += fault_plan_jsonl(trace);
  return out;
}

std::optional<CheckTrace> parse_jsonl(const std::string& text,
                                      std::string* error) {
  CheckTrace trace;
  bool saw_header = false;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) -> std::optional<CheckTrace> {
    if (error) *error = "trace line " + std::to_string(line_no) + ": " + why;
    return std::nullopt;
  };
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (line.find("\"cfds_check\"") != std::string::npos) {
      CheckOptions& o = trace.options;
      std::uint32_t adaptive = 0;
      std::uint32_t checkpoint = 0;
      std::uint32_t reduction = 1;
      std::int64_t t_hop_us = 0;
      if (!find_u32(line, "nodes", &o.nodes) ||
          !find_u32(line, "deputies", &o.deputies) ||
          !find_u64(line, "epochs", &o.epochs) ||
          !find_u32(line, "crashes", &o.max_crashes) ||
          !find_u32(line, "recoveries", &o.max_recoveries) ||
          !find_u32(line, "drops", &o.max_drops) ||
          !find_u32(line, "perm_max", &o.perm_max) ||
          !find_u32(line, "adaptive", &adaptive) ||
          !find_u32(line, "checkpoint", &checkpoint) ||
          !find_u32(line, "checkpoint_interval", &o.checkpoint_interval) ||
          !find_u32(line, "reduction", &reduction) ||
          !find_u32(line, "quiesce_max", &o.quiesce_max) ||
          !find_i64(line, "t_hop_us", &t_hop_us)) {
        return fail("malformed cfds_check header");
      }
      if (t_hop_us <= 0) return fail("t_hop_us must be positive");
      o.adaptive = adaptive != 0;
      o.checkpoint = checkpoint != 0;
      o.reduction = reduction != 0;
      o.t_hop = SimTime::micros(t_hop_us);
      (void)find_string(line, "mutation", &trace.mutation);
      saw_header = true;
      continue;
    }
    if (line.find("\"choice\"") != std::string::npos) {
      std::string kind_name;
      ChoiceRec rec;
      if (!find_string(line, "kind", &kind_name) ||
          !find_u32(line, "count", &rec.count) ||
          !find_u32(line, "chosen", &rec.chosen) ||
          !find_u64(line, "a", &rec.a) || !find_u64(line, "b", &rec.b)) {
        return fail("malformed choice record");
      }
      const auto kind = kind_from(kind_name);
      if (!kind) return fail("unknown choice kind '" + kind_name + "'");
      if (rec.count < 2) return fail("choice count must be >= 2");
      if (rec.chosen >= rec.count) return fail("chosen out of range");
      rec.kind = *kind;
      trace.choices.push_back(rec);
      continue;
    }
    if (line.find("\"violation\"") != std::string::npos) {
      Violation v;
      if (!find_string(line, "invariant", &v.invariant) ||
          !find_u64(line, "epoch", &v.epoch) ||
          !find_u32(line, "barrier", &v.barrier)) {
        return fail("malformed violation record");
      }
      (void)find_string(line, "detail", &v.detail);
      trace.violation = std::move(v);
      continue;
    }
    if (line.find("\"fault_plan\"") != std::string::npos) continue;
    if (line.find("\"fault\"") != std::string::npos) {
      std::string kind_name;
      FaultEvent e;
      std::uint32_t node = 0;
      if (!find_string(line, "fault", &kind_name) ||
          !find_u32(line, "node", &node) ||
          !find_i64(line, "at_us", &e.at_us)) {
        return fail("malformed fault record");
      }
      if (kind_name == "crash") {
        e.recover = false;
      } else if (kind_name == "recover") {
        e.recover = true;
      } else {
        return fail("trace fault kind must be crash or recover");
      }
      e.node = NodeId{node};
      trace.fault_events.push_back(e);
      continue;
    }
    return fail("unrecognized trace line");
  }
  if (!saw_header) {
    ++line_no;
    return fail("missing cfds_check header");
  }
  return trace;
}

std::optional<CheckTrace> load_trace(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open trace file: " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_jsonl(buffer.str(), error);
}

}  // namespace cfds::check
