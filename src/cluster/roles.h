// Cluster role model.
//
// A cluster (Section 3) is a unit disk centred on the clusterhead (CH): every
// non-CH member is a one-hop neighbour of the CH, so any two members are at
// most two hops apart. The paper's clustering algorithm [16] additionally
// designates, per cluster: ranked deputy clusterheads (DCHs, feature F2) that
// take over failure detection when the CH dies, and per neighbouring cluster
// one gateway (GW) plus ranked backup gateways (BGWs). Feature F3: every
// gateway is affiliated with exactly one cluster.

#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/ids.h"

namespace cfds {

/// A node's role within its cluster.
enum class Role {
  kClusterhead,
  kDeputy,          ///< ranked DCH; rank 1 is the takeover authority
  kGateway,         ///< primary forwarder to one or more neighbour clusters
  kBackupGateway,   ///< ranked standby forwarder for a link
  kOrdinaryMember,
  kUnaffiliated,    ///< not (yet) admitted to any cluster
};

[[nodiscard]] constexpr const char* role_name(Role r) {
  switch (r) {
    case Role::kClusterhead: return "CH";
    case Role::kDeputy: return "DCH";
    case Role::kGateway: return "GW";
    case Role::kBackupGateway: return "BGW";
    case Role::kOrdinaryMember: return "OM";
    case Role::kUnaffiliated: return "-";
  }
  return "?";
}

/// The forwarding structure between a cluster and one neighbouring cluster.
struct GatewayLink {
  ClusterId neighbor_cluster;
  NodeId neighbor_clusterhead;
  NodeId gateway;
  /// Ranked backups; backups[0] has rank 1 (timer 1 * 2*Thop, Section 4.3).
  std::vector<NodeId> backups;

  friend bool operator==(const GatewayLink&, const GatewayLink&) = default;

  /// Rank of `node` on this link: 0 for the GW, k >= 1 for the rank-k BGW,
  /// nullopt if the node plays no role on this link.
  [[nodiscard]] std::optional<std::size_t> rank_of(NodeId node) const {
    if (node == gateway) return 0;
    const auto it = std::find(backups.begin(), backups.end(), node);
    if (it == backups.end()) return std::nullopt;
    return std::size_t(it - backups.begin()) + 1;
  }
};

/// One cluster's full organization, as announced by its CH.
struct ClusterView {
  ClusterId id;
  NodeId clusterhead;
  /// Non-CH members (OMs, deputies, gateways all appear here).
  std::vector<NodeId> members;
  /// Ranked deputies; deputies[0] is the highest-ranked DCH.
  std::vector<NodeId> deputies;
  std::vector<GatewayLink> links;

  [[nodiscard]] bool is_member(NodeId n) const {
    return n == clusterhead ||
           std::find(members.begin(), members.end(), n) != members.end();
  }

  /// Cluster population including the CH.
  [[nodiscard]] std::size_t population() const { return members.size() + 1; }

  /// Role of `node` in this cluster. Deputy/gateway roles take precedence
  /// over plain membership; deputy outranks gateway (a DCH that is also a
  /// gateway candidate acts as DCH for detection purposes).
  [[nodiscard]] Role role_of(NodeId node) const {
    if (node == clusterhead) return Role::kClusterhead;
    if (std::find(deputies.begin(), deputies.end(), node) != deputies.end()) {
      return Role::kDeputy;
    }
    for (const GatewayLink& link : links) {
      if (link.gateway == node) return Role::kGateway;
    }
    for (const GatewayLink& link : links) {
      if (link.rank_of(node).value_or(0) >= 1) return Role::kBackupGateway;
    }
    if (is_member(node)) return Role::kOrdinaryMember;
    return Role::kUnaffiliated;
  }
};

// Fingerprint tripwires (src/check/fingerprint.h): a layout change means
// cluster-organization state was added — mix it in
// src/check/fingerprint.cpp (or FP-EXEMPT it with a reason), then update
// the expected size.
#if defined(__x86_64__) && defined(__linux__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(GatewayLink) == 40,
              "GatewayLink layout changed: update src/check/fingerprint.cpp, "
              "then this tripwire");
static_assert(sizeof(ClusterView) == 80,
              "ClusterView layout changed: update src/check/fingerprint.cpp, "
              "then this tripwire");
#endif

}  // namespace cfds
