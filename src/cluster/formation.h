// Distributed cluster formation (reconstruction of the paper's [16]).
//
// The paper leaves its clustering algorithm to an internal technical report
// but pins down its observable features (Section 3, F1-F5):
//   F1 overlapping clusters, multiple gateway candidates per cluster pair;
//   F2 ranked deputy clusterheads and ranked backup gateways;
//   F3 every gateway affiliated with exactly one cluster;
//   F4 open-ended iteration (no explicit termination rule);
//   F5 the first formation round merges with fds.R-1.
//
// We reconstruct it as an iterative, round-synchronous lowest-NID protocol.
// Each iteration runs six rounds of duration Thop:
//   1 probe      every node broadcasts ProbePayload{nid, marked}
//   2 claim      an unmarked node that heard no unmarked NID lower than its
//                own broadcasts ChClaim (lowest-NID policy, Section 3)
//   3 join       an unmarked node joins the lowest claimant it heard
//                (a claimant that hears a lower claim withdraws and joins it
//                — the RCC-style conflict resolution of footnote 1);
//                the join carries the sender's observed one-hop degree
//   4 announce   surviving claimants broadcast the cluster organization:
//                members = joiners heard, deputies = top-k joiners by
//                observed degree (ties to the lower NID); hearing one's own
//                NID in an announcement marks the node
//   5 candidacy  marked nodes hearing foreign CHs report them to their CH
//   6 assign     each CH ranks candidates per neighbouring cluster (lowest
//                NID = GW, rest = BGWs in NID order; overheard candidacies
//                from the neighbour's members are included, so both CHs
//                compute the same ranking when no frames are lost) and
//                broadcasts the link table
//
// Iterations repeat from round 1; clusters already formed are inert (their
// probes carry marked=true), so an iteration with no unmarked probes
// degenerates to the steady-state heartbeat round, exactly as F4/F5 describe.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/membership.h"
#include "cluster/messages.h"
#include "common/flat.h"
#include "common/sim_time.h"
#include "net/network.h"
#include "transport/sim_transport.h"
#include "transport/transport.h"

namespace cfds {

/// Formation parameters.
struct FormationConfig {
  /// Deputies designated per cluster (feature F2). The analysis needs at
  /// least one; density makes two cheap.
  std::size_t num_deputies = 2;
  /// Backup gateways retained per neighbour-cluster link.
  std::size_t max_backup_gateways = 3;
};

/// Per-node participant in the distributed formation protocol.
///
/// The agent owns the node's MembershipView; the FDS and forwarding layers
/// reference it after formation completes.
class FormationAgent {
 public:
  /// Frames flow only through `transport` (a SimTransport in simulation, a
  /// real transport in service mode); `node` supplies identity, liveness,
  /// and the marked flag.
  FormationAgent(Node& node, Transport& transport, FormationConfig config);

  [[nodiscard]] MembershipView& view() { return view_; }
  [[nodiscard]] const MembershipView& view() const { return view_; }
  [[nodiscard]] NodeId id() const { return node_.id(); }

  // --- Round actions, driven by FormationProtocol ----------------------
  void begin_iteration();
  void send_probe();
  void send_claim_if_eligible();
  void send_join_if_needed();
  void send_announcement_if_clusterhead();
  void send_gateway_candidacy_if_needed();
  void send_gateway_assignment_if_clusterhead();

 private:
  void on_frame(const Reception& reception);

  Node& node_;
  Transport& transport_;
  FormationConfig config_;
  MembershipView view_;

  // Per-iteration evidence (flat containers: cleared each iteration with the
  // buffers retained, so steady-state iterations allocate nothing).
  FlatSet<NodeId> unmarked_probes_heard_;
  std::size_t probes_heard_ = 0;  // one-hop degree estimate (marked + unmarked)
  FlatSet<NodeId> claims_heard_;
  bool claiming_ = false;
  std::vector<JoinPayload> joins_received_;

  // Cross-iteration evidence.
  FlatMap<ClusterId, NodeId> foreign_clusterheads_;  // heard announcements
  FlatMap<NodeId, GatewayCandidacyPayload> candidacies_heard_;  // latest each
  FlatMap<NodeId, std::size_t> member_degrees_;  // CH only: joiner degrees
  std::size_t last_candidacy_size_ = 0;
};

/// Drives all agents through synchronized formation rounds.
class FormationProtocol {
 public:
  FormationProtocol(Network& network, FormationConfig config = {});

  /// The per-node agents, in node order.
  [[nodiscard]] std::vector<FormationAgent*> agents();
  [[nodiscard]] FormationAgent& agent_for(NodeId id);

  /// Creates agents for nodes added to the network after construction
  /// (replenishment, Section 2.1); the next open-ended iterations admit
  /// them exactly like nodes that missed the initial formation (F4).
  void adopt_new_nodes();

  /// Schedules `iterations` full formation iterations starting at `start`,
  /// then runs the simulator past them. Returns the simulated time at which
  /// formation settled.
  SimTime run(std::size_t iterations = 3, SimTime start = SimTime::zero());

  /// Number of distinct clusters the agents currently believe in.
  [[nodiscard]] std::size_t cluster_count() const;

 private:
  Network& network_;
  FormationConfig config_;
  /// One SimTransport per agent (pointer-stable; agents keep references).
  std::vector<std::unique_ptr<SimTransport>> transports_;
  std::vector<std::unique_ptr<FormationAgent>> agents_;
};

}  // namespace cfds
