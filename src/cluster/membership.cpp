#include "cluster/membership.h"

#include <algorithm>

namespace cfds {
namespace {

void erase_value(std::vector<NodeId>& v, NodeId value) {
  v.erase(std::remove(v.begin(), v.end(), value), v.end());
}

}  // namespace

void MembershipView::apply_takeover(NodeId deputy) {
  if (!cluster_) return;
  ClusterView& c = *cluster_;
  if (!c.is_member(deputy)) return;
  erase_value(c.members, deputy);
  erase_value(c.deputies, deputy);
  // The old CH is gone; it does not rejoin as a member (fail-stop).
  c.clusterhead = deputy;
  // The cluster keeps its identity: reports remain attributable.
}

void MembershipView::remove_members(const std::vector<NodeId>& failed) {
  if (!cluster_) return;
  ClusterView& c = *cluster_;
  for (NodeId f : failed) {
    erase_value(c.members, f);
    erase_value(c.deputies, f);
    for (GatewayLink& link : c.links) {
      if (link.gateway == f) {
        // Highest-ranked surviving backup becomes the gateway.
        if (!link.backups.empty()) {
          link.gateway = link.backups.front();
          link.backups.erase(link.backups.begin());
        } else {
          link.gateway = NodeId::invalid();
        }
      } else {
        erase_value(link.backups, f);
      }
    }
  }
}

void MembershipView::update_link_neighbor(ClusterId neighbor, NodeId new_ch) {
  if (!cluster_) return;
  for (GatewayLink& link : cluster_->links) {
    if (link.neighbor_cluster == neighbor) link.neighbor_clusterhead = new_ch;
  }
}

void MembershipView::sync_members(const std::vector<NodeId>& members) {
  if (!cluster_) return;
  ClusterView& c = *cluster_;
  c.members = members;
  std::erase_if(c.deputies, [&](NodeId d) {
    return std::find(members.begin(), members.end(), d) == members.end();
  });
}

void MembershipView::admit_members(const std::vector<NodeId>& admitted) {
  if (!cluster_) return;
  ClusterView& c = *cluster_;
  for (NodeId a : admitted) {
    if (!c.is_member(a)) c.members.push_back(a);
  }
}

}  // namespace cfds
