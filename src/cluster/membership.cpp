#include "cluster/membership.h"

#include <algorithm>

namespace cfds {
namespace {

void erase_value(std::vector<NodeId>& v, NodeId value) {
  v.erase(std::remove(v.begin(), v.end(), value), v.end());
}

bool contains(const std::vector<NodeId>& v, NodeId value) {
  return std::find(v.begin(), v.end(), value) != v.end();
}

}  // namespace

ClusterView& MembershipView::mutate() {
  if (cluster_.use_count() != 1) {
    cluster_ = std::make_shared<const ClusterView>(*cluster_);
  }
  // Sole owner (either all along or after the clone above): in-place
  // mutation cannot be observed through any other node's view.
  return const_cast<ClusterView&>(*cluster_);
}

void MembershipView::apply_takeover(NodeId deputy) {
  if (!cluster_) return;
  if (!cluster_->is_member(deputy)) return;
  ClusterView& c = mutate();
  erase_value(c.members, deputy);
  erase_value(c.deputies, deputy);
  // The old CH is gone; it does not rejoin as a member (fail-stop).
  c.clusterhead = deputy;
  // The cluster keeps its identity: reports remain attributable.
}

void MembershipView::remove_members(const std::vector<NodeId>& failed) {
  if (!cluster_) return;
  // No-change fast path: most updates carry no (new) failures, and cloning
  // a shared view to remove nobody would end the sharing for nothing.
  const auto touches = [&](NodeId f) {
    if (contains(cluster_->members, f) || contains(cluster_->deputies, f)) {
      return true;
    }
    for (const GatewayLink& link : cluster_->links) {
      if (link.gateway == f || contains(link.backups, f)) return true;
    }
    return false;
  };
  if (std::none_of(failed.begin(), failed.end(), touches)) return;
  ClusterView& c = mutate();
  for (NodeId f : failed) {
    erase_value(c.members, f);
    erase_value(c.deputies, f);
    for (GatewayLink& link : c.links) {
      if (link.gateway == f) {
        // Highest-ranked surviving backup becomes the gateway.
        if (!link.backups.empty()) {
          link.gateway = link.backups.front();
          link.backups.erase(link.backups.begin());
        } else {
          link.gateway = NodeId::invalid();
        }
      } else {
        erase_value(link.backups, f);
      }
    }
  }
}

void MembershipView::update_link_neighbor(ClusterId neighbor, NodeId new_ch) {
  if (!cluster_) return;
  const auto stale = [&](const GatewayLink& link) {
    return link.neighbor_cluster == neighbor &&
           link.neighbor_clusterhead != new_ch;
  };
  if (std::none_of(cluster_->links.begin(), cluster_->links.end(), stale)) {
    return;
  }
  for (GatewayLink& link : mutate().links) {
    if (link.neighbor_cluster == neighbor) link.neighbor_clusterhead = new_ch;
  }
}

void MembershipView::sync_members(const std::vector<NodeId>& members) {
  if (!cluster_) return;
  if (cluster_->members == members) {
    // Roster unchanged. Deputies are maintained as a subset of the member
    // list by every other mutator, so the erase_if below would be a no-op.
    const auto dropped = [&](NodeId d) { return !contains(members, d); };
    if (std::none_of(cluster_->deputies.begin(), cluster_->deputies.end(),
                     dropped)) {
      return;
    }
  }
  ClusterView& c = mutate();
  c.members = members;
  std::erase_if(c.deputies,
                [&](NodeId d) { return !contains(members, d); });
}

void MembershipView::admit_members(const std::vector<NodeId>& admitted) {
  if (!cluster_) return;
  const auto is_new = [&](NodeId a) { return !cluster_->is_member(a); };
  if (std::none_of(admitted.begin(), admitted.end(), is_new)) return;
  ClusterView& c = mutate();
  for (NodeId a : admitted) {
    if (!c.is_member(a)) c.members.push_back(a);
  }
}

}  // namespace cfds
