#include "cluster/formation.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/expect.h"

namespace cfds {

FormationAgent::FormationAgent(Node& node, Transport& transport,
                               FormationConfig config)
    : node_(node), transport_(transport), config_(config), view_(node.id()) {
  transport_.add_receive_handler(
      [](void* self, const Reception& reception) {
        static_cast<FormationAgent*>(self)->on_frame(reception);
      },
      this);
}

void FormationAgent::begin_iteration() {
  unmarked_probes_heard_.clear();
  probes_heard_ = 0;
  claims_heard_.clear();
  claiming_ = false;
  joins_received_.clear();
}

void FormationAgent::send_probe() {
  if (!node_.alive()) return;
  auto probe = std::make_shared<ProbePayload>();
  probe->sender = node_.id();
  probe->marked = node_.marked();
  transport_.send(std::move(probe));
}

void FormationAgent::send_claim_if_eligible() {
  if (!node_.alive() || node_.marked()) return;
  // Lowest-NID policy over the *unmarked* one-hop neighbourhood. A node that
  // heard no probe at all is isolated; it never claims (the paper leaves
  // isolated nodes outside the cluster structure).
  if (probes_heard_ == 0) return;
  // A node that already knows a reachable clusterhead joins it instead of
  // founding a cluster inside an existing one.
  if (!foreign_clusterheads_.empty()) return;
  for (NodeId other : unmarked_probes_heard_) {
    if (other < node_.id()) return;
  }
  claiming_ = true;
  auto claim = std::make_shared<ChClaimPayload>();
  claim->claimant = node_.id();
  transport_.send(std::move(claim));
}

void FormationAgent::send_join_if_needed() {
  if (!node_.alive() || node_.marked()) return;
  // Candidates: claimants heard this iteration (RCC-style conflict
  // resolution: a claimant that hears a lower claim withdraws and joins it),
  // plus clusterheads known from earlier announcements.
  NodeId best = claiming_ ? node_.id() : NodeId::invalid();
  for (NodeId claimant : claims_heard_) {
    if (!best.is_valid() || claimant < best) best = claimant;
  }
  for (const auto& [cluster, ch] : foreign_clusterheads_) {
    (void)cluster;
    if (!best.is_valid() || ch < best) best = ch;
  }
  if (!best.is_valid()) return;  // nobody to join this iteration
  if (best == node_.id()) return;  // still the claimant
  claiming_ = false;
  auto join = std::make_shared<JoinPayload>();
  join->sender = node_.id();
  join->clusterhead = best;
  join->observed_degree = probes_heard_;
  transport_.send(std::move(join), best);
}

void FormationAgent::send_announcement_if_clusterhead() {
  if (!node_.alive()) return;
  const bool new_cluster = claiming_;
  const bool existing_ch = node_.marked() && view_.is_clusterhead();
  if (!new_cluster && !existing_ch) return;
  if (existing_ch && joins_received_.empty()) return;  // nothing changed

  if (new_cluster) {
    ClusterView fresh;
    fresh.id = ClusterId{node_.id().value()};
    fresh.clusterhead = node_.id();
    view_.set_cluster(std::move(fresh));
    node_.set_marked(true);
    member_degrees_.clear();
  }
  for (const JoinPayload& join : joins_received_) {
    member_degrees_[join.sender] = join.observed_degree;
  }
  joins_received_.clear();

  ClusterView updated = *view_.cluster();
  updated.members.clear();
  for (const auto& [member, degree] : member_degrees_) {
    (void)degree;
    updated.members.push_back(member);
  }
  // Deputy ranking (F2): best-connected members first, ties to lower NID.
  std::vector<NodeId> ranked = updated.members;
  std::sort(ranked.begin(), ranked.end(), [this](NodeId a, NodeId b) {
    const std::size_t da = member_degrees_.at(a);
    const std::size_t db = member_degrees_.at(b);
    if (da != db) return da > db;
    return a < b;
  });
  updated.deputies.assign(
      ranked.begin(),
      ranked.begin() + static_cast<std::ptrdiff_t>(std::min<std::size_t>(
                           config_.num_deputies, ranked.size())));
  view_.set_cluster(updated);

  auto announce = std::make_shared<AnnouncePayload>();
  announce->cluster = updated.id;
  announce->clusterhead = updated.clusterhead;
  announce->members = updated.members;
  announce->deputies = updated.deputies;
  transport_.send(std::move(announce));
}

void FormationAgent::send_gateway_candidacy_if_needed() {
  if (!node_.alive() || !node_.marked() || !view_.affiliated()) return;
  if (view_.is_clusterhead()) return;
  std::vector<std::pair<ClusterId, NodeId>> reachable;
  for (const auto& [cluster, ch] : foreign_clusterheads_) {
    if (cluster != view_.cluster()->id) reachable.emplace_back(cluster, ch);
  }
  if (reachable.empty()) return;
  if (reachable.size() == last_candidacy_size_) return;  // already reported
  last_candidacy_size_ = reachable.size();

  auto candidacy = std::make_shared<GatewayCandidacyPayload>();
  candidacy->sender = node_.id();
  candidacy->home_cluster = view_.cluster()->id;
  candidacy->reachable = std::move(reachable);
  transport_.send(std::move(candidacy), view_.cluster()->clusterhead);
}

void FormationAgent::send_gateway_assignment_if_clusterhead() {
  if (!node_.alive() || !view_.is_clusterhead()) return;
  const ClusterId mine = view_.cluster()->id;

  // Candidates per neighbouring cluster. A candidacy is relevant if the
  // candidate's home is this cluster (it reaches foreign CHs), or if it
  // reaches *us* from a foreign home (overheard, symmetric links) — both
  // sides rank the same pool, so the two CHs agree when no frames are lost.
  FlatMap<ClusterId, std::pair<NodeId, std::vector<NodeId>>> per_neighbor;
  for (const auto& [sender, candidacy] : candidacies_heard_) {
    if (candidacy.home_cluster == mine) {
      for (const auto& [cluster, ch] : candidacy.reachable) {
        per_neighbor[cluster].first = ch;
        per_neighbor[cluster].second.push_back(sender);
      }
    } else {
      for (const auto& [cluster, ch] : candidacy.reachable) {
        (void)ch;
        if (cluster == mine) {
          auto& entry = per_neighbor[candidacy.home_cluster];
          if (const auto it =
                  foreign_clusterheads_.find(candidacy.home_cluster);
              it != foreign_clusterheads_.end()) {
            entry.first = it->second;
          } else if (!entry.first.is_valid()) {
            // By convention a cluster is named after its founding CH.
            entry.first = NodeId{candidacy.home_cluster.value()};
          }
          entry.second.push_back(sender);
        }
      }
    }
  }
  if (per_neighbor.empty()) return;

  std::vector<GatewayLink> links;
  for (auto& [neighbor, info] : per_neighbor) {
    auto& [neighbor_ch, candidates] = info;
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    GatewayLink link;
    link.neighbor_cluster = neighbor;
    link.neighbor_clusterhead = neighbor_ch;
    link.gateway = candidates.front();
    for (std::size_t i = 1;
         i < candidates.size() && link.backups.size() < config_.max_backup_gateways;
         ++i) {
      link.backups.push_back(candidates[i]);
    }
    links.push_back(std::move(link));
  }

  if (links == view_.cluster()->links) return;  // degenerate iteration (F4)
  ClusterView updated = *view_.cluster();
  updated.links = links;
  view_.set_cluster(std::move(updated));

  auto assignment = std::make_shared<GatewayAssignmentPayload>();
  assignment->cluster = mine;
  assignment->links = std::move(links);
  transport_.send(std::move(assignment));
}

void FormationAgent::on_frame(const Reception& reception) {
  if (const auto* probe = payload_cast<ProbePayload>(reception.payload)) {
    ++probes_heard_;
    if (!probe->marked) unmarked_probes_heard_.insert(probe->sender);
    return;
  }
  if (const auto* claim = payload_cast<ChClaimPayload>(reception.payload)) {
    claims_heard_.insert(claim->claimant);
    return;
  }
  if (const auto* join = payload_cast<JoinPayload>(reception.payload)) {
    if (join->clusterhead == node_.id()) joins_received_.push_back(*join);
    return;
  }
  if (const auto* announce = payload_cast<AnnouncePayload>(reception.payload)) {
    const bool mine =
        std::find(announce->members.begin(), announce->members.end(),
                  node_.id()) != announce->members.end();
    if (mine) {
      ClusterView fresh;
      fresh.id = announce->cluster;
      fresh.clusterhead = announce->clusterhead;
      fresh.members = announce->members;
      fresh.deputies = announce->deputies;
      // Preserve the link table across re-announcements of the same cluster.
      if (view_.affiliated() && view_.cluster()->id == announce->cluster) {
        fresh.links = view_.cluster()->links;
      }
      view_.set_cluster(std::move(fresh));
      node_.set_marked(true);
    } else if (!view_.affiliated() ||
               announce->cluster != view_.cluster()->id) {
      foreign_clusterheads_[announce->cluster] = announce->clusterhead;
    }
    return;
  }
  if (const auto* candidacy =
          payload_cast<GatewayCandidacyPayload>(reception.payload)) {
    candidacies_heard_[candidacy->sender] = *candidacy;
    return;
  }
  if (const auto* assignment =
          payload_cast<GatewayAssignmentPayload>(reception.payload)) {
    if (view_.affiliated() && view_.cluster()->id == assignment->cluster &&
        !view_.is_clusterhead()) {
      ClusterView updated = *view_.cluster();
      updated.links = assignment->links;
      view_.set_cluster(std::move(updated));
    }
    return;
  }
}

FormationProtocol::FormationProtocol(Network& network, FormationConfig config)
    : network_(network), config_(config) {
  for (Node* node : network_.nodes()) {
    transports_.push_back(std::make_unique<SimTransport>(*node));
    agents_.push_back(
        std::make_unique<FormationAgent>(*node, *transports_.back(), config_));
  }
}

std::vector<FormationAgent*> FormationProtocol::agents() {
  std::vector<FormationAgent*> out;
  out.reserve(agents_.size());
  for (auto& a : agents_) out.push_back(a.get());
  return out;
}

void FormationProtocol::adopt_new_nodes() {
  const auto& nodes = network_.nodes();
  for (std::size_t i = agents_.size(); i < nodes.size(); ++i) {
    transports_.push_back(std::make_unique<SimTransport>(*nodes[i]));
    agents_.push_back(std::make_unique<FormationAgent>(
        *nodes[i], *transports_.back(), config_));
  }
}

FormationAgent& FormationProtocol::agent_for(NodeId id) {
  for (auto& a : agents_) {
    if (a->id() == id) return *a;
  }
  CFDS_EXPECT(false, "no agent for node id");
  __builtin_unreachable();
}

SimTime FormationProtocol::run(std::size_t iterations, SimTime start) {
  Simulator& sim = network_.simulator();
  const SimTime thop = network_.channel().config().t_hop;
  for (std::size_t i = 0; i < iterations; ++i) {
    const SimTime t0 = start + SimTime::micros(std::int64_t(i) * 6 *
                                               thop.as_micros());
    auto at = [&](int round, void (FormationAgent::*action)()) {
      sim.schedule_at(t0 + round * thop, [this, action] {
        for (auto& agent : agents_) (agent.get()->*action)();
      });
    };
    sim.schedule_at(t0, [this] {
      for (auto& agent : agents_) agent->begin_iteration();
    });
    at(0, &FormationAgent::send_probe);
    at(1, &FormationAgent::send_claim_if_eligible);
    at(2, &FormationAgent::send_join_if_needed);
    at(3, &FormationAgent::send_announcement_if_clusterhead);
    at(4, &FormationAgent::send_gateway_candidacy_if_needed);
    at(5, &FormationAgent::send_gateway_assignment_if_clusterhead);
  }
  const SimTime end =
      start + SimTime::micros(std::int64_t(iterations) * 6 * thop.as_micros()) +
      thop;
  sim.run_until(end);
  return end;
}

std::size_t FormationProtocol::cluster_count() const {
  FlatSet<ClusterId> seen;
  for (const auto& agent : agents_) {
    if (agent->view().affiliated()) seen.insert(agent->view().cluster()->id);
  }
  return seen.size();
}

}  // namespace cfds
