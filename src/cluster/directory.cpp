#include "cluster/directory.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <unordered_map>

#include "common/expect.h"
#include "net/graph.h"

namespace cfds {

ClusterDirectory ClusterDirectory::build(const std::vector<Vec2>& positions,
                                         double range,
                                         DirectoryConfig config) {
  ClusterDirectory dir;
  const UnitDiskGraph graph(positions, range);
  const std::size_t n = positions.size();
  std::vector<bool> marked(n, false);

  // Greedy lowest-NID clustering: in NID order, an unmarked node founds a
  // cluster over its unmarked in-range neighbours. Isolated nodes stay out.
  for (std::size_t v = 0; v < n; ++v) {
    if (marked[v] || graph.degree(v) == 0) continue;
    ClusterView cluster;
    cluster.id = ClusterId{std::uint32_t(v)};
    cluster.clusterhead = NodeId{std::uint32_t(v)};
    marked[v] = true;
    for (std::size_t u : graph.neighbors(v)) {
      if (!marked[u]) {
        marked[u] = true;
        cluster.members.push_back(NodeId{std::uint32_t(u)});
      }
    }
    std::sort(cluster.members.begin(), cluster.members.end());
    dir.clusters_.push_back(std::move(cluster));
  }

  // Deputies: members ranked by one-hop degree (descending), ties to NID.
  for (ClusterView& cluster : dir.clusters_) {
    std::vector<NodeId> ranked = cluster.members;
    std::sort(ranked.begin(), ranked.end(), [&](NodeId a, NodeId b) {
      const std::size_t da = graph.degree(a.value());
      const std::size_t db = graph.degree(b.value());
      if (da != db) return da > db;
      return a < b;
    });
    cluster.deputies.assign(
        ranked.begin(),
        ranked.begin() + static_cast<std::ptrdiff_t>(std::min(
                             config.num_deputies, ranked.size())));
  }

  // Gateways: for each cluster pair, candidates are the nodes within range
  // of both CHs (members of either cluster); GW = lowest NID, remaining
  // candidates become ranked BGWs. A candidate within range of both CHs
  // bounds the CH-CH distance by 2R (triangle inequality), so only pairs
  // whose heads share a 2R-grid neighbourhood are examined — O(C * local
  // density) instead of the O(C^2) all-pairs scan, which dominated
  // formation time at 10^5+ nodes.
  const double pair_range = 2.0 * range;
  const auto pair_cell = [&](double v) {
    return std::int64_t(std::floor(v / pair_range));
  };
  const auto pack = [](std::int64_t cx, std::int64_t cy) {
    return ((cx + 0x40000000) << 32) |
           std::int64_t(std::uint32_t(cy + 0x40000000));
  };
  std::unordered_map<std::int64_t, std::vector<std::size_t>> ch_grid;
  for (std::size_t a = 0; a < dir.clusters_.size(); ++a) {
    const Vec2 ch = positions[dir.clusters_[a].clusterhead.value()];
    ch_grid[pack(pair_cell(ch.x), pair_cell(ch.y))].push_back(a);
  }
  std::map<std::pair<std::size_t, std::size_t>, std::vector<NodeId>> candidates;
  for (std::size_t a = 0; a < dir.clusters_.size(); ++a) {
    const Vec2 ch_a = positions[dir.clusters_[a].clusterhead.value()];
    const std::int64_t ccx = pair_cell(ch_a.x);
    const std::int64_t ccy = pair_cell(ch_a.y);
    for (std::int64_t cx = ccx - 1; cx <= ccx + 1; ++cx) {
      for (std::int64_t cy = ccy - 1; cy <= ccy + 1; ++cy) {
        const auto it = ch_grid.find(pack(cx, cy));
        if (it == ch_grid.end()) continue;
        for (const std::size_t b : it->second) {
          if (b <= a) continue;
          const Vec2 ch_b = positions[dir.clusters_[b].clusterhead.value()];
          if (!within_range(ch_a, ch_b, pair_range)) continue;
          std::vector<NodeId> pool;
          auto collect = [&](const ClusterView& c) {
            for (NodeId m : c.members) {
              const Vec2 pos = positions[m.value()];
              if (within_range(pos, ch_a, range) &&
                  within_range(pos, ch_b, range)) {
                pool.push_back(m);
              }
            }
          };
          collect(dir.clusters_[a]);
          collect(dir.clusters_[b]);
          if (!pool.empty()) {
            std::sort(pool.begin(), pool.end());
            candidates[{a, b}] = std::move(pool);
          }
        }
      }
    }
  }
  for (const auto& [pair, pool] : candidates) {
    const auto [a, b] = pair;
    auto make_link = [&](const ClusterView& to) {
      GatewayLink link;
      link.neighbor_cluster = to.id;
      link.neighbor_clusterhead = to.clusterhead;
      link.gateway = pool.front();
      for (std::size_t i = 1;
           i < pool.size() && link.backups.size() < config.max_backup_gateways;
           ++i) {
        link.backups.push_back(pool[i]);
      }
      return link;
    };
    dir.clusters_[a].links.push_back(make_link(dir.clusters_[b]));
    dir.clusters_[b].links.push_back(make_link(dir.clusters_[a]));
  }
  return dir;
}

ClusterDirectory ClusterDirectory::single_cluster(std::size_t n,
                                                  DirectoryConfig config) {
  CFDS_EXPECT(n >= 2, "a cluster needs a CH and at least one member");
  ClusterDirectory dir;
  ClusterView cluster;
  cluster.id = ClusterId{0};
  cluster.clusterhead = NodeId{0};
  for (std::uint32_t i = 1; i < n; ++i) cluster.members.push_back(NodeId{i});
  for (std::size_t i = 0; i < std::min(config.num_deputies, n - 1); ++i) {
    cluster.deputies.push_back(cluster.members[i]);
  }
  dir.clusters_.push_back(std::move(cluster));
  return dir;
}

const ClusterView* ClusterDirectory::cluster_of(NodeId node) const {
  for (const ClusterView& c : clusters_) {
    if (c.is_member(node)) return &c;
  }
  return nullptr;
}

void ClusterDirectory::install(Network& network,
                               std::vector<MembershipView*>& views) const {
  for (const ClusterView& cluster : clusters_) {
    // One shared view object per cluster: every member adopts the same
    // allocation (copy-on-write — a member's view only forks if a later
    // update actually changes it). Installing a 10^6-node world costs one
    // allocation per cluster, not a deep ClusterView copy per node.
    const auto shared = std::make_shared<const ClusterView>(cluster);
    auto apply = [&](NodeId id) {
      CFDS_EXPECT(id.value() < views.size() && views[id.value()] != nullptr,
                  "missing membership view for node");
      views[id.value()]->set_cluster(shared);
      network.node(id).set_marked(true);
    };
    apply(cluster.clusterhead);
    for (NodeId m : cluster.members) apply(m);
  }
}

}  // namespace cfds
