// Centralized reference formation.
//
// Computes, from global knowledge of node positions, the cluster structure
// the distributed protocol converges to when no frames are lost: greedy
// lowest-NID clusterheads, members = in-range nodes not yet taken, deputies
// ranked by in-cluster degree, per-cluster-pair GW/BGW ranking by NID.
//
// Used by (a) tests, as the oracle the distributed formation is checked
// against under perfect links, and (b) the figure experiments, which need
// exact control of cluster composition (the paper's analysis fixes N and the
// worst-case node position, so the Monte-Carlo cross-check must start from
// precisely that cluster, not from whatever lossy formation produced).

#pragma once

#include <vector>

#include "cluster/membership.h"
#include "cluster/roles.h"
#include "common/geometry.h"
#include "common/ids.h"
#include "net/network.h"

namespace cfds {

/// Parameters mirrored from FormationConfig.
struct DirectoryConfig {
  std::size_t num_deputies = 2;
  std::size_t max_backup_gateways = 3;
};

/// Global cluster structure plus lookup helpers.
class ClusterDirectory {
 public:
  /// Runs the centralized algorithm over `positions` (index = NID value).
  static ClusterDirectory build(const std::vector<Vec2>& positions,
                                double range, DirectoryConfig config = {});

  /// Builds a single cluster by fiat: node 0 is the CH, nodes 1..n-1 are
  /// members, the first `config.num_deputies` members are deputies in NID
  /// order. Matches the paper's single-cluster analysis setting.
  static ClusterDirectory single_cluster(std::size_t n,
                                         DirectoryConfig config = {});

  [[nodiscard]] const std::vector<ClusterView>& clusters() const {
    return clusters_;
  }

  /// The cluster containing `node`, or nullptr if unaffiliated.
  [[nodiscard]] const ClusterView* cluster_of(NodeId node) const;

  /// Installs each node's view into the given per-node MembershipViews
  /// (indexed by NID value) and sets the nodes' marked flags.
  void install(Network& network,
               std::vector<MembershipView*>& views) const;

 private:
  std::vector<ClusterView> clusters_;
};

}  // namespace cfds
